//! Model extraction: infer the hidden-layer width and the number of
//! training epochs of an MLP training on a remote GPU (paper Sec. V-B).
//!
//! Run with: `cargo run --release -p gpubox-bench --example model_extraction`

use gpubox_attacks::side::{detect_epochs, record_memorygram, summarize_mlp_gram, RecorderConfig};
use gpubox_bench::{setup::victim_with_duration, SideChannelSetup};
use gpubox_classify::Memorygram;
use gpubox_sim::GpuId;
use gpubox_workloads::MlpTraining;

fn capture(setup: &mut SideChannelSetup, w: &MlpTraining) -> Memorygram {
    let victim = setup.sys.create_process(GpuId::new(0));
    let (agent, duration) = victim_with_duration(&mut setup.sys, victim, w);
    setup.sys.flush_l2(GpuId::new(0));
    record_memorygram(
        &mut setup.sys,
        setup.spy,
        &setup.monitored,
        setup.thresholds,
        &RecorderConfig {
            duration,
            sweep_gap: 0,
        },
        vec![Box::new(agent)],
    )
    .expect("memorygram capture")
}

fn main() {
    println!(
        "[offline] spy prepares 1024 monitored sets and calibrates per-width miss profiles ..."
    );
    let mut setup = SideChannelSetup::prepare(0xE077, 1024);

    // Offline calibration: average misses per set for ONE training epoch
    // per candidate width (Table II). Online, totals are normalised by
    // the epoch count the attacker extracts from the activity bands.
    let widths = [64usize, 128, 256, 512];
    let mut calibration = Vec::new();
    for &w in &widths {
        let gram = capture(&mut setup, &MlpTraining::with_hidden(w));
        let avg = summarize_mlp_gram(&gram).avg_misses_per_set;
        println!("  width {w:>3}: avg {avg:.1} misses/set per epoch");
        calibration.push((w, avg));
    }

    // The victim secretly trains with 256 hidden neurons for 2 epochs.
    println!("\n[online] victim starts training its secret model ...");
    let secret = MlpTraining::with_hidden_epochs(256, 2);
    let gram = capture(&mut setup, &secret);
    let epochs = detect_epochs(&gram, 9);
    let observed = summarize_mlp_gram(&gram).avg_misses_per_set / epochs.max(1) as f64;

    // Nearest calibration point wins.
    let (guess, _) = calibration
        .iter()
        .min_by(|a, b| {
            (a.1 - observed)
                .abs()
                .partial_cmp(&(b.1 - observed).abs())
                .unwrap()
        })
        .copied()
        .unwrap();
    println!("[online] observed {observed:.1} misses/set/epoch over {epochs} activity band(s)");
    println!("[online] spy concludes: hidden width = {guess}, epochs = {epochs}");
    assert_eq!(guess, 256);
    assert_eq!(epochs, 2);
    println!("correct — the secret model had 256 hidden neurons, trained 2 epochs.");
}
