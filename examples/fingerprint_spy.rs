//! Fingerprint spy: train an offline classifier on known workloads, then
//! identify what an unsuspecting victim GPU is running (paper Sec. V-A).
//!
//! Run with: `cargo run --release -p gpubox-bench --example fingerprint_spy -- [samples_per_class]`

use gpubox_attacks::side::{record_memorygram, FingerprintDataset, RecorderConfig};
use gpubox_bench::{setup::victim_with_duration, SideChannelSetup};
use gpubox_classify::Memorygram;
use gpubox_sim::GpuId;
use gpubox_workloads::{standard_labels, standard_suite, Workload};

fn capture(setup: &mut SideChannelSetup, w: &dyn Workload) -> Memorygram {
    let victim = setup.sys.create_process(GpuId::new(0));
    let (agent, duration) = victim_with_duration(&mut setup.sys, victim, w);
    setup.sys.flush_l2(GpuId::new(0));
    record_memorygram(
        &mut setup.sys,
        setup.spy,
        &setup.monitored,
        setup.thresholds,
        &RecorderConfig {
            duration,
            sweep_gap: 0,
        },
        vec![Box::new(agent)],
    )
    .expect("memorygram capture")
}

fn main() {
    let per_class: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(12);

    println!("[offline] spy builds eviction sets for 256 cache sets of GPU0 ...");
    let mut setup = SideChannelSetup::prepare(0x5EED, 256);

    println!("[offline] collecting {per_class} training memorygrams per application ...");
    let mut ds = FingerprintDataset::new(standard_labels());
    for (label, w) in standard_suite().iter().enumerate() {
        for _ in 0..per_class {
            ds.push(capture(&mut setup, w.as_ref()), label);
        }
    }
    let report = ds.train_and_evaluate(0.6, 0.2, 7);
    println!(
        "[offline] classifier trained: {:.1}% validation accuracy",
        report.val_accuracy * 100.0
    );

    // The "unknown" victim: secretly matrix multiplication.
    println!("\n[online] an unknown application starts on GPU0 ...");
    let secret = gpubox_workloads::MatMul::default().with_seed(0xDEAD);
    let gram = capture(&mut setup, &secret);
    let guess = report.identify(&gram);
    println!(
        "[online] spy watched {} probe sweeps and says: the victim is running '{}'",
        gram.num_sweeps(),
        guess
    );
    assert_eq!(guess, "MM");
    println!("correct — the victim was matrix multiplication.");
}
