//! Covert chat: send an arbitrary message from a trojan on GPU0 to a spy
//! on GPU1 through GPU0's L2 cache — the full end-to-end attack of
//! paper Sec. IV (eviction sets → alignment → Prime+Probe transmission).
//!
//! Run with:
//! `cargo run --release -p gpubox-bench --example covert_chat -- "your message" [sets]`

use gpubox_attacks::covert::{bits_from_bytes, bytes_from_bits};
use gpubox_attacks::{transmit, ChannelParams};
use gpubox_bench::AttackSetup;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let message = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "Hello! How are you?".to_string());
    let sets: usize = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
        .clamp(1, 16);

    println!("[offline] reverse engineering caches and building eviction sets ...");
    let mut setup = AttackSetup::prepare(0xC0FFEE);
    println!("[offline] aligning {sets} eviction-set pair(s) across the two processes ...");
    let pairs = setup.aligned_pairs(sets);

    println!(
        "[online]  transmitting {:?} over {sets} cache set(s) ...",
        message
    );
    let report = transmit(
        &mut setup.sys,
        setup.trojan,
        setup.spy,
        &pairs,
        &bits_from_bytes(message.as_bytes()),
        &ChannelParams::default(),
        setup.thresholds,
    )
    .expect("transmission");

    let received = String::from_utf8_lossy(&bytes_from_bits(&report.received)).into_owned();
    println!("\ntrojan (GPU0) sent : {message:?}");
    println!("spy    (GPU1) got  : {received:?}");
    println!(
        "bit errors: {}/{} ({:.2}%), bandwidth {:.1} KB/s over {:.2} ms",
        report.bit_errors,
        report.sent.len(),
        report.error_rate * 100.0,
        report.bandwidth_bytes_per_sec / 1e3,
        report.duration_cycles as f64 / 1.48e9 * 1e3,
    );
}
