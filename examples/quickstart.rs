//! Quickstart: boot a DGX-1, reverse engineer its timing, and watch one
//! GPU evict another GPU's cache lines — the primitive behind every
//! attack in the paper.
//!
//! Run with: `cargo run --release -p gpubox-bench --example quickstart`

use gpubox_attacks::timing_re::measure_timing;
use gpubox_sim::{GpuId, MultiGpuSystem, ProcessCtx, SystemConfig};

fn main() -> Result<(), gpubox_sim::SimError> {
    // 1. Boot the paper's machine: 8 Tesla P100s on an NVLink cube-mesh.
    let mut sys = MultiGpuSystem::new(SystemConfig::dgx1());
    println!(
        "booted a DGX-1: {} GPUs, {} KiB L2 x {} sets x {} ways",
        sys.config().num_gpus,
        sys.config().cache.size_bytes / 1024,
        sys.config().cache.num_sets(),
        sys.config().cache.ways
    );

    // 2. One-time reverse engineering: the four timing clusters of Fig. 4.
    let timing = measure_timing(&mut sys, GpuId::new(0), GpuId::new(1), 48)?;
    println!("\ntiming clusters: {:.0?} cycles", timing.centers);
    println!(
        "thresholds: local miss >= {}, remote miss >= {}",
        timing.thresholds.local_miss, timing.thresholds.remote_miss
    );

    // 3. The cross-GPU contention primitive. A victim on GPU0 caches a
    //    line; a spy on GPU1 allocates on GPU0 and hammers lines until the
    //    victim's line falls out — observable purely through timing.
    let victim = sys.create_process(GpuId::new(0));
    let spy = sys.create_process(GpuId::new(1));
    sys.enable_peer_access(spy, GpuId::new(0))?;

    let vbuf = sys.malloc_on(victim, GpuId::new(0), 64 * 1024)?;
    let sbuf = sys.malloc_on(spy, GpuId::new(0), 16 * 1024 * 1024)?;

    // Victim warms its line.
    let mut vctx = ProcessCtx::new(&mut sys, victim, 0);
    vctx.ldcg(vbuf)?;
    let (_, warm) = vctx.ldcg(vbuf)?;
    println!("\nvictim re-access while cached:   {warm} cycles (local L2 hit)");

    // Spy sweeps its big buffer on GPU0, evicting broadly.
    let mut sctx = ProcessCtx::new(&mut sys, spy, 0);
    for line in 0..(16 * 1024 * 1024 / 128) {
        sctx.ldcg(sbuf.offset(line * 128))?;
    }

    // Victim's line is gone — and the victim can tell, as can the spy.
    let mut vctx = ProcessCtx::new(&mut sys, victim, 0);
    let (_, after) = vctx.ldcg(vbuf)?;
    println!("victim re-access after spy sweep: {after} cycles (local miss — evicted remotely!)");
    assert!(timing.thresholds.is_local_miss(after));
    println!("\nthe spy on GPU1 just evicted a line of GPU0's L2 from user space.");
    Ok(())
}
