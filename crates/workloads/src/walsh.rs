//! `fastWalshTransform` — in-place fast Walsh–Hadamard transform.
//!
//! Signature: log2(n) full passes over one array with butterfly strides
//! halving each pass — a ladder of bands in the memorygram.

use crate::data::uniform_vec;
use crate::trace::{TraceBuilder, TraceOp};
use crate::Workload;
use gpubox_sim::{ProcessCtx, SimResult};

/// Fast Walsh–Hadamard transform over `n` (power of two) elements,
/// repeated `passes` times (the CUDA sample transforms several vectors).
#[derive(Debug, Clone)]
pub struct WalshTransform {
    n: usize,
    passes: usize,
    seed: u64,
}

impl WalshTransform {
    /// Creates a run over `n` elements (must be a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize, passes: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "walsh transform needs a power-of-two length"
        );
        WalshTransform {
            n,
            passes,
            seed: 59,
        }
    }

    /// Sets the data seed (builder-style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Reference in-place transform (used by the trace builder and tests).
    pub fn transform(data: &mut [f64]) {
        let n = data.len();
        let mut h = 1;
        while h < n {
            for i in (0..n).step_by(h * 2) {
                for j in i..i + h {
                    let x = data[j];
                    let y = data[j + h];
                    data[j] = x + y;
                    data[j + h] = x - y;
                }
            }
            h *= 2;
        }
    }
}

impl Default for WalshTransform {
    fn default() -> Self {
        WalshTransform::new(8 * 1024, 3)
    }
}

impl Workload for WalshTransform {
    fn name(&self) -> &'static str {
        "WT"
    }

    fn build(&self, ctx: &mut ProcessCtx<'_>) -> SimResult<Vec<TraceOp>> {
        let home = ctx.home();
        let buf = ctx.malloc_on(home, (self.n * 8) as u64)?;
        let mut data = uniform_vec(self.n, -1.0, 1.0, self.seed);
        ctx.write_words(buf, &data.iter().map(|v| v.to_bits()).collect::<Vec<_>>())?;

        let mut t = TraceBuilder::new();
        for _ in 0..self.passes {
            let mut h = 1usize;
            while h < self.n {
                for i in (0..self.n).step_by(h * 2) {
                    for j in (i..i + h).step_by(16) {
                        // One 128 B line covers 16 elements of each
                        // butterfly operand.
                        t.load(buf, j as u64);
                        t.load(buf, (j + h) as u64);
                        t.store(buf, j as u64, 0);
                        t.store(buf, (j + h) as u64, 0);
                        t.compute(4);
                    }
                }
                h *= 2;
            }
        }
        // Real math once per pass (values, not addresses, for correctness
        // tests).
        for _ in 0..self.passes {
            Self::transform(&mut data);
        }
        // Final result written back (line-granular).
        for j in (0..self.n).step_by(16) {
            t.store(buf, j as u64, data[j].to_bits());
        }
        Ok(t.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpubox_sim::{GpuId, MultiGpuSystem, SystemConfig};

    #[test]
    fn transform_is_self_inverse_up_to_n() {
        let mut data = uniform_vec(64, -1.0, 1.0, 9);
        let orig = data.clone();
        WalshTransform::transform(&mut data);
        WalshTransform::transform(&mut data);
        for (a, b) in data.iter().zip(&orig) {
            assert!((a / 64.0 - b).abs() < 1e-9, "WHT^2 = n I violated");
        }
    }

    #[test]
    fn transform_of_impulse_is_constant() {
        let mut data = vec![0.0; 16];
        data[0] = 1.0;
        WalshTransform::transform(&mut data);
        assert!(data.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn butterfly_strides_appear_in_trace() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let trace = WalshTransform::new(1024, 1).build(&mut ctx).unwrap();
        // Early pass pairs (j, j+16): look for a load pair 16*8 bytes apart
        // and a late pair 512*8 apart.
        let loads: Vec<u64> = trace
            .iter()
            .filter_map(|o| match o {
                TraceOp::Load(va) => Some(va.raw()),
                _ => None,
            })
            .collect();
        let has_gap = |gap: u64| loads.windows(2).any(|w| w[1].abs_diff(w[0]) == gap * 8);
        assert!(has_gap(16), "h=16 butterfly missing");
        assert!(has_gap(512), "h=512 butterfly missing");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        let _ = WalshTransform::new(1000, 1);
    }
}
