//! `quasirandomGenerator` — Sobol-style quasi-random sequence generation.
//!
//! Signature: a tiny, extremely hot direction-vector table plus a pure
//! streaming write band per dimension.

use crate::trace::{TraceBuilder, TraceOp};
use crate::Workload;
use gpubox_sim::{ProcessCtx, SimResult};

/// Sobol-like generator: `n` points in `dims` dimensions, 31 direction
/// numbers per dimension.
#[derive(Debug, Clone)]
pub struct QuasiRandom {
    n: usize,
    dims: usize,
}

const DIRECTION_BITS: usize = 31;

impl QuasiRandom {
    /// Creates a run producing `n` points in `dims` dimensions.
    pub fn new(n: usize, dims: usize) -> Self {
        QuasiRandom { n, dims }
    }

    /// The direction-number table for one dimension (simple recurrence per
    /// the CUDA sample's initialisation).
    fn directions(dim: usize) -> Vec<u32> {
        let mut v = vec![0u32; DIRECTION_BITS];
        for (i, d) in v.iter_mut().enumerate() {
            // Primitive-polynomial-free variant: shifted identity scrambled
            // by the dimension index, enough to produce the sample's access
            // pattern and a low-discrepancy-looking output.
            *d = (1u32 << (31 - i)) ^ ((dim as u32).wrapping_mul(0x9E37_79B9) >> i);
        }
        v
    }

    /// Generates the `i`-th Sobol-ish value for a direction table (Gray
    /// code construction).
    pub fn value(directions: &[u32], i: u32) -> f64 {
        let gray = i ^ (i >> 1);
        let mut acc = 0u32;
        for (bit, &d) in directions.iter().enumerate() {
            if gray & (1 << bit) != 0 {
                acc ^= d;
            }
        }
        f64::from(acc) / f64::from(u32::MAX)
    }
}

impl Default for QuasiRandom {
    fn default() -> Self {
        QuasiRandom::new(24 * 1024, 3)
    }
}

impl Workload for QuasiRandom {
    fn name(&self) -> &'static str {
        "QR"
    }

    fn build(&self, ctx: &mut ProcessCtx<'_>) -> SimResult<Vec<TraceOp>> {
        let home = ctx.home();
        let table_buf = ctx.malloc_on(home, (self.dims * DIRECTION_BITS * 8) as u64)?;
        let out_buf = ctx.malloc_on(home, (self.n * self.dims * 8) as u64)?;
        let tables: Vec<Vec<u32>> = (0..self.dims).map(Self::directions).collect();
        let flat: Vec<u64> = tables.iter().flatten().map(|&d| u64::from(d)).collect();
        ctx.write_words(table_buf, &flat)?;

        let mut t = TraceBuilder::new();
        for (d, table) in tables.iter().enumerate() {
            for i in 0..self.n as u32 {
                // Read the direction numbers the Gray code actually uses.
                let gray = i ^ (i >> 1);
                for bit in 0..DIRECTION_BITS {
                    if gray & (1 << bit) != 0 {
                        t.load(table_buf, (d * DIRECTION_BITS + bit) as u64);
                    }
                }
                let v = Self::value(table, i);
                t.store(out_buf, (d * self.n + i as usize) as u64, v.to_bits());
                t.compute(2);
            }
        }
        Ok(t.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpubox_sim::{GpuId, MultiGpuSystem, SystemConfig};

    #[test]
    fn values_are_in_unit_interval_and_low_discrepancy_ish() {
        let dirs = QuasiRandom::directions(0);
        let vals: Vec<f64> = (0..512).map(|i| QuasiRandom::value(&dirs, i)).collect();
        assert!(vals.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Quarter-interval coverage should be near uniform.
        for q in 0..4 {
            let lo = q as f64 * 0.25;
            let cnt = vals.iter().filter(|&&v| v >= lo && v < lo + 0.25).count();
            assert!((96..=160).contains(&cnt), "quartile {q} has {cnt}");
        }
    }

    #[test]
    fn table_region_is_hot() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let trace = QuasiRandom::new(512, 2).build(&mut ctx).unwrap();
        let loads: Vec<_> = trace
            .iter()
            .filter_map(|o| match o {
                TraceOp::Load(va) => Some(*va),
                _ => None,
            })
            .collect();
        let distinct: std::collections::HashSet<_> = loads.iter().collect();
        assert!(
            loads.len() > distinct.len() * 10,
            "table must be revisited heavily"
        );
    }
}
