//! # gpubox-workloads — victim applications for the side-channel attacks
//!
//! Rust reimplementations of the six NVIDIA-toolkit workloads the paper
//! fingerprints (Sec. V-A: vectoradd, histogram, blackscholes, matrix
//! multiplication, quasirandom, Walsh transform) plus the PyTorch MLP
//! victim of Sec. V-B, rebuilt as a from-scratch training loop.
//!
//! Each workload *actually computes its algorithm* over buffers allocated
//! in simulated GPU memory and emits the memory-access trace its loops
//! generate; a [`TraceAgent`] replays the trace inside the discrete-event
//! engine so the spy observes genuine L2 contention patterns.
//!
//! ```
//! use gpubox_sim::{GpuId, MultiGpuSystem, SystemConfig};
//! use gpubox_workloads::{Workload, VectorAdd};
//!
//! # fn main() -> Result<(), gpubox_sim::SimError> {
//! let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
//! let pid = sys.create_process(GpuId::new(0));
//! let agent = gpubox_workloads::agent_for(&mut sys, pid, &VectorAdd::new(1024))?;
//! assert!(agent.remaining_ops() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod blackscholes;
pub mod data;
pub mod histogram;
pub mod matmul;
pub mod mlp;
pub mod quasirandom;
pub mod trace;
pub mod vectoradd;
pub mod walsh;

pub use blackscholes::BlackScholes;
pub use histogram::Histogram;
pub use matmul::MatMul;
pub use mlp::{MlpConfig, MlpTraining};
pub use quasirandom::QuasiRandom;
pub use trace::{agent_for, TraceAgent, TraceOp};
pub use vectoradd::VectorAdd;
pub use walsh::WalshTransform;

use gpubox_sim::{ProcessCtx, SimResult};

/// A victim application: allocates its buffers and produces the memory
/// trace of one run.
pub trait Workload {
    /// Short identifier (the paper's class labels: "VA", "HG", ...).
    fn name(&self) -> &'static str;

    /// Allocates device buffers on the process's home GPU and returns the
    /// access trace of one complete run.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    fn build(&self, ctx: &mut ProcessCtx<'_>) -> SimResult<Vec<TraceOp>>;
}

/// The paper's six fingerprinting victims, in Fig. 12 label order:
/// BS, HG, MM, QR, VA, WT.
pub fn standard_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(BlackScholes::default()),
        Box::new(Histogram::default()),
        Box::new(MatMul::default()),
        Box::new(QuasiRandom::default()),
        Box::new(VectorAdd::default()),
        Box::new(WalshTransform::default()),
    ]
}

/// Labels of [`standard_suite`] in order.
pub fn standard_labels() -> Vec<String> {
    vec![
        "BS".into(),
        "HG".into(),
        "MM".into(),
        "QR".into(),
        "VA".into(),
        "WT".into(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpubox_sim::{GpuId, MultiGpuSystem, SystemConfig};

    #[test]
    fn standard_suite_has_six_distinct_names() {
        let suite = standard_suite();
        assert_eq!(suite.len(), 6);
        let names: std::collections::HashSet<_> = suite.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 6);
        assert_eq!(standard_labels().len(), 6);
    }

    #[test]
    fn every_workload_builds_a_nonempty_trace() {
        for w in standard_suite() {
            let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
            let pid = sys.create_process(GpuId::new(0));
            let mut ctx = gpubox_sim::ProcessCtx::new(&mut sys, pid, 0);
            let trace = w.build(&mut ctx).unwrap();
            assert!(
                trace.len() > 1000,
                "{} trace too short: {}",
                w.name(),
                trace.len()
            );
            let loads = trace
                .iter()
                .filter(|op| matches!(op, TraceOp::Load(_)))
                .count();
            assert!(loads > 0, "{} must load memory", w.name());
        }
    }
}
