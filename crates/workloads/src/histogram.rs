//! `histogram` — 256-bin histogram of a random byte stream.
//!
//! Signature: one streaming input band plus a small, hot, randomly hit
//! bin region (read-modify-write).

use crate::data::rng;
use crate::trace::{TraceBuilder, TraceOp};
use crate::Workload;
use gpubox_sim::{ProcessCtx, SimResult};
use rand::Rng;

/// Histogram over `n` input elements into `bins` bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    n: usize,
    bins: usize,
    seed: u64,
}

impl Histogram {
    /// Creates a run over `n` inputs and `bins` bins.
    pub fn new(n: usize, bins: usize) -> Self {
        Histogram { n, bins, seed: 23 }
    }

    /// Sets the data seed (builder-style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(40 * 1024, 256)
    }
}

impl Workload for Histogram {
    fn name(&self) -> &'static str {
        "HG"
    }

    fn build(&self, ctx: &mut ProcessCtx<'_>) -> SimResult<Vec<TraceOp>> {
        let home = ctx.home();
        let input = ctx.malloc_on(home, (self.n * 8) as u64)?;
        let bins_buf = ctx.malloc_on(home, (self.bins * 8) as u64)?;
        let mut r = rng(self.seed);
        let data: Vec<u64> = (0..self.n)
            .map(|_| r.gen_range(0..self.bins as u64))
            .collect();
        ctx.write_words(input, &data)?;

        let mut counts = vec![0u64; self.bins];
        let mut t = TraceBuilder::new();
        for i in 0..self.n as u64 {
            t.load(input, i);
            let bin = data[i as usize];
            // Read-modify-write of the bin counter.
            t.load(bins_buf, bin);
            counts[bin as usize] += 1;
            t.store(bins_buf, bin, counts[bin as usize]);
            t.compute(1);
        }
        Ok(t.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpubox_sim::{GpuId, MultiGpuSystem, SystemConfig};

    #[test]
    fn final_counts_sum_to_n() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let trace = Histogram::new(512, 16).build(&mut ctx).unwrap();
        // Replay the final value stored per bin address.
        let mut last = std::collections::HashMap::new();
        for op in &trace {
            if let TraceOp::Store(va, v) = op {
                last.insert(*va, *v);
            }
        }
        let total: u64 = last.values().sum();
        assert_eq!(total, 512);
    }

    #[test]
    fn bin_region_is_compact() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let trace = Histogram::new(256, 16).build(&mut ctx).unwrap();
        let stores: std::collections::HashSet<_> = trace
            .iter()
            .filter_map(|o| match o {
                TraceOp::Store(va, _) => Some(*va),
                _ => None,
            })
            .collect();
        assert!(stores.len() <= 16);
    }
}
