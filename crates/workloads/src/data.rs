//! Synthetic input-data generation shared by the workloads.
//!
//! Substitutes for the datasets the paper's victims consume (random option
//! parameters, input vectors, and an MNIST-like digit set for the MLP —
//! the real MNIST files are not redistributable here; the access patterns
//! only depend on shapes, not pixel values).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Deterministic RNG for a workload run.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Uniform floats in `[lo, hi)`.
pub fn uniform_vec(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(lo..hi)).collect()
}

/// A synthetic "digit" dataset: `n` images of `dim` features in `[0,1]`
/// with `classes` labels; images of one class share a class-dependent
/// blob pattern plus noise, so a small MLP can actually learn them.
pub fn synthetic_digits(
    n: usize,
    dim: usize,
    classes: usize,
    seed: u64,
) -> (Vec<Vec<f32>>, Vec<usize>) {
    let mut r = rng(seed);
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % classes;
        let x: Vec<f32> = (0..dim)
            .map(|d| {
                let hot = (d * classes / dim) == label;
                let base: f32 = if hot { 0.8 } else { 0.1 };
                (base + r.gen_range(-0.1..0.1f32)).clamp(0.0, 1.0)
            })
            .collect();
        xs.push(x);
        ys.push(label);
    }
    (xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_bounds_and_seed() {
        let a = uniform_vec(100, 1.0, 2.0, 7);
        let b = uniform_vec(100, 1.0, 2.0, 7);
        assert_eq!(a, b, "deterministic per seed");
        assert!(a.iter().all(|&v| (1.0..2.0).contains(&v)));
    }

    #[test]
    fn digits_are_balanced_and_learnable_shaped() {
        let (xs, ys) = synthetic_digits(100, 64, 10, 3);
        assert_eq!(xs.len(), 100);
        assert_eq!(ys.iter().filter(|&&y| y == 0).count(), 10);
        // Hot region must actually be hotter.
        let x0 = &xs[0]; // label 0 -> features [0, 6) hot
        let hot: f32 = x0[..6].iter().sum::<f32>() / 6.0;
        let cold: f32 = x0[32..].iter().sum::<f32>() / 32.0;
        assert!(hot > cold + 0.3);
    }
}
