//! Memory-access traces and their replay agent.

use gpubox_sim::{
    Agent, MultiGpuSystem, Op, OpResult, ProbeStage, ProcessCtx, ProcessId, SimResult, VirtAddr,
};

/// One step of a workload's memory trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Load one word (the line containing it is what matters to the L2).
    Load(VirtAddr),
    /// Store one word.
    Store(VirtAddr, u64),
    /// ALU/SFU work for the given cycles.
    Compute(u64),
}

/// Replays a workload trace as an engine agent.
#[derive(Debug)]
pub struct TraceAgent {
    pid: ProcessId,
    trace: Vec<TraceOp>,
    idx: usize,
}

impl TraceAgent {
    /// Wraps a prebuilt trace.
    pub fn new(pid: ProcessId, trace: Vec<TraceOp>) -> Self {
        TraceAgent { pid, trace, idx: 0 }
    }

    /// Operations left to replay.
    pub fn remaining_ops(&self) -> usize {
        self.trace.len() - self.idx
    }
}

impl Agent for TraceAgent {
    fn next_op(&mut self, _now: u64, _stage: &mut ProbeStage) -> Op {
        let Some(op) = self.trace.get(self.idx) else {
            return Op::Done;
        };
        self.idx += 1;
        match *op {
            TraceOp::Load(va) => Op::Load(va),
            TraceOp::Store(va, v) => Op::Store(va, v),
            TraceOp::Compute(c) => Op::Compute(c),
        }
    }

    fn on_result(&mut self, _res: &OpResult<'_>) {}

    fn process(&self) -> ProcessId {
        self.pid
    }

    fn label(&self) -> &str {
        "victim"
    }
}

/// Builds a workload's trace inside `sys` (allocating its buffers on the
/// process home GPU) and wraps it in a replay agent.
///
/// # Errors
///
/// Propagates allocation failures.
pub fn agent_for(
    sys: &mut MultiGpuSystem,
    pid: ProcessId,
    workload: &dyn crate::Workload,
) -> SimResult<TraceAgent> {
    let mut ctx = ProcessCtx::new(sys, pid, 0);
    let trace = workload.build(&mut ctx)?;
    Ok(TraceAgent::new(pid, trace))
}

/// Trace-building helper shared by the workloads: element-granular loads
/// and stores over word arrays, with per-element compute interleaved.
#[derive(Debug)]
pub struct TraceBuilder {
    ops: Vec<TraceOp>,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TraceBuilder { ops: Vec::new() }
    }

    /// Records a load of element `idx` (8-byte words) of `base`.
    pub fn load(&mut self, base: VirtAddr, idx: u64) {
        self.ops.push(TraceOp::Load(base.offset(idx * 8)));
    }

    /// Records a store to element `idx` of `base`.
    pub fn store(&mut self, base: VirtAddr, idx: u64, value: u64) {
        self.ops.push(TraceOp::Store(base.offset(idx * 8), value));
    }

    /// Records `cycles` of computation, merging adjacent compute ops.
    pub fn compute(&mut self, cycles: u64) {
        if let Some(TraceOp::Compute(c)) = self.ops.last_mut() {
            *c += cycles;
        } else {
            self.ops.push(TraceOp::Compute(cycles));
        }
    }

    /// Finishes the trace.
    pub fn finish(self) -> Vec<TraceOp> {
        self.ops
    }

    /// Number of ops so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no ops were recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl Default for TraceBuilder {
    fn default() -> Self {
        TraceBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_merges_compute() {
        let mut b = TraceBuilder::new();
        b.compute(10);
        b.compute(5);
        b.load(VirtAddr(4096), 0);
        b.compute(3);
        let t = b.finish();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0], TraceOp::Compute(15));
    }

    #[test]
    fn agent_replays_in_order_then_finishes() {
        let trace = vec![
            TraceOp::Load(VirtAddr(4096)),
            TraceOp::Compute(7),
            TraceOp::Store(VirtAddr(4104), 9),
        ];
        let mut a = TraceAgent::new(ProcessId(0), trace);
        let mut stage = ProbeStage::new();
        assert_eq!(a.remaining_ops(), 3);
        assert_eq!(a.next_op(0, &mut stage), Op::Load(VirtAddr(4096)));
        assert_eq!(a.next_op(0, &mut stage), Op::Compute(7));
        assert_eq!(a.next_op(0, &mut stage), Op::Store(VirtAddr(4104), 9));
        assert_eq!(a.next_op(0, &mut stage), Op::Done);
        assert_eq!(a.remaining_ops(), 0);
    }
}
