//! `vectorAdd` — the CUDA toolkit's hello-world: `c[i] = a[i] + b[i]`.
//!
//! Its memorygram signature is three long streaming bands touching each
//! line exactly once.

use crate::data::uniform_vec;
use crate::trace::{TraceBuilder, TraceOp};
use crate::Workload;
use gpubox_sim::{ProcessCtx, SimResult};

/// Streaming vector addition over `n` elements.
#[derive(Debug, Clone)]
pub struct VectorAdd {
    n: usize,
    seed: u64,
}

impl VectorAdd {
    /// Creates a run over `n` elements.
    pub fn new(n: usize) -> Self {
        VectorAdd { n, seed: 11 }
    }

    /// Sets the data seed (builder-style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for VectorAdd {
    fn default() -> Self {
        VectorAdd::new(48 * 1024)
    }
}

impl Workload for VectorAdd {
    fn name(&self) -> &'static str {
        "VA"
    }

    fn build(&self, ctx: &mut ProcessCtx<'_>) -> SimResult<Vec<TraceOp>> {
        let bytes = (self.n * 8) as u64;
        let home = ctx.home();
        let a_buf = ctx.malloc_on(home, bytes)?;
        let b_buf = ctx.malloc_on(home, bytes)?;
        let c_buf = ctx.malloc_on(home, bytes)?;
        let a = uniform_vec(self.n, -1.0, 1.0, self.seed);
        let b = uniform_vec(self.n, -1.0, 1.0, self.seed + 1);
        // Host→device initialisation (DMA, not timed).
        ctx.write_words(a_buf, &a.iter().map(|v| v.to_bits()).collect::<Vec<_>>())?;
        ctx.write_words(b_buf, &b.iter().map(|v| v.to_bits()).collect::<Vec<_>>())?;

        let mut t = TraceBuilder::new();
        for i in 0..self.n as u64 {
            t.load(a_buf, i);
            t.load(b_buf, i);
            let c = a[i as usize] + b[i as usize];
            t.store(c_buf, i, c.to_bits());
            t.compute(2);
        }
        Ok(t.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpubox_sim::{GpuId, MultiGpuSystem, SystemConfig};

    #[test]
    fn trace_has_two_loads_one_store_per_element() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let trace = VectorAdd::new(256).build(&mut ctx).unwrap();
        let loads = trace
            .iter()
            .filter(|o| matches!(o, TraceOp::Load(_)))
            .count();
        let stores = trace
            .iter()
            .filter(|o| matches!(o, TraceOp::Store(..)))
            .count();
        assert_eq!(loads, 512);
        assert_eq!(stores, 256);
    }

    #[test]
    fn stored_values_are_the_real_sums() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
        let pid = sys.create_process(GpuId::new(0));
        let w = VectorAdd::new(64).with_seed(5);
        let trace = {
            let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
            w.build(&mut ctx).unwrap()
        };
        let a = uniform_vec(64, -1.0, 1.0, 5);
        let b = uniform_vec(64, -1.0, 1.0, 6);
        let mut idx = 0usize;
        for op in &trace {
            if let TraceOp::Store(_, bits) = op {
                let expect = a[idx] + b[idx];
                assert_eq!(f64::from_bits(*bits), expect);
                idx += 1;
            }
        }
        assert_eq!(idx, 64);
    }
}
