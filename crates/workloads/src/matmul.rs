//! `matrixMul` — tiled dense matrix multiplication `C = A × B`.
//!
//! Signature: blocked re-traversal of A and B tiles — the same lines are
//! revisited once per tile row/column, producing the checkerboard
//! memorygram of the paper's Fig. 11.

use crate::data::uniform_vec;
use crate::trace::{TraceBuilder, TraceOp};
use crate::Workload;
use gpubox_sim::{ProcessCtx, SimResult};

/// Tiled matrix multiply of two `n × n` matrices with `tile × tile`
/// blocks.
#[derive(Debug, Clone)]
pub struct MatMul {
    n: usize,
    tile: usize,
    seed: u64,
}

impl MatMul {
    /// Creates a run over `n × n` matrices with the given tile size.
    ///
    /// # Panics
    ///
    /// Panics if `tile` does not divide `n`.
    pub fn new(n: usize, tile: usize) -> Self {
        assert!(n.is_multiple_of(tile), "tile must divide n");
        MatMul { n, tile, seed: 41 }
    }

    /// Sets the data seed (builder-style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for MatMul {
    fn default() -> Self {
        MatMul::new(160, 16)
    }
}

impl Workload for MatMul {
    fn name(&self) -> &'static str {
        "MM"
    }

    fn build(&self, ctx: &mut ProcessCtx<'_>) -> SimResult<Vec<TraceOp>> {
        let home = ctx.home();
        let n = self.n;
        let bytes = (n * n * 8) as u64;
        let a_buf = ctx.malloc_on(home, bytes)?;
        let b_buf = ctx.malloc_on(home, bytes)?;
        let c_buf = ctx.malloc_on(home, bytes)?;
        let a = uniform_vec(n * n, -1.0, 1.0, self.seed);
        let b = uniform_vec(n * n, -1.0, 1.0, self.seed + 1);
        ctx.write_words(a_buf, &a.iter().map(|v| v.to_bits()).collect::<Vec<_>>())?;
        ctx.write_words(b_buf, &b.iter().map(|v| v.to_bits()).collect::<Vec<_>>())?;

        let ts = self.tile;
        let tiles = n / ts;
        let mut c = vec![0.0f64; n * n];
        let mut t = TraceBuilder::new();
        // Tile-blocked loops: each (bi, bj) output tile accumulates over
        // bk. Tiles are staged through shared memory on a real GPU, so the
        // L2 sees one pass over each tile's lines per (bi, bj, bk) step
        // (8 elements per 128 B line -> emit one load per line).
        for bi in 0..tiles {
            for bj in 0..tiles {
                for bk in 0..tiles {
                    // Load A tile (rows bi*ts.., cols bk*ts..): one line
                    // per row covers the 16-wide tile (16 × 8 B = 128 B).
                    for r in 0..ts {
                        let row = bi * ts + r;
                        t.load(a_buf, (row * n + bk * ts) as u64);
                    }
                    // Load B tile.
                    for r in 0..ts {
                        let row = bk * ts + r;
                        t.load(b_buf, (row * n + bj * ts) as u64);
                    }
                    // The actual FMA work on the staged tiles.
                    for r in 0..ts {
                        for cc in 0..ts {
                            let mut acc = c[(bi * ts + r) * n + bj * ts + cc];
                            for k in 0..ts {
                                acc += a[(bi * ts + r) * n + bk * ts + k]
                                    * b[(bk * ts + k) * n + bj * ts + cc];
                            }
                            c[(bi * ts + r) * n + bj * ts + cc] = acc;
                        }
                    }
                    t.compute((ts * ts * ts / 8) as u64);
                }
                // Write back the finished C tile, one line per row.
                for r in 0..ts {
                    let row = bi * ts + r;
                    let idx = (row * n + bj * ts) as u64;
                    t.store(c_buf, idx, c[row * n + bj * ts].to_bits());
                }
            }
        }
        Ok(t.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpubox_sim::{GpuId, MultiGpuSystem, SystemConfig};

    #[test]
    fn tiled_math_matches_naive() {
        // The trace-building loop must compute the true product.
        let n = 32;
        let w = MatMul::new(n, 16).with_seed(2);
        let a = uniform_vec(n * n, -1.0, 1.0, 2);
        let b = uniform_vec(n * n, -1.0, 1.0, 3);
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let trace = w.build(&mut ctx).unwrap();
        // Extract the stored C[0,16] (row 0, second tile) value.
        let mut stored = std::collections::HashMap::new();
        for op in &trace {
            if let TraceOp::Store(va, v) = op {
                stored.insert(*va, f64::from_bits(*v));
            }
        }
        // Naive C[0][0]:
        let mut expect = 0.0;
        for k in 0..n {
            expect += a[k] * b[k * n];
        }
        let got = stored
            .values()
            .find(|&&v| (v - expect).abs() < 1e-9)
            .copied();
        assert!(
            got.is_some(),
            "true C[0][0]={expect} not found among stores"
        );
    }

    #[test]
    #[should_panic(expected = "tile must divide n")]
    fn bad_tile_rejected() {
        let _ = MatMul::new(100, 16);
    }

    #[test]
    fn trace_revisits_tiles() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let trace = MatMul::new(64, 16).build(&mut ctx).unwrap();
        let mut counts = std::collections::HashMap::new();
        for op in &trace {
            if let TraceOp::Load(va) = op {
                *counts.entry(*va).or_insert(0usize) += 1;
            }
        }
        // Each A-tile line is revisited once per bj: 64/16 = 4 times.
        assert!(counts.values().any(|&c| c >= 4));
    }
}
