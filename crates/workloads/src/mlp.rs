//! MLP training victim (paper Sec. V-B).
//!
//! A from-scratch single-hidden-layer perceptron trained with SGD on a
//! synthetic digit set (MNIST stand-in; the attack only depends on traffic
//! shape, which scales with the hidden width). The trace models what the
//! GPU's L2 sees per batch: streaming passes over the weight matrices for
//! forward, backward and update, separated across epochs by a data-reload
//! gap — producing the Table II miss scaling and the Fig. 15 epoch bands.

use crate::data::synthetic_digits;
use crate::trace::{TraceBuilder, TraceOp};
use crate::Workload;
use gpubox_sim::{ProcessCtx, SimResult};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Hyperparameters of the MLP victim.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Input features (MNIST: 784; scaled down to keep traces compact).
    pub input_dim: usize,
    /// Hidden-layer width — the secret the attacker extracts (the paper
    /// uses 64 / 128 / 256 / 512).
    pub hidden: usize,
    /// Output classes.
    pub classes: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Batches per epoch.
    pub batches_per_epoch: usize,
    /// Training epochs — the other hyperparameter the attacker infers
    /// (Fig. 15).
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Idle cycles between epochs (host-side shuffling / evaluation).
    pub epoch_gap_cycles: u64,
    /// Data seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            input_dim: 128,
            hidden: 128,
            classes: 10,
            batch: 32,
            batches_per_epoch: 12,
            epochs: 1,
            lr: 0.1,
            epoch_gap_cycles: 6_000_000,
            seed: 71,
        }
    }
}

/// The training workload.
#[derive(Debug, Clone)]
pub struct MlpTraining {
    cfg: MlpConfig,
}

impl MlpTraining {
    /// Creates a training run.
    pub fn new(cfg: MlpConfig) -> Self {
        MlpTraining { cfg }
    }

    /// Convenience: default config with the given hidden width.
    pub fn with_hidden(hidden: usize) -> Self {
        MlpTraining::new(MlpConfig {
            hidden,
            ..Default::default()
        })
    }

    /// Convenience: default config with hidden width and epochs.
    pub fn with_hidden_epochs(hidden: usize, epochs: usize) -> Self {
        MlpTraining::new(MlpConfig {
            hidden,
            epochs,
            ..Default::default()
        })
    }

    /// The configuration.
    pub fn config(&self) -> &MlpConfig {
        &self.cfg
    }

    /// Runs the real training math (no tracing) and returns the mean
    /// cross-entropy loss per epoch — used by tests to show the victim
    /// actually learns.
    pub fn train_reference(&self) -> Vec<f32> {
        let mut state = MlpState::init(&self.cfg);
        let n = self.cfg.batch * self.cfg.batches_per_epoch;
        let (xs, ys) = synthetic_digits(n, self.cfg.input_dim, self.cfg.classes, self.cfg.seed);
        let mut losses = Vec::new();
        for _ in 0..self.cfg.epochs {
            let mut epoch_loss = 0.0;
            for b in 0..self.cfg.batches_per_epoch {
                let lo = b * self.cfg.batch;
                epoch_loss +=
                    state.sgd_batch(&xs[lo..lo + self.cfg.batch], &ys[lo..lo + self.cfg.batch]);
            }
            losses.push(epoch_loss / self.cfg.batches_per_epoch as f32);
        }
        losses
    }
}

/// Weights of the 2-layer perceptron.
struct MlpState {
    cfg: MlpConfig,
    w1: Vec<f32>, // input_dim × hidden
    w2: Vec<f32>, // hidden × classes
}

impl MlpState {
    fn init(cfg: &MlpConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xABCD);
        let scale1 = (2.0 / cfg.input_dim as f32).sqrt();
        let scale2 = (2.0 / cfg.hidden as f32).sqrt();
        MlpState {
            cfg: cfg.clone(),
            w1: (0..cfg.input_dim * cfg.hidden)
                .map(|_| rng.gen_range(-scale1..scale1))
                .collect(),
            w2: (0..cfg.hidden * cfg.classes)
                .map(|_| rng.gen_range(-scale2..scale2))
                .collect(),
        }
    }

    /// One SGD step over a batch; returns the mean loss.
    fn sgd_batch(&mut self, xs: &[Vec<f32>], ys: &[usize]) -> f32 {
        let (d, h, c) = (self.cfg.input_dim, self.cfg.hidden, self.cfg.classes);
        let bsz = xs.len();
        let mut loss = 0.0f32;
        let mut gw1 = vec![0.0f32; d * h];
        let mut gw2 = vec![0.0f32; h * c];
        for (x, &y) in xs.iter().zip(ys) {
            // Forward.
            let mut hid = vec![0.0f32; h];
            for (j, hj) in hid.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (i, &xi) in x.iter().enumerate() {
                    acc += xi * self.w1[i * h + j];
                }
                *hj = acc.max(0.0); // ReLU
            }
            let mut logits = vec![0.0f32; c];
            for (k, logit) in logits.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (j, &hj) in hid.iter().enumerate() {
                    acc += hj * self.w2[j * c + k];
                }
                *logit = acc;
            }
            let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
            let z: f32 = exps.iter().sum();
            let probs: Vec<f32> = exps.iter().map(|&e| e / z).collect();
            loss -= probs[y].max(1e-12).ln();
            // Backward.
            let dlogits: Vec<f32> = (0..c).map(|k| probs[k] - f32::from(k == y)).collect();
            let mut dhid = vec![0.0f32; h];
            for (j, dh) in dhid.iter_mut().enumerate() {
                for (k, &dl) in dlogits.iter().enumerate() {
                    gw2[j * c + k] += hid[j] * dl;
                    *dh += self.w2[j * c + k] * dl;
                }
                if hid[j] <= 0.0 {
                    *dh = 0.0;
                }
            }
            for i in 0..d {
                if x[i] != 0.0 {
                    for j in 0..h {
                        gw1[i * h + j] += x[i] * dhid[j];
                    }
                }
            }
        }
        let scale = self.cfg.lr / bsz as f32;
        for (w, g) in self.w1.iter_mut().zip(&gw1) {
            *w -= scale * g;
        }
        for (w, g) in self.w2.iter_mut().zip(&gw2) {
            *w -= scale * g;
        }
        loss / bsz as f32
    }
}

impl Workload for MlpTraining {
    fn name(&self) -> &'static str {
        "MLP"
    }

    fn build(&self, ctx: &mut ProcessCtx<'_>) -> SimResult<Vec<TraceOp>> {
        let cfg = &self.cfg;
        let (d, h, c) = (cfg.input_dim, cfg.hidden, cfg.classes);
        let home = ctx.home();
        let n = cfg.batch * cfg.batches_per_epoch;
        let x_buf = ctx.malloc_on(home, (n * d * 8) as u64)?;
        let w1_buf = ctx.malloc_on(home, (d * h * 8) as u64)?;
        let w2_buf = ctx.malloc_on(home, (h * c * 8).max(4096) as u64)?;
        let act_buf = ctx.malloc_on(home, (cfg.batch * h * 8) as u64)?;

        let w1_lines = (d * h).div_ceil(16) as u64;
        let w2_lines = (h * c).div_ceil(16) as u64;
        let x_batch_lines = (cfg.batch * d).div_ceil(16) as u64;
        let act_lines = (cfg.batch * h).div_ceil(16) as u64;

        let mut t = TraceBuilder::new();
        for epoch in 0..cfg.epochs {
            for _batch in 0..cfg.batches_per_epoch {
                // Forward: X·W1 — stream the batch inputs and all of W1.
                for l in 0..x_batch_lines {
                    t.load(x_buf, l * 16);
                }
                for l in 0..w1_lines {
                    t.load(w1_buf, l * 16);
                }
                for l in 0..act_lines {
                    t.store(act_buf, l * 16, 0);
                }
                t.compute((cfg.batch * d * h / 256) as u64);
                // Forward: H·W2.
                for l in 0..act_lines {
                    t.load(act_buf, l * 16);
                }
                for l in 0..w2_lines {
                    t.load(w2_buf, l * 16);
                }
                t.compute((cfg.batch * h * c / 256) as u64);
                // Backward: dW2, dH (re-reads W2, activations).
                for l in 0..w2_lines {
                    t.load(w2_buf, l * 16);
                    t.store(w2_buf, l * 16, 0);
                }
                for l in 0..act_lines {
                    t.load(act_buf, l * 16);
                }
                // Backward: dW1 (re-reads X and updates all of W1).
                for l in 0..x_batch_lines {
                    t.load(x_buf, l * 16);
                }
                for l in 0..w1_lines {
                    t.load(w1_buf, l * 16);
                    t.store(w1_buf, l * 16, 0);
                }
                t.compute((cfg.batch * d * h / 256) as u64);
            }
            if epoch + 1 < cfg.epochs {
                t.compute(cfg.epoch_gap_cycles);
            }
        }
        Ok(t.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpubox_sim::{GpuId, MultiGpuSystem, SystemConfig};

    #[test]
    fn training_loss_decreases() {
        let mlp = MlpTraining::new(MlpConfig {
            epochs: 3,
            hidden: 64,
            ..Default::default()
        });
        let losses = mlp.train_reference();
        assert_eq!(losses.len(), 3);
        assert!(losses[2] < losses[0] * 0.8, "loss should drop: {losses:?}");
    }

    #[test]
    fn trace_volume_scales_with_hidden_width() {
        let count_for = |hidden: usize| {
            let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
            let pid = sys.create_process(GpuId::new(0));
            let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
            let trace = MlpTraining::with_hidden(hidden).build(&mut ctx).unwrap();
            trace
                .iter()
                .filter(|o| matches!(o, TraceOp::Load(_) | TraceOp::Store(..)))
                .count()
        };
        let c64 = count_for(64);
        let c128 = count_for(128);
        let c512 = count_for(512);
        assert!(c128 > c64 && c512 > c128, "{c64} {c128} {c512}");
        assert!(c512 > c64 * 4, "width-512 traffic should dwarf width-64");
    }

    #[test]
    fn epoch_gap_present_between_epochs() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let cfg = MlpConfig {
            epochs: 2,
            hidden: 64,
            ..Default::default()
        };
        let gap = cfg.epoch_gap_cycles;
        let trace = MlpTraining::new(cfg).build(&mut ctx).unwrap();
        let has_gap = trace
            .iter()
            .any(|o| matches!(o, TraceOp::Compute(c) if *c >= gap));
        assert!(has_gap, "two-epoch run must contain the inter-epoch gap");
    }
}
