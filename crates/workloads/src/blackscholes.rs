//! `BlackScholes` — European option pricing over five input arrays.
//!
//! Signature: five parallel streaming input bands and two output bands,
//! with heavy per-element special-function compute (the slowest per-line
//! cadence of the suite).

use crate::data::uniform_vec;
use crate::trace::{TraceBuilder, TraceOp};
use crate::Workload;
use gpubox_sim::{ProcessCtx, SimResult};

/// Black–Scholes pricing of `n` options.
#[derive(Debug, Clone)]
pub struct BlackScholes {
    n: usize,
    seed: u64,
}

impl BlackScholes {
    /// Creates a run over `n` options.
    pub fn new(n: usize) -> Self {
        BlackScholes { n, seed: 31 }
    }

    /// Sets the data seed (builder-style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Standard normal CDF via the Abramowitz–Stegun polynomial (what the
    /// CUDA sample uses).
    fn cnd(d: f64) -> f64 {
        const A1: f64 = 0.319_381_530;
        const A2: f64 = -0.356_563_782;
        const A3: f64 = 1.781_477_937;
        const A4: f64 = -1.821_255_978;
        const A5: f64 = 1.330_274_429;
        let k = 1.0 / (1.0 + 0.231_641_9 * d.abs());
        let poly = k * (A1 + k * (A2 + k * (A3 + k * (A4 + k * A5))));
        let cnd = (-0.5 * d * d).exp() / (2.0 * std::f64::consts::PI).sqrt() * poly;
        if d > 0.0 {
            1.0 - cnd
        } else {
            cnd
        }
    }

    /// Prices one option: returns (call, put).
    pub fn price(s: f64, k: f64, t: f64, r: f64, v: f64) -> (f64, f64) {
        let sqrt_t = t.sqrt();
        let d1 = ((s / k).ln() + (r + 0.5 * v * v) * t) / (v * sqrt_t);
        let d2 = d1 - v * sqrt_t;
        let cnd_d1 = Self::cnd(d1);
        let cnd_d2 = Self::cnd(d2);
        let exp_rt = (-r * t).exp();
        let call = s * cnd_d1 - k * exp_rt * cnd_d2;
        let put = k * exp_rt * (1.0 - cnd_d2) - s * (1.0 - cnd_d1);
        (call, put)
    }
}

impl Default for BlackScholes {
    fn default() -> Self {
        BlackScholes::new(20 * 1024)
    }
}

impl Workload for BlackScholes {
    fn name(&self) -> &'static str {
        "BS"
    }

    fn build(&self, ctx: &mut ProcessCtx<'_>) -> SimResult<Vec<TraceOp>> {
        let home = ctx.home();
        let bytes = (self.n * 8) as u64;
        let s_buf = ctx.malloc_on(home, bytes)?;
        let k_buf = ctx.malloc_on(home, bytes)?;
        let t_buf = ctx.malloc_on(home, bytes)?;
        let call_buf = ctx.malloc_on(home, bytes)?;
        let put_buf = ctx.malloc_on(home, bytes)?;
        let s = uniform_vec(self.n, 5.0, 30.0, self.seed);
        let k = uniform_vec(self.n, 1.0, 100.0, self.seed + 1);
        let tm = uniform_vec(self.n, 0.25, 10.0, self.seed + 2);
        ctx.write_words(s_buf, &s.iter().map(|v| v.to_bits()).collect::<Vec<_>>())?;
        ctx.write_words(k_buf, &k.iter().map(|v| v.to_bits()).collect::<Vec<_>>())?;
        ctx.write_words(t_buf, &tm.iter().map(|v| v.to_bits()).collect::<Vec<_>>())?;

        const RISK_FREE: f64 = 0.02;
        const VOLATILITY: f64 = 0.30;
        let mut t = TraceBuilder::new();
        for i in 0..self.n as u64 {
            t.load(s_buf, i);
            t.load(k_buf, i);
            t.load(t_buf, i);
            let (call, put) = Self::price(
                s[i as usize],
                k[i as usize],
                tm[i as usize],
                RISK_FREE,
                VOLATILITY,
            );
            // Heavy SFU work (exp/ln/sqrt) dominates this kernel.
            t.compute(24);
            t.store(call_buf, i, call.to_bits());
            t.store(put_buf, i, put.to_bits());
        }
        Ok(t.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpubox_sim::{GpuId, MultiGpuSystem, SystemConfig};

    #[test]
    fn pricing_satisfies_put_call_parity() {
        let (s, k, t, r, v) = (20.0, 25.0, 1.0, 0.02, 0.3);
        let (call, put) = BlackScholes::price(s, k, t, r, v);
        // call - put = S - K e^{-rT}
        let lhs = call - put;
        let rhs = s - k * (-r * t).exp();
        assert!((lhs - rhs).abs() < 1e-9, "parity violated: {lhs} vs {rhs}");
        assert!(call > 0.0 && put > 0.0);
    }

    #[test]
    fn compute_heavy_trace() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let trace = BlackScholes::new(128).build(&mut ctx).unwrap();
        let compute: u64 = trace
            .iter()
            .filter_map(|o| match o {
                TraceOp::Compute(c) => Some(*c),
                _ => None,
            })
            .sum();
        assert!(compute >= 128 * 24);
    }
}
