//! Property-based tests for the victim workloads' numerics and traces.

use gpubox_sim::{GpuId, MultiGpuSystem, ProcessCtx, SystemConfig};
use gpubox_workloads::blackscholes::BlackScholes;
use gpubox_workloads::quasirandom::QuasiRandom;
use gpubox_workloads::walsh::WalshTransform;
use gpubox_workloads::TraceOp;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Put–call parity holds for any sane option parameters.
    #[test]
    fn black_scholes_put_call_parity(
        s in 1.0f64..100.0,
        k in 1.0f64..100.0,
        t in 0.05f64..10.0,
        r in 0.0f64..0.1,
        v in 0.05f64..0.9,
    ) {
        let (call, put) = BlackScholes::price(s, k, t, r, v);
        let lhs = call - put;
        let rhs = s - k * (-r * t).exp();
        prop_assert!((lhs - rhs).abs() < 1e-6, "parity violated: {} vs {}", lhs, rhs);
        prop_assert!(call >= -1e-9 && put >= -1e-9);
    }

    /// Call value is monotone non-decreasing in the spot price.
    #[test]
    fn black_scholes_call_monotone_in_spot(
        k in 10.0f64..50.0,
        t in 0.25f64..5.0,
    ) {
        let mut prev = f64::NEG_INFINITY;
        for i in 1..20 {
            let s = i as f64 * 5.0;
            let (call, _) = BlackScholes::price(s, k, t, 0.02, 0.3);
            prop_assert!(call >= prev - 1e-9, "call not monotone at s={}", s);
            prev = call;
        }
    }

    /// The Walsh–Hadamard transform is an involution up to scaling, for
    /// any input values.
    #[test]
    fn walsh_involution(
        log_n in 2u32..8,
        seed_vals in prop::collection::vec(-10.0f64..10.0, 4..256),
    ) {
        let n = 1usize << log_n;
        let mut data: Vec<f64> = (0..n)
            .map(|i| seed_vals[i % seed_vals.len()])
            .collect();
        let orig = data.clone();
        WalshTransform::transform(&mut data);
        WalshTransform::transform(&mut data);
        for (a, b) in data.iter().zip(&orig) {
            prop_assert!((a / n as f64 - b).abs() < 1e-7);
        }
    }

    /// The Walsh transform preserves energy (Parseval, scaled by n).
    #[test]
    fn walsh_parseval(vals in prop::collection::vec(-5.0f64..5.0, 16..64)) {
        let n = vals.len().next_power_of_two() / 2;
        prop_assume!(n >= 16);
        let mut data: Vec<f64> = vals[..n].to_vec();
        let energy_in: f64 = data.iter().map(|v| v * v).sum();
        WalshTransform::transform(&mut data);
        let energy_out: f64 = data.iter().map(|v| v * v).sum();
        prop_assert!((energy_out - n as f64 * energy_in).abs() < 1e-6 * (1.0 + energy_out));
    }

    /// Quasirandom outputs stay in the unit interval and are distinct for
    /// distinct indices (no early cycle).
    #[test]
    fn quasirandom_unit_interval(dim in 0usize..8, start in 0u32..1000) {
        let dirs = quasirandom_dirs(dim);
        let mut seen = std::collections::HashSet::new();
        for i in start..start + 64 {
            let v = QuasiRandom::value(&dirs, i);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(seen.insert(v.to_bits()), "cycle at i={}", i);
        }
    }

    /// Every workload's trace only touches memory it allocated.
    #[test]
    fn traces_stay_in_bounds(which in 0usize..6) {
        let suite = gpubox_workloads::standard_suite();
        let w = &suite[which];
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
        let pid = sys.create_process(GpuId::new(0));
        let trace = {
            let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
            w.build(&mut ctx).unwrap()
        };
        for op in &trace {
            let va = match op {
                TraceOp::Load(va) => *va,
                TraceOp::Store(va, _) => *va,
                TraceOp::Compute(_) => continue,
            };
            // Translation succeeds iff the address belongs to an
            // allocation of this process.
            prop_assert!(
                sys.oracle_translate(pid, va).is_ok(),
                "{} touched unmapped {va}", w.name()
            );
        }
    }
}

/// Rebuilds the direction table the same way the workload does (the
/// function is private; the table construction is deterministic, so probe
/// it through a tiny QuasiRandom build).
fn quasirandom_dirs(dim: usize) -> Vec<u32> {
    // Mirror of QuasiRandom::directions (kept in sync by the
    // `quasirandom_unit_interval` property itself: any drift shows up as
    // out-of-range or cycling values in the real workload's stores too).
    (0..31)
        .map(|i| (1u32 << (31 - i)) ^ ((dim as u32).wrapping_mul(0x9E37_79B9) >> i))
        .collect()
}
