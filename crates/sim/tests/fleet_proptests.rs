//! Property-based tests for the fleet layer: arrival-stream
//! determinism, placement validity and conservation under every
//! policy, and the MetricSet fold identity (fleet fold == single-node
//! concat).

use gpubox_sim::{
    ArrivalConfig, ArrivalStream, ChannelAware, FleetConfig, FleetRunner, MetricSet, Pack,
    PlacementPolicy, RandomPlacement, Spread,
};
use proptest::prelude::*;

/// A small-but-varied fleet config for property runs: 3–8 nodes, short
/// horizon, load from underload to overload.
fn prop_config(nodes: u32, seed: u64, load_pct: u32, threads: usize) -> FleetConfig {
    let mut cfg = FleetConfig::new(nodes, seed);
    cfg.horizon = 300_000;
    cfg.epoch = 25_000;
    cfg.threads = threads;
    cfg = cfg.with_target_utilization(f64::from(load_pct) / 100.0);
    cfg
}

fn policy_by_index(i: u8, seed: u64) -> Box<dyn PlacementPolicy> {
    match i % 4 {
        0 => Box::new(Pack),
        1 => Box::new(Spread),
        2 => Box::new(RandomPlacement::new(seed)),
        _ => Box::new(ChannelAware::new(16)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The arrival stream is a pure function of its config: two
    /// independently built streams agree job for job, and job `i`'s
    /// tenant/duration don't depend on how many jobs were drawn before
    /// it (counter indexing, not sequential state).
    #[test]
    fn arrival_stream_deterministic(
        seed in any::<u64>(),
        mean in 1_000u64..100_000,
        tenants in 1u32..64,
        zipf in 0.0f64..2.0,
    ) {
        let cfg = ArrivalConfig {
            mean_interarrival: mean,
            tenants,
            zipf_exponent: zipf,
            min_duration: 10_000,
            max_duration: 80_000,
            seed,
        };
        let mut a = ArrivalStream::new(cfg.clone());
        let mut b = ArrivalStream::new(cfg);
        let mut last_at = 0u64;
        for _ in 0..300 {
            let ja = a.next_job();
            let jb = b.next_job();
            prop_assert_eq!(ja, jb);
            prop_assert!(ja.at > last_at);
            prop_assert!(ja.duration >= 10_000 && ja.duration <= 80_000);
            prop_assert!(ja.tenant.0 < tenants);
            last_at = ja.at;
        }
    }

    /// Thread-count invariance, end to end: the same fleet stepped by 1
    /// worker and by `threads` workers produces identical metrics and
    /// exposure tables — the arrival stream, placement sequence and
    /// every node's simulation are all deterministic.
    #[test]
    fn fleet_thread_count_invariant(
        seed in any::<u64>(),
        nodes in 3u32..8,
        load_pct in 30u32..140,
        threads in 2usize..6,
        policy_idx in 0u8..4,
    ) {
        let serial = FleetRunner::new(
            prop_config(nodes, seed, load_pct, 1),
            policy_by_index(policy_idx, seed),
        )
        .run();
        let parallel = FleetRunner::new(
            prop_config(nodes, seed, load_pct, threads),
            policy_by_index(policy_idx, seed),
        )
        .run();
        prop_assert_eq!(&serial.metrics, &parallel.metrics);
        prop_assert_eq!(
            serial.exposure_line("row"),
            parallel.exposure_line("row")
        );
    }

    /// Placement validity and conservation under every policy: no slot
    /// is double-booked (the occupancy layer panics on that), no jobs
    /// are lost or invented (placed + queued == arrived, completed <=
    /// placed), and co-residency accounting never exceeds the occupancy
    /// that generated it.
    #[test]
    fn placement_validity_and_conservation(
        seed in any::<u64>(),
        nodes in 3u32..8,
        load_pct in 30u32..160,
        policy_idx in 0u8..4,
    ) {
        let cfg = prop_config(nodes, seed, load_pct, 1);
        let horizon = cfg.horizon;
        let total_slots = cfg.total_slots();
        let r = FleetRunner::new(cfg, policy_by_index(policy_idx, seed)).run();
        let e = &r.exposure;
        prop_assert_eq!(e.placed + e.queued_end, e.arrived, "conservation");
        prop_assert!(e.completed <= e.placed);
        prop_assert!(e.occupied_cycles <= horizon * total_slots,
            "no over-subscription: occupied {} vs capacity {}",
            e.occupied_cycles, horizon * total_slots);
        // Each occupied slot-cycle can co-reside with at most 2 link
        // neighbours on the 4-GPU ring, counted from both sides.
        prop_assert!(e.coresident_cycles <= 2 * e.occupied_cycles);
        prop_assert!(e.l2_exposed_windows <= e.windows);
        prop_assert!(e.link_exposed_windows <= e.l2_exposed_windows,
            "the slower channel needs longer windows");
    }

    /// Fold identity: the fleet's per-node `MetricSet` fold equals the
    /// metric export of the folded `SystemStats` (fold == concat), and
    /// folding the fleet sets in any grouping is associative.
    #[test]
    fn metric_fold_equals_single_node_concat(
        seed in any::<u64>(),
        nodes in 3u32..7,
        load_pct in 40u32..120,
        policy_idx in 0u8..4,
    ) {
        let mut cfg = prop_config(nodes, seed, load_pct, 1);
        cfg.verify_fold = true;
        let r = FleetRunner::new(cfg, policy_by_index(policy_idx, seed)).run();
        prop_assert_eq!(r.fold_matches_total(), Some(true));
        // The exported report folds fleet counters on top of node
        // counters; merging an empty set is the identity on all of it.
        let mut merged = MetricSet::new();
        merged.merge(&r.metrics);
        prop_assert_eq!(&merged, &r.metrics);
    }
}
