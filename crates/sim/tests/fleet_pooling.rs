//! Node-pool reuse contract: a pooled node's second tenant epoch must
//! be **bit-identical** to a freshly built node's first epoch.
//!
//! The fleet runner never reconstructs a node — when its last job
//! departs, the node is recycled in place via `canonicalize_phase`.
//! That only works if the boundary rewinds *everything* a tenant epoch
//! can observe: L2 contents, timing state, stats, the RNG stream — and
//! (the PR-9 fix) the trace ring and the agent-id counter, which
//! previously leaked the first tenant's history into the second epoch.
//! The fingerprint below folds latencies, batch summaries, serialized
//! stats, every trace record, the trace `recorded()` count and a fresh
//! agent-id probe, on a node with the timed fabric, QoS-free transient
//! stalls and tracing all enabled — the full observable surface.

use gpubox_sim::{
    AgentId, FabricConfig, FaultPlan, GpuId, MultiGpuSystem, ProcessId, SystemConfig, VirtAddr,
};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn fnv(h: u64, v: u64) -> u64 {
    let mut h = h;
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

struct PoolNode {
    sys: MultiGpuSystem,
    pid: ProcessId,
    local: VirtAddr,
    remote: VirtAddr,
}

/// Boots a 2-GPU node the way the fleet does — processes and buffers
/// pre-created — with the timed fabric, a transient-stall fault plan
/// and tracing enabled so every resettable subsystem is live.
fn boot(seed: u64) -> PoolNode {
    let cfg = SystemConfig::small_test()
        .noiseless()
        .with_seed(seed)
        .with_fabric(FabricConfig::nvlink_v1());
    let mut sys = MultiGpuSystem::new(cfg);
    let pid = sys.create_process(GpuId::new(0));
    sys.enable_peer_access(pid, GpuId::new(1)).unwrap();
    let local = sys.malloc_on(pid, GpuId::new(0), 64 * 1024).unwrap();
    let remote = sys.malloc_on(pid, GpuId::new(1), 64 * 1024).unwrap();
    sys.enable_tracing(4096);
    sys.set_fault_plan(FaultPlan::none().with_stalls(7, 64, 40))
        .unwrap();
    PoolNode {
        sys,
        pid,
        local,
        remote,
    }
}

/// One deterministic tenant epoch: `batches` mixed local/remote probe
/// batches with a per-epoch address stride, fingerprinting everything a
/// tenant could observe.
fn tenant_epoch(node: &mut PoolNode, batches: u64, stride: u64) -> u64 {
    let agent = node.sys.default_agent(node.pid);
    let mut addrs = Vec::new();
    let mut lats = Vec::new();
    let mut h = FNV_OFFSET;
    let mut now = 0u64;
    for b in 0..batches {
        addrs.clear();
        let base = if b % 4 == 3 { node.remote } else { node.local };
        for k in 0..16u64 {
            addrs.push(base.offset(((b * stride + k * 7) % 512) * 128));
        }
        lats.clear();
        let s = node
            .sys
            .access_batch_into(node.pid, agent, &addrs, now, &mut lats)
            .unwrap();
        now += s.duration + 100;
        h = fnv(h, s.duration);
        h = fnv(h, u64::from(s.hits));
        for &l in &lats {
            h = fnv(h, u64::from(l));
        }
    }
    // Trace stream: contents and lifetime count both matter (a stale
    // ring head shows up here even if the records happen to match).
    h = fnv(h, node.sys.trace().recorded());
    for r in node.sys.trace().records() {
        h = fnv(h, r.cycle);
        h = fnv(h, r.a);
        h = fnv(h, r.b);
        h = fnv(h, u64::from(r.process));
        h = fnv(h, r.kind as u8 as u64);
    }
    // Agent-id counter: a fresh node and a recycled node must hand the
    // engine the same ids.
    let AgentId(probe) = node.sys.new_agent();
    h = fnv(h, u64::from(probe));
    // Full stats surface via the serialized form.
    for b in serde_json::to_string(node.sys.stats()).unwrap().into_bytes() {
        h = fnv(h, u64::from(b));
    }
    h
}

const EPOCH_TAG: u64 = 0xF1EE7;

#[test]
fn pooled_second_epoch_matches_fresh_node() {
    // Fresh node: boot → canonicalize → tenant epoch.
    let mut fresh = boot(1234);
    fresh.sys.canonicalize_phase(EPOCH_TAG);
    let fp_fresh = tenant_epoch(&mut fresh, 50, 31);

    // Pooled node: boot → a *different* first tenant epoch (more
    // batches, different stride, extra agent churn) → recycle →
    // the same second epoch.
    let mut pooled = boot(1234);
    pooled.sys.canonicalize_phase(99);
    let _ = tenant_epoch(&mut pooled, 83, 13);
    let _ = pooled.sys.new_agent();
    pooled.sys.canonicalize_phase(EPOCH_TAG);
    let fp_pooled = tenant_epoch(&mut pooled, 50, 31);

    assert_eq!(
        fp_fresh, fp_pooled,
        "a recycled node's epoch must be bit-identical to a fresh node's"
    );
}

#[test]
fn canonicalize_resets_trace_ring_and_agent_counter() {
    let mut node = boot(77);
    let _ = tenant_epoch(&mut node, 20, 5);
    assert!(
        node.sys.trace().recorded() > 1,
        "epoch must have recorded events"
    );
    node.sys.canonicalize_phase(42);
    // The boundary's own PhaseMark is record zero — exactly the state
    // of a freshly canonicalized node.
    assert_eq!(node.sys.trace().recorded(), 1);
    let records = node.sys.trace().records();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].a, 42, "the surviving record is this PhaseMark");
    assert!(node.sys.tracing_enabled(), "enablement survives recycling");
    let AgentId(first) = node.sys.new_agent();
    let mut fresh = boot(77);
    fresh.sys.canonicalize_phase(42);
    let AgentId(fresh_first) = fresh.sys.new_agent();
    assert_eq!(first, fresh_first, "agent ids restart at the boundary");
}
