//! Observational equivalence of the flat structure-of-arrays [`L2Cache`]
//! against the original per-set `Vec<Option<u64>>` + `SetPolicy` layout.
//!
//! The reference model (`gpubox_sim::cache_reference`) is a faithful copy of the pre-optimisation
//! cache (including its exact RNG consumption: random replacement draws
//! one `gen_range(0..ways)` per eviction, nothing else draws). Every
//! property runs both models over the same random trace from the same
//! RNG seed and requires identical hit/miss/eviction sequences, counters,
//! occupancy and residency — under LRU, tree-PLRU and random replacement.

use gpubox_sim::cache_reference::ReferenceCache;
use gpubox_sim::{CacheConfig, L2Cache, PhysAddr, ReplacementKind, SetIndex};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn small_cfg(replacement: ReplacementKind, ways: u32) -> CacheConfig {
    // 8 sets keeps conflict pressure high so traces evict constantly.
    CacheConfig {
        size_bytes: 8 * 128 * u64::from(ways),
        line_size: 128,
        ways,
        replacement,
    }
}

/// Drives both models over `addrs` and asserts identical observations.
fn assert_equivalent(
    cfg: &CacheConfig,
    addrs: &[u64],
    seed: u64,
) -> Result<(), String> {
    let mut flat = L2Cache::new(cfg);
    let mut reference = ReferenceCache::new(cfg);
    // Two RNGs from the same seed: both models must consume draws
    // identically or the streams diverge and the trace comparison fails.
    let mut rng_flat = ChaCha8Rng::seed_from_u64(seed);
    let mut rng_ref = ChaCha8Rng::seed_from_u64(seed);
    for (i, &a) in addrs.iter().enumerate() {
        let pa = PhysAddr(a);
        let got = flat.access(pa, &mut rng_flat);
        let want = reference.access(pa, &mut rng_ref);
        if got != want {
            return Err(format!("access {i} to {a:#x}: flat {got:?} vs reference {want:?}"));
        }
        if flat.probe_resident(pa) != reference.probe_resident(pa) {
            return Err(format!("residency after access {i} to {a:#x} diverged"));
        }
    }
    // The RNG streams must end in the same state (same number of draws).
    if rng_flat.gen::<u64>() != rng_ref.gen::<u64>() {
        return Err("RNG consumption diverged".into());
    }
    for s in 0..cfg.num_sets() {
        if flat.set_stats(SetIndex(s as u32)) != reference.set_stats(s as usize) {
            return Err(format!("set {s} stats diverged"));
        }
        if flat.set_occupancy(SetIndex(s as u32)) != reference.set_occupancy(s as usize) {
            return Err(format!("set {s} occupancy diverged"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flat LRU == reference LRU, access for access.
    #[test]
    fn lru_equivalent(
        addrs in prop::collection::vec(0u64..(128 * 8 * 64), 1..600),
        seed in 0u64..1000,
    ) {
        let cfg = small_cfg(ReplacementKind::Lru, 16);
        if let Err(e) = assert_equivalent(&cfg, &addrs, seed) {
            return Err(format!("LRU: {e}"));
        }
    }

    /// Flat tree-PLRU == reference tree-PLRU, access for access.
    #[test]
    fn tree_plru_equivalent(
        addrs in prop::collection::vec(0u64..(128 * 8 * 64), 1..600),
        seed in 0u64..1000,
    ) {
        let cfg = small_cfg(ReplacementKind::TreePlru, 8);
        if let Err(e) = assert_equivalent(&cfg, &addrs, seed) {
            return Err(format!("tree-PLRU: {e}"));
        }
    }

    /// Flat random == reference random: identical victims because both
    /// consume the same single `gen_range(0..ways)` per eviction.
    #[test]
    fn random_equivalent(
        addrs in prop::collection::vec(0u64..(128 * 8 * 64), 1..600),
        seed in 0u64..1000,
    ) {
        let cfg = small_cfg(ReplacementKind::Random, 4);
        if let Err(e) = assert_equivalent(&cfg, &addrs, seed) {
            return Err(format!("random: {e}"));
        }
    }

    /// Narrow caches (2-way) stress the eviction path hardest.
    #[test]
    fn lru_two_way_equivalent(
        addrs in prop::collection::vec(0u64..(128 * 8 * 16), 1..400),
        seed in 0u64..1000,
    ) {
        let cfg = small_cfg(ReplacementKind::Lru, 2);
        if let Err(e) = assert_equivalent(&cfg, &addrs, seed) {
            return Err(format!("2-way LRU: {e}"));
        }
    }

    /// Signature collisions: distinct same-set lines share a 7-bit tag
    /// signature whenever their line numbers differ by a multiple of
    /// 128 × num_sets, forcing the flat cache's multi-candidate verify
    /// path (a signature match that fails the full-tag check must not
    /// end the scan). `k` and `k + 128` collide under the 8-set config.
    #[test]
    fn lru_with_signature_collisions_equivalent(
        picks in prop::collection::vec((0u64..8, 0u64..512), 1..600),
        seed in 0u64..1000,
    ) {
        let cfg = small_cfg(ReplacementKind::Lru, 16);
        let span = cfg.line_size * cfg.num_sets();
        let addrs: Vec<u64> = picks
            .iter()
            .map(|&(set, k)| set * cfg.line_size + k * span)
            .collect();
        if let Err(e) = assert_equivalent(&cfg, &addrs, seed) {
            return Err(format!("LRU sig-collision: {e}"));
        }
    }
}
