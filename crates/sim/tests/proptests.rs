//! Property-based tests for the simulator's core invariants.

use gpubox_sim::{
    CacheConfig, GpuId, L2Cache, MultiGpuSystem, PhysAddr, ReplacementKind, SystemConfig, Topology,
    VirtAddr,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// Reference LRU cache model: per-set recency queue of line addresses.
struct RefLru {
    sets: Vec<VecDeque<u64>>,
    ways: usize,
    line: u64,
}

impl RefLru {
    fn new(num_sets: usize, ways: usize, line: u64) -> Self {
        RefLru {
            sets: (0..num_sets).map(|_| VecDeque::new()).collect(),
            ways,
            line,
        }
    }

    /// Returns whether the access hit.
    fn access(&mut self, pa: u64) -> bool {
        let line_addr = pa / self.line;
        let set = (line_addr % self.sets.len() as u64) as usize;
        let q = &mut self.sets[set];
        if let Some(pos) = q.iter().position(|&l| l == line_addr) {
            q.remove(pos);
            q.push_front(line_addr);
            true
        } else {
            q.push_front(line_addr);
            if q.len() > self.ways {
                q.pop_back();
            }
            false
        }
    }
}

/// Decodes an edge set for `n` nodes from a bitmask over the n*(n-1)/2
/// possible undirected edges (canonical order).
fn edges_from_mask(n: u8, mask: u32) -> Vec<(u8, u8)> {
    let mut edges = Vec::new();
    let mut k = 0u32;
    for i in 0..n {
        for j in (i + 1)..n {
            if mask & (1 << (k % 28)) != 0 {
                edges.push((i, j));
            }
            k += 1;
        }
    }
    edges
}

/// Independent all-pairs BFS over an edge list (the reference the
/// topology's precomputed paths are checked against).
fn reference_bfs(n: u8, edges: &[(u8, u8)]) -> Vec<Vec<Option<u32>>> {
    let nn = n as usize;
    let mut adj = vec![vec![false; nn]; nn];
    for &(a, b) in edges {
        adj[a as usize][b as usize] = true;
        adj[b as usize][a as usize] = true;
    }
    let mut dist = vec![vec![None; nn]; nn];
    for (s, row) in dist.iter_mut().enumerate() {
        row[s] = Some(0u32);
        let mut q = VecDeque::from([s]);
        while let Some(u) = q.pop_front() {
            for v in 0..nn {
                if adj[u][v] && row[v].is_none() {
                    row[v] = Some(row[u].unwrap() + 1);
                    q.push_back(v);
                }
            }
        }
    }
    dist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The L2 model must agree access-for-access with a reference LRU.
    #[test]
    fn cache_matches_reference_lru(
        addrs in prop::collection::vec(0u64..(128 * 8 * 64), 1..400)
    ) {
        // 8 sets x 4 ways of 128 B lines.
        let cfg = CacheConfig {
            size_bytes: 8 * 128 * 4,
            line_size: 128,
            ways: 4,
            replacement: ReplacementKind::Lru,
        };
        let mut dut = L2Cache::new(&cfg);
        let num_sets = cfg.num_sets() as usize;
        let mut reference = RefLru::new(num_sets, 4, 128);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for &a in &addrs {
            let hit = dut.access(PhysAddr(a), &mut rng).is_hit();
            let ref_hit = reference.access(a);
            prop_assert_eq!(hit, ref_hit, "divergence at address {}", a);
        }
    }

    /// Occupancy of a set never exceeds the associativity, and statistics
    /// add up.
    #[test]
    fn cache_occupancy_and_stats_invariants(
        addrs in prop::collection::vec(0u64..(1 << 20), 1..300)
    ) {
        let cfg = CacheConfig::p100_l2();
        let mut c = L2Cache::new(&cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for &a in &addrs {
            c.access(PhysAddr(a), &mut rng);
        }
        let (h, m) = c.totals();
        prop_assert_eq!(h + m, addrs.len() as u64);
        for s in 0..cfg.num_sets() {
            let occ = c.set_occupancy(gpubox_sim::SetIndex(s as u32));
            prop_assert!(occ <= cfg.ways as usize);
        }
    }

    /// Routing is symmetric and bounded by the cube-mesh diameter (2).
    #[test]
    fn dgx1_routing_symmetric_and_bounded(a in 0u8..8, b in 0u8..8) {
        let t = Topology::dgx1();
        let (ga, gb) = (GpuId::new(a), GpuId::new(b));
        prop_assert_eq!(t.nvlink_hops(ga, gb), t.nvlink_hops(gb, ga));
        if a != b {
            let h = t.nvlink_hops(ga, gb).expect("connected");
            prop_assert!((1..=2).contains(&h), "hops {} out of range", h);
        }
    }

    /// On arbitrary link graphs, every resolved path is a valid walk of
    /// the right length (= an independently recomputed BFS distance),
    /// the reverse direction reuses the same links reversed, and pairs
    /// with no NVLink path fall back to PCIe with an empty path.
    #[test]
    fn link_paths_shortest_symmetric_walks(n in 2u8..=8, mask in 0u32..(1 << 28)) {
        let edges = edges_from_mask(n, mask);
        let t = Topology::from_edges(n, &edges);
        let dist = reference_bfs(n, &edges);
        for a in 0..n {
            for b in 0..n {
                let (ga, gb) = (GpuId::new(a), GpuId::new(b));
                let p = t.path(ga, gb);
                match dist[a as usize][b as usize] {
                    Some(d) if a != b => {
                        prop_assert_eq!(t.nvlink_hops(ga, gb), Some(d));
                        prop_assert_eq!(p.len() as u32, d, "path not shortest");
                        prop_assert_eq!(t.route(ga, gb).kind, gpubox_sim::LinkKind::NvLink);
                        // Valid walk a -> b over existing links.
                        let mut cur = ga;
                        for &l in p {
                            let (x, y) = t.link_endpoints(l).expect("link exists");
                            prop_assert!(cur == x || cur == y, "walk broke at {}", cur);
                            cur = if cur == x { y } else { x };
                        }
                        prop_assert_eq!(cur, gb, "walk must end at the destination");
                        // Symmetry: same links, reversed order.
                        let mut rev: Vec<_> = t.path(gb, ga).to_vec();
                        rev.reverse();
                        prop_assert_eq!(p, &rev[..]);
                    }
                    Some(_) => {
                        // a == b: local route, no links.
                        prop_assert!(p.is_empty());
                        prop_assert_eq!(t.route(ga, gb).kind, gpubox_sim::LinkKind::Local);
                    }
                    None => {
                        prop_assert!(p.is_empty());
                        prop_assert_eq!(t.route(ga, gb).kind, gpubox_sim::LinkKind::Pcie);
                        prop_assert_eq!(t.nvlink_hops(ga, gb), None);
                    }
                }
            }
        }
    }

    /// The indirect-peer policy knob decides what happens on pairs
    /// without a direct link: refused when off (the DGX-1 runtime
    /// behaviour), granted and routed (multi-hop NVLink or PCIe
    /// fallback) when on — and the access's oracle reports the
    /// route the topology resolved.
    #[test]
    fn peer_knob_governs_indirect_routes(n in 2u8..=6, mask in 0u32..(1 << 15), seed in 0u64..500) {
        let edges = edges_from_mask(n, mask);
        let t = Topology::from_edges(n, &edges);
        // Find an indirect pair (no direct link), if the graph has one.
        let pair = (0..n)
            .flat_map(|a| (0..n).map(move |b| (a, b)))
            .find(|&(a, b)| a != b && !t.direct_nvlink(GpuId::new(a), GpuId::new(b)));
        if let Some((a, b)) = pair {
            let mut cfg = SystemConfig::small_test().with_seed(seed).noiseless();
            cfg.num_gpus = n;
            cfg.topology = Topology::from_edges(n, &edges);

            // Knob off: the runtime refuses the pair.
            let mut sys = MultiGpuSystem::new(cfg.clone());
            let p = sys.create_process(GpuId::new(a));
            prop_assert_eq!(
                sys.enable_peer_access(p, GpuId::new(b)),
                Err(gpubox_sim::SimError::PeerAccessUnavailable {
                    from: GpuId::new(a),
                    to: GpuId::new(b),
                })
            );

            // Knob on: granted, and accesses take the resolved route.
            cfg.allow_indirect_peer = true;
            let mut sys = MultiGpuSystem::new(cfg);
            let p = sys.create_process(GpuId::new(a));
            sys.enable_peer_access(p, GpuId::new(b)).unwrap();
            let buf = sys.malloc_on(p, GpuId::new(b), 4096).unwrap();
            let acc = sys.access(p, sys.default_agent(p), buf, 0, None).unwrap();
            let expected = sys.config().topology.route(GpuId::new(a), GpuId::new(b));
            prop_assert_eq!(acc.oracle.route, expected);
        }
    }

    /// Device memory is read-your-writes through the timed access path.
    #[test]
    fn read_your_writes(
        writes in prop::collection::vec((0u64..512, 0u64..u64::MAX), 1..40)
    ) {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
        let pid = sys.create_process(GpuId::new(0));
        let agent = sys.default_agent(pid);
        let buf = sys.malloc_on(pid, GpuId::new(0), 4096).unwrap();
        let mut model = std::collections::HashMap::new();
        let mut t = 0u64;
        for &(word, val) in &writes {
            t += 500;
            sys.access(pid, agent, buf.offset(word * 8), t, Some(val)).unwrap();
            model.insert(word, val);
        }
        for (&word, &val) in &model {
            t += 500;
            let acc = sys.access(pid, agent, buf.offset(word * 8), t, None).unwrap();
            prop_assert_eq!(acc.value, val);
        }
    }

    /// Latency classes are always separable: a warm re-access is strictly
    /// faster than the cold access that filled it (quiet system).
    #[test]
    fn cold_slower_than_warm(seed in 0u64..5000) {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().with_seed(seed));
        let pid = sys.create_process(GpuId::new(0));
        let agent = sys.default_agent(pid);
        let buf = sys.malloc_on(pid, GpuId::new(0), 4096).unwrap();
        let cold = sys.access(pid, agent, buf, 0, None).unwrap();
        let warm = sys.access(pid, agent, buf, 2000, None).unwrap();
        prop_assert!(cold.latency > warm.latency,
            "cold {} vs warm {}", cold.latency, warm.latency);
    }

    /// Page placement is a bijection: distinct virtual pages never share a
    /// physical frame.
    #[test]
    fn frame_assignment_is_injective(pages in 1u64..64, seed in 0u64..1000) {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().with_seed(seed));
        let pid = sys.create_process(GpuId::new(0));
        let buf = sys.malloc_on(pid, GpuId::new(0), pages * 4096).unwrap();
        let mut frames = std::collections::HashSet::new();
        for p in 0..pages {
            let (g, pa) = sys.oracle_translate(pid, buf.offset(p * 4096)).unwrap();
            prop_assert_eq!(g, GpuId::new(0));
            prop_assert!(frames.insert(pa.raw() / 4096), "duplicate frame");
        }
    }

    /// The virtual address space never hands out overlapping regions.
    #[test]
    fn allocations_never_overlap(sizes in prop::collection::vec(1u64..40_000, 1..20)) {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
        let pid = sys.create_process(GpuId::new(0));
        let mut regions: Vec<(u64, u64)> = Vec::new();
        for &sz in &sizes {
            let base = sys.malloc_on(pid, GpuId::new(0), sz).unwrap();
            let end = base.raw() + sz;
            for &(b, e) in &regions {
                prop_assert!(end <= b || base.raw() >= e, "overlap");
            }
            regions.push((base.raw(), end));
        }
    }

    /// Batch accesses report one latency per line and a duration at least
    /// the maximum line latency.
    #[test]
    fn batch_duration_bounds(n in 1usize..32) {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
        let pid = sys.create_process(GpuId::new(0));
        let agent = sys.default_agent(pid);
        let buf = sys.malloc_on(pid, GpuId::new(0), 64 * 1024).unwrap();
        let vas: Vec<VirtAddr> = (0..n as u64).map(|i| buf.offset(i * 128)).collect();
        let b = sys.access_batch(pid, agent, &vas, 0).unwrap();
        prop_assert_eq!(b.latencies.len(), n);
        let max = *b.latencies.iter().max().unwrap() as u64;
        let sum: u64 = b.latencies.iter().map(|&l| u64::from(l)).sum();
        prop_assert!(b.duration >= max);
        prop_assert!(n == 1 || b.duration <= sum, "no overlap at all?");
    }

    /// Fault-aware rerouting on arbitrary link graphs with arbitrary
    /// failed-link subsets: the recomputed paths of
    /// [`Topology::excluding_links`] are valid walks that never touch a
    /// failed link, shortest among the *surviving* links (reference BFS
    /// over the surviving graph), and the PCIe fallback engages exactly
    /// when the survivors leave a pair partitioned.
    #[test]
    fn fault_rerouting_matches_surviving_graph(
        n in 2u8..=8,
        mask in 0u32..(1 << 28),
        fail_mask in 0u32..(1 << 16),
    ) {
        use gpubox_sim::LinkId;
        let edges = edges_from_mask(n, mask);
        let t = Topology::from_edges(n, &edges);
        let failed: Vec<LinkId> = (0..t.num_links())
            .filter(|&l| fail_mask & (1 << (l % 16)) != 0)
            .map(|l| LinkId(l as u32))
            .collect();
        let survived = t.excluding_links(&failed);
        // Link ids stay stable across the recomputation.
        prop_assert_eq!(survived.num_links(), t.num_links());
        for l in 0..t.num_links() {
            let l = LinkId(l as u32);
            prop_assert_eq!(survived.link_endpoints(l), t.link_endpoints(l));
        }
        let surviving_edges: Vec<(u8, u8)> = (0..t.num_links())
            .map(|l| LinkId(l as u32))
            .filter(|l| !failed.contains(l))
            .map(|l| {
                let (a, b) = t.link_endpoints(l).expect("link exists");
                (a.index() as u8, b.index() as u8)
            })
            .collect();
        let dist = reference_bfs(n, &surviving_edges);
        for a in 0..n {
            for b in 0..n {
                let (ga, gb) = (GpuId::new(a), GpuId::new(b));
                let p = survived.path(ga, gb);
                match dist[a as usize][b as usize] {
                    Some(d) if a != b => {
                        prop_assert_eq!(p.len() as u32, d,
                            "path not shortest among survivors");
                        prop_assert_eq!(
                            survived.route(ga, gb).kind,
                            gpubox_sim::LinkKind::NvLink
                        );
                        // Valid walk a -> b that avoids every failed link.
                        let mut cur = ga;
                        for &l in p {
                            prop_assert!(!failed.contains(&l), "walk uses a failed link");
                            let (x, y) = survived.link_endpoints(l).expect("link exists");
                            prop_assert!(cur == x || cur == y, "walk broke at {}", cur);
                            cur = if cur == x { y } else { x };
                        }
                        prop_assert_eq!(cur, gb, "walk must end at the destination");
                    }
                    Some(_) => {
                        prop_assert!(p.is_empty());
                        prop_assert_eq!(
                            survived.route(ga, gb).kind,
                            gpubox_sim::LinkKind::Local
                        );
                    }
                    None => {
                        // Partitioned: the PCIe fallback, and only then.
                        prop_assert!(p.is_empty());
                        prop_assert_eq!(
                            survived.route(ga, gb).kind,
                            gpubox_sim::LinkKind::Pcie
                        );
                    }
                }
            }
        }
    }

    /// Valiant intermediates on arbitrary link graphs: whenever one is
    /// returned it names a GPU distinct from both endpoints whose two
    /// canonical segments are valid link walks ending at the
    /// destination; the choice is a pure function of
    /// `(seed, src, dst, counter)`; and `None` is returned exactly when
    /// the pair is local/unrouted or no candidate exists.
    #[test]
    fn valiant_intermediates_are_valid_walks(
        n in 2u8..=8,
        mask in 0u32..(1 << 28),
        seed in 0u64..1000,
        counter in 0u64..64,
    ) {
        let edges = edges_from_mask(n, mask);
        let t = Topology::from_edges(n, &edges);
        let dist = reference_bfs(n, &edges);
        for a in 0..n {
            for b in 0..n {
                let (ga, gb) = (GpuId::new(a), GpuId::new(b));
                let got = t.valiant_intermediate(ga, gb, seed, counter);
                prop_assert_eq!(got, t.valiant_intermediate(ga, gb, seed, counter),
                    "pick must be deterministic");
                let has_candidate = a != b
                    && dist[a as usize][b as usize].is_some()
                    && (0..n).any(|w| {
                        w != a && w != b
                            && dist[a as usize][w as usize].is_some()
                            && dist[w as usize][b as usize].is_some()
                    });
                match got {
                    None => prop_assert!(!has_candidate, "candidate exists but none picked"),
                    Some(w) => {
                        prop_assert!(has_candidate);
                        prop_assert!(w != ga && w != gb);
                        // Both segments are valid walks: src -> w -> dst.
                        let mut cur = ga;
                        for &l in t.path(ga, w).iter().chain(t.path(w, gb)) {
                            let (x, y) = t.link_endpoints(l).expect("link exists");
                            prop_assert!(cur == x || cur == y, "walk broke at {}", cur);
                            cur = if cur == x { y } else { x };
                        }
                        prop_assert_eq!(cur, gb, "detour must reach the destination");
                    }
                }
            }
        }
    }

    /// Valiant picks spread: with at least two candidates, a short
    /// counter window already uses more than one intermediate (the
    /// load-spreading property the defence relies on).
    #[test]
    fn valiant_counter_stream_spreads_load(seed in 0u64..1000) {
        let t = Topology::dgx1();
        for (a, b) in [(0u8, 5u8), (1, 6), (0, 1), (4, 7)] {
            let picks: std::collections::HashSet<_> = (0..32)
                .filter_map(|c| t.valiant_intermediate(GpuId::new(a), GpuId::new(b), seed, c))
                .collect();
            prop_assert!(picks.len() >= 2, "({},{}) stuck on {:?}", a, b, picks);
        }
    }

    /// Token-bucket conservation: every offered byte is counted exactly
    /// once as passed or shaped (`passed + shaped == offered`), link
    /// byte counters are QoS-invariant, and the bucket never delays an
    /// in-budget line.
    #[test]
    fn token_bucket_conserves_bytes(
        rate in 1u64..4096,
        burst in 0u64..16_384,
        lines in prop::collection::vec((0u64..50_000, 1u64..2048), 1..64),
        seed in 0u64..500,
    ) {
        use gpubox_sim::{Fabric, FabricConfig, QosConfig, SystemStats, ProcessId};
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let cfg = FabricConfig::nvlink_v1()
            .with_qos(QosConfig::off().with_rate_limit(rate, burst));
        let mut fabric = Fabric::new(&topo, &cfg);
        let mut stats = SystemStats::new(3, topo.num_links());
        for _ in 0..3 {
            fabric.register_process();
        }
        // The engine hands the fabric non-decreasing arrival times.
        let mut sorted = lines.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut offered = 0u64;
        for (i, &(at, bytes)) in sorted.iter().enumerate() {
            let pid = ProcessId(((seed as usize + i) % 3) as u32);
            let (src, dst) = if i % 2 == 0 { (0u8, 2u8) } else { (2, 0) };
            let hops = topo.path(GpuId::new(src), GpuId::new(dst)).len() as u64;
            let extra = fabric.traverse(
                pid,
                topo.path(GpuId::new(src), GpuId::new(dst)),
                topo.path_dirs(GpuId::new(src), GpuId::new(dst)),
                at,
                bytes,
                &mut stats,
                &mut gpubox_sim::TraceSink::disabled(),
            );
            prop_assert!(extra >= hops * 10, "at least the service cycles");
            offered += bytes * hops; // the bucket is charged once per hop
        }
        let q = stats.qos();
        prop_assert_eq!(q.passed_bytes + q.shaped_bytes, offered,
            "shaped + passed must equal offered");
        // Link byte counters are independent of QoS bookkeeping.
        prop_assert_eq!(stats.link_total().bytes, offered);
    }

    /// Token-bucket delays are monotone in the over-budget amount: with
    /// an empty bucket, a larger line waits at least as long (measured
    /// on an otherwise idle link, so the returned extra is service +
    /// token wait only).
    #[test]
    fn token_bucket_delay_monotone_in_overbudget(
        rate in 1u64..2048,
        burst in 0u64..4096,
        a in 1u64..4096,
        b in 1u64..4096,
    ) {
        use gpubox_sim::{Fabric, FabricConfig, QosConfig, SystemStats, ProcessId};
        let topo = Topology::from_edges(2, &[(0, 1)]);
        let delay = |bytes: u64| {
            let cfg = FabricConfig::nvlink_v1()
                .with_qos(QosConfig::off().with_rate_limit(rate, burst));
            let mut fabric = Fabric::new(&topo, &cfg);
            fabric.register_process();
            let mut stats = SystemStats::new(2, topo.num_links());
            // Drain the initial burst allowance first, far in the past
            // relative to nothing (t = 0), with a burst-sized line.
            if burst > 0 {
                fabric.traverse(
                    ProcessId(0),
                    topo.path(GpuId::new(0), GpuId::new(1)),
                    topo.path_dirs(GpuId::new(0), GpuId::new(1)),
                    0,
                    burst,
                    &mut stats,
                    &mut gpubox_sim::TraceSink::disabled(),
                );
            }
            // Now the bucket is empty at t = 0; the measured line's
            // delivery horizon is purely its refill wait.
            let before = stats.qos().throttle_delay_cycles;
            fabric.traverse(
                ProcessId(0),
                topo.path(GpuId::new(0), GpuId::new(1)),
                topo.path_dirs(GpuId::new(0), GpuId::new(1)),
                0,
                bytes,
                &mut stats,
                &mut gpubox_sim::TraceSink::disabled(),
            );
            stats.qos().throttle_delay_cycles - before
        };
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(delay(lo) <= delay(hi),
            "delay must grow with the over-budget amount: {} vs {}", delay(lo), delay(hi));
    }
}

/// Builds a [`gpubox_sim::MetricSet`] from an op list: each op hits one
/// of four fixed metric names, either as a counter bump or a histogram
/// observation.
fn metric_set_from(ops: &[(u8, bool, u64)]) -> gpubox_sim::MetricSet {
    const KEYS: [&str; 4] = ["gpu.hits", "link.bytes", "qos.delay", "fault.stalls"];
    let mut m = gpubox_sim::MetricSet::new();
    for &(k, hist, v) in ops {
        let key = KEYS[(k % 4) as usize];
        if hist {
            m.observe(key, v);
        } else {
            m.add(key, v);
        }
    }
    m
}

/// One metric op: (key selector, histogram?, value).
fn metric_ops() -> impl Strategy<Value = Vec<(u8, bool, u64)>> {
    prop::collection::vec((0u8..4, any::<bool>(), any::<u64>()), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fleet aggregation must not care how per-node metric sets are
    /// grouped: `merge` is associative.
    #[test]
    fn metric_merge_is_associative(a in metric_ops(), b in metric_ops(), c in metric_ops()) {
        let (ma, mb, mc) = (metric_set_from(&a), metric_set_from(&b), metric_set_from(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ma.clone();
        left.merge(&mb);
        left.merge(&mc);
        // a ⊕ (b ⊕ c)
        let mut bc = mb.clone();
        bc.merge(&mc);
        let mut right = ma.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// ...nor in which order nodes report: `merge` is commutative.
    #[test]
    fn metric_merge_is_commutative(a in metric_ops(), b in metric_ops()) {
        let (ma, mb) = (metric_set_from(&a), metric_set_from(&b));
        let mut ab = ma.clone();
        ab.merge(&mb);
        let mut ba = mb.clone();
        ba.merge(&ma);
        prop_assert_eq!(ab, ba);
    }

    /// A `reset()` set is the merge identity — merging it in either
    /// direction changes nothing, and it equals a fresh set.
    #[test]
    fn metric_reset_is_merge_identity(a in metric_ops(), b in metric_ops()) {
        let ma = metric_set_from(&a);
        let mut zero = metric_set_from(&b);
        zero.reset();
        prop_assert_eq!(&zero, &gpubox_sim::MetricSet::new(), "reset == fresh");
        let mut left = ma.clone();
        left.merge(&zero);
        prop_assert_eq!(&left, &ma, "a ⊕ 0 == a");
        let mut right = zero.clone();
        right.merge(&ma);
        prop_assert_eq!(&right, &ma, "0 ⊕ a == a");
    }

    /// Merging partial histograms must yield exactly the histogram (and
    /// so exactly the percentiles) of a single pass over the
    /// concatenated samples — the property that makes sharded collection
    /// lossless.
    #[test]
    fn histogram_merge_equals_single_pass(
        xs in prop::collection::vec(any::<u64>(), 0..200),
        ys in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let mut hx = gpubox_sim::LogHistogram::new();
        for &v in &xs { hx.record(v); }
        let mut hy = gpubox_sim::LogHistogram::new();
        for &v in &ys { hy.record(v); }
        hx.merge(&hy);

        let mut concat = gpubox_sim::LogHistogram::new();
        for &v in xs.iter().chain(ys.iter()) { concat.record(v); }

        prop_assert_eq!(&hx, &concat);
        prop_assert_eq!(hx.p50(), concat.p50());
        prop_assert_eq!(hx.p95(), concat.p95());
        prop_assert_eq!(hx.p99(), concat.p99());
    }

    /// First moments survive the merge exactly like percentiles do:
    /// merged `count`/`sum`/`mean` equal the single-pass concatenation
    /// values (the detectors consume means, not just percentiles).
    /// Samples are bounded so `sum` cannot saturate — saturation is
    /// deliberately lossy and would make the law vacuous.
    #[test]
    fn histogram_moments_merge_like_single_pass(
        xs in prop::collection::vec(0u64..1_000_000_000, 0..200),
        ys in prop::collection::vec(0u64..1_000_000_000, 0..200),
    ) {
        let mut hx = gpubox_sim::LogHistogram::new();
        for &v in &xs { hx.record(v); }
        let mut hy = gpubox_sim::LogHistogram::new();
        for &v in &ys { hy.record(v); }
        hx.merge(&hy);

        let mut concat = gpubox_sim::LogHistogram::new();
        for &v in xs.iter().chain(ys.iter()) { concat.record(v); }

        prop_assert_eq!(hx.count(), concat.count());
        prop_assert_eq!(hx.count(), (xs.len() + ys.len()) as u64);
        prop_assert_eq!(hx.sum(), concat.sum());
        let exact: u64 = xs.iter().chain(ys.iter()).sum();
        prop_assert_eq!(hx.sum(), exact);
        prop_assert_eq!(hx.mean(), concat.mean());
        if hx.count() > 0 {
            prop_assert_eq!(hx.mean(), exact / hx.count());
        } else {
            prop_assert_eq!(hx.mean(), 0);
        }
    }
}
