//! Edge-case integration tests for the simulator's less-travelled paths:
//! PCIe fallback, multi-hop NVLink, out-of-memory, cross-process
//! isolation, engine error propagation and config serialisation.

use gpubox_sim::{
    Agent, Engine, GpuId, MultiGpuSystem, Op, OpResult, ProbeStage, ProcessId, SimError,
    SystemConfig, Topology, VirtAddr,
};

#[test]
fn pcie_fallback_used_when_no_nvlink_route() {
    // Two GPUs with no NVLink edges at all; indirect peer allowed so the
    // runtime routes over PCIe.
    let mut cfg = SystemConfig::small_test().noiseless();
    cfg.topology = Topology::from_edges(2, &[]);
    cfg.allow_indirect_peer = true;
    let mut sys = MultiGpuSystem::new(cfg);
    let spy = sys.create_process(GpuId::new(1));
    sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
    let buf = sys.malloc_on(spy, GpuId::new(0), 4096).unwrap();
    let acc = sys.access(spy, sys.default_agent(spy), buf, 0, None).unwrap();
    // PCIe cold access: l2_hit + dram + pcie_round_trip = 270+180+1900.
    assert_eq!(acc.latency, 2350);
    assert_eq!(sys.stats().gpu(GpuId::new(1)).pcie_accesses, 1);
    assert_eq!(sys.stats().gpu(GpuId::new(1)).nvlink_bytes, 0);
}

#[test]
fn two_hop_nvlink_latency_scales_per_hop() {
    // A 3-node line topology: 0-1-2; peer access 0<->2 is 2 hops.
    let mut cfg = SystemConfig::small_test().noiseless();
    cfg.num_gpus = 3;
    cfg.topology = Topology::from_edges(3, &[(0, 1), (1, 2)]);
    cfg.allow_indirect_peer = true;
    let mut sys = MultiGpuSystem::new(cfg);
    let p = sys.create_process(GpuId::new(2));
    sys.enable_peer_access(p, GpuId::new(0)).unwrap();
    let buf = sys.malloc_on(p, GpuId::new(0), 4096).unwrap();
    let cold = sys.access(p, sys.default_agent(p), buf, 0, None).unwrap();
    let warm = sys.access(p, sys.default_agent(p), buf, 5000, None).unwrap();
    // hit = 270 + 2*360 = 990; miss = 270+180+2*(360+140) = 1450.
    assert_eq!(cold.latency, 1450);
    assert_eq!(warm.latency, 990);
}

#[test]
fn out_of_memory_surfaces_from_malloc() {
    let mut cfg = SystemConfig::small_test();
    cfg.hbm_bytes = 8 * 4096; // 8 frames only
    let mut sys = MultiGpuSystem::new(cfg);
    let p = sys.create_process(GpuId::new(0));
    sys.malloc_on(p, GpuId::new(0), 8 * 4096).unwrap();
    let err = sys.malloc_on(p, GpuId::new(0), 4096).unwrap_err();
    assert_eq!(err, SimError::OutOfMemory(GpuId::new(0)));
}

#[test]
fn address_spaces_are_per_process() {
    // One process's virtual addresses mean nothing to another process.
    let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
    let a = sys.create_process(GpuId::new(0));
    let b = sys.create_process(GpuId::new(0));
    let abuf = sys.malloc_on(a, GpuId::new(0), 4096).unwrap();
    // b has no mapping at a's address (fresh address space).
    let err = sys.access(b, sys.default_agent(b), abuf, 0, None).unwrap_err();
    assert!(matches!(err, SimError::UnmappedAddress(_)));
}

#[test]
fn engine_propagates_agent_errors() {
    struct BadAgent(ProcessId);
    impl Agent for BadAgent {
        fn next_op(&mut self, _now: u64, _stage: &mut ProbeStage) -> Op {
            Op::Load(VirtAddr(0xDEAD_0000)) // never mapped
        }
        fn on_result(&mut self, _res: &OpResult<'_>) {}
        fn process(&self) -> ProcessId {
            self.0
        }
    }
    let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
    let p = sys.create_process(GpuId::new(0));
    let mut eng = Engine::new(&mut sys);
    eng.add_agent(Box::new(BadAgent(p)), 0);
    let err = eng.run(1_000_000).unwrap_err();
    assert!(matches!(err, SimError::UnmappedAddress(_)));
}

#[test]
fn write_words_spans_page_boundaries() {
    let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
    let p = sys.create_process(GpuId::new(0));
    // Two pages; write a run of words crossing the 4 KiB boundary.
    let buf = sys.malloc_on(p, GpuId::new(0), 2 * 4096).unwrap();
    let words: Vec<u64> = (0..32).map(|i| 0x1000 + i).collect();
    let start = buf.offset(4096 - 16 * 8);
    sys.write_words(p, start, &words).unwrap();
    for (i, &w) in words.iter().enumerate() {
        assert_eq!(sys.read_word(p, start.offset(8 * i as u64)).unwrap(), w);
    }
}

#[test]
fn flush_only_affects_target_gpu() {
    let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
    let a = sys.create_process(GpuId::new(0));
    let b = sys.create_process(GpuId::new(1));
    let abuf = sys.malloc_on(a, GpuId::new(0), 4096).unwrap();
    let bbuf = sys.malloc_on(b, GpuId::new(1), 4096).unwrap();
    sys.access(a, sys.default_agent(a), abuf, 0, None).unwrap();
    sys.access(b, sys.default_agent(b), bbuf, 0, None).unwrap();
    sys.flush_l2(GpuId::new(0));
    assert!(!sys.oracle_resident(a, abuf).unwrap());
    assert!(sys.oracle_resident(b, bbuf).unwrap());
}

#[test]
fn stats_reset_keeps_cache_contents() {
    let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
    let p = sys.create_process(GpuId::new(0));
    let buf = sys.malloc_on(p, GpuId::new(0), 4096).unwrap();
    sys.access(p, sys.default_agent(p), buf, 0, None).unwrap();
    sys.reset_stats();
    assert_eq!(sys.stats().total().issued_accesses, 0);
    // The line is still cached: next access hits.
    let acc = sys.access(p, sys.default_agent(p), buf, 1000, None).unwrap();
    assert!(acc.oracle.hit);
}

#[test]
fn system_config_serde_round_trip() {
    let cfg = SystemConfig::dgx1();
    let json = serde_json::to_string(&cfg).unwrap();
    let back: SystemConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back.num_gpus, cfg.num_gpus);
    assert_eq!(back.cache.num_sets(), cfg.cache.num_sets());
    assert_eq!(back.timing.l2_hit, cfg.timing.l2_hit);
    assert!(back.topology.direct_nvlink(GpuId::new(0), GpuId::new(4)));
}

#[test]
fn accessing_unknown_process_fails() {
    let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
    let ghost = ProcessId(99);
    let err = sys
        .access(ghost, gpubox_sim::AgentId(0), VirtAddr(4096), 0, None)
        .unwrap_err();
    assert_eq!(err, SimError::NoSuchProcess(99));
}

#[test]
fn store_then_load_through_the_timed_path_is_coherent() {
    let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
    let writer = sys.create_process(GpuId::new(0));
    let reader = sys.create_process(GpuId::new(1));
    sys.enable_peer_access(reader, GpuId::new(0)).unwrap();
    // Reader maps memory on GPU0; writer cannot see it, but the same
    // process writing and reading over NVLink must be coherent.
    let buf = sys.malloc_on(reader, GpuId::new(0), 4096).unwrap();
    sys.access(reader, sys.default_agent(reader), buf, 0, Some(0x5EC2E7)).unwrap();
    let acc = sys.access(reader, sys.default_agent(reader), buf, 2000, None).unwrap();
    assert_eq!(acc.value, 0x5EC2E7);
    assert!(acc.oracle.hit, "write-allocate: the store cached the line");
    let _ = writer;
}
