//! Counting-allocator proof that the engine's steady-state loop is
//! allocation-free.
//!
//! A `#[global_allocator]` wrapper counts every `alloc`/`realloc`. The
//! test warms an engine (first batches size the scratch buffers, first
//! stores materialise HBM frame backing, pressure windows fill), snapshots
//! the counter, runs thousands more ops across **every op kind** (`Load`,
//! `Store`, `Compute`, `LoadBatch`) on **both schedulers**, and asserts
//! the counter did not move.
//!
//! A second scenario set proves the same for the **timed link fabric**:
//! remote single-hop, multi-hop (3-GPU line topology) and PCIe-fallback
//! (a disconnected fourth GPU) accesses with `FabricConfig::nvlink_v1()`
//! enabled — route lookups are precomputed slices and link occupancy is a
//! fixed array, so the fabric adds zero steady-state allocations.
//!
//! A third set proves it for the **QoS / defence layer** with each
//! mechanism enabled in turn — token-bucket rate limiting, epoch
//! pacing, seeded grant jitter, and valiant routing: buckets are
//! preallocated per process at `create_process` time, the shaping and
//! valiant streams are counter-indexed splitmix64 (no RNG object, no
//! state growth), and valiant detours reuse the topology's precomputed
//! path slices.
//!
//! A fourth set proves it for the **fault-injection layer** with an
//! active `FaultPlan` (always-on transient stalls plus a degraded
//! window and a link outage both scheduled *inside* the measured run):
//! fault epochs and their rerouted topologies are precomputed when the
//! plan is installed, the per-access epoch lookup is a binary search
//! over a fixed slice, and stall draws are counter-indexed splitmix64
//! — so even while the outage is forcing PCIe fallbacks and reroutes,
//! the steady-state loop allocates nothing.
//!
//! A fifth set proves it for the **event tracer** running on top of the
//! full fault + QoS stack: the ring buffer is allocated once at
//! `enable_tracing` time, and the record path is a branch plus a masked
//! store that silently overwrites the oldest record when the ring wraps
//! — so even at maximum event rate (every hop, stall, reroute and
//! engine op recorded) the measured window allocates nothing.
//!
//! A sixth set proves it for the **fleet layer**: after pool warm-up
//! (node buffers pre-allocated at boot, front-end queues and scratch
//! pre-sized, first recycle generation folded), the whole serial fleet
//! loop — Poisson/Zipf arrival draws, O(log n) placement decisions,
//! node stepping through `access_batch_into`, departure processing and
//! in-place node recycling via `canonicalize_phase` — allocates
//! nothing. This is the claim that makes node *pooling* (reuse, not
//! reconstruction) worth having.
//!
//! The counter is **thread-local**: the engine loop under test runs on
//! the test's own thread, while the libtest main thread keeps doing its
//! own bookkeeping (event messages, stdout buffering) concurrently — a
//! process-global counter picks those up and turns the assertion into a
//! rare, load-dependent flake. Per-thread counting measures exactly the
//! loop and nothing else.

use gpubox_sim::{
    run_windowed, Agent, ChannelAware, Engine, FabricConfig, FaultPlan, FleetConfig, FleetRunner,
    FleetScheduler, GpuId, Monitor, MonitorConfig, MultiGpuSystem, Op, OpResult, Pack,
    PlacementPolicy, ProbeStage, ProcessId, QosConfig, RandomPlacement, SchedulerKind,
    SystemConfig, Topology, VirtAddr,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    /// Allocations observed on *this* thread (const-initialised so the
    /// TLS access itself never allocates).
    static ALLOC_CALLS: Cell<u64> = const { Cell::new(0) };
}

/// This thread's allocation count so far.
fn alloc_calls() -> u64 {
    ALLOC_CALLS.with(Cell::get)
}

fn count_one() {
    // `try_with` so allocations during TLS teardown are ignored rather
    // than panicking.
    let _ = ALLOC_CALLS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Cycles through Load → Store → Compute → LoadBatch over a fixed line
/// list, forever (the engine deadline bounds it). Holds no growing state.
struct AllKindsAgent {
    pid: ProcessId,
    lines: Vec<VirtAddr>,
    step: usize,
}

impl Agent for AllKindsAgent {
    fn next_op(&mut self, _now: u64, stage: &mut ProbeStage) -> Op {
        let line = self.lines[self.step % self.lines.len()];
        let op = match self.step % 4 {
            0 => Op::Load(line),
            1 => Op::Store(line, self.step as u64),
            2 => Op::Compute(150),
            _ => {
                stage.extend_from_slice(&self.lines);
                Op::LoadBatch
            }
        };
        self.step += 1;
        op
    }

    fn on_result(&mut self, _res: &OpResult<'_>) {}

    fn process(&self) -> ProcessId {
        self.pid
    }
}

#[test]
fn engine_steady_state_loop_is_allocation_free() {
    for (kind, agents) in [
        // The paper's regime: trojan/spy-scale agent counts on the
        // cached-min linear scheduler.
        (SchedulerKind::Linear, 3),
        // Multi-tenant regime on the heap event queue.
        (SchedulerKind::Heap, 8),
        // Auto resolves to the heap above LINEAR_SCHED_MAX_AGENTS.
        (SchedulerKind::Auto, 6),
    ] {
        let allocs = steady_state_allocs(kind, agents);
        assert_eq!(
            allocs, 0,
            "engine steady-state loop allocated {allocs} times \
             (scheduler {kind:?}, {agents} agents)"
        );
        let allocs = fabric_steady_state_allocs(kind, agents, QosConfig::off());
        assert_eq!(
            allocs, 0,
            "fabric-enabled steady-state loop allocated {allocs} times \
             (scheduler {kind:?}, {agents} agents)"
        );
    }
}

#[test]
fn fault_steady_state_loop_is_allocation_free() {
    // Every fault mechanism at once, live inside the measured window
    // (warm-up ends at 600k, measurement runs to 6.6M): stalls fire
    // throughout, link (0,1) degrades over [700k, 3M), and link (1,2)
    // goes down over [3M, 5M) — which partitions GPU2's agents from
    // GPU0 and forces their traffic through the PCIe fallback.
    let plan = FaultPlan::none()
        .with_stalls(7, 16, 450)
        .with_degraded(0, 700_000, 3_000_000, 4)
        .with_link_down(1, 3_000_000, 5_000_000);
    for kind in [SchedulerKind::Linear, SchedulerKind::Heap] {
        let allocs = fabric_steady_state_allocs_under(kind, 4, QosConfig::off(), plan.clone());
        assert_eq!(
            allocs, 0,
            "fault-injected steady-state loop allocated {allocs} times \
             (scheduler {kind:?})"
        );
    }
}

#[test]
fn traced_steady_state_loop_is_allocation_free() {
    // The fault scenario's full stack plus every QoS mechanism, with the
    // tracer on and a small (4Ki-record) ring: the measured window emits
    // orders of magnitude more records than the ring holds, so the test
    // also proves that wrapping is allocation-free.
    let plan = FaultPlan::none()
        .with_stalls(7, 16, 450)
        .with_degraded(0, 700_000, 3_000_000, 4)
        .with_link_down(1, 3_000_000, 5_000_000);
    let qos = QosConfig::off()
        .with_rate_limit(640, 1024)
        .with_jitter(900, 17)
        .with_valiant(23);
    for kind in [SchedulerKind::Linear, SchedulerKind::Heap] {
        let allocs = fabric_steady_state_allocs_traced(kind, 4, qos, plan.clone(), true);
        assert_eq!(
            allocs, 0,
            "traced steady-state loop allocated {allocs} times \
             (scheduler {kind:?})"
        );
    }
}

#[test]
fn qos_steady_state_loop_is_allocation_free() {
    // Each defence mechanism in turn, plus the full stack at once, on
    // both schedulers. Deliberately tight budgets so the rate limiter
    // actually shapes traffic inside the measured window.
    let qos_configs = [
        ("rate limit", QosConfig::off().with_rate_limit(640, 1024)),
        ("pacing", QosConfig::off().with_pacing(700)),
        ("jitter", QosConfig::off().with_jitter(900, 17)),
        ("valiant", QosConfig::off().with_valiant(23)),
        (
            "all combined",
            QosConfig::off()
                .with_rate_limit(640, 1024)
                .with_jitter(900, 17)
                .with_valiant(23),
        ),
    ];
    for (label, qos) in qos_configs {
        for kind in [SchedulerKind::Linear, SchedulerKind::Heap] {
            let allocs = fabric_steady_state_allocs(kind, 4, qos);
            assert_eq!(
                allocs, 0,
                "QoS ({label}) steady-state loop allocated {allocs} times \
                 (scheduler {kind:?})"
            );
        }
    }
}

#[test]
fn monitored_steady_state_loop_is_allocation_free() {
    // The online covert-channel monitor on top of the fabric scenario:
    // the engine is stepped in 1500-cycle windows and every window's
    // cumulative stats are diffed into the EWMA/CUSUM/periodicity
    // detectors. All detector state (rings, per-channel estimates, the
    // alarm list) is preallocated at `Monitor::new`, so the whole
    // windowed observe loop must not allocate once warm.
    for kind in [SchedulerKind::Linear, SchedulerKind::Heap] {
        let allocs = monitored_steady_state_allocs(kind, 4);
        assert_eq!(
            allocs, 0,
            "monitored steady-state loop allocated {allocs} times \
             (scheduler {kind:?})"
        );
    }
}

#[test]
fn fleet_steady_state_is_allocation_free_after_pool_warmup() {
    // Every placement policy and both node schedulers: the policies
    // differ in index queries and hint state, the schedulers in slot
    // ordering, but none may allocate once the pool is warm.
    type PolicyCtor = fn() -> Box<dyn PlacementPolicy>;
    let policies: [(&str, PolicyCtor); 3] = [
        ("pack", || Box::new(Pack)),
        ("random", || Box::new(RandomPlacement::new(5))),
        ("channel_aware", || Box::new(ChannelAware::new(16))),
    ];
    for (label, policy) in policies {
        for scheduler in [FleetScheduler::Linear, FleetScheduler::Heap] {
            let allocs = fleet_steady_state_allocs(policy(), scheduler);
            assert_eq!(
                allocs, 0,
                "fleet steady-state loop allocated {allocs} times \
                 (policy {label}, scheduler {scheduler:?})"
            );
        }
    }
}

/// Boots an 8-node fleet at moderate load, warms the pool until job
/// churn and node recycling have both engaged (every scratch sized,
/// every buffer materialised, the stats accumulator shaped), snapshots
/// the counter and runs 4x longer. Serial stepping (`threads = 1`):
/// parallel mode allocates only its per-epoch scoped worker threads,
/// which is bounded and outside the claim.
fn fleet_steady_state_allocs(policy: Box<dyn PlacementPolicy>, scheduler: FleetScheduler) -> u64 {
    // Moderate load so nodes actually drain and recycle: pooling is
    // the path under test, not just slot churn.
    let mut cfg = FleetConfig::new(8, 99).with_target_utilization(0.45);
    cfg.scheduler = scheduler;
    cfg.horizon = 4_000_000;
    cfg.epoch = 25_000;
    let mut runner = FleetRunner::new(cfg, policy);
    runner.run_until(1_000_000);
    assert!(
        runner.exposure().nodes_recycled > 0,
        "warm-up must exercise the recycle path so its first fold is paid"
    );
    assert!(runner.exposure().placed > 20, "warm-up must churn jobs");
    let recycled_before = runner.exposure().nodes_recycled;
    let before = alloc_calls();
    runner.run_until(4_000_000);
    let allocs = alloc_calls() - before;
    assert!(
        runner.exposure().nodes_recycled > recycled_before,
        "measured window must recycle nodes, or the claim is vacuous"
    );
    allocs
}

/// Runs `agents` concurrent [`AllKindsAgent`]s under `kind`: warm-up run
/// (sizes every scratch buffer, materialises store-backing HBM frames,
/// fills pressure windows, builds the heap), snapshot, measured run.
/// Returns the allocation count of the measured run.
fn steady_state_allocs(kind: SchedulerKind, agents: usize) -> u64 {
    let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
    let p0 = sys.create_process(GpuId::new(0));
    let p1 = sys.create_process(GpuId::new(1));
    sys.enable_peer_access(p1, GpuId::new(0)).unwrap();

    let mut plans = Vec::new();
    for a in 0..agents {
        // Alternate local (GPU0) and remote (GPU1→GPU0) issuers so both
        // the local and NVLink paths are exercised.
        let pid = if a % 2 == 0 { p0 } else { p1 };
        let buf = sys.malloc_on(pid, GpuId::new(0), 16 * 4096).unwrap();
        let lines: Vec<VirtAddr> = (0..16).map(|i| buf.offset(i * 4096)).collect();
        plans.push((pid, lines, (a as u64) * 37));
    }
    measure(sys, kind, plans)
}

/// As [`steady_state_allocs`], on a fabric-enabled 4-GPU box whose
/// topology is a 0-1-2 NVLink line plus a disconnected GPU3: agents
/// cycle through local (GPU0→GPU0), direct-link (GPU1→GPU0), two-hop
/// (GPU2→GPU0) and PCIe-fallback (GPU3→GPU0) issuers, so every fabric
/// traversal shape runs under the counting allocator — with the given
/// QoS / defence configuration layered on top.
fn fabric_steady_state_allocs(kind: SchedulerKind, agents: usize, qos: QosConfig) -> u64 {
    fabric_steady_state_allocs_under(kind, agents, qos, FaultPlan::none())
}

/// As [`fabric_steady_state_allocs`] with a fault-injection plan
/// installed on the fabric.
fn fabric_steady_state_allocs_under(
    kind: SchedulerKind,
    agents: usize,
    qos: QosConfig,
    faults: FaultPlan,
) -> u64 {
    fabric_steady_state_allocs_traced(kind, agents, qos, faults, false)
}

/// As [`fabric_steady_state_allocs_under`], optionally with the event
/// tracer on (a deliberately small ring, so the measured window wraps it
/// many times over).
fn fabric_steady_state_allocs_traced(
    kind: SchedulerKind,
    agents: usize,
    qos: QosConfig,
    faults: FaultPlan,
    traced: bool,
) -> u64 {
    let mut cfg = SystemConfig::small_test()
        .noiseless()
        .with_fabric(FabricConfig::nvlink_v1().with_qos(qos).with_faults(faults));
    cfg.num_gpus = 4;
    cfg.topology = Topology::from_edges(4, &[(0, 1), (1, 2)]);
    cfg.allow_indirect_peer = true;
    let mut sys = MultiGpuSystem::new(cfg);
    if traced {
        sys.enable_tracing(1 << 12);
    }
    let pids: Vec<ProcessId> = (0..4)
        .map(|g| sys.create_process(GpuId::new(g)))
        .collect();
    for &pid in &pids[1..] {
        sys.enable_peer_access(pid, GpuId::new(0)).unwrap();
    }

    let mut plans = Vec::new();
    for a in 0..agents {
        let pid = pids[a % 4];
        let buf = sys.malloc_on(pid, GpuId::new(0), 16 * 4096).unwrap();
        let lines: Vec<VirtAddr> = (0..16).map(|i| buf.offset(i * 4096)).collect();
        plans.push((pid, lines, (a as u64) * 37));
    }
    measure(sys, kind, plans)
}

/// The fabric scenario of [`fabric_steady_state_allocs`], but driven
/// through [`gpubox_sim::run_windowed`] with a [`gpubox_sim::Monitor`]
/// observing every 1500-cycle window: warm-up past the detector
/// calibration phase, snapshot, then a 10x longer monitored run.
fn monitored_steady_state_allocs(kind: SchedulerKind, agents: usize) -> u64 {
    let mut cfg = SystemConfig::small_test()
        .noiseless()
        .with_fabric(FabricConfig::nvlink_v1());
    cfg.num_gpus = 4;
    cfg.topology = Topology::from_edges(4, &[(0, 1), (1, 2)]);
    cfg.allow_indirect_peer = true;
    let num_links = cfg.topology.num_links();
    let mut sys = MultiGpuSystem::new(cfg);
    let pids: Vec<ProcessId> = (0..4)
        .map(|g| sys.create_process(GpuId::new(g)))
        .collect();
    for &pid in &pids[1..] {
        sys.enable_peer_access(pid, GpuId::new(0)).unwrap();
    }
    let mut plans = Vec::new();
    for a in 0..agents {
        let pid = pids[a % 4];
        let buf = sys.malloc_on(pid, GpuId::new(0), 16 * 4096).unwrap();
        let lines: Vec<VirtAddr> = (0..16).map(|i| buf.offset(i * 4096)).collect();
        plans.push((pid, lines, (a as u64) * 37));
    }
    let mut mon = Monitor::new(MonitorConfig::default(), num_links, 4);
    let mut eng = Engine::with_scheduler(&mut sys, kind);
    for (pid, lines, start) in plans {
        eng.add_agent(
            Box::new(AllKindsAgent {
                pid,
                lines,
                step: 0,
            }),
            start,
        );
    }
    // Warm-up: past detector calibration (64 windows × 1500 cycles)
    // and every engine scratch sizing.
    run_windowed(&mut eng, &mut mon, 600_000).unwrap();
    let before = alloc_calls();
    run_windowed(&mut eng, &mut mon, 6_000_000).unwrap();
    let allocs = alloc_calls() - before;
    assert!(
        mon.windows_observed() >= 4000,
        "measured run must actually observe windows, or the claim is vacuous"
    );
    allocs
}

/// Warm-up run, snapshot, measured run; returns the measured count.
fn measure(
    mut sys: MultiGpuSystem,
    kind: SchedulerKind,
    plans: Vec<(ProcessId, Vec<VirtAddr>, u64)>,
) -> u64 {
    let mut eng = Engine::with_scheduler(&mut sys, kind);
    for (pid, lines, start) in plans {
        eng.add_agent(
            Box::new(AllKindsAgent {
                pid,
                lines,
                step: 0,
            }),
            start,
        );
    }

    eng.run(600_000).unwrap();
    let before = alloc_calls();
    eng.run(6_000_000).unwrap();
    alloc_calls() - before
}
