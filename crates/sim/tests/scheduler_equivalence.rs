//! Property test: the heap event queue and the cached-min linear scan
//! produce **bit-identical interleavings**.
//!
//! Both engine schedulers implement the same policy — step the live agent
//! with the smallest `(clock, slot index)` key — so on two identically
//! seeded systems a randomized agent mix must execute the *same ops in the
//! same order with the same latencies* (latencies are RNG-dependent, so
//! any divergence in step order desynchronises the jitter stream and shows
//! up immediately). Equal-clock tie-breaks are exercised explicitly:
//! agents share start offsets from a tiny range and scripts include
//! zero-duration `Compute` ops, which keep an agent's clock equal to its
//! neighbours' across several steps.

use gpubox_sim::{
    Agent, Engine, GpuId, GpuStats, MultiGpuSystem, Op, OpResult, ProbeStage, ProcessId,
    SchedulerKind, SystemConfig, VirtAddr,
};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// One scripted step: `(op kind, line selector, duration selector)`.
type ScriptStep = (u8, u8, u8);

/// One logged result: `(agent tag, started_at, duration, latency hash)`.
type LogEntry = (usize, u64, u64, u64);

/// The engine-order interleaving log shared by all agents of one run.
type SharedLog = Rc<RefCell<Vec<LogEntry>>>;

/// Replays a fixed op script and logs every result into the shared,
/// engine-order interleaving log.
struct ScriptedAgent {
    tag: usize,
    pid: ProcessId,
    lines: Vec<VirtAddr>,
    script: Vec<ScriptStep>,
    idx: usize,
    log: SharedLog,
}

impl Agent for ScriptedAgent {
    fn next_op(&mut self, _now: u64, stage: &mut ProbeStage) -> Op {
        let Some(&(kind, line, dur)) = self.script.get(self.idx) else {
            return Op::Done;
        };
        self.idx += 1;
        let va = self.lines[line as usize % self.lines.len()];
        match kind % 4 {
            0 => Op::Load(va),
            1 => Op::Store(va, u64::from(dur)),
            // Includes Compute(0): the clock does not advance, forcing
            // repeated equal-clock picks.
            2 => Op::Compute(u64::from(dur) % 40),
            _ => {
                let n = (line as usize % self.lines.len()) + 1;
                stage.extend_from_slice(&self.lines[..n]);
                Op::LoadBatch
            }
        }
    }

    fn on_result(&mut self, res: &OpResult<'_>) {
        // FNV-style fold of the per-line latencies: captures order and
        // values without holding a borrow.
        let lat_hash = res
            .latencies
            .iter()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, &l| {
                (h ^ u64::from(l)).wrapping_mul(0x0000_0100_0000_01B3)
            });
        self.log
            .borrow_mut()
            .push((self.tag, res.started_at, res.duration, lat_hash));
    }

    fn process(&self) -> ProcessId {
        self.pid
    }
}

/// A randomized scenario: per-agent launch offset and op script.
#[derive(Debug, Clone)]
struct Scenario {
    agents: Vec<(u64, Vec<ScriptStep>)>,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    // Start offsets from a tiny range so several agents collide exactly.
    let agent = (
        0u64..4,
        prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..40),
    );
    prop::collection::vec(agent, 2..10).prop_map(|agents| Scenario { agents })
}

/// Runs the scenario under one scheduler on a fresh identically-seeded
/// system; returns the interleaving log, the final time and total stats.
fn run_scenario(
    sc: &Scenario,
    kind: SchedulerKind,
) -> (Vec<LogEntry>, u64, GpuStats) {
    // Noisy config on purpose: jitter consumes RNG per access, so a single
    // out-of-order step would desynchronise everything downstream.
    let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
    let p0 = sys.create_process(GpuId::new(0));
    let p1 = sys.create_process(GpuId::new(1));
    sys.enable_peer_access(p1, GpuId::new(0)).unwrap();

    let log = Rc::new(RefCell::new(Vec::new()));
    let mut plans = Vec::new();
    for (tag, (start, script)) in sc.agents.iter().enumerate() {
        let pid = if tag % 2 == 0 { p0 } else { p1 };
        let buf = sys.malloc_on(pid, GpuId::new(0), 8 * 4096).unwrap();
        let lines: Vec<VirtAddr> = (0..8).map(|i| buf.offset(i * 4096)).collect();
        plans.push((tag, pid, lines, *start, script.clone()));
    }

    let mut eng = Engine::with_scheduler(&mut sys, kind);
    for (tag, pid, lines, start, script) in plans {
        eng.add_agent(
            Box::new(ScriptedAgent {
                tag,
                pid,
                lines,
                script,
                idx: 0,
                log: Rc::clone(&log),
            }),
            start,
        );
    }
    let end = eng.run(u64::MAX).unwrap();
    assert!(eng.all_done());
    drop(eng);
    let stats = sys.stats().total();
    let interleaving = log.borrow().clone();
    (interleaving, end, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn heap_and_linear_schedulers_interleave_identically(sc in scenario_strategy()) {
        let (log_lin, end_lin, stats_lin) = run_scenario(&sc, SchedulerKind::Linear);
        let (log_heap, end_heap, stats_heap) = run_scenario(&sc, SchedulerKind::Heap);
        prop_assert_eq!(log_lin, log_heap, "op interleaving diverged");
        prop_assert_eq!(end_lin, end_heap, "final global time diverged");
        prop_assert_eq!(stats_lin, stats_heap, "system statistics diverged");
    }
}
