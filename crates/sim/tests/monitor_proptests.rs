//! Detector laws for the online covert-channel monitor
//! (`gpubox_sim::monitor`), property-tested over seeded synthetic
//! traffic:
//!
//! 1. **No false alarms on stationary benign traffic** — bounded-noise
//!    series across seeds and load levels never alarm any detector.
//! 2. **Guaranteed detection of square-wave contention** — an injected
//!    trojan-like square wave (large amplitude, slot-period structure)
//!    always alarms, across seeds, phases and benign backgrounds.
//! 3. **Fold consistency** — feeding a window stream in arbitrary
//!    chunks is bit-identical to feeding it in one pass, and a
//!    single-node `FleetMonitor` fold equals the standalone monitor's
//!    export on the same stream.

use gpubox_sim::fleet::TenantId;
use gpubox_sim::telemetry::MetricSet;
use gpubox_sim::{FleetMonitor, LinkId, Monitor, MonitorConfig, SystemStats};
use proptest::prelude::*;

/// Counter-indexed pseudo-random stream (the QoS splitmix idiom) so
/// the benign series is a pure function of `(seed, index)`.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed
        .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn test_cfg() -> MonitorConfig {
    MonitorConfig {
        warmup_windows: 32,
        ring_windows: 32,
        ..MonitorConfig::default()
    }
}

/// Benign window series: a load level plus bounded multiplicative
/// noise (up to ±25% of the level), stationary by construction.
fn benign_series(seed: u64, level: u64, len: usize) -> Vec<u64> {
    (0..len as u64)
        .map(|i| {
            let noise_span = (level / 2).max(1);
            level + mix(seed, i) % noise_span
        })
        .collect()
}

fn feed(mon: &mut Monitor, stats: &mut SystemStats, series: &[u64]) {
    for &d in series {
        stats.link_mut(LinkId(0)).busy_cycles += d;
        mon.observe(stats);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Law 1: EWMA/CUSUM/periodicity never alarm on stationary benign
    /// traffic, across seeds and load levels.
    #[test]
    fn stationary_benign_traffic_never_alarms(
        seed in any::<u64>(),
        level in 1u64..20_000,
    ) {
        let mut mon = Monitor::new(test_cfg(), 1, 0);
        let mut stats = SystemStats::new(1, 1);
        feed(&mut mon, &mut stats, &benign_series(seed, level, 300));
        prop_assert!(
            !mon.alarmed(),
            "benign series (seed {seed}, level {level}) alarmed: {:?}",
            mon.first_alarm()
        );
    }

    /// Law 2: an injected square-wave contention signal (a trojan
    /// saturating the link on its slot clock) always alarms, whatever
    /// the benign background underneath it.
    #[test]
    fn square_wave_contention_always_alarms(
        seed in any::<u64>(),
        level in 1u64..5_000,
        half_period in 1usize..8,
        phase in 0usize..16,
        amplitude in 50_000u64..500_000,
    ) {
        let mut mon = Monitor::new(test_cfg(), 1, 0);
        let mut stats = SystemStats::new(1, 1);
        // Benign-only through warm-up and a margin, then attack starts.
        let mut series = benign_series(seed, level, 48);
        let attack: Vec<u64> = (0..160)
            .map(|i| {
                let benign = level + mix(seed, 1000 + i as u64) % (level / 2).max(1);
                let one_slot = ((i + phase) / half_period) % 2 == 0;
                benign + if one_slot { amplitude } else { 0 }
            })
            .collect();
        series.extend(attack);
        feed(&mut mon, &mut stats, &series);
        prop_assert!(
            mon.alarmed(),
            "square wave (amp {amplitude}, half-period {half_period}) went undetected"
        );
        let a = mon.first_alarm().unwrap();
        prop_assert!(a.window >= 48, "alarm before the attack started: {a:?}");
    }

    /// Law 3a: observation is streaming — chunking the same window
    /// stream arbitrarily cannot change any detector state.
    #[test]
    fn chunked_observation_equals_single_pass(
        seed in any::<u64>(),
        level in 1u64..20_000,
        inject in 0u8..2,
    ) {
        let mut series = benign_series(seed, level, 120);
        if inject == 1 {
            for v in series.iter_mut().skip(60) {
                *v += 80_000;
            }
        }
        // One pass.
        let mut all = Monitor::new(test_cfg(), 1, 0);
        let mut s1 = SystemStats::new(1, 1);
        feed(&mut all, &mut s1, &series);
        // Chunked passes over the same monitor (sizes from the seed).
        let mut chunked = Monitor::new(test_cfg(), 1, 0);
        let mut s2 = SystemStats::new(1, 1);
        let mut rest: &[u64] = &series;
        let mut i = 0;
        while !rest.is_empty() {
            let take = (mix(seed, 777 + i) as usize % rest.len()) + 1;
            feed(&mut chunked, &mut s2, &rest[..take]);
            rest = &rest[take..];
            i += 1;
        }
        prop_assert_eq!(all.alarmed(), chunked.alarmed());
        prop_assert_eq!(all.first_alarm(), chunked.first_alarm());
        prop_assert_eq!(all.windows_observed(), chunked.windows_observed());
        let (mut ma, mut mc) = (MetricSet::new(), MetricSet::new());
        all.export_into(&mut ma);
        chunked.export_into(&mut mc);
        prop_assert_eq!(ma, mc);
    }

    /// Law 3b: a single-node fleet fold is bit-identical to the
    /// standalone monitor's export on the same stream (plus the
    /// fleet-level counters), and a two-node fold equals the merge of
    /// the nodes' individual exports.
    #[test]
    fn fleet_fold_equals_single_stream_state(
        seed in any::<u64>(),
        level in 1u64..20_000,
        inject in 0u8..2,
    ) {
        let mut series = benign_series(seed, level, 120);
        if inject == 1 {
            for v in series.iter_mut().skip(60) {
                *v += 80_000;
            }
        }
        let mut standalone = Monitor::new(test_cfg(), 1, 0);
        let mut s1 = SystemStats::new(1, 1);
        feed(&mut standalone, &mut s1, &series);

        let mut fleet = FleetMonitor::new(test_cfg(), 1, 1, 0, 4);
        let mut s2 = SystemStats::new(1, 1);
        for &d in &series {
            s2.link_mut(LinkId(0)).busy_cycles += d;
            fleet.observe_node(0, &s2, &[TenantId(2)]);
        }
        prop_assert_eq!(standalone.alarmed(), fleet.node(0).alarmed());
        let mut expected = MetricSet::new();
        standalone.export_into(&mut expected);
        expected.add("fleet.nodes", 1);
        if standalone.alarmed() {
            expected.add("fleet.nodes_alarmed", 1);
            expected.add("fleet.suspicion.tenant2", 1);
        }
        prop_assert_eq!(fleet.fold(), expected);

        // Two independent nodes: fold == merge of individual exports.
        let mut fleet2 = FleetMonitor::new(test_cfg(), 2, 1, 0, 4);
        let mut t0 = SystemStats::new(1, 1);
        let mut t1 = SystemStats::new(1, 1);
        for (i, &d) in series.iter().enumerate() {
            t0.link_mut(LinkId(0)).busy_cycles += d;
            t1.link_mut(LinkId(0)).busy_cycles += benign_series(seed ^ 1, level, 120)[i];
            fleet2.observe_node(0, &t0, &[TenantId(0)]);
            fleet2.observe_node(1, &t1, &[TenantId(1)]);
        }
        let mut manual = MetricSet::new();
        fleet2.node(0).export_into(&mut manual);
        fleet2.node(1).export_into(&mut manual);
        for (name, v) in manual.counters() {
            prop_assert_eq!(fleet2.fold().counter(name), v);
        }
    }
}
