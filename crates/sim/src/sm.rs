//! Streaming multiprocessors and the leftover thread-block scheduler.
//!
//! Section VI of the paper proposes excluding noisy co-located kernels by
//! saturating intra-SM resources (shared memory, block slots) with idle
//! thread blocks: under the *leftover policy*, a new kernel's blocks are
//! only placed on SMs with spare resources. This module models exactly
//! those resources so the mitigation can be demonstrated.

use crate::config::SmConfig;
use crate::error::{SimError, SimResult};
use serde::{Deserialize, Serialize};

/// Resource request of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelLaunch {
    /// Number of thread blocks in the grid.
    pub blocks: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Dynamic shared memory per block, bytes.
    pub shared_mem_per_block: u32,
}

/// Identifier of a resident kernel on one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelId(pub u32);

#[derive(Debug, Clone, Default)]
struct SmState {
    blocks: u32,
    threads: u32,
    shared_mem: u32,
}

#[derive(Debug, Clone)]
struct Resident {
    id: KernelId,
    /// (sm index, blocks placed there)
    placement: Vec<(u32, u32)>,
    launch: KernelLaunch,
}

/// The SM array of one GPU with leftover-policy block placement.
#[derive(Debug, Clone)]
pub struct SmArray {
    cfg: SmConfig,
    sms: Vec<SmState>,
    resident: Vec<Resident>,
    next_id: u32,
}

impl SmArray {
    /// Creates an idle SM array.
    pub fn new(cfg: SmConfig) -> Self {
        let sms = vec![SmState::default(); cfg.num_sms as usize];
        SmArray {
            cfg,
            sms,
            resident: Vec::new(),
            next_id: 0,
        }
    }

    fn fits(&self, sm: &SmState, l: &KernelLaunch) -> bool {
        sm.blocks < self.cfg.max_blocks_per_sm
            && sm.threads + l.threads_per_block <= self.cfg.max_threads_per_sm
            && sm.shared_mem + l.shared_mem_per_block <= self.cfg.shared_mem_per_sm
    }

    /// Places a kernel's blocks using the leftover policy (round-robin over
    /// SMs with spare resources).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InsufficientSmResources`] when not every block
    /// can be placed; the launch is then not resident at all.
    pub fn launch(&mut self, l: KernelLaunch) -> SimResult<KernelId> {
        let mut placement: Vec<(u32, u32)> = Vec::new();
        let mut trial = self.sms.clone();
        let mut placed = 0;
        let mut sm = 0usize;
        let mut stuck = 0usize;
        while placed < l.blocks {
            if stuck >= trial.len() {
                return Err(SimError::InsufficientSmResources);
            }
            if self.fits(&trial[sm], &l) {
                trial[sm].blocks += 1;
                trial[sm].threads += l.threads_per_block;
                trial[sm].shared_mem += l.shared_mem_per_block;
                match placement.last_mut() {
                    Some((s, n)) if *s == sm as u32 => *n += 1,
                    _ => placement.push((sm as u32, 1)),
                }
                placed += 1;
                stuck = 0;
            } else {
                stuck += 1;
            }
            sm = (sm + 1) % trial.len();
        }
        self.sms = trial;
        let id = KernelId(self.next_id);
        self.next_id += 1;
        self.resident.push(Resident {
            id,
            placement,
            launch: l,
        });
        Ok(id)
    }

    /// Terminates a kernel, releasing its resources. No-op on unknown ids.
    pub fn terminate(&mut self, id: KernelId) {
        if let Some(pos) = self.resident.iter().position(|r| r.id == id) {
            let r = self.resident.remove(pos);
            for (sm, n) in r.placement {
                let s = &mut self.sms[sm as usize];
                s.blocks -= n;
                s.threads -= n * r.launch.threads_per_block;
                s.shared_mem -= n * r.launch.shared_mem_per_block;
            }
        }
    }

    /// Number of SMs with at least one free block slot *and* free shared
    /// memory for a minimal (1-thread, 0-byte) block.
    pub fn sms_accepting_blocks(&self) -> usize {
        let probe = KernelLaunch {
            blocks: 1,
            threads_per_block: 1,
            shared_mem_per_block: 0,
        };
        self.sms.iter().filter(|sm| self.fits(sm, &probe)).count()
    }

    /// Whether a launch with the given shape could currently be placed.
    pub fn can_launch(&self, l: &KernelLaunch) -> bool {
        let mut trial = self.sms.clone();
        let mut placed = 0;
        let mut sm = 0usize;
        let mut stuck = 0usize;
        while placed < l.blocks {
            if stuck >= trial.len() {
                return false;
            }
            if self.fits(&trial[sm], l) {
                trial[sm].blocks += 1;
                trial[sm].threads += l.threads_per_block;
                trial[sm].shared_mem += l.shared_mem_per_block;
                placed += 1;
                stuck = 0;
            } else {
                stuck += 1;
            }
            sm = (sm + 1) % trial.len();
        }
        true
    }

    /// Total resident kernels.
    pub fn resident_kernels(&self) -> usize {
        self.resident.len()
    }

    /// The SM configuration.
    pub fn config(&self) -> &SmConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SmArray {
        SmArray::new(SmConfig {
            num_sms: 4,
            shared_mem_per_sm: 64 * 1024,
            max_blocks_per_sm: 2,
            max_threads_per_sm: 2048,
        })
    }

    #[test]
    fn blocks_spread_round_robin() {
        let mut a = small();
        let id = a
            .launch(KernelLaunch {
                blocks: 4,
                threads_per_block: 32,
                shared_mem_per_block: 0,
            })
            .unwrap();
        // Each of 4 SMs got 1 block; all still accept one more.
        assert_eq!(a.sms_accepting_blocks(), 4);
        a.terminate(id);
        assert_eq!(a.resident_kernels(), 0);
    }

    #[test]
    fn overflow_is_rejected_atomically() {
        let mut a = small();
        // Capacity is 4 SMs × 2 blocks = 8.
        a.launch(KernelLaunch {
            blocks: 8,
            threads_per_block: 1,
            shared_mem_per_block: 0,
        })
        .unwrap();
        let before = a.resident_kernels();
        let err = a
            .launch(KernelLaunch {
                blocks: 1,
                threads_per_block: 1,
                shared_mem_per_block: 0,
            })
            .unwrap_err();
        assert_eq!(err, SimError::InsufficientSmResources);
        assert_eq!(a.resident_kernels(), before, "failed launch must not leak");
    }

    #[test]
    fn shared_memory_saturation_blocks_new_kernels() {
        // The Sec. VI mitigation: one 32 KiB block per SM (the attack) plus
        // one 32 KiB idle block per SM leaves no shared memory for others.
        let mut a = small();
        a.launch(KernelLaunch {
            blocks: 4,
            threads_per_block: 32,
            shared_mem_per_block: 32 * 1024,
        })
        .unwrap();
        a.launch(KernelLaunch {
            blocks: 4,
            threads_per_block: 1,
            shared_mem_per_block: 32 * 1024,
        })
        .unwrap();
        let noise = KernelLaunch {
            blocks: 1,
            threads_per_block: 32,
            shared_mem_per_block: 1024,
        };
        assert!(
            !a.can_launch(&noise),
            "noise kernel should find no shared memory"
        );
    }

    #[test]
    fn terminate_frees_resources() {
        let mut a = small();
        let id = a
            .launch(KernelLaunch {
                blocks: 8,
                threads_per_block: 1,
                shared_mem_per_block: 0,
            })
            .unwrap();
        assert_eq!(a.sms_accepting_blocks(), 0);
        a.terminate(id);
        assert_eq!(a.sms_accepting_blocks(), 4);
    }

    #[test]
    fn thread_limit_enforced() {
        let mut a = small();
        let big = KernelLaunch {
            blocks: 8,
            threads_per_block: 2048,
            shared_mem_per_block: 0,
        };
        // Each SM can hold only 1 such block (2048 threads); 8 blocks need
        // 8 SM slots but only 4 SMs exist with thread capacity 1 each.
        assert!(a.launch(big).is_err());
        let ok = KernelLaunch {
            blocks: 4,
            threads_per_block: 2048,
            shared_mem_per_block: 0,
        };
        assert!(a.launch(ok).is_ok());
    }

    #[test]
    fn terminate_unknown_id_is_noop() {
        let mut a = small();
        a.terminate(KernelId(99));
        assert_eq!(a.resident_kernels(), 0);
    }
}
