//! The multi-GPU box: processes, the NUMA access path, and ground truth.
//!
//! [`MultiGpuSystem`] implements the behaviour the paper reverse engineers
//! (Sec. III): an access to a virtual address is translated to a physical
//! frame on its *home* GPU; the request travels over NVLink if the home GPU
//! differs from the issuing GPU; it is then looked up in **the home GPU's
//! L2** (never the local one — caching locally would require coherence);
//! the latency seen by the issuing warp encodes route × hit/miss.

use crate::address::{GpuId, PhysAddr, PhysLoc, SetIndex, VirtAddr};
use crate::cache::L2Cache;
use crate::config::SystemConfig;
use crate::error::{SimError, SimResult};
use crate::fabric::Fabric;
use crate::fault::{build_epochs, FaultEpoch, FaultPlan};
use crate::memory::Hbm;
use crate::sm::{KernelId, KernelLaunch, SmArray};
use crate::stats::{LinkStats, SystemStats};
use crate::telemetry::{TraceKind, TraceSink};
use crate::timing::LatencyModel;
use crate::topology::{LinkId, LinkKind, Route};
use crate::vm::{AddressSpace, Mapping};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{HashSet, VecDeque};

/// Handle to a process created on the box.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub u32);

/// Identifier of an issuing agent (a thread block / concurrent actor) used
/// for contention accounting. Each process gets a default agent; the event
/// engine assigns one per concurrent agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AgentId(pub u32);

/// Ground-truth annotation of one access. **Attack code must not consult
/// this** — it exists for tests, calibration and experiment bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOracle {
    /// Whether the access hit in the home GPU's L2.
    pub hit: bool,
    /// Home GPU that served the access.
    pub home: GpuId,
    /// Cache set the line maps to.
    pub set: SetIndex,
    /// Route the request took.
    pub route: Route,
}

/// Result of one timed memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// The 8-byte word read (for stores, the value written).
    pub value: u64,
    /// Latency in cycles as a `clock()`-style measurement would see it.
    pub latency: u32,
    /// Ground truth (not available to a real attacker).
    pub oracle: AccessOracle,
}

/// Default per-process TLB entries: an eviction-set probe touches one
/// line per page, so a 16-way probe walks 16 distinct pages — 64 entries
/// keep a trojan/spy pair's working sets resident simultaneously.
const DEFAULT_TLB_ENTRIES: usize = 64;

/// Direct-mapped software TLB over a process's page table, indexed by
/// `vpn & mask`. This is a *simulator implementation* cache, not modelled
/// hardware: its size has no observable effect on simulated latencies or
/// RNG consumption, only on host-side speed. PR 1 shipped the one-entry
/// version (`entries == 1` reproduces it exactly, which the benches use
/// as the baseline rung).
#[derive(Debug, Clone)]
struct DirectTlb {
    mask: u64,
    /// `(vpn, mapping)` per slot; vpn `u64::MAX` = empty.
    slots: Vec<(u64, Mapping)>,
}

impl DirectTlb {
    fn new(entries: usize, home: GpuId) -> Self {
        assert!(
            entries.is_power_of_two(),
            "TLB entries must be a power of two, got {entries}"
        );
        DirectTlb {
            mask: entries as u64 - 1,
            slots: vec![
                (
                    u64::MAX,
                    Mapping {
                        gpu: home,
                        frame_base: PhysAddr(0),
                    }
                );
                entries
            ],
        }
    }
}

#[derive(Debug)]
struct Process {
    home: GpuId,
    aspace: AddressSpace,
    peers: HashSet<GpuId>,
    /// MIG-style L2 partition `(index, count)` this process is confined
    /// to, if the defence of paper Sec. VII is enabled.
    partition: Option<(u32, u32)>,
    /// Software TLB over the page table: probe loops walk one line per
    /// page across a small set of pages, so the access paths almost never
    /// pay the full page-table lookup. Mappings are immutable once
    /// created and peer grants are never revoked, so a cached entry never
    /// goes stale.
    tlb: DirectTlb,
}

impl Process {
    /// TLB-cached page translation with the peer-access check — the
    /// single source of truth for both the scalar and the batched access
    /// paths. Entries are cached only after passing the peer check, so a
    /// TLB hit needs no re-check (grants are never revoked).
    ///
    /// `va` is only used to name the faulting address in errors.
    #[inline]
    fn translate_page(&mut self, vpn: u64, va: VirtAddr) -> SimResult<Mapping> {
        let slot = (vpn & self.tlb.mask) as usize;
        let e = self.tlb.slots[slot];
        if e.0 == vpn {
            return Ok(e.1);
        }
        let m = self
            .aspace
            .lookup_page(vpn)
            .ok_or(SimError::UnmappedAddress(va))?;
        if m.gpu != self.home && !self.peers.contains(&m.gpu) {
            return Err(SimError::PeerAccessNotEnabled { remote: m.gpu });
        }
        self.tlb.slots[slot] = (vpn, m);
        Ok(m)
    }
}

#[derive(Debug)]
struct GpuDevice {
    l2: L2Cache,
    hbm: Hbm,
    sms: SmArray,
}

/// Tracks recent accesses per GPU for port-contention pressure.
///
/// Same observable semantics as the original implementation (a rear scan
/// of the window that stops at the first stale entry — exact even when
/// agent-local clocks make timestamps non-monotonic), but allocation-free
/// on the hot path: the distinct-agent set is collected into a reusable
/// scratch buffer instead of a fresh `HashSet` per access.
#[derive(Debug)]
struct PressureTracker {
    recent: VecDeque<(u64, u32)>,
    /// Scratch for the distinct-agent scan; cleared per query, never
    /// shrunk, so steady state performs no allocation.
    scratch: Vec<u32>,
}

/// Hard bound on the window deque (memory stays bounded even if agent
/// clocks go backwards between agents).
const PRESSURE_WINDOW_CAP: usize = 4096;

impl PressureTracker {
    /// `tracking == true` pre-sizes both buffers to their steady-state
    /// bounds so the engine's warm loop never grows them: the deque can
    /// briefly hold one entry past the cap (push happens before the
    /// trim), and the scratch holds at most one entry per distinct
    /// concurrent agent. Untracked (noiseless) systems never touch the
    /// tracker, so they skip the ~64 KiB-per-GPU reservation.
    fn new(tracking: bool) -> Self {
        if tracking {
            PressureTracker {
                recent: VecDeque::with_capacity(PRESSURE_WINDOW_CAP + 2),
                scratch: Vec::with_capacity(64),
            }
        } else {
            PressureTracker {
                recent: VecDeque::new(),
                scratch: Vec::new(),
            }
        }
    }
    fn clear(&mut self) {
        self.recent.clear();
    }

    fn record(&mut self, now: u64, agent: AgentId, window: u64) {
        self.recent.push_back((now, agent.0));
        let cutoff = now.saturating_sub(window);
        while matches!(self.recent.front(), Some(&(t, _)) if t < cutoff) {
            self.recent.pop_front();
        }
        while self.recent.len() > PRESSURE_WINDOW_CAP {
            self.recent.pop_front();
        }
    }

    fn pressure(&mut self, now: u64, agent: AgentId, window: u64) -> u32 {
        let cutoff = now.saturating_sub(window);
        self.scratch.clear();
        for &(t, a) in self.recent.iter().rev() {
            if t < cutoff {
                break;
            }
            if a != agent.0 && !self.scratch.contains(&a) {
                self.scratch.push(a);
            }
        }
        self.scratch.len() as u32
    }
}

/// The simulated multi-GPU machine.
#[derive(Debug)]
pub struct MultiGpuSystem {
    cfg: SystemConfig,
    gpus: Vec<GpuDevice>,
    processes: Vec<Process>,
    latency: LatencyModel,
    pressure: Vec<PressureTracker>,
    remote_pressure: Vec<PressureTracker>,
    congested_until: Vec<u64>,
    /// Timed per-link interconnect state; inert when the config leaves
    /// the fabric disabled (the scalar PR 2 model).
    fabric: Fabric,
    /// Precomputed routing epochs of the fault plan's scheduled link
    /// outages ([`crate::fault`]), sorted by start cycle; empty — the
    /// common case — means "always route canonically". Rebuilt by
    /// [`MultiGpuSystem::set_fault_plan`]; the per-access lookup is a
    /// binary search, so the steady state stays allocation-free.
    fault_epochs: Vec<FaultEpoch>,
    stats: SystemStats,
    /// Cycle-accurate event tracer ([`crate::telemetry`]). Disabled by
    /// default: every hook is then one branch, no RNG, no timing change
    /// — a traced run is bit-identical to an untraced one either way.
    trace: TraceSink,
    rng: ChaCha8Rng,
    next_agent: u32,
    tlb_entries: usize,
    /// Whether contention bookkeeping can ever be observed. False for
    /// noiseless configs (`contention_per_actor`, `contention_spike_prob`
    /// and `nvlink_queue_per_req` all zero): pressure then feeds no
    /// latency term, no congestion draw and no statistic, so the window
    /// trackers are skipped entirely — the scans were the dominant cost
    /// of the contended noiseless hot path.
    track_pressure: bool,
}

impl MultiGpuSystem {
    /// Boots a box from a configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use gpubox_sim::{MultiGpuSystem, SystemConfig, GpuId};
    /// let mut sys = MultiGpuSystem::new(SystemConfig::dgx1());
    /// let pid = sys.create_process(GpuId::new(0));
    /// let buf = sys.malloc_on(pid, GpuId::new(0), 4096)?;
    /// let acc = sys.access(pid, sys.default_agent(pid), buf, 0, None)?;
    /// assert!(!acc.oracle.hit); // cold access misses
    /// # Ok::<(), gpubox_sim::SimError>(())
    /// ```
    pub fn new(cfg: SystemConfig) -> Self {
        let gpus = (0..cfg.num_gpus)
            .map(|i| GpuDevice {
                l2: L2Cache::new(&cfg.cache),
                hbm: Hbm::new(GpuId::new(i), cfg.hbm_bytes, cfg.page_size),
                sms: SmArray::new(cfg.sm.clone()),
            })
            .collect();
        let latency = LatencyModel::new(cfg.timing.clone());
        let track_pressure = cfg.timing.contention_per_actor > 0
            || cfg.timing.contention_spike_prob > 0.0
            || cfg.timing.nvlink_queue_per_req > 0;
        let pressure = (0..cfg.num_gpus)
            .map(|_| PressureTracker::new(track_pressure))
            .collect();
        let remote_pressure = (0..cfg.num_gpus)
            .map(|_| PressureTracker::new(track_pressure))
            .collect();
        let congested_until = vec![0u64; cfg.num_gpus as usize];
        let fabric = Fabric::new(&cfg.topology, &cfg.fabric);
        let fault_epochs = if cfg.fabric.enabled {
            build_epochs(&cfg.fabric.faults, &cfg.topology)
        } else {
            Vec::new()
        };
        let stats = SystemStats::new(cfg.num_gpus, cfg.topology.num_links());
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        MultiGpuSystem {
            cfg,
            gpus,
            processes: Vec::new(),
            latency,
            pressure,
            remote_pressure,
            congested_until,
            fabric,
            fault_epochs,
            stats,
            trace: TraceSink::disabled(),
            rng,
            next_agent: 0,
            tlb_entries: DEFAULT_TLB_ENTRIES,
            track_pressure,
        }
    }

    /// Resizes every process's software TLB (and that of processes created
    /// later) to `entries` slots (a power of two).
    ///
    /// This is a host-side performance knob only: simulated latencies,
    /// cache state and RNG consumption are bit-identical for every size.
    /// `1` reproduces the PR 1 one-entry TLB — the benches use it as the
    /// before-rung when measuring the batched probe paths.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn set_tlb_entries(&mut self, entries: usize) {
        self.tlb_entries = entries;
        for p in &mut self.processes {
            p.tlb = DirectTlb::new(entries, p.home);
        }
    }

    /// The configuration this box was booted with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The latency model (for cycle→seconds conversion etc.).
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SystemStats {
        &self.stats
    }

    /// Resets statistics counters (cache contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// The cycle-accurate event tracer (read side: drain
    /// [`TraceSink::records`] for export).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Mutable access to the tracer, for pipeline-level events recorded
    /// outside the box (the covert transport does this) or for
    /// clearing/disabling it.
    pub fn trace_mut(&mut self) -> &mut TraceSink {
        &mut self.trace
    }

    /// Enables cycle-accurate event tracing into a preallocated ring of
    /// at least `capacity` records (see [`crate::telemetry`]). This is
    /// the tracer's only allocation: recording afterwards is
    /// allocation-free, consumes no RNG and changes no timing, so a
    /// traced run stays bit-identical to an untraced one.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.trace.enable(capacity);
    }

    /// Whether event tracing is currently enabled.
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_enabled()
    }

    /// Clears transient timing state (pressure windows, congestion
    /// episodes, fabric link occupancy). Agent-local clocks restart from
    /// zero for every [`crate::engine::Engine`] run, so stale timestamps
    /// from a previous run must not leak into the next one; the engine
    /// calls this on construction.
    pub fn reset_timing_state(&mut self) {
        for t in &mut self.pressure {
            t.clear();
        }
        for t in &mut self.remote_pressure {
            t.clear();
        }
        for c in &mut self.congested_until {
            *c = 0;
        }
        self.fabric.reset();
    }

    /// Collapses the box to a canonical phase boundary: flushes every
    /// GPU's L2 (contents and per-set counters), clears transient timing
    /// state, resets statistics and reseeds the RNG deterministically
    /// from `cfg.seed ^ tag` (splitmix64-mixed so distinct tags give
    /// unrelated streams).
    ///
    /// The point is *path-independence*: two runs that reach the same
    /// boundary with the same processes and allocations — no matter how
    /// many accesses each issued to get there — behave bit-identically
    /// afterwards. The offline-phase cache relies on this: a prepare that
    /// reuses cached page classes (issuing no discovery accesses) and one
    /// that derives them from scratch canonicalise to the same state, so
    /// downstream channel output is asserted equal. Frame placement is
    /// the one piece of history that survives (allocations are not
    /// undone), which is why both paths must malloc identically first.
    pub fn canonicalize_phase(&mut self, tag: u64) {
        // Node pooling (fleet) recycles a box through this boundary and
        // asserts the next tenant epoch is bit-identical to a freshly
        // built node's, so everything observable must rewind: the trace
        // ring is emptied (enablement and storage kept — the boundary's
        // own PhaseMark becomes record zero, exactly as on a fresh node)
        // and the agent-id counter restarts.
        self.trace.clear();
        self.next_agent = 0;
        self.trace
            .record(TraceKind::PhaseMark, 0, crate::telemetry::NO_PROCESS, tag, 0);
        for g in &mut self.gpus {
            g.l2.flush();
        }
        self.reset_timing_state();
        self.reset_stats();
        let mut z = (self.cfg.seed ^ tag).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.rng = ChaCha8Rng::seed_from_u64(z ^ (z >> 31));
    }

    /// Whether the timed per-link fabric model is active.
    pub fn fabric_enabled(&self) -> bool {
        self.fabric.enabled()
    }

    /// Deploys (or retracts) a fabric QoS / defence configuration
    /// **at runtime**: rate limiting, traffic shaping and valiant
    /// routing take effect from the next access on, with fresh token
    /// buckets for every existing process. This is the
    /// "defence switched on after the attacker calibrated" scenario of
    /// `ext_fabric_defense`; bake the config into
    /// [`crate::fabric::FabricConfig::with_qos`] instead when the
    /// offline attack phase should re-derive its thresholds under the
    /// defence.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::FabricDisabled`] when the system was booted
    /// without the timed link fabric — QoS has nothing to act on
    /// there — and [`SimError::InvalidQosConfig`] for degenerate
    /// parameters (zero rate, epoch or span).
    pub fn set_qos(&mut self, qos: crate::qos::QosConfig) -> SimResult<()> {
        if !self.fabric.enabled() {
            return Err(SimError::FabricDisabled);
        }
        qos.validate().map_err(SimError::InvalidQosConfig)?;
        self.cfg.fabric.qos = qos;
        self.fabric = Fabric::new(&self.cfg.topology, &self.cfg.fabric);
        for _ in 0..self.processes.len() {
            self.fabric.register_process();
        }
        Ok(())
    }

    /// Deploys (or retracts, with [`FaultPlan::none`]) a fault-injection
    /// plan **at runtime**: scheduled link outages (with per-epoch
    /// rerouting and PCIe fallback), degraded links and seeded transient
    /// stalls take effect from the next access on. Fabric occupancy
    /// state is rebuilt (token buckets refill for every existing
    /// process) and the outage routing epochs are precomputed here, so
    /// the access paths stay allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::FabricDisabled`] when the system was booted
    /// without the timed link fabric — faults have nothing to act on
    /// there — [`SimError::InvalidFaultPlan`] for degenerate parameters
    /// ([`FaultPlan::validate`]), and [`SimError::NoSuchLink`] when the
    /// plan names a link the topology does not have.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> SimResult<()> {
        if !self.fabric.enabled() {
            return Err(SimError::FabricDisabled);
        }
        plan.validate().map_err(SimError::InvalidFaultPlan)?;
        if let Some(l) = plan.max_link() {
            if (l as usize) >= self.cfg.topology.num_links() {
                return Err(SimError::NoSuchLink(l));
            }
        }
        self.cfg.fabric.faults = plan;
        self.fabric = Fabric::new(&self.cfg.topology, &self.cfg.fabric);
        for _ in 0..self.processes.len() {
            self.fabric.register_process();
        }
        self.fault_epochs = build_epochs(&self.cfg.fabric.faults, &self.cfg.topology);
        if self.trace.is_enabled() {
            // Put each *installed* outage window in the trace next to
            // the stalls later *observed* inside it.
            for d in &self.cfg.fabric.faults.link_downs {
                self.trace.record(
                    TraceKind::FaultEpoch,
                    d.at,
                    crate::telemetry::NO_PROCESS,
                    d.recover_at,
                    u64::from(d.link),
                );
            }
        }
        Ok(())
    }

    /// Epoch-aware route resolution: with no outage epochs (the common
    /// case, and always when faults are off) this is exactly
    /// [`crate::topology::Topology::route`] on the canonical topology.
    /// Otherwise the epoch covering `now` decides: the surviving graph's
    /// route (counting a reroute when it changed the canonical NVLink
    /// path), the PCIe root complex when the pair is partitioned, or —
    /// when the plan refuses the fallback — [`SimError::LinkDown`].
    fn resolve_route(
        &mut self,
        pid: ProcessId,
        issuer: GpuId,
        home: GpuId,
        now: u64,
    ) -> SimResult<Route> {
        if issuer == home || self.fault_epochs.is_empty() {
            return Ok(self.cfg.topology.route(issuer, home));
        }
        // Epochs start at cycle 0 and are sorted, so the partition point
        // is always ≥ 1.
        let idx = self.fault_epochs.partition_point(|e| e.start <= now) - 1;
        let ep = &self.fault_epochs[idx];
        let Some(topo) = &ep.topo else {
            return Ok(self.cfg.topology.route(issuer, home));
        };
        let route = topo.route(issuer, home);
        if self.cfg.topology.route(issuer, home).kind == LinkKind::NvLink {
            match route.kind {
                LinkKind::NvLink => {
                    if topo.path(issuer, home) != self.cfg.topology.path(issuer, home) {
                        self.stats.fault_mut().reroutes += 1;
                        self.trace.record(
                            TraceKind::FaultReroute,
                            now,
                            pid.0,
                            issuer.index() as u64,
                            home.index() as u64,
                        );
                    }
                }
                LinkKind::Pcie => {
                    if self.cfg.fabric.faults.pcie_fallback {
                        self.stats.fault_mut().pcie_fallbacks += 1;
                        self.trace.record(
                            TraceKind::PcieFallback,
                            now,
                            pid.0,
                            issuer.index() as u64,
                            home.index() as u64,
                        );
                    } else {
                        self.stats.fault_mut().refused_accesses += 1;
                        return Err(SimError::LinkDown(ep.first_down));
                    }
                }
                LinkKind::Local => {}
            }
        }
        Ok(route)
    }

    /// Counters of one NVLink link (bytes, requests, busy/queue cycles);
    /// all zero unless the fabric model is enabled.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchLink`] when the id is not a link of this
    /// system's topology.
    pub fn link_stats(&self, l: LinkId) -> SimResult<&LinkStats> {
        self.stats.link(l).ok_or(SimError::NoSuchLink(l.0))
    }

    /// Creates a process whose kernels run on `home`.
    ///
    /// # Panics
    ///
    /// Panics if `home` does not exist.
    pub fn create_process(&mut self, home: GpuId) -> ProcessId {
        assert!(home.index() < self.gpus.len(), "no such gpu {home}");
        let pid = ProcessId(self.processes.len() as u32);
        self.processes.push(Process {
            home,
            aspace: AddressSpace::new(self.cfg.page_size),
            peers: HashSet::new(),
            partition: None,
            tlb: DirectTlb::new(self.tlb_entries, home),
        });
        // The QoS layer's token buckets are per (process, link window):
        // allocating them here keeps the engine's steady-state loop
        // allocation-free.
        self.fabric.register_process();
        pid
    }

    /// The default contention agent of a process (one per process).
    pub fn default_agent(&self, pid: ProcessId) -> AgentId {
        AgentId(pid.0)
    }

    /// Allocates a fresh agent id for an additional concurrent actor
    /// (thread block) — used by the event engine.
    pub fn new_agent(&mut self) -> AgentId {
        self.next_agent += 1;
        AgentId(1_000_000 + self.next_agent)
    }

    /// The GPU a process's kernels run on.
    pub fn process_home(&self, pid: ProcessId) -> GpuId {
        self.processes[pid.0 as usize].home
    }

    /// Confines a process to MIG-style L2 partition `index` of `count`
    /// equal slices (the Sec. VII isolation defence). All of the process's
    /// lines — local or arriving over NVLink — cache only within its
    /// slice, so processes in different partitions cannot contend.
    ///
    /// # Panics
    ///
    /// Panics if `index >= count` or `count` is 0 or exceeds the set count.
    pub fn set_cache_partition(&mut self, pid: ProcessId, index: u32, count: u32) {
        assert!(count > 0 && index < count, "bad partition {index}/{count}");
        assert!(
            u64::from(count) <= self.cfg.cache.num_sets(),
            "more partitions than sets"
        );
        self.processes[pid.0 as usize].partition = Some((index, count));
    }

    fn process(&self, pid: ProcessId) -> SimResult<&Process> {
        self.processes
            .get(pid.0 as usize)
            .ok_or(SimError::NoSuchProcess(pid.0))
    }

    /// Mirrors `cudaDeviceEnablePeerAccess`: allows `pid` to map and access
    /// memory on `remote`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PeerAccessUnavailable`] when the GPUs share no
    /// direct NVLink (the DGX-1 runtime behaviour the paper reports) unless
    /// [`SystemConfig::allow_indirect_peer`] is set.
    pub fn enable_peer_access(&mut self, pid: ProcessId, remote: GpuId) -> SimResult<()> {
        if remote.index() >= self.gpus.len() {
            return Err(SimError::NoSuchGpu(remote));
        }
        let home = self.process(pid)?.home;
        if home != remote
            && !self.cfg.topology.direct_nvlink(home, remote)
            && !self.cfg.allow_indirect_peer
        {
            return Err(SimError::PeerAccessUnavailable {
                from: home,
                to: remote,
            });
        }
        self.processes[pid.0 as usize].peers.insert(remote);
        Ok(())
    }

    /// Allocates `bytes` of device memory homed on `gpu` and returns the
    /// virtual base address. Pages get random physical frames.
    ///
    /// # Errors
    ///
    /// - [`SimError::InvalidAllocation`] for zero-size requests.
    /// - [`SimError::PeerAccessNotEnabled`] when allocating on a GPU other
    ///   than the process home without peer access.
    /// - [`SimError::OutOfMemory`] when the target HBM is full.
    pub fn malloc_on(&mut self, pid: ProcessId, gpu: GpuId, bytes: u64) -> SimResult<VirtAddr> {
        if bytes == 0 {
            return Err(SimError::InvalidAllocation(bytes));
        }
        if gpu.index() >= self.gpus.len() {
            return Err(SimError::NoSuchGpu(gpu));
        }
        let home = self.process(pid)?.home;
        if gpu != home && !self.process(pid)?.peers.contains(&gpu) {
            return Err(SimError::PeerAccessNotEnabled { remote: gpu });
        }
        let pages = bytes.div_ceil(self.cfg.page_size);
        let mut frames = Vec::with_capacity(pages as usize);
        for _ in 0..pages {
            let f = self.gpus[gpu.index()].hbm.alloc_frame(&mut self.rng)?;
            let base = self.gpus[gpu.index()].hbm.frame_base(f);
            frames.push((gpu, base));
        }
        Ok(self.processes[pid.0 as usize].aspace.map_region(&frames))
    }

    /// Performs one timed access. `write` carries the value for a store
    /// (the L2 is write-allocate, so loads and stores behave identically
    /// for cache state). `now` is the issuing agent's current clock.
    ///
    /// This is the simulator's analogue of the paper's `__ldcg()` loads:
    /// L1 is bypassed and everything is cached in the home GPU's L2.
    ///
    /// # Errors
    ///
    /// Propagates translation and peer-access errors.
    pub fn access(
        &mut self,
        pid: ProcessId,
        agent: AgentId,
        va: VirtAddr,
        now: u64,
        write: Option<u64>,
    ) -> SimResult<MemAccess> {
        debug_assert!(self.cfg.page_size.is_power_of_two());
        let page_shift = self.cfg.page_size.trailing_zeros();
        let page_mask = self.cfg.page_size - 1;
        let (home, issuer, partition) = {
            let p = self
                .processes
                .get_mut(pid.0 as usize)
                .ok_or(SimError::NoSuchProcess(pid.0))?;
            let m = p.translate_page(va.0 >> page_shift, va)?;
            (
                PhysLoc {
                    gpu: m.gpu,
                    addr: PhysAddr(m.frame_base.0 + (va.0 & page_mask)),
                },
                p.home,
                p.partition,
            )
        };
        let route = self.resolve_route(pid, issuer, home.gpu, now)?;
        let (hit, set, latency) =
            self.access_resolved(pid, issuer, home.gpu, home.addr, partition, agent, now, route);

        // Backing store (no RNG, no timing effect — order relative to the
        // timing pass is unobservable).
        let dev = &mut self.gpus[home.gpu.index()];
        let value = match write {
            Some(v) => {
                dev.hbm.write_word(home.addr, v);
                v
            }
            None => dev.hbm.read_word(home.addr),
        };

        Ok(MemAccess {
            value,
            latency,
            oracle: AccessOracle {
                hit,
                home: home.gpu,
                set,
                route,
            },
        })
    }

    /// The shared access core once the physical location is known: cache
    /// lookup (counters and replacement metadata update in the same pass,
    /// and the landing set comes back with the outcome — no second set
    /// lookup), contention pressure, latency, congestion episodes, fabric
    /// traversal and statistics.
    ///
    /// RNG consumption order is identical to the original scalar path:
    /// cache (random replacement only) → jitter → congestion draws. The
    /// fabric traversal — including the whole QoS layer (token buckets,
    /// shaping, valiant picks, all counter-indexed splitmix64 streams) —
    /// consumes no RNG, so enabling either never shifts the random
    /// stream.
    #[allow(clippy::too_many_arguments)] // flat parameter list keeps the hot path monomorphic
    fn access_resolved(
        &mut self,
        pid: ProcessId,
        issuer: GpuId,
        home: GpuId,
        pa: PhysAddr,
        partition: Option<(u32, u32)>,
        agent: AgentId,
        now: u64,
        route: Route,
    ) -> (bool, SetIndex, u32) {
        let window = self.cfg.timing.contention_window;

        // Cache lookup on the HOME GPU's L2 — the paper's key finding.
        let (outcome, set) =
            self.gpus[home.index()]
                .l2
                .access_located(pa, &mut self.rng, partition);
        let hit = outcome.is_hit();
        if self.trace.is_enabled() {
            let set_w = set.raw() as u64;
            match outcome {
                crate::cache::AccessOutcome::Hit => {
                    self.trace.record(TraceKind::L2Hit, now, pid.0, set_w, pa.0);
                }
                crate::cache::AccessOutcome::Miss { evicted } => {
                    self.trace.record(TraceKind::L2Miss, now, pid.0, set_w, pa.0);
                    if let Some(e) = evicted {
                        self.trace.record(TraceKind::L2Evict, now, pid.0, set_w, e);
                    }
                }
            }
        }

        // Contention pressure on the home GPU's L2/ports. When no timing
        // term can observe pressure (noiseless configs) the window
        // trackers are skipped wholesale — `pressure == 0` then produces
        // the same latency, no congestion draw and no RNG consumption.
        let pressure = if self.track_pressure {
            let tracker = &mut self.pressure[home.index()];
            let p = tracker.pressure(now, agent, window);
            tracker.record(now, agent, window);
            p
        } else {
            0
        };

        // Fault epochs: the routing table covering this access's issue
        // time (`None` = canonical). A batch access may carry a route
        // resolved at batch start into a later epoch; paths below then
        // come from the issue-time epoch, falling back to the canonical
        // path (and its down-link stall) when the epoch has none.
        let epoch_topo = if self.fault_epochs.is_empty() {
            None
        } else {
            let idx = self.fault_epochs.partition_point(|e| e.start <= now) - 1;
            self.fault_epochs[idx].topo.as_ref()
        };

        // Valiant routing (QoS defence): pick this line's intermediate
        // *before* the latency draw so the per-hop latency term covers
        // the hops actually traversed. The pick consumes no RNG, so the
        // canonical path — and every QoS-off simulation — is untouched.
        // Suspended during outage epochs: a detour segment could cross a
        // failed link the rerouted table avoids.
        let mut fabric_route = route;
        let mut valiant_mid = None;
        if home != issuer
            && self.fabric.enabled()
            && route.kind == LinkKind::NvLink
            && epoch_topo.is_none()
        {
            if let Some(mid) = self.fabric.valiant_pick(&self.cfg.topology, issuer, home) {
                let hops = (self.cfg.topology.path(issuer, mid).len()
                    + self.cfg.topology.path(mid, home).len()) as u32;
                let q = self.stats.qos_mut();
                q.valiant_detours += 1;
                q.valiant_extra_hops += u64::from(hops - route.hops);
                self.trace.record(
                    TraceKind::ValiantDetour,
                    now,
                    pid.0,
                    mid.index() as u64,
                    u64::from(hops),
                );
                fabric_route = Route {
                    kind: LinkKind::NvLink,
                    hops,
                };
                valiant_mid = Some(mid);
            }
        }

        let mut latency = self
            .latency
            .access_latency(fabric_route, hit, pressure, &mut self.rng);
        if self.track_pressure {
            // NVLink serialisation: concurrent remote requesters to the
            // same home GPU queue on the link. This scalar term is the
            // pre-fabric approximation of link queueing; when the timed
            // fabric is enabled the same physical contention is modelled
            // per-link via occupancy windows below, so the approximation
            // is skipped rather than double-charged.
            if home != issuer && !self.fabric.enabled() {
                let rt = &mut self.remote_pressure[home.index()];
                let rp = rt.pressure(now, agent, window);
                rt.record(now, agent, window);
                latency += self.cfg.timing.nvlink_queue_per_req * rp;
            }
            // Bursty congestion episodes: under pressure, an access can
            // tip the home GPU's ports into a congested burst during which
            // every access pays a penalty. Whole-slot corruption of the
            // covert channel (the Fig. 9 error growth) comes from these
            // episodes.
            let t = &self.cfg.timing;
            if now < self.congested_until[home.index()] {
                latency += t.contention_spike_cycles
                    + (self.rng.gen::<u32>() % (t.contention_spike_cycles / 2 + 1));
            } else if pressure > 0
                && t.contention_spike_prob > 0.0
                && self
                    .rng
                    .gen_bool((t.contention_spike_prob * f64::from(pressure)).min(1.0))
            {
                self.congested_until[home.index()] = now + t.congestion_cycles;
                self.stats.gpu_mut(home).congestion_episodes += 1;
                latency += t.contention_spike_cycles;
            }
        }

        // Timed fabric: route the line across the physical links of the
        // shortest path (or through the PCIe root complex), accumulating
        // queue waits and per-link serialisation store-and-forward. Off
        // by default; deterministic (no RNG) when on.
        if home != issuer && self.fabric.enabled() {
            let line = self.cfg.cache.line_size;
            let extra = match route.kind {
                LinkKind::NvLink => match valiant_mid {
                    // Valiant detour: two canonical segments traversed
                    // store-and-forward through the intermediate.
                    Some(mid) => {
                        let p1 = self.cfg.topology.path(issuer, mid);
                        let d1 = self.cfg.topology.path_dirs(issuer, mid);
                        let e1 = self.fabric.traverse(
                            pid,
                            p1,
                            d1,
                            now,
                            line,
                            &mut self.stats,
                            &mut self.trace,
                        );
                        let p2 = self.cfg.topology.path(mid, home);
                        let d2 = self.cfg.topology.path_dirs(mid, home);
                        e1 + self.fabric.traverse(
                            pid,
                            p2,
                            d2,
                            now + e1,
                            line,
                            &mut self.stats,
                            &mut self.trace,
                        )
                    }
                    None => {
                        let topo = epoch_topo.unwrap_or(&self.cfg.topology);
                        let mut path = topo.path(issuer, home);
                        let mut dirs = topo.path_dirs(issuer, home);
                        if path.is_empty() {
                            // A stale NVLink route carried into an epoch
                            // that partitions the pair: the in-flight
                            // line follows the canonical path and stalls
                            // at the dead link until recovery.
                            path = self.cfg.topology.path(issuer, home);
                            dirs = self.cfg.topology.path_dirs(issuer, home);
                        }
                        self.fabric.traverse(
                            pid,
                            path,
                            dirs,
                            now,
                            line,
                            &mut self.stats,
                            &mut self.trace,
                        )
                    }
                },
                LinkKind::Pcie => {
                    self.fabric
                        .traverse_pcie(pid, now, line, &mut self.stats, &mut self.trace)
                }
                LinkKind::Local => 0,
            };
            latency = latency.saturating_add(u32::try_from(extra).unwrap_or(u32::MAX));
        }

        // Statistics.
        let st = self.stats.gpu_mut(home);
        if hit {
            st.l2_hits += 1;
        } else {
            st.l2_misses += 1;
        }
        if home != issuer {
            st.remote_served += 1;
            match route.kind {
                // Bytes are counted once per traversed hop: a 2-hop line
                // crosses two physical links and costs the fabric twice
                // the bandwidth of a direct transfer (valiant detours
                // charge the hops actually walked).
                LinkKind::NvLink => {
                    self.stats.gpu_mut(issuer).nvlink_bytes +=
                        self.cfg.cache.line_size * u64::from(fabric_route.hops)
                }
                LinkKind::Pcie => self.stats.gpu_mut(issuer).pcie_accesses += 1,
                // A local route cannot serve a remote access.
                LinkKind::Local => debug_assert!(false, "local route with home != issuer"),
            }
        }
        self.stats.gpu_mut(issuer).issued_accesses += 1;

        (hit, set, latency)
    }

    /// Issues a warp-parallel batch of loads (all 32 threads of a block
    /// issuing together, as the covert channel's probe does). Returns the
    /// per-line latencies and the total duration: loads overlap, separated
    /// by the issue gap, so the batch completes much faster than a serial
    /// pointer chase.
    ///
    /// Convenience wrapper over [`MultiGpuSystem::access_batch_into`] that
    /// allocates the latency buffer; hot loops that probe repeatedly
    /// should hold a buffer and call `access_batch_into` directly.
    ///
    /// # Errors
    ///
    /// Fails on the first address that does not translate.
    pub fn access_batch(
        &mut self,
        pid: ProcessId,
        agent: AgentId,
        vas: &[VirtAddr],
        now: u64,
    ) -> SimResult<BatchAccess> {
        let mut latencies = Vec::with_capacity(vas.len());
        let summary = self.access_batch_into(pid, agent, vas, now, &mut latencies)?;
        Ok(BatchAccess {
            latencies,
            duration: summary.duration,
            hits: summary.hits,
        })
    }

    /// The true batched access path: translates once per virtual page and
    /// streams line accesses, appending one latency per line to the
    /// caller-provided buffer with no per-access allocation or page-table
    /// lookup.
    ///
    /// Consecutive probe addresses overwhelmingly stay within one GPU
    /// page (eviction sets are built from page-class lines), so the
    /// translation cache hits almost always; on a page change the mapping
    /// and route are recomputed once.
    ///
    /// # Errors
    ///
    /// Fails on the first address whose page does not translate or whose
    /// home GPU lacks peer access.
    pub fn access_batch_into(
        &mut self,
        pid: ProcessId,
        agent: AgentId,
        vas: &[VirtAddr],
        now: u64,
        latencies: &mut Vec<u32>,
    ) -> SimResult<BatchSummary> {
        let (issuer, partition) = {
            let p = self.process(pid)?;
            (p.home, p.partition)
        };
        let page_size = self.cfg.page_size;
        debug_assert!(page_size.is_power_of_two(), "page size is a power of two");
        let page_shift = page_size.trailing_zeros();
        let page_mask = page_size - 1;
        let gap = self.latency.issue_gap() as u64;

        let mut duration = 0u64;
        let mut hits = 0u32;
        // Page-translation cache: `u64::MAX` is unreachable as a VPN.
        let mut cached_vpn = u64::MAX;
        let mut cached = Mapping {
            gpu: issuer,
            frame_base: PhysAddr(0),
        };
        let mut route = Route::local();
        latencies.reserve(vas.len());

        for (i, &va) in vas.iter().enumerate() {
            let vpn = va.0 >> page_shift;
            if vpn != cached_vpn {
                let m = self.processes[pid.0 as usize].translate_page(vpn, va)?;
                // Routes are resolved against the fault epoch at batch
                // start: a warp commits its transfers to the link engine
                // when it issues, so lines of a batch that straddles an
                // outage boundary follow their already-resolved route
                // and stall at the dead link (down-wait) rather than
                // rerouting mid-batch.
                route = self.resolve_route(pid, issuer, m.gpu, now)?;
                cached_vpn = vpn;
                cached = m;
            }
            let pa = PhysAddr(cached.frame_base.0 + (va.0 & page_mask));
            let issue_at = now + gap * i as u64;
            let (hit, _set, latency) =
                self.access_resolved(pid, issuer, cached.gpu, pa, partition, agent, issue_at, route);
            hits += u32::from(hit);
            duration = duration.max(gap * i as u64 + u64::from(latency));
            latencies.push(latency);
        }
        Ok(BatchSummary { duration, hits })
    }

    /// Host-side initialisation of device memory (`cudaMemcpy`-style DMA):
    /// writes words starting at `va` without touching the L2 or the clock.
    ///
    /// # Errors
    ///
    /// Fails if any address in the range does not translate.
    pub fn write_words(&mut self, pid: ProcessId, va: VirtAddr, words: &[u64]) -> SimResult<()> {
        for (i, &w) in words.iter().enumerate() {
            let loc = self
                .process(pid)?
                .aspace
                .translate(va.offset(8 * i as u64))?;
            self.gpus[loc.gpu.index()].hbm.write_word(loc.addr, w);
        }
        Ok(())
    }

    /// Host-side read of one device word (no timing, no cache effect).
    ///
    /// # Errors
    ///
    /// Fails if the address does not translate.
    pub fn read_word(&self, pid: ProcessId, va: VirtAddr) -> SimResult<u64> {
        let loc = self.process(pid)?.aspace.translate(va)?;
        Ok(self.gpus[loc.gpu.index()].hbm.read_word(loc.addr))
    }

    /// Ground truth: the physical cache set a virtual address maps to.
    /// Attack code must not call this; experiments use it for validation.
    ///
    /// # Errors
    ///
    /// Fails if the address does not translate.
    pub fn oracle_set_of(&self, pid: ProcessId, va: VirtAddr) -> SimResult<(GpuId, SetIndex)> {
        let p = self.process(pid)?;
        let loc = p.aspace.translate(va)?;
        Ok((
            loc.gpu,
            self.gpus[loc.gpu.index()]
                .l2
                .set_of_partitioned(loc.addr, p.partition),
        ))
    }

    /// Ground truth: whether the line containing `va` is resident in its
    /// home L2.
    ///
    /// # Errors
    ///
    /// Fails if the address does not translate.
    pub fn oracle_resident(&self, pid: ProcessId, va: VirtAddr) -> SimResult<bool> {
        let p = self.process(pid)?;
        let loc = p.aspace.translate(va)?;
        Ok(self.gpus[loc.gpu.index()]
            .l2
            .probe_resident_partitioned(loc.addr, p.partition))
    }

    /// Ground-truth per-set `(hits, misses)` of one GPU's L2.
    pub fn oracle_set_stats(&self, gpu: GpuId, set: SetIndex) -> (u64, u64) {
        self.gpus[gpu.index()].l2.set_stats(set)
    }

    /// Flushes one GPU's L2 (between experiment repetitions).
    pub fn flush_l2(&mut self, gpu: GpuId) {
        self.gpus[gpu.index()].l2.flush();
    }

    /// Launches a kernel on a GPU's SM array (resource accounting only).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InsufficientSmResources`] when it does not fit.
    pub fn launch_kernel(&mut self, gpu: GpuId, launch: KernelLaunch) -> SimResult<KernelId> {
        self.gpus[gpu.index()].sms.launch(launch)
    }

    /// Terminates a resident kernel.
    pub fn terminate_kernel(&mut self, gpu: GpuId, id: KernelId) {
        self.gpus[gpu.index()].sms.terminate(id);
    }

    /// Whether a kernel of the given shape could launch right now.
    pub fn can_launch(&self, gpu: GpuId, launch: &KernelLaunch) -> bool {
        self.gpus[gpu.index()].sms.can_launch(launch)
    }

    /// The SM array of one GPU (read-only).
    pub fn sm_array(&self, gpu: GpuId) -> &SmArray {
        &self.gpus[gpu.index()].sms
    }

    /// Physical address of `va` — for experiment bookkeeping only.
    ///
    /// # Errors
    ///
    /// Fails if the address does not translate.
    pub fn oracle_translate(&self, pid: ProcessId, va: VirtAddr) -> SimResult<(GpuId, PhysAddr)> {
        let loc = self.process(pid)?.aspace.translate(va)?;
        Ok((loc.gpu, loc.addr))
    }

    /// Draws from the system RNG (for experiment helpers needing
    /// reproducible randomness tied to the system seed).
    pub fn rng_u64(&mut self) -> u64 {
        self.rng.gen()
    }
}

/// Result of a warp-parallel batch access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchAccess {
    /// Per-line latency as each thread's `clock()` pair would report.
    pub latencies: Vec<u32>,
    /// Cycles until the whole batch completed (with issue-gap overlap).
    pub duration: u64,
    /// Ground truth: how many lines hit.
    pub hits: u32,
}

/// Aggregate result of [`MultiGpuSystem::access_batch_into`]; per-line
/// latencies land in the caller's buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSummary {
    /// Cycles until the whole batch completed (with issue-gap overlap).
    pub duration: u64,
    /// Ground truth: how many lines hit.
    pub hits: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn boot() -> MultiGpuSystem {
        MultiGpuSystem::new(SystemConfig::small_test().noiseless())
    }

    #[test]
    fn local_access_miss_then_hit_timing() {
        let mut sys = boot();
        let p = sys.create_process(GpuId::new(0));
        let a = sys.default_agent(p);
        let buf = sys.malloc_on(p, GpuId::new(0), 4096).unwrap();
        let cold = sys.access(p, a, buf, 0, None).unwrap();
        let warm = sys.access(p, a, buf, 1000, None).unwrap();
        assert!(!cold.oracle.hit);
        assert!(warm.oracle.hit);
        assert_eq!(cold.latency, 450);
        assert_eq!(warm.latency, 270);
    }

    #[test]
    fn remote_access_cached_on_home_gpu() {
        let mut sys = boot();
        let spy = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
        let buf = sys.malloc_on(spy, GpuId::new(0), 4096).unwrap();
        let cold = sys
            .access(spy, sys.default_agent(spy), buf, 0, None)
            .unwrap();
        let warm = sys
            .access(spy, sys.default_agent(spy), buf, 2000, None)
            .unwrap();
        // Served by GPU0 (home), over one NVLink hop.
        assert_eq!(cold.oracle.home, GpuId::new(0));
        assert_eq!(cold.latency, 950);
        assert_eq!(warm.latency, 630);
        // The line is resident in GPU0's L2 — visible to a GPU0 process too.
        let local = sys.create_process(GpuId::new(0));
        assert_eq!(sys.stats().gpu(GpuId::new(0)).remote_served, 2);
        let _ = local;
    }

    #[test]
    fn peer_access_required_for_remote_malloc() {
        let mut sys = boot();
        let p = sys.create_process(GpuId::new(1));
        let err = sys.malloc_on(p, GpuId::new(0), 4096).unwrap_err();
        assert_eq!(
            err,
            SimError::PeerAccessNotEnabled {
                remote: GpuId::new(0)
            }
        );
    }

    #[test]
    fn non_nvlink_peer_access_refused() {
        // On a DGX-1, GPU0 and GPU5 are two hops apart — the runtime
        // refuses peer access (paper Sec. III-A).
        let mut sys = MultiGpuSystem::new(SystemConfig::dgx1().noiseless());
        let p = sys.create_process(GpuId::new(0));
        let err = sys.enable_peer_access(p, GpuId::new(5)).unwrap_err();
        assert_eq!(
            err,
            SimError::PeerAccessUnavailable {
                from: GpuId::new(0),
                to: GpuId::new(5)
            }
        );
        assert!(sys.enable_peer_access(p, GpuId::new(1)).is_ok());
    }

    #[test]
    fn cross_process_contention_on_shared_home_cache() {
        // Trojan on GPU0, spy on GPU1; both buffers homed on GPU0. Trojan
        // filling a set evicts the spy's lines there — the covert channel's
        // physical mechanism.
        let mut sys = boot();
        let trojan = sys.create_process(GpuId::new(0));
        let spy = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
        // Big allocations so both cover many sets.
        let tb = sys.malloc_on(trojan, GpuId::new(0), 1 << 20).unwrap();
        let sb = sys.malloc_on(spy, GpuId::new(0), 1 << 20).unwrap();

        // Find a spy line and a trojan line in the same set (via oracle).
        let (_, target_set) = sys.oracle_set_of(spy, sb).unwrap();
        let line = sys.config().cache.line_size;
        let ways = sys.config().cache.ways as u64;
        let mut trojan_same_set = Vec::new();
        for k in 0..(1u64 << 20) / line {
            let va = tb.offset(k * line);
            if sys.oracle_set_of(trojan, va).unwrap().1 == target_set {
                trojan_same_set.push(va);
            }
            if trojan_same_set.len() as u64 > ways {
                break;
            }
        }
        assert!(
            trojan_same_set.len() as u64 > ways,
            "need >16 conflicting lines"
        );

        // Spy caches its line; trojan fills the set; spy must now miss.
        sys.access(spy, sys.default_agent(spy), sb, 0, None)
            .unwrap();
        assert!(sys.oracle_resident(spy, sb).unwrap());
        for (i, &va) in trojan_same_set.iter().enumerate() {
            sys.access(trojan, sys.default_agent(trojan), va, 100 + i as u64, None)
                .unwrap();
        }
        assert!(
            !sys.oracle_resident(spy, sb).unwrap(),
            "trojan must evict spy line"
        );
        let probe = sys
            .access(spy, sys.default_agent(spy), sb, 10_000, None)
            .unwrap();
        assert_eq!(probe.latency, 950, "spy sees a remote miss = bit 1");
    }

    #[test]
    fn write_words_then_timed_reads() {
        let mut sys = boot();
        let p = sys.create_process(GpuId::new(0));
        let a = sys.default_agent(p);
        let buf = sys.malloc_on(p, GpuId::new(0), 4096).unwrap();
        sys.write_words(p, buf, &[7, 8, 9]).unwrap();
        assert_eq!(sys.access(p, a, buf.offset(8), 0, None).unwrap().value, 8);
        assert_eq!(sys.read_word(p, buf.offset(16)).unwrap(), 9);
    }

    #[test]
    fn batch_access_overlaps_latencies() {
        let mut sys = boot();
        let p = sys.create_process(GpuId::new(0));
        let a = sys.default_agent(p);
        let buf = sys.malloc_on(p, GpuId::new(0), 64 * 1024).unwrap();
        let line = sys.config().cache.line_size;
        let vas: Vec<VirtAddr> = (0..16).map(|i| buf.offset(i * line)).collect();
        let b = sys.access_batch(p, a, &vas, 0).unwrap();
        assert_eq!(b.latencies.len(), 16);
        let serial: u64 = b.latencies.iter().map(|&l| u64::from(l)).sum();
        assert!(
            b.duration < serial,
            "batch should overlap: {} vs {serial}",
            b.duration
        );
    }

    #[test]
    fn zero_byte_malloc_rejected() {
        let mut sys = boot();
        let p = sys.create_process(GpuId::new(0));
        assert_eq!(
            sys.malloc_on(p, GpuId::new(0), 0),
            Err(SimError::InvalidAllocation(0))
        );
    }

    #[test]
    fn stats_track_issued_and_nvlink() {
        let mut sys = boot();
        let spy = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
        let buf = sys.malloc_on(spy, GpuId::new(0), 4096).unwrap();
        sys.access(spy, sys.default_agent(spy), buf, 0, None)
            .unwrap();
        assert_eq!(sys.stats().gpu(GpuId::new(1)).issued_accesses, 1);
        assert_eq!(sys.stats().gpu(GpuId::new(1)).nvlink_bytes, 128);
        assert_eq!(sys.stats().gpu(GpuId::new(0)).l2_misses, 1);
    }

    #[test]
    fn flush_l2_restores_cold_state() {
        let mut sys = boot();
        let p = sys.create_process(GpuId::new(0));
        let a = sys.default_agent(p);
        let buf = sys.malloc_on(p, GpuId::new(0), 4096).unwrap();
        sys.access(p, a, buf, 0, None).unwrap();
        sys.flush_l2(GpuId::new(0));
        let acc = sys.access(p, a, buf, 100, None).unwrap();
        assert!(!acc.oracle.hit);
    }

    #[test]
    fn partitioned_processes_cannot_contend() {
        // Sec. VII defence: disjoint L2 slices isolate the processes.
        let mut sys = boot();
        let a = sys.create_process(GpuId::new(0));
        let b = sys.create_process(GpuId::new(0));
        sys.set_cache_partition(a, 0, 2);
        sys.set_cache_partition(b, 1, 2);
        let abuf = sys.malloc_on(a, GpuId::new(0), 4096).unwrap();
        let bbuf = sys.malloc_on(b, GpuId::new(0), 256 * 1024).unwrap();
        sys.access(a, sys.default_agent(a), abuf, 0, None).unwrap();
        assert!(sys.oracle_resident(a, abuf).unwrap());
        // b sweeps its whole buffer — with only 32 sets per slice this
        // floods b's slice completely.
        for k in 0..(256 * 1024 / 128) {
            sys.access(b, sys.default_agent(b), bbuf.offset(k * 128), 100 + k, None)
                .unwrap();
        }
        assert!(
            sys.oracle_resident(a, abuf).unwrap(),
            "a's line must survive b's flood in the other slice"
        );
    }

    #[test]
    fn same_partition_processes_still_contend() {
        let mut sys = boot();
        let a = sys.create_process(GpuId::new(0));
        let b = sys.create_process(GpuId::new(0));
        sys.set_cache_partition(a, 1, 2);
        sys.set_cache_partition(b, 1, 2);
        let abuf = sys.malloc_on(a, GpuId::new(0), 4096).unwrap();
        let bbuf = sys.malloc_on(b, GpuId::new(0), 512 * 1024).unwrap();
        sys.access(a, sys.default_agent(a), abuf, 0, None).unwrap();
        for k in 0..(512 * 1024 / 128) {
            sys.access(b, sys.default_agent(b), bbuf.offset(k * 128), 100 + k, None)
                .unwrap();
        }
        assert!(
            !sys.oracle_resident(a, abuf).unwrap(),
            "co-partitioned flood must evict a's line"
        );
    }

    #[test]
    #[should_panic(expected = "bad partition")]
    fn invalid_partition_rejected() {
        let mut sys = boot();
        let p = sys.create_process(GpuId::new(0));
        sys.set_cache_partition(p, 2, 2);
    }

    #[test]
    fn tlb_size_never_changes_observable_results() {
        // The software TLB is a host-side cache: any size must produce
        // bit-identical latencies and RNG consumption. Run the same
        // jittered (RNG-consuming) sequence with the PR 1 one-entry TLB
        // and the default, over scalar and batched paths.
        let run = |entries: usize| -> Vec<u32> {
            let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
            sys.set_tlb_entries(entries);
            let p = sys.create_process(GpuId::new(0));
            let a = sys.default_agent(p);
            let buf = sys.malloc_on(p, GpuId::new(0), 64 * 1024).unwrap();
            let vas: Vec<VirtAddr> = (0..32).map(|i| buf.offset(i * 128 * 13)).collect();
            let mut lats = Vec::new();
            for (i, &va) in vas.iter().enumerate() {
                lats.push(sys.access(p, a, va, 300 * i as u64, None).unwrap().latency);
            }
            let mut lat_buf = Vec::new();
            sys.access_batch_into(p, a, &vas, 50_000, &mut lat_buf).unwrap();
            lats.extend(lat_buf);
            lats
        };
        assert_eq!(run(1), run(64));
    }

    #[test]
    fn indirect_peer_knob_allows_multi_hop() {
        // The same 2-hop pair the refusal test uses, with the policy knob
        // flipped: peer access is granted and routed over NVLink.
        let mut cfg = SystemConfig::dgx1().noiseless();
        cfg.allow_indirect_peer = true;
        let mut sys = MultiGpuSystem::new(cfg);
        let p = sys.create_process(GpuId::new(0));
        sys.enable_peer_access(p, GpuId::new(5)).unwrap();
        let buf = sys.malloc_on(p, GpuId::new(5), 4096).unwrap();
        let acc = sys.access(p, sys.default_agent(p), buf, 0, None).unwrap();
        assert_eq!(acc.oracle.route.kind, crate::topology::LinkKind::NvLink);
        assert_eq!(acc.oracle.route.hops, 2);
    }

    #[test]
    fn fabric_off_keeps_latency_and_links_untouched() {
        let mut sys = boot();
        let spy = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
        let buf = sys.malloc_on(spy, GpuId::new(0), 4096).unwrap();
        let acc = sys.access(spy, sys.default_agent(spy), buf, 0, None).unwrap();
        assert_eq!(acc.latency, 950, "scalar model latency unchanged");
        assert!(!sys.fabric_enabled());
        let l = sys.link_stats(LinkId(0)).unwrap();
        assert_eq!(*l, LinkStats::default(), "no bookkeeping with fabric off");
    }

    #[test]
    fn fabric_remote_access_pays_link_serialisation() {
        let cfg = SystemConfig::small_test()
            .noiseless()
            .with_fabric(crate::fabric::FabricConfig::nvlink_v1());
        let mut sys = MultiGpuSystem::new(cfg);
        let spy = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
        let buf = sys.malloc_on(spy, GpuId::new(0), 4096).unwrap();
        let cold = sys.access(spy, sys.default_agent(spy), buf, 0, None).unwrap();
        let warm = sys
            .access(spy, sys.default_agent(spy), buf, 2000, None)
            .unwrap();
        // One idle link: 10 service cycles on top of the scalar clusters.
        assert_eq!(cold.latency, 960);
        assert_eq!(warm.latency, 640);
        let link = sys.config().topology.link_between(GpuId::new(1), GpuId::new(0)).unwrap();
        let ls = *sys.link_stats(link).unwrap();
        assert_eq!(ls.requests, 2);
        assert_eq!(ls.bytes, 256);
        assert_eq!(ls.busy_cycles, 20);
        assert_eq!(ls.queue_cycles, 0);
    }

    #[test]
    fn fabric_multi_hop_counts_every_traversed_link() {
        let mut cfg = SystemConfig::small_test()
            .noiseless()
            .with_fabric(crate::fabric::FabricConfig::nvlink_v1());
        cfg.num_gpus = 3;
        cfg.topology = crate::topology::Topology::from_edges(3, &[(0, 1), (1, 2)]);
        cfg.allow_indirect_peer = true;
        let mut sys = MultiGpuSystem::new(cfg);
        let p = sys.create_process(GpuId::new(2));
        sys.enable_peer_access(p, GpuId::new(0)).unwrap();
        let buf = sys.malloc_on(p, GpuId::new(0), 4096).unwrap();
        let cold = sys.access(p, sys.default_agent(p), buf, 0, None).unwrap();
        // 2-hop miss (1450) + 2 idle link traversals (20).
        assert_eq!(cold.latency, 1470);
        // Both links on the path carry the line; the issuer's byte
        // counter records one line per traversed hop.
        for l in 0..2 {
            let ls = *sys.link_stats(LinkId(l)).unwrap();
            assert_eq!(ls.bytes, 128, "link {l} carries the line once");
        }
        assert_eq!(sys.stats().gpu(GpuId::new(2)).nvlink_bytes, 256);
    }

    #[test]
    fn fabric_concurrent_requesters_queue_deterministically() {
        let cfg = SystemConfig::small_test()
            .noiseless()
            .with_fabric(crate::fabric::FabricConfig::nvlink_v1());
        let mut sys = MultiGpuSystem::new(cfg);
        let a = sys.create_process(GpuId::new(1));
        let b = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(a, GpuId::new(0)).unwrap();
        sys.enable_peer_access(b, GpuId::new(0)).unwrap();
        let abuf = sys.malloc_on(a, GpuId::new(0), 4096).unwrap();
        let bbuf = sys.malloc_on(b, GpuId::new(0), 4096).unwrap();
        // Two cold misses arriving at the same cycle on the same link:
        // the second serialises behind the first's occupancy window.
        let first = sys.access(a, sys.default_agent(a), abuf, 0, None).unwrap();
        let second = sys.access(b, sys.default_agent(b), bbuf, 0, None).unwrap();
        assert_eq!(first.latency, 960);
        assert_eq!(second.latency, 970, "10 cycles of queue wait");
        let link = sys.config().topology.link_between(GpuId::new(1), GpuId::new(0)).unwrap();
        assert_eq!(sys.link_stats(link).unwrap().queue_cycles, 10);
    }

    #[test]
    fn fabric_per_direction_unserialises_opposing_traffic() {
        // Two processes on opposite GPUs, each reading memory homed on
        // the other: their transfers cross the same edge in opposite
        // directions at the same cycle.
        let run = |per_direction: bool| {
            let fabric = if per_direction {
                crate::fabric::FabricConfig::nvlink_v1().with_per_direction()
            } else {
                crate::fabric::FabricConfig::nvlink_v1()
            };
            let cfg = SystemConfig::small_test().noiseless().with_fabric(fabric);
            let mut sys = MultiGpuSystem::new(cfg);
            let a = sys.create_process(GpuId::new(1));
            let b = sys.create_process(GpuId::new(0));
            sys.enable_peer_access(a, GpuId::new(0)).unwrap();
            sys.enable_peer_access(b, GpuId::new(1)).unwrap();
            let abuf = sys.malloc_on(a, GpuId::new(0), 4096).unwrap();
            let bbuf = sys.malloc_on(b, GpuId::new(1), 4096).unwrap();
            let first = sys.access(a, sys.default_agent(a), abuf, 0, None).unwrap();
            let second = sys.access(b, sys.default_agent(b), bbuf, 0, None).unwrap();
            let link = sys
                .config()
                .topology
                .link_between(GpuId::new(0), GpuId::new(1))
                .unwrap();
            (first.latency, second.latency, *sys.link_stats(link).unwrap())
        };
        // Half-duplex (default): the opposing line queues 10 cycles.
        let (f, s, ls) = run(false);
        assert_eq!((f, s), (960, 970));
        assert_eq!(ls.queue_cycles, 10);
        // Full-duplex: both directions start immediately.
        let (f, s, ls) = run(true);
        assert_eq!((f, s), (960, 960));
        assert_eq!(ls.queue_cycles, 0);
        assert_eq!(ls.busy_cycles, 20, "each direction served one line");
    }

    #[test]
    fn fabric_pcie_fallback_uses_shared_root_complex() {
        let mut cfg = SystemConfig::small_test()
            .noiseless()
            .with_fabric(crate::fabric::FabricConfig::nvlink_v1());
        cfg.topology = crate::topology::Topology::from_edges(2, &[]);
        cfg.allow_indirect_peer = true;
        let mut sys = MultiGpuSystem::new(cfg);
        let p = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(p, GpuId::new(0)).unwrap();
        let buf = sys.malloc_on(p, GpuId::new(0), 4096).unwrap();
        // PCIe cold (2350) + 60 root-complex service cycles.
        let acc = sys.access(p, sys.default_agent(p), buf, 0, None).unwrap();
        assert_eq!(acc.latency, 2410);
        assert_eq!(sys.stats().pcie_root().requests, 1);
        assert_eq!(sys.stats().pcie_root().bytes, 128);
        assert_eq!(sys.link_stats(LinkId(0)), Err(SimError::NoSuchLink(0)));
    }

    #[test]
    fn qos_rate_limit_delays_over_budget_traffic_only() {
        use crate::qos::QosConfig;
        // 256 B burst, 128 B/kcycle sustained on the single link.
        let cfg = SystemConfig::small_test().noiseless().with_fabric(
            crate::fabric::FabricConfig::nvlink_v1()
                .with_qos(QosConfig::off().with_rate_limit(128, 256)),
        );
        let mut sys = MultiGpuSystem::new(cfg);
        let spy = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
        let buf = sys.malloc_on(spy, GpuId::new(0), 64 * 1024).unwrap();
        let a = sys.default_agent(spy);
        // Two lines fit the bucket: identical to the undefended fabric.
        assert_eq!(sys.access(spy, a, buf, 0, None).unwrap().latency, 960);
        assert_eq!(
            sys.access(spy, a, buf.offset(128), 0, None).unwrap().latency,
            970,
            "in-budget line pays only the occupancy queue"
        );
        // The third is over budget: re-paced to the refill horizon
        // (128 B at 128 B/kcycle = 1024 cycles) and served in spare
        // capacity there.
        let third = sys.access(spy, a, buf.offset(256), 0, None).unwrap();
        assert_eq!(third.latency, 950 + 1024 + 10);
        let q = *sys.stats().qos();
        assert_eq!(q.passed_bytes, 256);
        assert_eq!(q.shaped_bytes, 128);
        assert_eq!(q.throttle_delay_cycles, 1024);
    }

    #[test]
    fn qos_rate_limit_is_per_tenant() {
        use crate::qos::QosConfig;
        let cfg = SystemConfig::small_test().noiseless().with_fabric(
            crate::fabric::FabricConfig::nvlink_v1()
                .with_qos(QosConfig::off().with_rate_limit(128, 128)),
        );
        let mut sys = MultiGpuSystem::new(cfg);
        let a = sys.create_process(GpuId::new(1));
        let b = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(a, GpuId::new(0)).unwrap();
        sys.enable_peer_access(b, GpuId::new(0)).unwrap();
        let abuf = sys.malloc_on(a, GpuId::new(0), 4096).unwrap();
        let bbuf = sys.malloc_on(b, GpuId::new(0), 4096).unwrap();
        // Tenant a exhausts its own bucket …
        sys.access(a, sys.default_agent(a), abuf, 0, None).unwrap();
        let again = sys.access(a, sys.default_agent(a), abuf, 5, None).unwrap();
        assert!(again.latency > 1000, "a is throttled: {}", again.latency);
        // … but tenant b's budget is untouched, and a's throttled line
        // occupied no observable window: b pays only the occupancy
        // serialisation behind a's first (in-budget) crossing.
        let other = sys.access(b, sys.default_agent(b), bbuf, 5, None).unwrap();
        assert_eq!(other.latency, 965);
    }

    #[test]
    fn qos_valiant_routing_detours_and_spreads_load() {
        use crate::qos::QosConfig;
        let mut cfg = SystemConfig::dgx1()
            .noiseless()
            .with_fabric(crate::fabric::FabricConfig::nvlink_v1())
            .with_qos(QosConfig::off().with_valiant(3));
        cfg.allow_indirect_peer = true;
        let mut sys = MultiGpuSystem::new(cfg);
        let p = sys.create_process(GpuId::new(0));
        sys.enable_peer_access(p, GpuId::new(1)).unwrap();
        let buf = sys.malloc_on(p, GpuId::new(1), 1 << 20).unwrap();
        let a = sys.default_agent(p);
        for i in 0..64u64 {
            let acc = sys.access(p, a, buf.offset(i * 128), i * 2_000, None).unwrap();
            // The oracle keeps reporting the canonical route.
            assert_eq!(acc.oracle.route.hops, 1);
        }
        let q = *sys.stats().qos();
        assert_eq!(q.valiant_detours, 64, "every remote line detours");
        assert!(q.valiant_extra_hops >= 64, "detours walk extra hops");
        // The load spreads over many links instead of only (0,1).
        let used = sys
            .stats()
            .links()
            .iter()
            .filter(|l| l.requests > 0)
            .count();
        assert!(used >= 4, "valiant must spread across links, used {used}");
        // nvlink_bytes charges the hops actually walked.
        let walked = 64 + q.valiant_extra_hops;
        assert_eq!(sys.stats().gpu(GpuId::new(0)).nvlink_bytes, 128 * walked);
    }

    #[test]
    fn qos_deploys_at_runtime_and_requires_the_fabric() {
        use crate::qos::QosConfig;
        let mut sys = boot();
        assert_eq!(
            sys.set_qos(QosConfig::off().with_pacing(1000)),
            Err(SimError::FabricDisabled)
        );
        let cfg = SystemConfig::small_test()
            .noiseless()
            .with_fabric(crate::fabric::FabricConfig::nvlink_v1());
        let mut fab_sys = MultiGpuSystem::new(cfg);
        assert_eq!(
            fab_sys.set_qos(QosConfig::off().with_rate_limit(0, 128)),
            Err(SimError::InvalidQosConfig("rate limit needs a positive rate")),
            "degenerate configs come back as errors, not panics"
        );
        assert_eq!(
            fab_sys.set_qos(QosConfig::off().with_pacing(0)),
            Err(SimError::InvalidQosConfig("pacing needs a positive epoch"))
        );
        let cfg = SystemConfig::small_test()
            .noiseless()
            .with_fabric(crate::fabric::FabricConfig::nvlink_v1());
        let mut sys = MultiGpuSystem::new(cfg);
        let spy = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
        let buf = sys.malloc_on(spy, GpuId::new(0), 4096).unwrap();
        let a = sys.default_agent(spy);
        assert_eq!(sys.access(spy, a, buf, 1, None).unwrap().latency, 960);
        // Defence switched on mid-life: pacing quantises the next grant
        // (arrival 2001 → epoch boundary 3000), buckets cover the
        // already-existing process.
        sys.set_qos(QosConfig::off().with_pacing(1000)).unwrap();
        let acc = sys.access(spy, a, buf, 2_001, None).unwrap();
        assert_eq!(acc.latency, 630 + 999 + 10);
        // And retracting it restores the undefended fabric.
        sys.set_qos(QosConfig::off()).unwrap();
        let acc = sys.access(spy, a, buf, 10_001, None).unwrap();
        assert_eq!(acc.latency, 640);
    }

    #[test]
    fn fault_link_down_reroutes_over_survivors() {
        use crate::fault::FaultPlan;
        // Triangle 0-1-2: the direct (0,1) link has a 2-hop detour via 2.
        let mut cfg = SystemConfig::small_test()
            .noiseless()
            .with_fabric(crate::fabric::FabricConfig::nvlink_v1().with_faults(
                FaultPlan::none().with_link_down(0, 10_000, u64::MAX),
            ));
        cfg.num_gpus = 3;
        cfg.topology = crate::topology::Topology::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        cfg.allow_indirect_peer = true;
        let mut sys = MultiGpuSystem::new(cfg);
        let p = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(p, GpuId::new(0)).unwrap();
        let buf = sys.malloc_on(p, GpuId::new(0), 4096).unwrap();
        let a = sys.default_agent(p);
        // Healthy epoch: the direct link, usual fabric-on latency.
        let before = sys.access(p, a, buf, 0, None).unwrap();
        assert_eq!(before.latency, 960);
        assert_eq!(before.oracle.route.hops, 1);
        // Outage epoch: rerouted over 1-2-0, two hops, counted.
        let after = sys.access(p, a, buf, 20_000, None).unwrap();
        assert_eq!(after.oracle.route.kind, LinkKind::NvLink);
        assert_eq!(after.oracle.route.hops, 2);
        assert_eq!(sys.stats().fault().reroutes, 1);
        // Warm 2-hop over two idle links: 630 + 360 + 2·10.
        assert_eq!(after.latency, 630 + 360 + 20);
        // The dead link carried nothing new; the detour links did.
        assert_eq!(sys.link_stats(LinkId(0)).unwrap().requests, 1);
        assert_eq!(sys.link_stats(LinkId(1)).unwrap().requests, 1);
        assert_eq!(sys.link_stats(LinkId(2)).unwrap().requests, 1);
    }

    #[test]
    fn fault_partition_falls_back_to_pcie_or_refuses() {
        use crate::fault::FaultPlan;
        // 2-GPU box with a single link: downing it partitions the pair.
        let boot_with = |plan: FaultPlan| {
            let cfg = SystemConfig::small_test()
                .noiseless()
                .with_fabric(crate::fabric::FabricConfig::nvlink_v1().with_faults(plan));
            let mut sys = MultiGpuSystem::new(cfg);
            let p = sys.create_process(GpuId::new(1));
            sys.enable_peer_access(p, GpuId::new(0)).unwrap();
            let buf = sys.malloc_on(p, GpuId::new(0), 4096).unwrap();
            (sys, p, buf)
        };
        // Default plan: the access silently degrades to PCIe.
        let plan = FaultPlan::none().with_link_down(0, 1_000, 2_000);
        let (mut sys, p, buf) = boot_with(plan.clone());
        let a = sys.default_agent(p);
        let acc = sys.access(p, a, buf, 1_500, None).unwrap();
        assert_eq!(acc.oracle.route.kind, LinkKind::Pcie);
        assert_eq!(sys.stats().fault().pcie_fallbacks, 1);
        assert_eq!(sys.stats().pcie_root().requests, 1);
        // After recovery the NVLink route is back.
        let acc = sys.access(p, a, buf, 3_000, None).unwrap();
        assert_eq!(acc.oracle.route.kind, LinkKind::NvLink);
        // Refusing the fallback turns the access into an error.
        let (mut sys, p, buf) = boot_with(plan.without_pcie_fallback());
        let a = sys.default_agent(p);
        assert_eq!(
            sys.access(p, a, buf, 1_500, None).unwrap_err(),
            SimError::LinkDown(0)
        );
        assert_eq!(sys.stats().fault().refused_accesses, 1);
        // Outside the outage window the access still works.
        assert!(sys.access(p, a, buf, 2_500, None).is_ok());
    }

    #[test]
    fn fault_plan_deploys_at_runtime_and_requires_the_fabric() {
        use crate::fault::FaultPlan;
        let mut sys = boot();
        assert_eq!(
            sys.set_fault_plan(FaultPlan::none().with_link_down(0, 0, 100)),
            Err(SimError::FabricDisabled)
        );
        let cfg = SystemConfig::small_test()
            .noiseless()
            .with_fabric(crate::fabric::FabricConfig::nvlink_v1());
        let mut sys = MultiGpuSystem::new(cfg);
        assert_eq!(
            sys.set_fault_plan(FaultPlan::none().with_link_down(0, 100, 100)),
            Err(SimError::InvalidFaultPlan(
                "link outage must recover after it begins"
            )),
            "degenerate plans come back as errors, not panics"
        );
        assert_eq!(
            sys.set_fault_plan(FaultPlan::none().with_link_down(7, 0, 100)),
            Err(SimError::NoSuchLink(7)),
            "plans must name links of this topology"
        );
        let spy = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
        let buf = sys.malloc_on(spy, GpuId::new(0), 4096).unwrap();
        let a = sys.default_agent(spy);
        assert_eq!(sys.access(spy, a, buf, 1, None).unwrap().latency, 960);
        // Fault plan deployed mid-life: the single link goes down, the
        // already-existing process's next access degrades to PCIe.
        sys.set_fault_plan(FaultPlan::none().with_link_down(0, 2_000, 4_000))
            .unwrap();
        let acc = sys.access(spy, a, buf, 3_000, None).unwrap();
        assert_eq!(acc.oracle.route.kind, LinkKind::Pcie);
        assert_eq!(sys.stats().fault().pcie_fallbacks, 1);
        // Retracting the plan restores the healthy fabric.
        sys.set_fault_plan(FaultPlan::none()).unwrap();
        let acc = sys.access(spy, a, buf, 3_000, None).unwrap();
        assert_eq!(acc.oracle.route.kind, LinkKind::NvLink);
        assert_eq!(acc.latency, 640);
    }

    #[test]
    fn pressure_raises_latency_for_concurrent_agents() {
        let mut cfg = SystemConfig::small_test();
        cfg.timing.jitter_sigma = 0.0;
        cfg.timing.contention_spike_prob = 0.0;
        let mut sys = MultiGpuSystem::new(cfg);
        let p = sys.create_process(GpuId::new(0));
        let buf = sys.malloc_on(p, GpuId::new(0), 4096).unwrap();
        let a1 = sys.default_agent(p);
        let a2 = sys.new_agent();
        sys.access(p, a1, buf, 0, None).unwrap();
        // a2 accesses at the same time window: sees pressure from a1.
        let acc = sys.access(p, a2, buf, 100, None).unwrap();
        assert!(
            acc.latency > 270,
            "contended hit should exceed 270: {}",
            acc.latency
        );
    }
}
