//! The pre-optimisation cache layout, kept as a reference model.
//!
//! This is a faithful copy of the original `L2Cache`: one
//! `Vec<Option<u64>>` tag row plus a boxed [`SetPolicy`] per set, with
//! div/mod set math. It exists for two consumers only — the
//! observational-equivalence property tests
//! (`tests/flat_cache_equivalence.rs`) and the `sim_benches` baseline —
//! so both certify and measure the *same* model. Not part of the public
//! API surface; hidden from docs.

use crate::address::PhysAddr;
use crate::cache::AccessOutcome;
use crate::config::CacheConfig;
use crate::replacement::SetPolicy;
use rand::Rng;

/// The original per-set cache layout (see module docs).
#[derive(Debug, Clone)]
pub struct ReferenceCache {
    sets: Vec<ReferenceSet>,
    line_size: u64,
    num_sets: u64,
}

#[derive(Debug, Clone)]
struct ReferenceSet {
    ways: Vec<Option<u64>>,
    policy: SetPolicy,
    hits: u64,
    misses: u64,
}

impl ReferenceCache {
    /// Builds an empty reference cache.
    pub fn new(cfg: &CacheConfig) -> Self {
        let num_sets = cfg.num_sets();
        ReferenceCache {
            sets: (0..num_sets)
                .map(|_| ReferenceSet {
                    ways: vec![None; cfg.ways as usize],
                    policy: SetPolicy::new(cfg.replacement, cfg.ways),
                    hits: 0,
                    misses: 0,
                })
                .collect(),
            line_size: cfg.line_size,
            num_sets,
        }
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.num_sets
    }

    /// One access with the original two-scan + policy-object logic and
    /// the original RNG consumption (random replacement draws once per
    /// eviction; nothing else draws).
    pub fn access<R: Rng>(&mut self, pa: PhysAddr, rng: &mut R) -> AccessOutcome {
        let line = pa.0 / self.line_size;
        let set = &mut self.sets[(line % self.num_sets) as usize];
        if let Some(way) = set.ways.iter().position(|w| *w == Some(line)) {
            set.policy.touch(way as u8);
            set.hits += 1;
            return AccessOutcome::Hit;
        }
        set.misses += 1;
        if let Some(free) = set.ways.iter().position(Option::is_none) {
            set.ways[free] = Some(line);
            set.policy.touch(free as u8);
            return AccessOutcome::Miss { evicted: None };
        }
        let victim_way = set.policy.evict(rng) as usize;
        let evicted = set.ways[victim_way];
        set.ways[victim_way] = Some(line);
        AccessOutcome::Miss { evicted }
    }

    /// Whether the line holding `pa` is resident.
    pub fn probe_resident(&self, pa: PhysAddr) -> bool {
        let line = pa.0 / self.line_size;
        self.sets[(line % self.num_sets) as usize]
            .ways
            .contains(&Some(line))
    }

    /// Hit/miss counters of one set.
    pub fn set_stats(&self, set: usize) -> (u64, u64) {
        (self.sets[set].hits, self.sets[set].misses)
    }

    /// Number of occupied ways in a set.
    pub fn set_occupancy(&self, set: usize) -> usize {
        self.sets[set].ways.iter().filter(|w| w.is_some()).count()
    }
}
