//! Latency model: turns (route, hit/miss, contention pressure) into cycles.
//!
//! Calibrated against the paper's Fig. 4 clusters — local hit ≈ 270,
//! local miss ≈ 450, remote (1 NVLink hop) hit ≈ 630, remote miss ≈ 950 —
//! plus Gaussian jitter and a port-contention term that grows with the
//! number of concurrently active agents on a GPU (the Fig. 9 error driver).

use crate::config::TimingConfig;
use crate::topology::{LinkKind, Route};
use rand::Rng;

/// Stateless latency calculator.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    cfg: TimingConfig,
}

impl LatencyModel {
    /// Creates a model from timing constants.
    pub fn new(cfg: TimingConfig) -> Self {
        LatencyModel { cfg }
    }

    /// The timing constants in use.
    pub fn config(&self) -> &TimingConfig {
        &self.cfg
    }

    /// Latency in cycles of one memory access.
    ///
    /// `pressure` counts other agents that recently touched the same GPU;
    /// each adds [`TimingConfig::contention_per_actor`] cycles (saturating
    /// at the pressure cap). Bursty congestion episodes are layered on top
    /// by [`crate::system::MultiGpuSystem`], which owns the persistent
    /// per-GPU congestion state.
    pub fn access_latency<R: Rng>(
        &self,
        route: Route,
        hit: bool,
        pressure: u32,
        rng: &mut R,
    ) -> u32 {
        let base = match (route.kind, hit) {
            // Local routes have zero hops, so the NvLink formulas reduce
            // to the plain local hit/miss constants.
            (LinkKind::Local | LinkKind::NvLink, true) => self.cfg.expected_hit(route.hops),
            (LinkKind::Local | LinkKind::NvLink, false) => self.cfg.expected_miss(route.hops),
            (LinkKind::Pcie, true) => self.cfg.l2_hit + self.cfg.pcie_round_trip,
            (LinkKind::Pcie, false) => {
                self.cfg.l2_hit + self.cfg.dram_penalty + self.cfg.pcie_round_trip
            }
        };
        // The linear term saturates (ports pipeline; beyond the cap extra
        // requesters queue rather than slowing every access), but queueing
        // spikes keep scaling with the true number of contenders.
        let shift = pressure.min(self.cfg.contention_pressure_cap);
        let mut cycles = base as f64;
        cycles += self.cfg.contention_per_actor as f64 * f64::from(shift);
        if self.cfg.jitter_sigma > 0.0 {
            cycles += gaussian(rng) * self.cfg.jitter_sigma;
        }
        cycles.max(1.0) as u32
    }

    /// Additional cycles between issuing consecutive loads of one warp
    /// (models memory-level parallelism within a 16-line probe).
    pub fn issue_gap(&self) -> u32 {
        self.cfg.issue_gap
    }

    /// Converts a cycle count to seconds at the configured core clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.cfg.clock_hz
    }
}

/// Standard normal sample via Box–Muller (avoids a rand_distr dependency).
pub(crate) fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn model_noiseless() -> LatencyModel {
        let mut cfg = TimingConfig::p100();
        cfg.jitter_sigma = 0.0;
        cfg.contention_spike_prob = 0.0;
        LatencyModel::new(cfg)
    }

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(5)
    }

    #[test]
    fn four_clusters_match_paper() {
        let m = model_noiseless();
        let mut r = rng();
        let local = Route {
            kind: LinkKind::NvLink,
            hops: 0,
        };
        let remote = Route {
            kind: LinkKind::NvLink,
            hops: 1,
        };
        assert_eq!(m.access_latency(local, true, 0, &mut r), 270);
        assert_eq!(m.access_latency(local, false, 0, &mut r), 450);
        assert_eq!(m.access_latency(remote, true, 0, &mut r), 630);
        assert_eq!(m.access_latency(remote, false, 0, &mut r), 950);
    }

    #[test]
    fn pressure_increases_latency() {
        let m = model_noiseless();
        let mut r = rng();
        let local = Route {
            kind: LinkKind::NvLink,
            hops: 0,
        };
        let quiet = m.access_latency(local, true, 0, &mut r);
        let busy = m.access_latency(local, true, 8, &mut r);
        assert!(busy > quiet);
    }

    #[test]
    fn pcie_is_much_slower_than_nvlink() {
        let m = model_noiseless();
        let mut r = rng();
        let pcie = Route {
            kind: LinkKind::Pcie,
            hops: 0,
        };
        let nv = Route {
            kind: LinkKind::NvLink,
            hops: 1,
        };
        assert!(m.access_latency(pcie, true, 0, &mut r) > m.access_latency(nv, true, 0, &mut r));
    }

    #[test]
    fn jitter_varies_but_stays_near_mean() {
        let mut cfg = TimingConfig::p100();
        cfg.jitter_sigma = 9.0;
        cfg.contention_spike_prob = 0.0;
        let m = LatencyModel::new(cfg);
        let mut r = rng();
        let local = Route {
            kind: LinkKind::NvLink,
            hops: 0,
        };
        let samples: Vec<u32> = (0..2000)
            .map(|_| m.access_latency(local, true, 0, &mut r))
            .collect();
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / samples.len() as f64;
        assert!((mean - 270.0).abs() < 3.0, "mean {mean}");
        assert!(samples.iter().any(|&s| s != samples[0]), "no variation");
        // Hit and miss clusters must remain separable (4 sigma apart).
        assert!(
            samples.iter().all(|&s| s < 400),
            "hit sample leaked into miss range"
        );
    }

    #[test]
    fn gaussian_is_roughly_standard() {
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| gaussian(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn cycles_to_seconds_uses_clock() {
        let m = model_noiseless();
        let s = m.cycles_to_seconds(1_480_000_000);
        assert!((s - 1.0).abs() < 1e-9);
    }
}
