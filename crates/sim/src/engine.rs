//! Discrete-event interleaver for concurrent agents.
//!
//! The covert channel (trojan + spy on different GPUs) and the side channel
//! (victim + spy) are concurrent programs contending on a shared L2. The
//! [`Engine`] runs a set of [`Agent`]s in global-timestamp order: it always
//! steps the agent whose local clock is furthest behind, so accesses hit
//! the shared caches in true time order.
//!
//! # The scratch-buffer op protocol
//!
//! Agents express their programs as a stream of [`Op`]s and receive an
//! [`OpResult`] per op — mirroring how a GPU kernel only observes its own
//! loads and `clock()` values. The protocol is designed so the steady-state
//! simulation loop performs **zero heap allocations**:
//!
//! - A warp-parallel probe is issued by *filling the engine's reusable
//!   [`ProbeStage`]* (handed to [`Agent::next_op`]) with the probe
//!   addresses and returning [`Op::LoadBatch`]. The staging buffer is
//!   cleared by the engine before every `next_op` call and its capacity is
//!   kept across ops, so an agent re-probing the same eviction set never
//!   allocates — the GoFetch-harness idiom of probe buffers owned by the
//!   driver and reused across every iteration.
//! - All batches are routed through
//!   [`MultiGpuSystem::access_batch_into`] with an engine-owned latency
//!   scratch buffer, and [`OpResult::latencies`] *borrows* from that
//!   scratch (`&[u32]`) instead of handing the agent an owned `Vec`.
//!   Scalar loads and stores reuse the same one-element scratch.
//!
//! The allocation-freedom of the warm loop is asserted by a
//! counting-allocator integration test (`tests/alloc_free.rs`).
//!
//! # Scheduler selection
//!
//! Picking the next agent is the engine's own hot path. Two schedulers
//! implement the same policy — *run the live agent with the smallest
//! `(clock, slot index)` key* — and are chosen per [`Engine::run`] call:
//!
//! - **Cached-min linear scan** for up to 4 live agents (the paper's
//!   trojan/spy regime): the minimum and runner-up are cached, so an agent
//!   issuing consecutive ops that stay below the runner-up's clock is
//!   re-picked in O(1) without a rescan.
//! - **Binary-heap event queue** beyond 4 agents (multi-tenant scenarios:
//!   many background/noise tenants contending with the trojan/spy pair):
//!   pop-min / push-updated in O(log n).
//!
//! Ties on the clock are broken towards the **lowest slot index** (the
//! order agents were added). Both schedulers encode the tie-break in the
//! comparison key itself and the engine `debug_assert`s every pick against
//! the policy, so heap and linear interleavings are bit-identical — a
//! property test (`tests/scheduler_equivalence.rs`) checks this on
//! randomized agent mixes. [`Engine::with_scheduler`] forces a choice;
//! [`Engine::new`] uses [`SchedulerKind::Auto`].

use crate::address::VirtAddr;
use crate::error::SimResult;
use crate::system::{AgentId, MultiGpuSystem, ProcessId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One operation an agent asks the machine to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// A single (dependent) load, e.g. one pointer-chase step.
    Load(VirtAddr),
    /// A warp-parallel batch of loads (the covert-channel probe). The
    /// probe addresses are the ones the agent staged into the
    /// [`ProbeStage`] passed to [`Agent::next_op`]; an empty stage
    /// touches no memory and is charged one cycle (issuing an empty warp
    /// still takes a cycle — and a misbehaving agent must not be able to
    /// stall the global clock below the deadline forever).
    LoadBatch,
    /// A store.
    Store(VirtAddr, u64),
    /// Busy computation for the given cycles (dummy ops / trigonometric
    /// wait while sending a "0"). `Compute(0)` does not advance the clock;
    /// an agent must not emit it unboundedly.
    Compute(u64),
    /// The agent is finished.
    Done,
}

/// What the machine reports back for one op.
///
/// Borrows the engine's latency scratch buffer — valid only for the
/// duration of the [`Agent::on_result`] call; agents that need the
/// latencies later copy what they derive from them (a miss count, a mean),
/// which is what every attack agent does anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpResult<'a> {
    /// Agent-local time when the op started.
    pub started_at: u64,
    /// Cycles the op took.
    pub duration: u64,
    /// Value loaded (single loads) or 0.
    pub value: u64,
    /// Per-line latencies (one entry for `Load`/`Store`, n for
    /// `LoadBatch`, empty for `Compute`).
    pub latencies: &'a [u32],
}

/// Reusable probe-address staging buffer owned by the engine.
///
/// Handed to [`Agent::next_op`]; an agent issuing [`Op::LoadBatch`] writes
/// its probe addresses here (typically via
/// [`ProbeStage::extend_from_slice`] from a prebuilt eviction-set line
/// list). The engine clears it before every `next_op` call; capacity is
/// retained, so steady-state probing never allocates.
#[derive(Debug, Default)]
pub struct ProbeStage {
    addrs: Vec<VirtAddr>,
}

impl ProbeStage {
    /// Creates an empty stage (for driving agents manually in tests).
    pub fn new() -> Self {
        ProbeStage::default()
    }

    /// Appends one probe address.
    #[inline]
    pub fn push(&mut self, va: VirtAddr) {
        self.addrs.push(va);
    }

    /// Appends a prebuilt address list (the common eviction-set case).
    #[inline]
    pub fn extend_from_slice(&mut self, vas: &[VirtAddr]) {
        self.addrs.extend_from_slice(vas);
    }

    /// Empties the stage (the engine does this before every `next_op`).
    pub fn clear(&mut self) {
        self.addrs.clear();
    }

    /// Number of staged addresses.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// The staged addresses.
    pub fn as_slice(&self) -> &[VirtAddr] {
        &self.addrs
    }
}

/// A concurrent actor driven by the engine.
pub trait Agent {
    /// Returns the next operation. `now` is the agent's local clock. To
    /// issue a warp-parallel probe, fill `stage` (cleared by the engine
    /// beforehand) and return [`Op::LoadBatch`].
    fn next_op(&mut self, now: u64, stage: &mut ProbeStage) -> Op;

    /// Receives the result of the op previously returned. The borrowed
    /// latencies are only valid during this call.
    fn on_result(&mut self, res: &OpResult<'_>);

    /// The process this agent issues memory operations as.
    fn process(&self) -> ProcessId;

    /// Human-readable label for diagnostics.
    fn label(&self) -> &str {
        "agent"
    }
}

/// Which next-agent scheduler [`Engine::run`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Cached-min linear scan while at most [`LINEAR_SCHED_MAX_AGENTS`]
    /// agents are live at the start of a run, binary heap beyond.
    #[default]
    Auto,
    /// Always the cached-min linear scan.
    Linear,
    /// Always the binary-heap event queue.
    Heap,
}

/// Live-agent count up to which [`SchedulerKind::Auto`] stays on the
/// linear scan (the paper's two-agent setup plus a victim and one noise
/// tenant); beyond it the heap's O(log n) pop/push wins.
pub const LINEAR_SCHED_MAX_AGENTS: usize = 4;

/// Consecutive zero-duration dispatches [`Engine::run`] tolerates before
/// declaring the simulation livelocked.
///
/// Every op except [`Op::Compute`]`(0)` advances its agent's clock (even
/// an empty [`Op::LoadBatch`] is charged one cycle), so a run can only
/// stop making progress when agents emit `Compute(0)` unboundedly. The
/// deadline cannot catch that — the clock never reaches it — so the
/// engine counts dispatches that leave the global minimum clock in place
/// and aborts with [`crate::SimError::Livelocked`] once the streak
/// exceeds this threshold. [`Op::Done`] counts as progress (it retires
/// an agent), and any clock-advancing op resets the streak. The value is
/// far above any legitimate same-cycle burst (a probe issues one op per
/// staged batch, not per line) while still tripping in well under a
/// second of wall time.
pub const LIVELOCK_THRESHOLD: u64 = 1 << 20;

struct Slot {
    agent: Box<dyn Agent>,
    agent_id: AgentId,
    clock: u64,
    done: bool,
}

/// Cached linear-scan state: the current minimum slot and the runner-up
/// key. Stepping the minimum only invalidates the cache when its new key
/// passes the runner-up.
#[derive(Debug, Clone, Copy)]
struct CachedMin {
    idx: usize,
    runner_clock: u64,
    runner_idx: usize,
}

/// Runs agents against a shared [`MultiGpuSystem`] in timestamp order.
pub struct Engine<'a> {
    sys: &'a mut MultiGpuSystem,
    slots: Vec<Slot>,
    /// Agent-fills-engine-scratch staging buffer for probe batches.
    stage: ProbeStage,
    /// Engine-owned latency scratch; `OpResult::latencies` borrows it.
    lat: Vec<u32>,
    kind: SchedulerKind,
    /// Resolved per run: whether the heap scheduler is active.
    use_heap: bool,
    /// Event queue of `Reverse((clock, slot index))` for live agents.
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    cached_min: Option<CachedMin>,
}

impl<'a> Engine<'a> {
    /// Creates an engine over the system with automatic scheduler
    /// selection. Clears transient timing state (pressure windows,
    /// congestion) because agent clocks restart at zero.
    pub fn new(sys: &'a mut MultiGpuSystem) -> Self {
        Engine::with_scheduler(sys, SchedulerKind::Auto)
    }

    /// As [`Engine::new`] but forcing a scheduler (equivalence tests and
    /// scaling experiments; both schedulers produce bit-identical
    /// interleavings).
    pub fn with_scheduler(sys: &'a mut MultiGpuSystem, kind: SchedulerKind) -> Self {
        sys.reset_timing_state();
        Engine {
            sys,
            slots: Vec::new(),
            stage: ProbeStage::default(),
            lat: Vec::with_capacity(64),
            kind,
            use_heap: false,
            heap: BinaryHeap::new(),
            cached_min: None,
        }
    }

    /// The configured scheduler kind.
    pub fn scheduler(&self) -> SchedulerKind {
        self.kind
    }

    /// The system being driven. Lets window-stepping callers (the
    /// [`crate::monitor`] stats-diffing loop) read cumulative stats
    /// between resumable [`Engine::run`] calls.
    pub fn system(&self) -> &MultiGpuSystem {
        self.sys
    }

    /// Mutable access to the system being driven — the detect-then-
    /// throttle response path deploys scoped QoS between windows via
    /// [`MultiGpuSystem::set_qos`] without tearing down the engine.
    pub fn system_mut(&mut self) -> &mut MultiGpuSystem {
        self.sys
    }

    /// Adds an agent starting at local time `start` (a launch offset models
    /// the two malicious processes not starting simultaneously).
    pub fn add_agent(&mut self, agent: Box<dyn Agent>, start: u64) {
        let agent_id = self.sys.new_agent();
        self.slots.push(Slot {
            agent,
            agent_id,
            clock: start,
            done: false,
        });
    }

    /// Resolves [`SchedulerKind::Auto`] against the live-agent count and
    /// (re)builds the chosen scheduler's state. Called at every
    /// [`Engine::run`] entry so agents added between runs are picked up.
    /// The heap's backing storage is retained across runs.
    fn prepare_scheduler(&mut self) {
        let live = self.slots.iter().filter(|s| !s.done).count();
        self.use_heap = match self.kind {
            SchedulerKind::Linear => false,
            SchedulerKind::Heap => true,
            SchedulerKind::Auto => live > LINEAR_SCHED_MAX_AGENTS,
        };
        self.cached_min = None;
        self.heap.clear();
        if self.use_heap {
            self.heap.reserve(live);
            for (i, s) in self.slots.iter().enumerate() {
                if !s.done {
                    self.heap.push(Reverse((s.clock, i)));
                }
            }
        }
    }

    /// The live slot with the smallest `(clock, index)` key, if any.
    fn next_runnable(&mut self) -> Option<usize> {
        if self.use_heap {
            return self.heap.peek().map(|&Reverse((_, i))| i);
        }
        if let Some(c) = self.cached_min {
            return Some(c.idx);
        }
        // Full scan: track the minimum and the runner-up in one pass.
        let mut best: Option<(u64, usize)> = None;
        let mut runner = (u64::MAX, usize::MAX);
        for (i, s) in self.slots.iter().enumerate() {
            if s.done {
                continue;
            }
            let key = (s.clock, i);
            match best {
                None => best = Some(key),
                Some(b) if key < b => {
                    runner = b;
                    best = Some(key);
                }
                Some(_) => {
                    if key < runner {
                        runner = key;
                    }
                }
            }
        }
        let (_, i) = best?;
        self.cached_min = Some(CachedMin {
            idx: i,
            runner_clock: runner.0,
            runner_idx: runner.1,
        });
        Some(i)
    }

    /// Updates scheduler state after slot `i` was stepped (its clock
    /// advanced, or it finished).
    fn reschedule(&mut self, i: usize) {
        let clock = self.slots[i].clock;
        let done = self.slots[i].done;
        if self.use_heap {
            let popped = self.heap.pop();
            debug_assert!(
                matches!(popped, Some(Reverse((_, j))) if j == i),
                "heap top must be the slot just stepped"
            );
            if !done {
                self.heap.push(Reverse((clock, i)));
            }
        } else if let Some(c) = self.cached_min {
            debug_assert_eq!(c.idx, i, "cached minimum must be the slot just stepped");
            // Only the stepped slot's key changed; it stays the minimum
            // while strictly below the runner-up's (clock, index) key.
            if done || (clock, i) >= (c.runner_clock, c.runner_idx) {
                self.cached_min = None;
            }
        }
    }

    /// Runs until every agent is done or the next runnable agent's clock
    /// reaches `deadline` cycles.
    ///
    /// Returns the final *global* time: the maximum agent-local clock
    /// across all agents ever added, or `0` for an engine with no agents.
    /// Two deadline edge cases follow from that definition:
    ///
    /// - An agent added with a `start` offset at or beyond `deadline` is
    ///   never stepped (it issues no ops, and [`Engine::all_done`] stays
    ///   `false`), yet its start offset still counts as its local clock —
    ///   so the returned time can *exceed* `deadline`.
    /// - `run` may be called again with a later deadline to resume; agents
    ///   keep their clocks and completion state, and the scheduler is
    ///   rebuilt to include agents added in between.
    ///
    /// # Errors
    ///
    /// Propagates the first simulator error an agent's op produces, and
    /// returns [`crate::SimError::Livelocked`] when more than
    /// [`LIVELOCK_THRESHOLD`] consecutive dispatches fail to advance any
    /// clock (agents spinning on [`Op::Compute`]`(0)`), which a deadline
    /// alone can never terminate.
    pub fn run(&mut self, deadline: u64) -> SimResult<u64> {
        self.prepare_scheduler();
        let mut zero_streak: u64 = 0;
        while let Some(i) = self.next_runnable() {
            #[cfg(debug_assertions)]
            {
                // Asserted stable tie-break: the pick is the lowest-index
                // live slot among those at the minimum clock.
                let best = self
                    .slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !s.done)
                    .map(|(j, s)| (s.clock, j))
                    .min();
                debug_assert_eq!(
                    best,
                    Some((self.slots[i].clock, i)),
                    "scheduler must pick the lowest-index agent at the minimum clock"
                );
            }
            if self.slots[i].clock >= deadline {
                break;
            }
            let now = self.slots[i].clock;
            self.stage.clear();
            let op = self.slots[i].agent.next_op(now, &mut self.stage);
            self.lat.clear();
            let (duration, value) = match op {
                Op::Done => {
                    self.slots[i].done = true;
                    self.reschedule(i);
                    zero_streak = 0;
                    continue;
                }
                Op::Compute(c) => (c, 0),
                Op::Load(va) => {
                    let pid = self.slots[i].agent.process();
                    let acc = self
                        .sys
                        .access(pid, self.slots[i].agent_id, va, now, None)?;
                    self.lat.push(acc.latency);
                    (u64::from(acc.latency), acc.value)
                }
                Op::Store(va, v) => {
                    let pid = self.slots[i].agent.process();
                    let acc = self
                        .sys
                        .access(pid, self.slots[i].agent_id, va, now, Some(v))?;
                    self.lat.push(acc.latency);
                    (u64::from(acc.latency), v)
                }
                Op::LoadBatch if self.stage.is_empty() => (1, 0),
                Op::LoadBatch => {
                    let pid = self.slots[i].agent.process();
                    let b = self.sys.access_batch_into(
                        pid,
                        self.slots[i].agent_id,
                        &self.stage.addrs,
                        now,
                        &mut self.lat,
                    )?;
                    (b.duration, 0)
                }
            };
            if self.sys.tracing_enabled() {
                // `Op::Done` never reaches here (its arm `continue`s).
                let code: u64 = match op {
                    Op::Compute(_) => 0,
                    Op::Load(_) => 1,
                    Op::Store(..) => 2,
                    Op::LoadBatch => 3,
                    Op::Done => unreachable!("Done short-circuits the dispatch"),
                };
                let pid = self.slots[i].agent.process();
                self.sys.trace_mut().record(
                    crate::telemetry::TraceKind::EngineOp,
                    now,
                    pid.0,
                    duration,
                    code,
                );
            }
            if duration == 0 {
                zero_streak += 1;
                if zero_streak > LIVELOCK_THRESHOLD {
                    return Err(crate::error::SimError::Livelocked { at: now });
                }
            } else {
                zero_streak = 0;
            }
            self.slots[i].clock = now + duration;
            self.reschedule(i);
            let res = OpResult {
                started_at: now,
                duration,
                value,
                latencies: &self.lat,
            };
            self.slots[i].agent.on_result(&res);
        }
        Ok(self.slots.iter().map(|s| s.clock).max().unwrap_or(0))
    }

    /// Whether every agent has finished.
    pub fn all_done(&self) -> bool {
        self.slots.iter().all(|s| s.done)
    }
}

impl std::fmt::Debug for Engine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("agents", &self.slots.len())
            .field("scheduler", &self.kind)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::GpuId;
    use crate::config::SystemConfig;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Touches a fixed list of addresses `reps` times.
    struct Toucher {
        pid: ProcessId,
        vas: Vec<VirtAddr>,
        reps: usize,
        idx: usize,
        observed: Vec<(u64, u32)>,
    }

    impl Agent for Toucher {
        fn next_op(&mut self, _now: u64, _stage: &mut ProbeStage) -> Op {
            if self.idx >= self.vas.len() * self.reps {
                return Op::Done;
            }
            let va = self.vas[self.idx % self.vas.len()];
            self.idx += 1;
            Op::Load(va)
        }

        fn on_result(&mut self, res: &OpResult<'_>) {
            self.observed.push((res.started_at, res.latencies[0]));
        }

        fn process(&self) -> ProcessId {
            self.pid
        }
    }

    #[test]
    fn two_agents_interleave_by_time() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let p0 = sys.create_process(GpuId::new(0));
        let p1 = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(p1, GpuId::new(0)).unwrap();
        let b0 = sys.malloc_on(p0, GpuId::new(0), 4096).unwrap();
        let b1 = sys.malloc_on(p1, GpuId::new(0), 4096).unwrap();

        let a0 = Toucher {
            pid: p0,
            vas: vec![b0],
            reps: 50,
            idx: 0,
            observed: vec![],
        };
        let a1 = Toucher {
            pid: p1,
            vas: vec![b1],
            reps: 50,
            idx: 0,
            observed: vec![],
        };
        let mut eng = Engine::new(&mut sys);
        eng.add_agent(Box::new(a0), 0);
        eng.add_agent(Box::new(a1), 0);
        let end = eng.run(u64::MAX).unwrap();
        assert!(eng.all_done());
        assert!(end > 0);
    }

    #[test]
    fn deadline_stops_infinite_agent() {
        struct Forever(ProcessId, VirtAddr);
        impl Agent for Forever {
            fn next_op(&mut self, _now: u64, _stage: &mut ProbeStage) -> Op {
                Op::Load(self.1)
            }
            fn on_result(&mut self, _res: &OpResult<'_>) {}
            fn process(&self) -> ProcessId {
                self.0
            }
        }
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let p = sys.create_process(GpuId::new(0));
        let b = sys.malloc_on(p, GpuId::new(0), 4096).unwrap();
        let mut eng = Engine::new(&mut sys);
        eng.add_agent(Box::new(Forever(p, b)), 0);
        let end = eng.run(100_000).unwrap();
        assert!(end >= 100_000);
        assert!(!eng.all_done());
    }

    #[test]
    fn compute_advances_without_memory_traffic() {
        struct Compute(ProcessId, bool);
        impl Agent for Compute {
            fn next_op(&mut self, _now: u64, _stage: &mut ProbeStage) -> Op {
                if self.1 {
                    Op::Done
                } else {
                    self.1 = true;
                    Op::Compute(1234)
                }
            }
            fn on_result(&mut self, res: &OpResult<'_>) {
                assert_eq!(res.duration, 1234);
                assert!(res.latencies.is_empty());
            }
            fn process(&self) -> ProcessId {
                self.0
            }
        }
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let p = sys.create_process(GpuId::new(0));
        let mut eng = Engine::new(&mut sys);
        eng.add_agent(Box::new(Compute(p, false)), 10);
        let end = eng.run(u64::MAX).unwrap();
        assert_eq!(end, 10 + 1234);
        assert_eq!(sys.stats().total().issued_accesses, 0);
    }

    #[test]
    fn start_offsets_are_respected() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let p = sys.create_process(GpuId::new(0));
        let b = sys.malloc_on(p, GpuId::new(0), 4096).unwrap();
        let a = Toucher {
            pid: p,
            vas: vec![b],
            reps: 1,
            idx: 0,
            observed: vec![],
        };
        let mut eng = Engine::new(&mut sys);
        eng.add_agent(Box::new(a), 5_000);
        let end = eng.run(u64::MAX).unwrap();
        assert!(end >= 5_000);
    }

    /// Probes a fixed line list via the staging buffer `reps` times and
    /// records per-probe latency counts into a shared log.
    struct StagedProber {
        pid: ProcessId,
        lines: Vec<VirtAddr>,
        reps: usize,
        issued: usize,
        lat_counts: Rc<RefCell<Vec<usize>>>,
    }

    impl Agent for StagedProber {
        fn next_op(&mut self, _now: u64, stage: &mut ProbeStage) -> Op {
            if self.issued >= self.reps {
                return Op::Done;
            }
            self.issued += 1;
            stage.extend_from_slice(&self.lines);
            Op::LoadBatch
        }

        fn on_result(&mut self, res: &OpResult<'_>) {
            self.lat_counts.borrow_mut().push(res.latencies.len());
        }

        fn process(&self) -> ProcessId {
            self.pid
        }
    }

    #[test]
    fn staged_batch_returns_one_latency_per_line() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let p = sys.create_process(GpuId::new(0));
        let buf = sys.malloc_on(p, GpuId::new(0), 64 * 1024).unwrap();
        let lines: Vec<VirtAddr> = (0..16).map(|i| buf.offset(i * 128)).collect();
        let counts = Rc::new(RefCell::new(Vec::new()));
        let a = StagedProber {
            pid: p,
            lines,
            reps: 5,
            issued: 0,
            lat_counts: Rc::clone(&counts),
        };
        let mut eng = Engine::new(&mut sys);
        eng.add_agent(Box::new(a), 0);
        eng.run(u64::MAX).unwrap();
        assert_eq!(&*counts.borrow(), &[16, 16, 16, 16, 16]);
        assert_eq!(sys.stats().total().issued_accesses, 80);
    }

    #[test]
    fn empty_engine_returns_zero() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let mut eng = Engine::new(&mut sys);
        assert_eq!(eng.run(u64::MAX).unwrap(), 0);
        assert!(eng.all_done(), "vacuously done with no agents");
    }

    #[test]
    fn agents_starting_past_deadline_never_step() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let p = sys.create_process(GpuId::new(0));
        let b = sys.malloc_on(p, GpuId::new(0), 4096).unwrap();
        let a = Toucher {
            pid: p,
            vas: vec![b],
            reps: 3,
            idx: 0,
            observed: vec![],
        };
        let mut eng = Engine::new(&mut sys);
        eng.add_agent(Box::new(a), 5_000);
        // Deadline below the launch offset: the agent issues nothing, yet
        // its start offset is still the final global time.
        let end = eng.run(1_000).unwrap();
        assert_eq!(end, 5_000);
        assert!(!eng.all_done());
        // Resuming with a later deadline completes it.
        let end = eng.run(u64::MAX).unwrap();
        assert!(eng.all_done());
        assert!(end > 5_000);
        assert_eq!(sys.stats().total().issued_accesses, 3);
    }

    #[test]
    fn empty_batches_cannot_stall_the_deadline() {
        // An agent that stages nothing forever: each empty probe is
        // charged one cycle, so the deadline still terminates the run.
        struct EmptyProber(ProcessId);
        impl Agent for EmptyProber {
            fn next_op(&mut self, _now: u64, _stage: &mut ProbeStage) -> Op {
                Op::LoadBatch
            }
            fn on_result(&mut self, res: &OpResult<'_>) {
                assert_eq!(res.duration, 1);
                assert!(res.latencies.is_empty());
            }
            fn process(&self) -> ProcessId {
                self.0
            }
        }
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let p = sys.create_process(GpuId::new(0));
        let mut eng = Engine::new(&mut sys);
        eng.add_agent(Box::new(EmptyProber(p)), 0);
        let end = eng.run(1_000).unwrap();
        assert_eq!(end, 1_000);
        assert_eq!(sys.stats().total().issued_accesses, 0);
    }

    #[test]
    fn zero_deadline_steps_nothing() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let p = sys.create_process(GpuId::new(0));
        let b = sys.malloc_on(p, GpuId::new(0), 4096).unwrap();
        let a = Toucher {
            pid: p,
            vas: vec![b],
            reps: 1,
            idx: 0,
            observed: vec![],
        };
        let mut eng = Engine::new(&mut sys);
        eng.add_agent(Box::new(a), 0);
        assert_eq!(eng.run(0).unwrap(), 0);
        assert_eq!(sys.stats().total().issued_accesses, 0);
    }

    /// Appends `(tag, now)` to a shared log on every op — captures the
    /// engine's interleaving order for tie-break/equivalence checks.
    struct LoggedCompute {
        pid: ProcessId,
        tag: usize,
        remaining: usize,
        step: u64,
        log: Rc<RefCell<Vec<(usize, u64)>>>,
    }

    impl Agent for LoggedCompute {
        fn next_op(&mut self, now: u64, _stage: &mut ProbeStage) -> Op {
            if self.remaining == 0 {
                return Op::Done;
            }
            self.remaining -= 1;
            self.log.borrow_mut().push((self.tag, now));
            Op::Compute(self.step)
        }

        fn on_result(&mut self, _res: &OpResult<'_>) {}

        fn process(&self) -> ProcessId {
            self.pid
        }
    }

    #[test]
    fn equal_clocks_break_ties_by_slot_index() {
        for kind in [SchedulerKind::Linear, SchedulerKind::Heap] {
            let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
            let p = sys.create_process(GpuId::new(0));
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut eng = Engine::with_scheduler(&mut sys, kind);
            for tag in 0..3 {
                eng.add_agent(
                    Box::new(LoggedCompute {
                        pid: p,
                        tag,
                        remaining: 2,
                        step: 100,
                        log: Rc::clone(&log),
                    }),
                    0,
                );
            }
            eng.run(u64::MAX).unwrap();
            // All agents share every clock value; order must be slot order
            // within each time step.
            assert_eq!(
                &*log.borrow(),
                &[(0, 0), (1, 0), (2, 0), (0, 100), (1, 100), (2, 100)],
                "scheduler {kind:?}"
            );
        }
    }

    #[test]
    fn livelocked_compute_zero_spinner_trips_the_watchdog() {
        // An agent that only ever emits `Compute(0)` never advances its
        // clock, so no deadline can end the run — the watchdog must.
        struct Spinner(ProcessId);
        impl Agent for Spinner {
            fn next_op(&mut self, _now: u64, _stage: &mut ProbeStage) -> Op {
                Op::Compute(0)
            }
            fn on_result(&mut self, _res: &OpResult<'_>) {}
            fn process(&self) -> ProcessId {
                self.0
            }
        }
        for kind in [SchedulerKind::Linear, SchedulerKind::Heap] {
            let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
            let p = sys.create_process(GpuId::new(0));
            let mut eng = Engine::with_scheduler(&mut sys, kind);
            eng.add_agent(Box::new(Spinner(p)), 7);
            let err = eng.run(u64::MAX).unwrap_err();
            assert_eq!(
                err,
                crate::error::SimError::Livelocked { at: 7 },
                "scheduler {kind:?}"
            );
        }
    }

    #[test]
    fn bounded_zero_duration_bursts_do_not_trip_the_watchdog() {
        // Long—but finite—same-cycle bursts are legitimate (an agent
        // polling its local clock before a timed wait); only an unbounded
        // streak is a livelock. Interleaving a clock-advancing op resets
        // the streak, so this run must complete.
        struct Burster {
            pid: ProcessId,
            rounds: usize,
        }
        impl Agent for Burster {
            fn next_op(&mut self, _now: u64, _stage: &mut ProbeStage) -> Op {
                if self.rounds == 0 {
                    return Op::Done;
                }
                self.rounds -= 1;
                // Three zero-cost polls, then one advancing cycle.
                if self.rounds.is_multiple_of(4) {
                    Op::Compute(1)
                } else {
                    Op::Compute(0)
                }
            }
            fn on_result(&mut self, _res: &OpResult<'_>) {}
            fn process(&self) -> ProcessId {
                self.pid
            }
        }
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let p = sys.create_process(GpuId::new(0));
        let mut eng = Engine::new(&mut sys);
        eng.add_agent(
            Box::new(Burster {
                pid: p,
                rounds: 4_000,
            }),
            0,
        );
        eng.run(u64::MAX).unwrap();
        assert!(eng.all_done());
    }

    #[test]
    fn auto_scheduler_switches_to_heap_beyond_linear_max() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let p = sys.create_process(GpuId::new(0));
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut eng = Engine::new(&mut sys);
        for tag in 0..LINEAR_SCHED_MAX_AGENTS + 2 {
            eng.add_agent(
                Box::new(LoggedCompute {
                    pid: p,
                    tag,
                    remaining: 1,
                    step: 10,
                    log: Rc::clone(&log),
                }),
                0,
            );
        }
        eng.run(u64::MAX).unwrap();
        assert!(eng.use_heap, "auto must pick the heap for >4 live agents");
        assert!(eng.all_done());
    }
}
