//! Discrete-event interleaver for concurrent agents.
//!
//! The covert channel (trojan + spy on different GPUs) and the side channel
//! (victim + spy) are concurrent programs contending on a shared L2. The
//! [`Engine`] runs a set of [`Agent`]s in global-timestamp order: it always
//! steps the agent whose local clock is furthest behind, so accesses hit
//! the shared caches in true time order.
//!
//! Agents express their programs as a stream of [`Op`]s and receive an
//! [`OpResult`] per op — mirroring how a GPU kernel only observes its own
//! loads and `clock()` values.

use crate::address::VirtAddr;
use crate::error::SimResult;
use crate::system::{AgentId, MultiGpuSystem, ProcessId};

/// One operation an agent asks the machine to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// A single (dependent) load, e.g. one pointer-chase step.
    Load(VirtAddr),
    /// A warp-parallel batch of loads (the covert-channel probe).
    LoadBatch(Vec<VirtAddr>),
    /// A store.
    Store(VirtAddr, u64),
    /// Busy computation for the given cycles (dummy ops / trigonometric
    /// wait while sending a "0").
    Compute(u64),
    /// The agent is finished.
    Done,
}

/// What the machine reports back for one op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpResult {
    /// Agent-local time when the op started.
    pub started_at: u64,
    /// Cycles the op took.
    pub duration: u64,
    /// Value loaded (single loads) or 0.
    pub value: u64,
    /// Per-line latencies (one entry for `Load`, n for `LoadBatch`).
    pub latencies: Vec<u32>,
}

/// A concurrent actor driven by the engine.
pub trait Agent {
    /// Returns the next operation. `now` is the agent's local clock.
    fn next_op(&mut self, now: u64) -> Op;

    /// Receives the result of the op previously returned.
    fn on_result(&mut self, res: &OpResult);

    /// The process this agent issues memory operations as.
    fn process(&self) -> ProcessId;

    /// Human-readable label for diagnostics.
    fn label(&self) -> &str {
        "agent"
    }
}

struct Slot {
    agent: Box<dyn Agent>,
    agent_id: AgentId,
    clock: u64,
    done: bool,
}

/// Runs agents against a shared [`MultiGpuSystem`] in timestamp order.
pub struct Engine<'a> {
    sys: &'a mut MultiGpuSystem,
    slots: Vec<Slot>,
}

impl<'a> Engine<'a> {
    /// Creates an engine over the system. Clears transient timing state
    /// (pressure windows, congestion) because agent clocks restart at zero.
    pub fn new(sys: &'a mut MultiGpuSystem) -> Self {
        sys.reset_timing_state();
        Engine {
            sys,
            slots: Vec::new(),
        }
    }

    /// Adds an agent starting at local time `start` (a launch offset models
    /// the two malicious processes not starting simultaneously).
    pub fn add_agent(&mut self, agent: Box<dyn Agent>, start: u64) {
        let agent_id = self.sys.new_agent();
        self.slots.push(Slot {
            agent,
            agent_id,
            clock: start,
            done: false,
        });
    }

    /// Runs until every agent is done or the global clock passes
    /// `deadline` cycles. Returns the final global time.
    ///
    /// # Errors
    ///
    /// Propagates the first simulator error an agent's op produces.
    pub fn run(&mut self, deadline: u64) -> SimResult<u64> {
        loop {
            // Pick the live agent with the smallest local clock.
            let next = self
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.done)
                .min_by_key(|(_, s)| s.clock)
                .map(|(i, _)| i);
            let Some(i) = next else {
                break;
            };
            if self.slots[i].clock >= deadline {
                break;
            }
            let now = self.slots[i].clock;
            let op = self.slots[i].agent.next_op(now);
            match op {
                Op::Done => {
                    self.slots[i].done = true;
                }
                Op::Compute(c) => {
                    let res = OpResult {
                        started_at: now,
                        duration: c,
                        value: 0,
                        latencies: Vec::new(),
                    };
                    self.slots[i].clock += c;
                    self.slots[i].agent.on_result(&res);
                }
                Op::Load(va) => {
                    let pid = self.slots[i].agent.process();
                    let acc = self
                        .sys
                        .access(pid, self.slots[i].agent_id, va, now, None)?;
                    let res = OpResult {
                        started_at: now,
                        duration: u64::from(acc.latency),
                        value: acc.value,
                        latencies: vec![acc.latency],
                    };
                    self.slots[i].clock += u64::from(acc.latency);
                    self.slots[i].agent.on_result(&res);
                }
                Op::Store(va, v) => {
                    let pid = self.slots[i].agent.process();
                    let acc = self
                        .sys
                        .access(pid, self.slots[i].agent_id, va, now, Some(v))?;
                    let res = OpResult {
                        started_at: now,
                        duration: u64::from(acc.latency),
                        value: v,
                        latencies: vec![acc.latency],
                    };
                    self.slots[i].clock += u64::from(acc.latency);
                    self.slots[i].agent.on_result(&res);
                }
                Op::LoadBatch(vas) => {
                    let pid = self.slots[i].agent.process();
                    let b = self
                        .sys
                        .access_batch(pid, self.slots[i].agent_id, &vas, now)?;
                    let res = OpResult {
                        started_at: now,
                        duration: b.duration,
                        value: 0,
                        latencies: b.latencies,
                    };
                    self.slots[i].clock += b.duration;
                    self.slots[i].agent.on_result(&res);
                }
            }
        }
        Ok(self.slots.iter().map(|s| s.clock).max().unwrap_or(0))
    }

    /// Whether every agent has finished.
    pub fn all_done(&self) -> bool {
        self.slots.iter().all(|s| s.done)
    }
}

impl std::fmt::Debug for Engine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("agents", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::GpuId;
    use crate::config::SystemConfig;

    /// Touches a fixed list of addresses `reps` times.
    struct Toucher {
        pid: ProcessId,
        vas: Vec<VirtAddr>,
        reps: usize,
        idx: usize,
        observed: Vec<(u64, u32)>,
    }

    impl Agent for Toucher {
        fn next_op(&mut self, _now: u64) -> Op {
            if self.idx >= self.vas.len() * self.reps {
                return Op::Done;
            }
            let va = self.vas[self.idx % self.vas.len()];
            self.idx += 1;
            Op::Load(va)
        }

        fn on_result(&mut self, res: &OpResult) {
            self.observed.push((res.started_at, res.latencies[0]));
        }

        fn process(&self) -> ProcessId {
            self.pid
        }
    }

    #[test]
    fn two_agents_interleave_by_time() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let p0 = sys.create_process(GpuId::new(0));
        let p1 = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(p1, GpuId::new(0)).unwrap();
        let b0 = sys.malloc_on(p0, GpuId::new(0), 4096).unwrap();
        let b1 = sys.malloc_on(p1, GpuId::new(0), 4096).unwrap();

        let a0 = Toucher {
            pid: p0,
            vas: vec![b0],
            reps: 50,
            idx: 0,
            observed: vec![],
        };
        let a1 = Toucher {
            pid: p1,
            vas: vec![b1],
            reps: 50,
            idx: 0,
            observed: vec![],
        };
        let mut eng = Engine::new(&mut sys);
        eng.add_agent(Box::new(a0), 0);
        eng.add_agent(Box::new(a1), 0);
        let end = eng.run(u64::MAX).unwrap();
        assert!(eng.all_done());
        assert!(end > 0);
    }

    #[test]
    fn deadline_stops_infinite_agent() {
        struct Forever(ProcessId, VirtAddr);
        impl Agent for Forever {
            fn next_op(&mut self, _now: u64) -> Op {
                Op::Load(self.1)
            }
            fn on_result(&mut self, _res: &OpResult) {}
            fn process(&self) -> ProcessId {
                self.0
            }
        }
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let p = sys.create_process(GpuId::new(0));
        let b = sys.malloc_on(p, GpuId::new(0), 4096).unwrap();
        let mut eng = Engine::new(&mut sys);
        eng.add_agent(Box::new(Forever(p, b)), 0);
        let end = eng.run(100_000).unwrap();
        assert!(end >= 100_000);
        assert!(!eng.all_done());
    }

    #[test]
    fn compute_advances_without_memory_traffic() {
        struct Compute(ProcessId, bool);
        impl Agent for Compute {
            fn next_op(&mut self, _now: u64) -> Op {
                if self.1 {
                    Op::Done
                } else {
                    self.1 = true;
                    Op::Compute(1234)
                }
            }
            fn on_result(&mut self, res: &OpResult) {
                assert_eq!(res.duration, 1234);
            }
            fn process(&self) -> ProcessId {
                self.0
            }
        }
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let p = sys.create_process(GpuId::new(0));
        let mut eng = Engine::new(&mut sys);
        eng.add_agent(Box::new(Compute(p, false)), 10);
        let end = eng.run(u64::MAX).unwrap();
        assert_eq!(end, 10 + 1234);
        assert_eq!(sys.stats().total().issued_accesses, 0);
    }

    #[test]
    fn start_offsets_are_respected() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let p = sys.create_process(GpuId::new(0));
        let b = sys.malloc_on(p, GpuId::new(0), 4096).unwrap();
        let a = Toucher {
            pid: p,
            vas: vec![b],
            reps: 1,
            idx: 0,
            observed: vec![],
        };
        let mut eng = Engine::new(&mut sys);
        eng.add_agent(Box::new(a), 5_000);
        let end = eng.run(u64::MAX).unwrap();
        assert!(end >= 5_000);
    }
}
