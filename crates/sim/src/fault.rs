//! Deterministic fault injection for the timed link fabric.
//!
//! The paper's channels are measured on a healthy DGX-1, but a fleet of
//! GPU boxes serves with degraded and failing NVLink hardware as the
//! steady state: links flap, links throttle, and transfers reroute
//! mid-transmission. This module makes those failures *first-class,
//! scheduled and reproducible* so both covert-channel families (and the
//! QoS defence sweep) can be evaluated under fault — the robustness
//! analogue of the [`crate::qos`] defence layer, exercised head-to-head
//! against the hardened and naive receive stacks by
//! `ext_fault_resilience`. Everything sits behind
//! [`crate::fabric::FabricConfig::faults`] and is off by default: a
//! [`FaultPlan::none`] fabric is bit-identical to the fault-free model.
//!
//! # Failure taxonomy
//!
//! - **Scheduled link outages** ([`LinkDown`]): a link is down over
//!   `[at, recover_at)` (`recover_at == u64::MAX` models a permanent
//!   failure). Routing recomputes per *fault epoch*: at every outage
//!   boundary the surviving graph's shortest paths are rebuilt
//!   ([`crate::topology::Topology::excluding_links`]) and remote
//!   accesses reroute — the covert channel's timing signature shifts
//!   because the rerouted path shares different links. When the
//!   survivors are partitioned the access falls back to the PCIe root
//!   complex, and when even that is refused
//!   ([`FaultPlan::without_pcie_fallback`]) the access fails with
//!   [`crate::SimError::LinkDown`]. A line already committed to a stale
//!   route (a batch resolved before the outage) stalls at the dead link
//!   until recovery — the in-flight-transfer semantics of a real link
//!   flap.
//! - **Degraded links** ([`DegradedLink`]): over `[at, until)` a link
//!   serves each line at `service_multiplier ×` its healthy service
//!   cycles — a thermally throttled or lane-degraded link. Routing is
//!   unchanged; only the queueing model slows down, so congestion (and
//!   the congestion channel's signal) *amplifies* on the degraded link.
//! - **Transient stalls** ([`TransientStalls`]): every hop draws from a
//!   splitmix64 stream keyed on the hop counter *and* the hop's
//!   512-cycle arrival window (the QoS jitter idiom — no system RNG,
//!   bit-reproducible across schedulers) and with probability
//!   `per_1024/1024` the line is stalled `stall_cycles` before
//!   service — replay/CRC-retry blips on a flaky link. The time key
//!   means an exact replay stalls identically while a time-shifted one
//!   (a backed-off retransmission) draws independently.
//!
//! # Determinism and cost
//!
//! Fault application consumes **no system RNG** and performs **no
//! steady-state allocation**: outage and degradation windows are sorted
//! per-link vectors built at fabric construction, epoch route tables
//! are precomputed at boot / [`crate::MultiGpuSystem::set_fault_plan`]
//! time, and the per-access epoch lookup is a binary search over a
//! handful of boundaries (asserted by the counting-allocator suite in
//! `tests/alloc_free.rs`). Reroute/fallback/wait counters land in
//! [`crate::stats::FaultStats`].

use crate::stats::FaultStats;
use crate::topology::{LinkId, Topology};
use serde::{Deserialize, Serialize};

/// One scheduled link outage: the link is unusable over `[at, recover_at)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkDown {
    /// The failing link (an index into the topology's canonical edge
    /// list, see [`crate::topology::Topology::link_endpoints`]).
    pub link: u32,
    /// Cycle the outage begins.
    pub at: u64,
    /// Cycle the link comes back (`u64::MAX` = permanent failure).
    pub recover_at: u64,
}

/// One scheduled link degradation: over `[at, until)` the link serves
/// each line at a multiple of its healthy service cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradedLink {
    /// The degraded link.
    pub link: u32,
    /// Cycle the degradation begins.
    pub at: u64,
    /// Cycle the link returns to full speed.
    pub until: u64,
    /// Service-cycle multiplier while degraded (≥ 2: `1` would be a
    /// healthy link and a silently inert plan entry).
    pub service_multiplier: u32,
}

/// Seeded transient stalls: every fabric hop flips a deterministic
/// `per_1024/1024` coin (splitmix64 keyed on the hop counter and the
/// hop's 512-cycle arrival window, the
/// [`crate::qos::TrafficShaping::Jitter`] idiom) and on a hit delays the
/// line `stall_cycles` before service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransientStalls {
    /// Seed of the stall stream.
    pub seed: u64,
    /// Stall probability numerator out of 1024 (must be in `1..=1024`).
    pub per_1024: u64,
    /// Cycles one stall delays the line (must be ≥ 1).
    pub stall_cycles: u64,
}

/// The complete fault-injection plan of the fabric; defaults to *no
/// faults*, which reproduces the healthy fabric bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Scheduled link outages (rerouting recomputes per outage epoch).
    pub link_downs: Vec<LinkDown>,
    /// Scheduled link degradations (service slows, routing unchanged).
    pub degraded: Vec<DegradedLink>,
    /// Seeded transient per-hop stalls (`None` = off).
    pub stalls: Option<TransientStalls>,
    /// Whether an access whose GPU pair is partitioned by outages may
    /// fall back to the PCIe root complex (`true`, the default — the
    /// driver behaviour of a real box). `false` makes such accesses
    /// fail with [`crate::SimError::LinkDown`] instead, modelling a
    /// runtime that refuses to silently degrade to PCIe.
    pub pcie_fallback: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// No faults at all: the healthy fabric.
    pub fn none() -> Self {
        FaultPlan {
            link_downs: Vec::new(),
            degraded: Vec::new(),
            stalls: None,
            pcie_fallback: true,
        }
    }

    /// Whether any fault component is active.
    pub fn enabled(&self) -> bool {
        !self.link_downs.is_empty() || !self.degraded.is_empty() || self.stalls.is_some()
    }

    /// Schedules a link outage over `[at, recover_at)` (builder-style);
    /// `recover_at == u64::MAX` is a permanent failure.
    #[must_use]
    pub fn with_link_down(mut self, link: u32, at: u64, recover_at: u64) -> Self {
        self.link_downs.push(LinkDown {
            link,
            at,
            recover_at,
        });
        self
    }

    /// Schedules a link degradation over `[at, until)` (builder-style).
    #[must_use]
    pub fn with_degraded(mut self, link: u32, at: u64, until: u64, service_multiplier: u32) -> Self {
        self.degraded.push(DegradedLink {
            link,
            at,
            until,
            service_multiplier,
        });
        self
    }

    /// Adds seeded transient per-hop stalls (builder-style).
    #[must_use]
    pub fn with_stalls(mut self, seed: u64, per_1024: u64, stall_cycles: u64) -> Self {
        self.stalls = Some(TransientStalls {
            seed,
            per_1024,
            stall_cycles,
        });
        self
    }

    /// Refuses the PCIe fallback for outage-partitioned GPU pairs
    /// (builder-style): such accesses fail with
    /// [`crate::SimError::LinkDown`] instead.
    #[must_use]
    pub fn without_pcie_fallback(mut self) -> Self {
        self.pcie_fallback = false;
        self
    }

    /// The highest link id the plan names, if it names any.
    pub fn max_link(&self) -> Option<u32> {
        self.link_downs
            .iter()
            .map(|d| d.link)
            .chain(self.degraded.iter().map(|d| d.link))
            .max()
    }

    /// Checks the plan for degenerate parameters (empty fault windows,
    /// inert multipliers, zero or out-of-range stall rates).
    /// [`crate::MultiGpuSystem::set_fault_plan`] rejects invalid plans
    /// with an error; constructing a [`crate::fabric::Fabric`] from one
    /// panics.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), &'static str> {
        for d in &self.link_downs {
            if d.recover_at <= d.at {
                return Err("link outage must recover after it begins");
            }
        }
        for d in &self.degraded {
            if d.until <= d.at {
                return Err("degraded window must end after it begins");
            }
            if d.service_multiplier < 2 {
                return Err("degraded link needs a service multiplier of at least 2");
            }
        }
        if let Some(s) = &self.stalls {
            if s.per_1024 == 0 || s.per_1024 > 1024 {
                return Err("transient stalls need a per-1024 rate in 1..=1024");
            }
            if s.stall_cycles == 0 {
                return Err("transient stalls need a positive duration");
            }
        }
        Ok(())
    }
}

/// One routing epoch of a fault plan: from `start` until the next
/// epoch's start the set of downed links is constant, so one recomputed
/// topology serves every access in the window.
#[derive(Debug, Clone)]
pub(crate) struct FaultEpoch {
    /// First cycle of the epoch.
    pub(crate) start: u64,
    /// Routing topology excluding the links down in this epoch; `None`
    /// when no link is down (canonical routing, zero-cost lookup).
    pub(crate) topo: Option<Topology>,
    /// Lowest-numbered link down in this epoch — names the fault in
    /// [`crate::SimError::LinkDown`] when even the PCIe fallback is
    /// refused.
    pub(crate) first_down: u32,
}

/// Precomputes the routing epochs of a plan over a topology: one entry
/// per maximal window with a constant downed-link set, sorted by start
/// (the first always starts at cycle 0). Empty — meaning "always route
/// canonically" — when the plan schedules no outages; degradations and
/// stalls never change routing.
pub(crate) fn build_epochs(plan: &FaultPlan, topo: &Topology) -> Vec<FaultEpoch> {
    if plan.link_downs.is_empty() {
        return Vec::new();
    }
    let mut bounds = vec![0u64];
    for d in &plan.link_downs {
        bounds.push(d.at);
        if d.recover_at != u64::MAX {
            bounds.push(d.recover_at);
        }
    }
    bounds.sort_unstable();
    bounds.dedup();
    let mut epochs: Vec<FaultEpoch> = Vec::new();
    let mut prev_down: Option<Vec<LinkId>> = None;
    for &start in &bounds {
        let mut down: Vec<LinkId> = plan
            .link_downs
            .iter()
            .filter(|d| d.at <= start && start < d.recover_at)
            .map(|d| LinkId(d.link))
            .collect();
        down.sort_unstable();
        down.dedup();
        if prev_down.as_deref() == Some(&down) {
            continue; // the downed set did not change: merge the epochs
        }
        epochs.push(FaultEpoch {
            start,
            first_down: down.first().map_or(0, |l| l.0),
            topo: if down.is_empty() {
                None
            } else {
                Some(topo.excluding_links(&down))
            },
        });
        prev_down = Some(down);
    }
    epochs
}

/// Runtime fault state owned by [`crate::fabric::Fabric`]: the plan's
/// windows re-sorted per link for O(windows-per-link) hot-path scans,
/// plus the stall-stream counter.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    /// Per-link `(at, recover_at)` outage windows, sorted by start.
    downs: Vec<Vec<(u64, u64)>>,
    /// Per-link `(at, until, service_multiplier)` windows, sorted by
    /// start.
    degraded: Vec<Vec<(u64, u64, u64)>>,
    stalls: Option<TransientStalls>,
    /// Hop counter indexing the stall draw stream; rewound by
    /// [`FaultState::reset`] so engine runs replay identically.
    stall_counter: u64,
}

impl FaultState {
    /// Builds the runtime state for a topology with `num_links` links.
    ///
    /// # Panics
    ///
    /// Panics on an invalid plan ([`FaultPlan::validate`]) or one naming
    /// a link the topology does not have.
    pub(crate) fn new(plan: &FaultPlan, num_links: usize) -> Self {
        if let Err(reason) = plan.validate() {
            panic!("{reason}");
        }
        if let Some(l) = plan.max_link() {
            assert!(
                (l as usize) < num_links,
                "fault plan names link {l} but the topology has {num_links} links"
            );
        }
        let mut downs = vec![Vec::new(); num_links];
        for d in &plan.link_downs {
            downs[d.link as usize].push((d.at, d.recover_at));
        }
        let mut degraded = vec![Vec::new(); num_links];
        for d in &plan.degraded {
            degraded[d.link as usize].push((d.at, d.until, u64::from(d.service_multiplier)));
        }
        for w in &mut downs {
            w.sort_unstable();
        }
        for w in &mut degraded {
            w.sort_unstable();
        }
        FaultState {
            downs,
            degraded,
            stalls: plan.stalls,
            stall_counter: 0,
        }
    }

    /// Rewinds the stall stream for a new engine run (agent clocks
    /// restart at zero, so the draw sequence must replay).
    pub(crate) fn reset(&mut self) {
        self.stall_counter = 0;
    }

    /// Applies this hop's faults to a line arriving at link `l` at `t`
    /// with healthy service `base_service`. Returns the (possibly
    /// delayed) arrival time and the (possibly inflated) service
    /// cycles, in fixed order: outage wait (the line stalls at the dead
    /// link until recovery — saturating, so a permanent failure pins
    /// the arrival at `u64::MAX`), then the transient-stall draw (one
    /// counter tick per hop whenever stalls are configured, hit or
    /// miss), then the degradation multiplier evaluated at the delayed
    /// arrival. Counters land in `fs`.
    #[inline]
    pub(crate) fn apply_hop(
        &mut self,
        l: LinkId,
        t: u64,
        base_service: u64,
        fs: &mut FaultStats,
    ) -> (u64, u64) {
        let li = l.index();
        let mut arr = t;
        for &(at, rec) in &self.downs[li] {
            if at > arr {
                break;
            }
            if arr < rec {
                fs.down_waits += 1;
                fs.down_wait_cycles = fs.down_wait_cycles.saturating_add(rec - arr);
                arr = rec;
            }
        }
        if let Some(s) = self.stalls {
            // Keyed on the hop counter *and* the (512-cycle-windowed)
            // arrival time: transient faults are a property of when the
            // line crosses the link, not of how many lines crossed
            // before it. An identical replay (same hops, same clocks)
            // draws identically, but a time-shifted replay — e.g. a
            // backed-off retransmission round — gets an independent
            // draw instead of deterministically re-hitting the stalls
            // that killed the first attempt.
            let window = (arr >> 9).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let draw = crate::qos::splitmix64(s.seed ^ self.stall_counter ^ window) % 1024;
            self.stall_counter += 1;
            if draw < s.per_1024 {
                fs.transient_stalls += 1;
                fs.stall_cycles += s.stall_cycles;
                arr = arr.saturating_add(s.stall_cycles);
            }
        }
        let mut service = base_service;
        for &(at, until, mult) in &self.degraded[li] {
            if at > arr {
                break;
            }
            if arr < until {
                service = base_service * mult;
                fs.degraded_hops += 1;
                fs.degraded_extra_cycles += service - base_service;
                break;
            }
        }
        (arr, service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> Topology {
        Topology::from_edges(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn empty_plan_is_off_and_valid() {
        let plan = FaultPlan::none();
        assert!(!plan.enabled());
        assert_eq!(plan, FaultPlan::default());
        assert!(plan.pcie_fallback);
        assert_eq!(plan.max_link(), None);
        plan.validate().unwrap();
        assert!(build_epochs(&plan, &line3()).is_empty());
    }

    #[test]
    fn builders_compose_and_enable() {
        let plan = FaultPlan::none()
            .with_link_down(0, 100, 200)
            .with_degraded(1, 50, 150, 4)
            .with_stalls(7, 32, 500)
            .without_pcie_fallback();
        assert!(plan.enabled());
        assert!(!plan.pcie_fallback);
        assert_eq!(plan.max_link(), Some(1));
        plan.validate().unwrap();
        assert!(FaultPlan::none().with_stalls(7, 32, 500).enabled());
        assert!(FaultPlan::none().with_degraded(0, 0, 1, 2).enabled());
    }

    #[test]
    fn validate_rejects_degenerate_parameters() {
        let cases = [
            (
                FaultPlan::none().with_link_down(0, 100, 100),
                "link outage must recover after it begins",
            ),
            (
                FaultPlan::none().with_degraded(0, 100, 90, 2),
                "degraded window must end after it begins",
            ),
            (
                FaultPlan::none().with_degraded(0, 0, 100, 1),
                "degraded link needs a service multiplier of at least 2",
            ),
            (
                FaultPlan::none().with_stalls(1, 0, 10),
                "transient stalls need a per-1024 rate in 1..=1024",
            ),
            (
                FaultPlan::none().with_stalls(1, 2000, 10),
                "transient stalls need a per-1024 rate in 1..=1024",
            ),
            (
                FaultPlan::none().with_stalls(1, 16, 0),
                "transient stalls need a positive duration",
            ),
        ];
        for (plan, msg) in cases {
            assert_eq!(plan.validate(), Err(msg));
        }
    }

    #[test]
    fn epochs_cover_outage_boundaries_and_reroute() {
        use crate::address::GpuId;
        let topo = line3();
        // Link 0 = (0,1) down over [1000, 2000).
        let plan = FaultPlan::none().with_link_down(0, 1000, 2000);
        let epochs = build_epochs(&plan, &topo);
        assert_eq!(epochs.len(), 3);
        assert_eq!(
            epochs.iter().map(|e| e.start).collect::<Vec<_>>(),
            vec![0, 1000, 2000]
        );
        assert!(epochs[0].topo.is_none(), "healthy before the outage");
        assert!(epochs[2].topo.is_none(), "healthy after recovery");
        let down = epochs[1].topo.as_ref().unwrap();
        assert_eq!(epochs[1].first_down, 0);
        // The 0-1-2 line loses (0,1): GPU0 is cut off, 1-2 still routes.
        assert!(down.path(GpuId::new(0), GpuId::new(1)).is_empty());
        assert_eq!(down.path(GpuId::new(1), GpuId::new(2)).len(), 1);
    }

    #[test]
    fn permanent_failures_and_equal_sets_merge_epochs() {
        let topo = line3();
        // Two overlapping permanent outages of the same link: one
        // boundary each, identical downed sets collapse.
        let plan = FaultPlan::none()
            .with_link_down(1, 500, u64::MAX)
            .with_link_down(1, 700, u64::MAX);
        let epochs = build_epochs(&plan, &topo);
        assert_eq!(
            epochs.iter().map(|e| e.start).collect::<Vec<_>>(),
            vec![0, 500],
            "the 700 boundary changes nothing and merges away"
        );
        assert!(epochs[1].topo.is_some());
        assert_eq!(epochs[1].first_down, 1);
    }

    #[test]
    fn apply_hop_waits_out_outages() {
        let plan = FaultPlan::none().with_link_down(0, 100, 400);
        let mut st = FaultState::new(&plan, 2);
        let mut fs = FaultStats::default();
        // Before the outage: untouched.
        assert_eq!(st.apply_hop(LinkId(0), 50, 10, &mut fs), (50, 10));
        // Inside: delayed to recovery.
        assert_eq!(st.apply_hop(LinkId(0), 250, 10, &mut fs), (400, 10));
        // After: untouched again; other links never affected.
        assert_eq!(st.apply_hop(LinkId(0), 450, 10, &mut fs), (450, 10));
        assert_eq!(st.apply_hop(LinkId(1), 250, 10, &mut fs), (250, 10));
        assert_eq!(fs.down_waits, 1);
        assert_eq!(fs.down_wait_cycles, 150);
    }

    #[test]
    fn apply_hop_chains_back_to_back_outages() {
        let plan = FaultPlan::none()
            .with_link_down(0, 100, 200)
            .with_link_down(0, 200, 300);
        let mut st = FaultState::new(&plan, 1);
        let mut fs = FaultStats::default();
        // Arriving in the first window rides out both.
        assert_eq!(st.apply_hop(LinkId(0), 150, 10, &mut fs).0, 300);
        assert_eq!(fs.down_waits, 2);
        assert_eq!(fs.down_wait_cycles, 50 + 100);
    }

    #[test]
    fn permanent_outage_saturates() {
        let plan = FaultPlan::none().with_link_down(0, 100, u64::MAX);
        let mut st = FaultState::new(&plan, 1);
        let mut fs = FaultStats::default();
        assert_eq!(st.apply_hop(LinkId(0), 500, 10, &mut fs).0, u64::MAX);
    }

    #[test]
    fn apply_hop_multiplies_degraded_service() {
        let plan = FaultPlan::none().with_degraded(0, 100, 400, 4);
        let mut st = FaultState::new(&plan, 1);
        let mut fs = FaultStats::default();
        assert_eq!(st.apply_hop(LinkId(0), 50, 10, &mut fs), (50, 10));
        assert_eq!(st.apply_hop(LinkId(0), 250, 10, &mut fs), (250, 40));
        assert_eq!(st.apply_hop(LinkId(0), 400, 10, &mut fs), (400, 10));
        assert_eq!(fs.degraded_hops, 1);
        assert_eq!(fs.degraded_extra_cycles, 30);
    }

    #[test]
    fn stalls_are_seeded_deterministic_and_rewindable() {
        let plan = FaultPlan::none().with_stalls(42, 256, 700);
        let mut st = FaultState::new(&plan, 1);
        let mut fs = FaultStats::default();
        let draws: Vec<u64> = (0..64)
            .map(|i| st.apply_hop(LinkId(0), i * 1000, 10, &mut fs).0 - i * 1000)
            .collect();
        assert!(draws.iter().all(|&d| d == 0 || d == 700));
        assert!(draws.contains(&700), "some hops stall");
        assert!(draws.contains(&0), "some hops pass");
        assert_eq!(
            fs.stall_cycles,
            700 * fs.transient_stalls,
            "counters agree"
        );
        // Reset rewinds the stream: the same draws replay.
        st.reset();
        let mut fs2 = FaultStats::default();
        let again: Vec<u64> = (0..64)
            .map(|i| st.apply_hop(LinkId(0), i * 1000, 10, &mut fs2).0 - i * 1000)
            .collect();
        assert_eq!(draws, again);
        // A different seed gives a different stream.
        let mut other = FaultState::new(&FaultPlan::none().with_stalls(43, 256, 700), 1);
        let theirs: Vec<u64> = (0..64)
            .map(|i| other.apply_hop(LinkId(0), i * 1000, 10, &mut fs2).0 - i * 1000)
            .collect();
        assert_ne!(draws, theirs);
    }

    #[test]
    #[should_panic(expected = "names link 5")]
    fn state_rejects_out_of_range_links() {
        let plan = FaultPlan::none().with_link_down(5, 0, 10);
        let _ = FaultState::new(&plan, 2);
    }

    #[test]
    fn serde_round_trip() {
        use serde::{Deserialize as _, Serialize as _};
        for plan in [
            FaultPlan::none(),
            FaultPlan::none().with_link_down(3, 1000, u64::MAX),
            FaultPlan::none()
                .with_link_down(0, 100, 200)
                .with_degraded(1, 50, 150, 4)
                .with_stalls(7, 32, 500)
                .without_pcie_fallback(),
        ] {
            let back = FaultPlan::from_value(&plan.to_value()).unwrap();
            assert_eq!(back, plan);
        }
    }
}
