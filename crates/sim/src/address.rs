//! Address newtypes and the physical-address → cache-set mapping.
//!
//! The simulator keeps three address spaces apart with newtypes
//! ([`VirtAddr`], [`PhysAddr`], [`GpuId`]) so that attack code can never
//! accidentally index a cache with a virtual address: the L2 is *physically
//! indexed*, which is precisely what makes eviction-set discovery
//! non-trivial for the user-space attacker in the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one GPU in the box (0-based).
///
/// # Examples
///
/// ```
/// use gpubox_sim::GpuId;
/// let g = GpuId::new(3);
/// assert_eq!(g.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GpuId(u8);

impl GpuId {
    /// Creates a new GPU identifier.
    #[inline]
    pub fn new(index: u8) -> Self {
        GpuId(index)
    }

    /// Returns the 0-based index of this GPU.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GPU{}", self.0)
    }
}

impl From<u8> for GpuId {
    fn from(v: u8) -> Self {
        GpuId(v)
    }
}

/// A per-process virtual address.
///
/// Virtual addresses are what the attacker manipulates; the mapping to
/// physical frames is randomised by the driver model in
/// [`crate::vm::AddressSpace`] and never exposed.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// Byte offset addition.
    #[must_use]
    #[inline]
    pub fn offset(self, bytes: u64) -> Self {
        VirtAddr(self.0 + bytes)
    }

    /// The raw address value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

/// A physical address within one GPU's HBM.
///
/// A `PhysAddr` is only meaningful together with the [`GpuId`] of its home
/// GPU; [`PhysLoc`] bundles the two.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// The raw address value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pa:{:#x}", self.0)
    }
}

/// A fully resolved physical location: which GPU's HBM, and where.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhysLoc {
    /// The GPU whose HBM holds this address (the *home* GPU — its L2
    /// caches this line, per the paper's NUMA reverse engineering).
    pub gpu: GpuId,
    /// Address within that GPU's physical memory.
    pub addr: PhysAddr,
}

impl fmt::Display for PhysLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.addr, self.gpu)
    }
}

/// Index of a cache set within one L2.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SetIndex(pub u32);

impl SetIndex {
    /// The raw set number.
    #[inline]
    pub fn raw(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SetIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "set:{}", self.0)
    }
}

/// A physical page-frame number within one GPU's HBM.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct FrameNumber(pub u64);

/// A virtual page number within one process address space.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PageNumber(pub u64);

/// Precomputed shift/mask geometry for the physical-address → line/set
/// mapping.
///
/// The hot path runs this on every simulated access, so the power-of-two
/// division and modulo are folded into a shift and a mask once at cache
/// construction instead of being re-derived per access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetMapper {
    line_shift: u32,
    set_mask: u64,
}

impl SetMapper {
    /// Builds the mapper for a cache with `line_size`-byte lines and
    /// `num_sets` sets.
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are powers of two.
    pub fn new(line_size: u64, num_sets: u64) -> Self {
        assert!(line_size.is_power_of_two(), "line size must be a power of two");
        assert!(num_sets.is_power_of_two(), "set count must be a power of two");
        SetMapper {
            line_shift: line_size.trailing_zeros(),
            set_mask: num_sets - 1,
        }
    }

    /// The line address (tag key) of `pa`.
    #[inline(always)]
    pub fn line_of(self, pa: PhysAddr) -> u64 {
        pa.0 >> self.line_shift
    }

    /// The set index of `pa`.
    #[inline(always)]
    pub fn set_of(self, pa: PhysAddr) -> SetIndex {
        SetIndex((self.line_of(pa) & self.set_mask) as u32)
    }

    /// The set index of the line address `line` (already shifted).
    #[inline(always)]
    pub fn set_of_line(self, line: u64) -> SetIndex {
        SetIndex((line & self.set_mask) as u32)
    }
}

/// Computes the cache-set index for a physical address.
///
/// The mapping uses the bits directly above the line offset, i.e.
/// `set = (pa >> log2(line)) mod num_sets`. This matches the paper's
/// observation that *"the addresses within a single page will hash to
/// consecutive sets in the physical cache"* (Sec. V-A): lines of one page
/// land in consecutive sets, while the page's *frame* placement (and hence
/// the base set) is unknown to the user.
///
/// Hot code that already knows the cache geometry should hold a
/// [`SetMapper`] instead of calling this per access.
#[inline]
pub fn set_index(pa: PhysAddr, line_size: u64, num_sets: u64) -> SetIndex {
    debug_assert!(line_size.is_power_of_two());
    debug_assert!(num_sets.is_power_of_two());
    SetIndex(((pa.0 >> line_size.trailing_zeros()) & (num_sets - 1)) as u32)
}

/// Computes the cache line address (physical address with the line offset
/// stripped) used as the tag key.
#[inline]
pub fn line_address(pa: PhysAddr, line_size: u64) -> u64 {
    debug_assert!(line_size.is_power_of_two());
    pa.0 >> line_size.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_index_is_page_consecutive() {
        // Within a page, consecutive lines map to consecutive sets.
        let line = 128;
        let sets = 2048;
        let base = PhysAddr(0x40000);
        let s0 = set_index(base, line, sets);
        let s1 = set_index(PhysAddr(base.0 + line), line, sets);
        assert_eq!(s1.0, (s0.0 + 1) % sets as u32);
    }

    #[test]
    fn set_index_wraps_modulo_sets() {
        let line = 128;
        let sets = 2048;
        let pa = PhysAddr(line * sets); // exactly one full cache span
        assert_eq!(set_index(pa, line, sets), SetIndex(0));
    }

    #[test]
    fn same_set_addresses_differ_by_cache_span() {
        let line = 128;
        let sets = 2048;
        let span = line * sets;
        for k in 0..20u64 {
            assert_eq!(
                set_index(PhysAddr(777 * line + k * span), line, sets),
                set_index(PhysAddr(777 * line), line, sets)
            );
        }
    }

    #[test]
    fn line_address_strips_offset() {
        assert_eq!(line_address(PhysAddr(128 * 5 + 17), 128), 5);
    }

    #[test]
    fn gpu_id_display_and_index() {
        let g = GpuId::new(7);
        assert_eq!(g.to_string(), "GPU7");
        assert_eq!(g.index(), 7);
        assert_eq!(GpuId::from(2), GpuId::new(2));
    }

    #[test]
    fn virt_addr_offset() {
        assert_eq!(VirtAddr(100).offset(28), VirtAddr(128));
        assert_eq!(VirtAddr(100).raw(), 100);
    }
}
