//! Set-associative L2 cache model.
//!
//! One [`L2Cache`] instance sits on every GPU. Crucially — and this is the
//! paper's central reverse-engineering result (Sec. III-A) — a line is
//! cached in the L2 of the GPU *whose HBM homes the physical page*, no
//! matter which GPU issued the access. The cache is physically indexed, so
//! user code cannot predict which set a virtual address lands in.

use crate::address::{line_address, set_index, PhysAddr, SetIndex};
use crate::config::CacheConfig;
use crate::replacement::SetPolicy;
use rand::Rng;

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was filled; `evicted` carries the displaced line address.
    Miss {
        /// Line address that was evicted to make room, if the way held one.
        evicted: Option<u64>,
    },
}

impl AccessOutcome {
    /// Whether the access hit.
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

#[derive(Debug, Clone)]
struct CacheSet {
    /// `ways[i]` holds the line address resident in way `i`.
    ways: Vec<Option<u64>>,
    policy: SetPolicy,
    hits: u64,
    misses: u64,
}

/// A physically indexed, set-associative, write-allocate cache.
#[derive(Debug, Clone)]
pub struct L2Cache {
    sets: Vec<CacheSet>,
    line_size: u64,
    num_sets: u64,
}

impl L2Cache {
    /// Builds an empty cache from its geometry.
    pub fn new(cfg: &CacheConfig) -> Self {
        let num_sets = cfg.num_sets();
        let sets = (0..num_sets)
            .map(|_| CacheSet {
                ways: vec![None; cfg.ways as usize],
                policy: SetPolicy::new(cfg.replacement, cfg.ways),
                hits: 0,
                misses: 0,
            })
            .collect();
        L2Cache {
            sets,
            line_size: cfg.line_size,
            num_sets,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.num_sets
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// The set a physical address maps to.
    pub fn set_of(&self, pa: PhysAddr) -> SetIndex {
        set_index(pa, self.line_size, self.num_sets)
    }

    /// The set a physical address maps to under an optional MIG-style
    /// partition `(index, count)`: the address is confined to the
    /// partition's contiguous slice of sets (paper Sec. VII).
    pub fn set_of_partitioned(&self, pa: PhysAddr, partition: Option<(u32, u32)>) -> SetIndex {
        match partition {
            None => self.set_of(pa),
            Some((idx, count)) => {
                let span = (self.num_sets / u64::from(count)).max(1);
                let line = crate::address::line_address(pa, self.line_size);
                SetIndex((u64::from(idx) * span + line % span) as u32)
            }
        }
    }

    /// Performs an access (load or store — the L2 is write-allocate) and
    /// updates replacement state and statistics.
    pub fn access<R: Rng>(&mut self, pa: PhysAddr, rng: &mut R) -> AccessOutcome {
        self.access_partitioned(pa, rng, None)
    }

    /// As [`L2Cache::access`], but with an optional MIG-style partition
    /// confining the line to a slice of the sets.
    pub fn access_partitioned<R: Rng>(
        &mut self,
        pa: PhysAddr,
        rng: &mut R,
        partition: Option<(u32, u32)>,
    ) -> AccessOutcome {
        let set_idx = self.set_of_partitioned(pa, partition).raw();
        let line = line_address(pa, self.line_size);
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.ways.iter().position(|w| *w == Some(line)) {
            set.policy.touch(way as u8);
            set.hits += 1;
            return AccessOutcome::Hit;
        }
        set.misses += 1;
        // Prefer an empty way before evicting.
        if let Some(free) = set.ways.iter().position(Option::is_none) {
            set.ways[free] = Some(line);
            set.policy.touch(free as u8);
            return AccessOutcome::Miss { evicted: None };
        }
        let victim_way = set.policy.evict(rng) as usize;
        let evicted = set.ways[victim_way];
        set.ways[victim_way] = Some(line);
        AccessOutcome::Miss { evicted }
    }

    /// Whether the line holding `pa` is currently resident (no state change;
    /// ground-truth inspection for tests, not reachable by attack code).
    pub fn probe_resident(&self, pa: PhysAddr) -> bool {
        self.probe_resident_partitioned(pa, None)
    }

    /// As [`L2Cache::probe_resident`] under an optional partition.
    pub fn probe_resident_partitioned(&self, pa: PhysAddr, partition: Option<(u32, u32)>) -> bool {
        let set_idx = self.set_of_partitioned(pa, partition).raw();
        let line = line_address(pa, self.line_size);
        self.sets[set_idx].ways.contains(&Some(line))
    }

    /// Hit/miss counters of one set: `(hits, misses)`.
    pub fn set_stats(&self, set: SetIndex) -> (u64, u64) {
        let s = &self.sets[set.raw()];
        (s.hits, s.misses)
    }

    /// Total `(hits, misses)` over all sets.
    pub fn totals(&self) -> (u64, u64) {
        self.sets
            .iter()
            .fold((0, 0), |(h, m), s| (h + s.hits, m + s.misses))
    }

    /// Number of occupied ways in a set (ground truth for tests).
    pub fn set_occupancy(&self, set: SetIndex) -> usize {
        self.sets[set.raw()]
            .ways
            .iter()
            .filter(|w| w.is_some())
            .count()
    }

    /// Clears all contents and statistics.
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            for w in &mut s.ways {
                *w = None;
            }
            s.hits = 0;
            s.misses = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReplacementKind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cache() -> L2Cache {
        L2Cache::new(&CacheConfig {
            size_bytes: 16 * 128 * 8, // 8 sets, 16 ways
            line_size: 128,
            ways: 16,
            replacement: ReplacementKind::Lru,
        })
    }

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(9)
    }

    /// Address of the `k`-th distinct line mapping to `set`.
    fn addr_in_set(c: &L2Cache, set: u64, k: u64) -> PhysAddr {
        PhysAddr(set * c.line_size() + k * c.line_size() * c.num_sets())
    }

    #[test]
    fn cold_access_misses_then_hits() {
        let mut c = cache();
        let mut r = rng();
        let pa = PhysAddr(0x1000);
        assert!(!c.access(pa, &mut r).is_hit());
        assert!(c.access(pa, &mut r).is_hit());
    }

    #[test]
    fn same_line_different_offset_hits() {
        let mut c = cache();
        let mut r = rng();
        assert!(!c.access(PhysAddr(0x100), &mut r).is_hit());
        // 0x100..0x180 is one 128 B line.
        assert!(c.access(PhysAddr(0x17f), &mut r).is_hit());
    }

    #[test]
    fn sixteen_ways_fit_seventeenth_evicts() {
        let mut c = cache();
        let mut r = rng();
        for k in 0..16 {
            c.access(addr_in_set(&c, 3, k), &mut r);
        }
        // All 16 still resident.
        for k in 0..16 {
            assert!(c.probe_resident(addr_in_set(&c, 3, k)), "line {k} resident");
        }
        // A 17th line evicts the LRU line (line 0).
        let out = c.access(addr_in_set(&c, 3, 16), &mut r);
        match out {
            AccessOutcome::Miss { evicted: Some(e) } => {
                assert_eq!(e, addr_in_set(&c, 3, 0).0 / 128);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(!c.probe_resident(addr_in_set(&c, 3, 0)));
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = cache();
        let mut r = rng();
        c.access(addr_in_set(&c, 1, 0), &mut r);
        for k in 0..32 {
            c.access(addr_in_set(&c, 2, k), &mut r);
        }
        assert!(c.probe_resident(addr_in_set(&c, 1, 0)));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = cache();
        let mut r = rng();
        let pa = addr_in_set(&c, 5, 0);
        c.access(pa, &mut r);
        c.access(pa, &mut r);
        c.access(pa, &mut r);
        let (h, m) = c.set_stats(SetIndex(5));
        assert_eq!((h, m), (2, 1));
        let (th, tm) = c.totals();
        assert_eq!((th, tm), (2, 1));
    }

    #[test]
    fn flush_empties_everything() {
        let mut c = cache();
        let mut r = rng();
        let pa = PhysAddr(0x2000);
        c.access(pa, &mut r);
        c.flush();
        assert!(!c.probe_resident(pa));
        assert_eq!(c.totals(), (0, 0));
        assert_eq!(c.set_occupancy(c.set_of(pa)), 0);
    }

    #[test]
    fn lru_touch_protects_recently_used() {
        let mut c = cache();
        let mut r = rng();
        for k in 0..16 {
            c.access(addr_in_set(&c, 0, k), &mut r);
        }
        // Re-touch line 0 so it is MRU.
        c.access(addr_in_set(&c, 0, 0), &mut r);
        // Fill one more: victim should be line 1, not line 0.
        c.access(addr_in_set(&c, 0, 16), &mut r);
        assert!(c.probe_resident(addr_in_set(&c, 0, 0)));
        assert!(!c.probe_resident(addr_in_set(&c, 0, 1)));
    }

    #[test]
    fn occupancy_tracks_fills() {
        let mut c = cache();
        let mut r = rng();
        for k in 0..5 {
            c.access(addr_in_set(&c, 7, k), &mut r);
        }
        assert_eq!(c.set_occupancy(SetIndex(7)), 5);
    }
}
