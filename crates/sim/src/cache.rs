//! Set-associative L2 cache model — flat structure-of-arrays hot path.
//!
//! One [`L2Cache`] instance sits on every GPU. Crucially — and this is the
//! paper's central reverse-engineering result (Sec. III-A) — a line is
//! cached in the L2 of the GPU *whose HBM homes the physical page*, no
//! matter which GPU issued the access. The cache is physically indexed, so
//! user code cannot predict which set a virtual address lands in.
//!
//! # Layout and performance
//!
//! Every experiment in the reproduction (eviction-set discovery, covert
//! bandwidth sweeps, memorygram capture) bottoms out in millions of calls
//! to [`L2Cache::access`], so the storage is organised for that loop
//! rather than for object-per-set clarity:
//!
//! - **Tags** live in one contiguous `Box<[u64]>` indexed by
//!   `set * ways + way`, with [`EMPTY_TAG`] (`u64::MAX`) as the
//!   empty-way sentinel — no `Option` discriminants, no per-set `Vec`
//!   indirection. Lookups first SWAR-scan a packed array of 7-bit **tag
//!   signatures** (eight ways per `u64`), then verify the rare candidate
//!   against the full tag, so a 16-way set resolves hit *or* miss by
//!   reading two words plus at most a tag or two.
//! - **Replacement state** is equally flat and word-packed: true-LRU
//!   keeps one age byte per way (`0` = MRU, `ways-1` = LRU), eight ways
//!   per `u64`, promoted with branchless SWAR arithmetic; tree-PLRU
//!   packs each set's decision bits into one `u64`. No boxed per-set
//!   policy objects.
//! - **Occupancy** per set is tracked explicitly. Fills always take the
//!   lowest-indexed empty way, so occupied ways form a prefix.
//! - **Address math** uses a precomputed [`SetMapper`] (shift + mask)
//!   instead of div/mod.
//!
//! The pre-optimisation per-set layout survives as
//! [`crate::replacement::SetPolicy`] plus the shared reference model in
//! `crate::cache_reference`; `tests/flat_cache_equivalence.rs` asserts
//! observational equivalence against it (same hit/miss/eviction sequence
//! and identical RNG consumption) for LRU, tree-PLRU and random
//! replacement, and `sim_benches` uses the same model as its baseline.
//!
//! See the "Performance" section of `ROADMAP.md` for measured numbers.

use crate::address::{line_address, PhysAddr, SetIndex, SetMapper};
use crate::config::{CacheConfig, ReplacementKind};
use rand::Rng;

/// Sentinel tag marking an empty way.
///
/// Real line addresses are physical addresses shifted right by the line
/// bits, so they can never reach `u64::MAX`.
pub const EMPTY_TAG: u64 = u64::MAX;

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was filled; `evicted` carries the displaced line address.
    Miss {
        /// Line address that was evicted to make room, if the way held one.
        evicted: Option<u64>,
    },
}

impl AccessOutcome {
    /// Whether the access hit.
    #[inline]
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

/// Flat replacement metadata for all sets of one cache.
#[derive(Debug, Clone)]
enum PolicyStore {
    /// True LRU: one age byte per way (`0` = MRU, `ways-1` = LRU), packed
    /// eight ways per `u64` so promotions update whole words with
    /// branchless SWAR arithmetic instead of a per-way loop.
    Lru {
        /// `words_per_set * num_sets` words; unused padding bytes hold
        /// [`AGE_PAD`] so they never match comparisons or accept carries.
        age: Box<[u64]>,
    },
    /// Tree pseudo-LRU: one packed bit-tree word per set.
    TreePlru { bits: Box<[u64]> },
    /// Random victim selection: stateless.
    Random,
}

/// Padding byte for LRU age words past the last way: larger than any real
/// age (ages stay below the 64-way cap), so `< old` never increments it
/// and the LRU scan never matches it.
const AGE_PAD: u8 = 0x7F;

/// One repetition of a byte across a `u64` word.
const LO_BYTES: u64 = 0x0101_0101_0101_0101;
/// The high bit of every byte lane.
const HI_BITS: u64 = 0x8080_8080_8080_8080;

/// Per-byte `lane < k` for lanes and `k` below 128: returns a word with
/// bit 7 of each lane set where the comparison holds.
#[inline(always)]
fn bytes_lt(word: u64, k: u8) -> u64 {
    // (lane | 0x80) - k keeps bit 7 set exactly when lane >= k; borrows
    // cannot cross lanes because every lane result stays in 1..=255.
    !((word | HI_BITS).wrapping_sub(LO_BYTES.wrapping_mul(u64::from(k)))) & HI_BITS
}

/// Per-byte `lane == k` for lanes below 128: bit 7 of each matching lane.
#[inline(always)]
fn bytes_eq(word: u64, k: u8) -> u64 {
    let x = word ^ LO_BYTES.wrapping_mul(u64::from(k));
    x.wrapping_sub(LO_BYTES) & !x & HI_BITS
}

/// A physically indexed, set-associative, write-allocate cache.
#[derive(Debug, Clone)]
pub struct L2Cache {
    /// `tags[set * ways + way]`, [`EMPTY_TAG`] when the way is empty.
    tags: Box<[u64]>,
    /// 7-bit tag signatures, packed eight ways per `u64` like the ages;
    /// empty/padding lanes hold `0xFF` (no 7-bit signature matches them).
    /// Lookups SWAR-scan signatures and verify the (almost always unique)
    /// candidate against the full tag, so a miss never reads the tag row.
    sigs: Box<[u64]>,
    policy: PolicyStore,
    /// Occupied ways per set (occupied ways are always a prefix).
    occupancy: Box<[u16]>,
    hits: Box<[u64]>,
    misses: Box<[u64]>,
    mapper: SetMapper,
    line_size: u64,
    num_sets: u64,
    ways: u32,
    ways_u8: u8,
    /// `u64` words of packed LRU age bytes per set.
    age_words_per_set: usize,
    /// Per-lane increment mask for the final (possibly partial) age word.
    age_incr_last: u64,
    /// `log2(num_sets)`: signatures take the tag bits directly above the
    /// set index, so lines conflicting in one set get distinct signatures
    /// until they wrap modulo 128.
    set_bits: u32,
}

impl L2Cache {
    /// Builds an empty cache from its geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate: more than 64 ways (the
    /// packed replacement metadata is word-sized), or a non-power-of-two
    /// way count under tree-PLRU.
    pub fn new(cfg: &CacheConfig) -> Self {
        let num_sets = cfg.num_sets();
        let ways = cfg.ways;
        assert!(
            (1..=64).contains(&ways),
            "packed replacement metadata supports 1..=64 ways"
        );
        let ways_u8 = ways as u8;
        let slots = (num_sets * u64::from(ways)) as usize;
        let words_per_set = (ways as usize).div_ceil(8);
        let valid_in_last = ways as usize - 8 * (words_per_set - 1);
        let age_incr_last = if valid_in_last == 8 {
            LO_BYTES
        } else {
            LO_BYTES & ((1u64 << (8 * valid_in_last)) - 1)
        };
        let policy = match cfg.replacement {
            ReplacementKind::Lru => PolicyStore::Lru {
                age: Self::fresh_ages(num_sets as usize, ways as usize, words_per_set),
            },
            ReplacementKind::TreePlru => {
                assert!(
                    ways.is_power_of_two(),
                    "tree plru needs power-of-two ways"
                );
                PolicyStore::TreePlru {
                    bits: vec![0u64; num_sets as usize].into_boxed_slice(),
                }
            }
            ReplacementKind::Random => PolicyStore::Random,
        };
        L2Cache {
            tags: vec![EMPTY_TAG; slots].into_boxed_slice(),
            sigs: vec![u64::MAX; num_sets as usize * words_per_set].into_boxed_slice(),
            policy,
            occupancy: vec![0u16; num_sets as usize].into_boxed_slice(),
            hits: vec![0u64; num_sets as usize].into_boxed_slice(),
            misses: vec![0u64; num_sets as usize].into_boxed_slice(),
            mapper: SetMapper::new(cfg.line_size, num_sets),
            line_size: cfg.line_size,
            num_sets,
            ways,
            ways_u8,
            age_words_per_set: words_per_set,
            age_incr_last,
            set_bits: num_sets.trailing_zeros(),
        }
    }

    /// The 7-bit lookup signature of a line address.
    #[inline(always)]
    fn sig_of(&self, line: u64) -> u8 {
        ((line >> self.set_bits) & 0x7F) as u8
    }

    /// Writes the signature lane of `way` in set `s`.
    #[inline(always)]
    fn set_sig(&mut self, s: usize, way: usize, sig: u8) {
        let w = &mut self.sigs[s * self.age_words_per_set + way / 8];
        let sh = 8 * (way % 8);
        *w = (*w & !(0xFFu64 << sh)) | (u64::from(sig) << sh);
    }

    /// The per-set word pattern of initial LRU ages: way `i` has age `i`
    /// (way 0 is MRU), matching the recency stack `[0, 1, .., ways-1]` of
    /// the reference policy; lanes past the last way hold [`AGE_PAD`].
    fn age_pattern(ways: usize, words_per_set: usize) -> [u64; 8] {
        let mut pattern = [0u64; 8];
        for (wi, word) in pattern.iter_mut().take(words_per_set).enumerate() {
            for lane in 0..8 {
                let way = wi * 8 + lane;
                let byte = if way < ways { way as u8 } else { AGE_PAD };
                *word |= u64::from(byte) << (8 * lane);
            }
        }
        pattern
    }

    /// Initial LRU age words for every set (see [`L2Cache::age_pattern`]).
    fn fresh_ages(num_sets: usize, ways: usize, words_per_set: usize) -> Box<[u64]> {
        let pattern = Self::age_pattern(ways, words_per_set);
        (0..num_sets * words_per_set)
            .map(|i| pattern[i % words_per_set])
            .collect()
    }

    /// Number of sets.
    #[inline]
    pub fn num_sets(&self) -> u64 {
        self.num_sets
    }

    /// Line size in bytes.
    #[inline]
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Associativity.
    #[inline]
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// The precomputed address mapper for this geometry.
    #[inline]
    pub fn mapper(&self) -> SetMapper {
        self.mapper
    }

    /// The set a physical address maps to.
    #[inline]
    pub fn set_of(&self, pa: PhysAddr) -> SetIndex {
        self.mapper.set_of(pa)
    }

    /// The set a physical address maps to under an optional MIG-style
    /// partition `(index, count)`: the address is confined to the
    /// partition's contiguous slice of sets (paper Sec. VII).
    #[inline]
    pub fn set_of_partitioned(&self, pa: PhysAddr, partition: Option<(u32, u32)>) -> SetIndex {
        match partition {
            None => self.set_of(pa),
            Some((idx, count)) => {
                // Partition counts need not divide the set count evenly,
                // so this stays div/mod — it is off the common path.
                let span = (self.num_sets / u64::from(count)).max(1);
                let line = self.mapper.line_of(pa);
                SetIndex((u64::from(idx) * span + line % span) as u32)
            }
        }
    }

    /// Performs an access (load or store — the L2 is write-allocate) and
    /// updates replacement state and statistics.
    #[inline]
    pub fn access<R: Rng>(&mut self, pa: PhysAddr, rng: &mut R) -> AccessOutcome {
        self.access_located(pa, rng, None).0
    }

    /// As [`L2Cache::access`], but with an optional MIG-style partition
    /// confining the line to a slice of the sets.
    #[inline]
    pub fn access_partitioned<R: Rng>(
        &mut self,
        pa: PhysAddr,
        rng: &mut R,
        partition: Option<(u32, u32)>,
    ) -> AccessOutcome {
        self.access_located(pa, rng, partition).0
    }

    /// Performs an access and also returns the set it landed in, so
    /// callers that need the set for bookkeeping (the system's access
    /// oracle) do not pay a second set computation.
    ///
    /// Hit/miss counters and replacement metadata are updated in the same
    /// pass as the tag scan.
    pub fn access_located<R: Rng>(
        &mut self,
        pa: PhysAddr,
        rng: &mut R,
        partition: Option<(u32, u32)>,
    ) -> (AccessOutcome, SetIndex) {
        let set = self.set_of_partitioned(pa, partition);
        let line = self.mapper.line_of(pa);
        let s = set.raw();
        let ways = self.ways as usize;
        let base = s * ways;
        let occ = self.occupancy[s] as usize;

        // SWAR scan of the signature words; each candidate lane (almost
        // always exactly one on a hit, none on a miss) is verified against
        // the full tag. `bytes_eq` can flag a spurious lane next to a real
        // match through a borrow, and distinct tags can share a signature —
        // both are harmless because every candidate is verified, and empty
        // lanes hold `0xFF`/`EMPTY_TAG` which never verify.
        let tsig = self.sig_of(line);
        let wps = self.age_words_per_set;
        let mut hit_way = usize::MAX;
        'scan: for wi in 0..wps {
            let mut eq = bytes_eq(self.sigs[s * wps + wi], tsig);
            if wi == wps - 1 {
                // Mask padding lanes: a borrow can spuriously flag the
                // lane above a match, which must not index past the row.
                eq &= self.age_incr_last << 7;
            }
            while eq != 0 {
                let way = wi * 8 + (eq.trailing_zeros() / 8) as usize;
                if self.tags[base + way] == line {
                    hit_way = way;
                    break 'scan;
                }
                eq &= eq - 1;
            }
        }
        if hit_way != usize::MAX {
            self.hits[s] += 1;
            self.touch(s, hit_way);
            return (AccessOutcome::Hit, set);
        }

        self.misses[s] += 1;
        if occ < ways {
            // Fill the lowest empty way (keeps the occupied-prefix
            // invariant) and promote it, as the reference policy does.
            self.tags[base + occ] = line;
            self.set_sig(s, occ, tsig);
            self.occupancy[s] = (occ + 1) as u16;
            self.touch(s, occ);
            return (AccessOutcome::Miss { evicted: None }, set);
        }

        let victim = self.evict(s, rng);
        let evicted = self.tags[base + victim];
        self.tags[base + victim] = line;
        self.set_sig(s, victim, tsig);
        (AccessOutcome::Miss { evicted: Some(evicted) }, set)
    }

    /// Promotes `way` to MRU within set `s`.
    #[inline]
    fn touch(&mut self, s: usize, way: usize) {
        match &mut self.policy {
            PolicyStore::Lru { age } => {
                let wps = self.age_words_per_set;
                let row = &mut age[s * wps..(s + 1) * wps];
                let old = (row[way / 8] >> (8 * (way % 8))) as u8 & 0x7F;
                if old != 0 {
                    // Branchless move-to-front: every lane younger than
                    // `old` ages by one, then the touched lane becomes 0.
                    // Padding lanes hold AGE_PAD > old and never move.
                    for w in row.iter_mut() {
                        *w = w.wrapping_add(bytes_lt(*w, old) >> 7);
                    }
                    row[way / 8] &= !(0xFFu64 << (8 * (way % 8)));
                }
            }
            PolicyStore::TreePlru { bits } => {
                let word = &mut bits[s];
                let way = way as u8;
                let mut node = 0usize;
                let mut lo = 0u8;
                let mut hi = self.ways_u8;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if way < mid {
                        // Accessed left — point the bit right.
                        *word |= 1 << node;
                        node = 2 * node + 1;
                        hi = mid;
                    } else {
                        *word &= !(1 << node);
                        node = 2 * node + 2;
                        lo = mid;
                    }
                }
            }
            PolicyStore::Random => {}
        }
    }

    /// Chooses the victim way for full set `s` and promotes it to MRU,
    /// consuming RNG exactly as the reference policy does (random
    /// replacement draws one `gen_range(0..ways)`; the others draw
    /// nothing).
    #[inline]
    fn evict<R: Rng>(&mut self, s: usize, rng: &mut R) -> usize {
        match &mut self.policy {
            PolicyStore::Lru { age } => {
                let wps = self.age_words_per_set;
                let row = &mut age[s * wps..(s + 1) * wps];
                let lru = self.ways_u8 - 1;
                let mut victim = usize::MAX;
                for (wi, w) in row.iter().enumerate() {
                    let eq = bytes_eq(*w, lru);
                    if eq != 0 {
                        victim = wi * 8 + (eq.trailing_zeros() / 8) as usize;
                        break;
                    }
                }
                debug_assert!(victim != usize::MAX, "full set holds an age permutation");
                // Move-to-front: every real lane ages by one, then the
                // victim lane becomes 0.
                let last = wps - 1;
                for (wi, w) in row.iter_mut().enumerate() {
                    let incr = if wi == last { self.age_incr_last } else { LO_BYTES };
                    *w = w.wrapping_add(incr);
                }
                row[victim / 8] &= !(0xFFu64 << (8 * (victim % 8)));
                victim
            }
            PolicyStore::TreePlru { bits } => {
                let word = bits[s];
                let mut node = 0usize;
                let mut lo = 0u8;
                let mut hi = self.ways_u8;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if word & (1 << node) != 0 {
                        node = 2 * node + 2;
                        lo = mid;
                    } else {
                        node = 2 * node + 1;
                        hi = mid;
                    }
                }
                let victim = lo as usize;
                self.touch(s, victim);
                victim
            }
            PolicyStore::Random => rng.gen_range(0..self.ways_u8) as usize,
        }
    }

    /// Whether the line holding `pa` is currently resident (no state change;
    /// ground-truth inspection for tests, not reachable by attack code).
    #[inline]
    pub fn probe_resident(&self, pa: PhysAddr) -> bool {
        self.probe_resident_partitioned(pa, None)
    }

    /// As [`L2Cache::probe_resident`] under an optional partition.
    pub fn probe_resident_partitioned(&self, pa: PhysAddr, partition: Option<(u32, u32)>) -> bool {
        let s = self.set_of_partitioned(pa, partition).raw();
        let line = self.mapper.line_of(pa);
        let base = s * self.ways as usize;
        let occ = self.occupancy[s] as usize;
        self.tags[base..base + occ].contains(&line)
    }

    /// Hit/miss counters of one set: `(hits, misses)`.
    pub fn set_stats(&self, set: SetIndex) -> (u64, u64) {
        (self.hits[set.raw()], self.misses[set.raw()])
    }

    /// Total `(hits, misses)` over all sets.
    pub fn totals(&self) -> (u64, u64) {
        (
            self.hits.iter().sum::<u64>(),
            self.misses.iter().sum::<u64>(),
        )
    }

    /// Number of occupied ways in a set (ground truth for tests).
    pub fn set_occupancy(&self, set: SetIndex) -> usize {
        self.occupancy[set.raw()] as usize
    }

    /// Clears all contents and statistics.
    pub fn flush(&mut self) {
        self.tags.fill(EMPTY_TAG);
        self.sigs.fill(u64::MAX);
        self.occupancy.fill(0);
        self.hits.fill(0);
        self.misses.fill(0);
        match &mut self.policy {
            PolicyStore::Lru { age } => {
                let wps = self.age_words_per_set;
                let pattern = Self::age_pattern(self.ways as usize, wps);
                for (i, w) in age.iter_mut().enumerate() {
                    *w = pattern[i % wps];
                }
            }
            PolicyStore::TreePlru { bits } => bits.fill(0),
            PolicyStore::Random => {}
        }
    }

    /// The line address (tag key) of `pa` under this cache's geometry.
    #[inline]
    pub fn line_of(&self, pa: PhysAddr) -> u64 {
        line_address(pa, self.line_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReplacementKind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cache() -> L2Cache {
        L2Cache::new(&CacheConfig {
            size_bytes: 16 * 128 * 8, // 8 sets, 16 ways
            line_size: 128,
            ways: 16,
            replacement: ReplacementKind::Lru,
        })
    }

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(9)
    }

    /// Address of the `k`-th distinct line mapping to `set`.
    fn addr_in_set(c: &L2Cache, set: u64, k: u64) -> PhysAddr {
        PhysAddr(set * c.line_size() + k * c.line_size() * c.num_sets())
    }

    #[test]
    fn cold_access_misses_then_hits() {
        let mut c = cache();
        let mut r = rng();
        let pa = PhysAddr(0x1000);
        assert!(!c.access(pa, &mut r).is_hit());
        assert!(c.access(pa, &mut r).is_hit());
    }

    #[test]
    fn same_line_different_offset_hits() {
        let mut c = cache();
        let mut r = rng();
        assert!(!c.access(PhysAddr(0x100), &mut r).is_hit());
        // 0x100..0x180 is one 128 B line.
        assert!(c.access(PhysAddr(0x17f), &mut r).is_hit());
    }

    #[test]
    fn sixteen_ways_fit_seventeenth_evicts() {
        let mut c = cache();
        let mut r = rng();
        for k in 0..16 {
            c.access(addr_in_set(&c, 3, k), &mut r);
        }
        // All 16 still resident.
        for k in 0..16 {
            assert!(c.probe_resident(addr_in_set(&c, 3, k)), "line {k} resident");
        }
        // A 17th line evicts the LRU line (line 0).
        let out = c.access(addr_in_set(&c, 3, 16), &mut r);
        match out {
            AccessOutcome::Miss { evicted: Some(e) } => {
                assert_eq!(e, addr_in_set(&c, 3, 0).0 / 128);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(!c.probe_resident(addr_in_set(&c, 3, 0)));
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = cache();
        let mut r = rng();
        c.access(addr_in_set(&c, 1, 0), &mut r);
        for k in 0..32 {
            c.access(addr_in_set(&c, 2, k), &mut r);
        }
        assert!(c.probe_resident(addr_in_set(&c, 1, 0)));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = cache();
        let mut r = rng();
        let pa = addr_in_set(&c, 5, 0);
        c.access(pa, &mut r);
        c.access(pa, &mut r);
        c.access(pa, &mut r);
        let (h, m) = c.set_stats(SetIndex(5));
        assert_eq!((h, m), (2, 1));
        let (th, tm) = c.totals();
        assert_eq!((th, tm), (2, 1));
    }

    #[test]
    fn flush_empties_everything() {
        let mut c = cache();
        let mut r = rng();
        let pa = PhysAddr(0x2000);
        c.access(pa, &mut r);
        c.flush();
        assert!(!c.probe_resident(pa));
        assert_eq!(c.totals(), (0, 0));
        assert_eq!(c.set_occupancy(c.set_of(pa)), 0);
    }

    #[test]
    fn lru_touch_protects_recently_used() {
        let mut c = cache();
        let mut r = rng();
        for k in 0..16 {
            c.access(addr_in_set(&c, 0, k), &mut r);
        }
        // Re-touch line 0 so it is MRU.
        c.access(addr_in_set(&c, 0, 0), &mut r);
        // Fill one more: victim should be line 1, not line 0.
        c.access(addr_in_set(&c, 0, 16), &mut r);
        assert!(c.probe_resident(addr_in_set(&c, 0, 0)));
        assert!(!c.probe_resident(addr_in_set(&c, 0, 1)));
    }

    #[test]
    fn occupancy_tracks_fills() {
        let mut c = cache();
        let mut r = rng();
        for k in 0..5 {
            c.access(addr_in_set(&c, 7, k), &mut r);
        }
        assert_eq!(c.set_occupancy(SetIndex(7)), 5);
    }

    #[test]
    fn lru_flush_restores_cold_eviction_order() {
        let mut c = cache();
        let mut r = rng();
        for round in 0..2 {
            for k in 0..17 {
                c.access(addr_in_set(&c, 2, k), &mut r);
            }
            // Line 0 was LRU and must be the one displaced, both on the
            // first pass and after a flush resets the age permutation.
            assert!(!c.probe_resident(addr_in_set(&c, 2, 0)), "round {round}");
            c.flush();
        }
    }

    #[test]
    fn tree_plru_never_evicts_most_recent() {
        let mut c = L2Cache::new(&CacheConfig {
            size_bytes: 8 * 128 * 4,
            line_size: 128,
            ways: 8,
            replacement: ReplacementKind::TreePlru,
        });
        let mut r = rng();
        for k in 0..8 {
            c.access(addr_in_set(&c, 1, k), &mut r);
        }
        // The 9th access must not displace the line touched immediately
        // before it.
        c.access(addr_in_set(&c, 1, 7), &mut r);
        c.access(addr_in_set(&c, 1, 8), &mut r);
        assert!(c.probe_resident(addr_in_set(&c, 1, 7)));
    }

    #[test]
    fn random_policy_eventually_covers_ways() {
        let mut c = L2Cache::new(&CacheConfig {
            size_bytes: 8 * 128 * 16,
            line_size: 128,
            ways: 16,
            replacement: ReplacementKind::Random,
        });
        let mut r = rng();
        let mut evicted = std::collections::HashSet::new();
        for k in 0..400 {
            if let AccessOutcome::Miss { evicted: Some(e) } =
                c.access(addr_in_set(&c, 4, k), &mut r)
            {
                evicted.insert(e);
            }
        }
        assert!(evicted.len() > 300, "random eviction should keep churning");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn tree_plru_rejects_non_power_of_two_ways() {
        let _ = L2Cache::new(&CacheConfig {
            size_bytes: 6 * 128 * 8,
            line_size: 128,
            ways: 6,
            replacement: ReplacementKind::TreePlru,
        });
    }
}
