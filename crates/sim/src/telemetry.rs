//! Cycle-accurate telemetry: an allocation-free ring-buffer event
//! tracer, mergeable streaming metrics, and trace exporters.
//!
//! The paper's whole methodology is timing-resolved observation
//! (memorygrams, per-slot latency traces, BER-vs-bandwidth frontiers),
//! yet until this module the simulator itself was a black box between
//! [`crate::engine::Engine::run`] and the final report. The tracer
//! turns one run into an inspectable timeline: which cycle window an
//! outage landed in, where QoS pacing stretched a grant, when the
//! covert pipeline resynchronised.
//!
//! # Record format
//!
//! A [`TraceRecord`] is fixed-width (32 bytes): `cycle` (when), `kind`
//! (a [`TraceKind`] discriminant), `process` (the tenant charged, or
//! [`NO_PROCESS`] for unattributed events) and two `u64` payload words
//! `a`/`b` whose meaning is per-kind (documented on each variant).
//! Records live in a preallocated power-of-two ring
//! ([`TraceSink::enable`]); when the ring wraps, the oldest records are
//! overwritten and counted in [`TraceSink::dropped`].
//!
//! # Overhead budget
//!
//! Off — the default — the tracer is **bit-invisible**: hooks consume
//! no RNG, change no timing and cost one predictable branch, so every
//! golden fingerprint holds (asserted in `sim_benches`). On, a record
//! is one masked index + a 32-byte store, **zero steady-state
//! allocations** (the ring is preallocated; counting-allocator-tested
//! in `tests/alloc_free.rs`), and the end-to-end covert-transmit rung
//! stays within a 15% wall-clock envelope (asserted by the
//! `trace_overhead` bench rung).
//!
//! # Opening a trace in Perfetto
//!
//! [`chrome_trace_json`] renders records and spans in the Chrome
//! `trace_event` format. Write the string to a `.json` file and load it
//! at <https://ui.perfetto.dev> (or `chrome://tracing`). Timestamps are
//! **simulated cycles** presented as microseconds (1 µs = 1 cycle);
//! instants group by kind, spans by their [`TraceSpan::track`]. The
//! `ext_trace_anatomy` binary is the worked example: one hardened
//! `transmit_resilient` run through a mid-transmission link outage,
//! with the fault window, retry rounds and resyncs as overlapping
//! spans.
//!
//! # Streaming metrics
//!
//! [`MetricSet`] — named saturating counters plus log2-bucketed
//! latency histograms ([`LogHistogram`], p50/p95/p99 accessors) —
//! supports `merge(&other)` and `reset()`, so fleet-scale aggregation
//! is a fold over per-node sets instead of a snapshot diff
//! ([`crate::stats::SystemStats::metric_set`] exports a system's
//! counters into one). [`MetricSet::to_prometheus_text`] renders a set
//! in the Prometheus exposition format for external scrapers.
//!
//! The online covert-channel detectors of [`crate::monitor`] are the
//! first in-repo *consumer* of this layer: they diff windowed
//! [`crate::stats::SystemStats`] snapshots (the same idiom as the
//! per-cause delay attribution above), and
//! [`crate::fleet::FleetMonitor`] folds their alarm counters and
//! time-to-detection histograms through [`MetricSet::merge`].

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// `process` value of a [`TraceRecord`] not attributable to one tenant.
pub const NO_PROCESS: u32 = u32::MAX;

/// What one [`TraceRecord`] describes. The `a`/`b` payload meaning is
/// per-variant; unlisted words are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum TraceKind {
    /// One engine op dispatched: `a` = duration cycles, `b` = op code
    /// (0 compute, 1 load, 2 store, 3 load-batch).
    EngineOp = 0,
    /// L2 hit on the home GPU: `a` = cache set, `b` = physical address.
    L2Hit = 1,
    /// L2 miss (line filled): `a` = cache set, `b` = physical address.
    L2Miss = 2,
    /// L2 eviction making room for a miss: `a` = cache set, `b` = the
    /// displaced line address.
    L2Evict = 3,
    /// One NVLink hop served: `a` = link index, `b` = cycles queued
    /// behind the link's occupancy window.
    HopServe = 4,
    /// Token bucket re-paced an over-budget line: `a` = delay cycles,
    /// `b` = link index.
    QosThrottle = 5,
    /// Epoch pacing delayed a grant: `a` = delay cycles, `b` = link
    /// index.
    QosPace = 6,
    /// Seeded grant jitter delayed a grant: `a` = delay cycles, `b` =
    /// link index.
    QosJitter = 7,
    /// Valiant routing detoured a line: `a` = intermediate GPU, `b` =
    /// total hops walked.
    ValiantDetour = 8,
    /// A line stalled at a down link: `a` = wait cycles, `b` = link
    /// index.
    FaultDownWait = 9,
    /// A transient stall hit a hop: `a` = stall cycles, `b` = link
    /// index.
    FaultStall = 10,
    /// A hop served at degraded speed: `a` = extra service cycles, `b`
    /// = link index.
    FaultDegraded = 11,
    /// An outage epoch rerouted an access off its canonical path: `a` =
    /// issuing GPU, `b` = home GPU.
    FaultReroute = 12,
    /// An access fell back to PCIe because outages partitioned the
    /// pair: `a` = issuing GPU, `b` = home GPU.
    PcieFallback = 13,
    /// The PCIe root complex served a line: `a` = cycles queued, `b` =
    /// service cycles.
    PcieServe = 14,
    /// A phase boundary (`canonicalize_phase`): `a` = the phase tag.
    PhaseMark = 15,
    /// A scheduled link outage installed by a fault plan: `cycle` = the
    /// outage start, `a` = recovery cycle, `b` = link index. Recorded
    /// at [`crate::system::MultiGpuSystem::set_fault_plan`] time so the
    /// *installed* window is in the trace next to the *observed* stalls.
    FaultEpoch = 16,
    /// Covert pipeline: a frame was sealed for transmission: `a` =
    /// sequence number, `b` = retransmission round.
    FrameSeal = 17,
    /// Covert pipeline: a received frame was opened: `a` = sequence
    /// number, `b` = 1 delivered / 0 failed verification.
    FrameOpen = 18,
    /// Covert pipeline: one engine round completed: `cycle` = the
    /// round's launch defer, `a` = the round's end-of-run clock, `b` =
    /// round index.
    RetryRound = 19,
    /// Covert pipeline: a sync-lost lane was re-decoded: `a` = lane,
    /// `b` = 1 if an alternate boundary improved the preamble lock.
    Resync = 20,
    /// Covert pipeline: a decision boundary was chosen for a lane:
    /// `a` = the boundary in cycles (rounded), `b` = lane.
    BoundaryChosen = 21,
}

impl TraceKind {
    /// Stable short label (used by both exporters).
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::EngineOp => "engine.op",
            TraceKind::L2Hit => "l2.hit",
            TraceKind::L2Miss => "l2.miss",
            TraceKind::L2Evict => "l2.evict",
            TraceKind::HopServe => "fabric.hop",
            TraceKind::QosThrottle => "qos.throttle",
            TraceKind::QosPace => "qos.pace",
            TraceKind::QosJitter => "qos.jitter",
            TraceKind::ValiantDetour => "qos.valiant",
            TraceKind::FaultDownWait => "fault.down_wait",
            TraceKind::FaultStall => "fault.stall",
            TraceKind::FaultDegraded => "fault.degraded",
            TraceKind::FaultReroute => "fault.reroute",
            TraceKind::PcieFallback => "fault.pcie_fallback",
            TraceKind::PcieServe => "pcie.serve",
            TraceKind::PhaseMark => "phase.mark",
            TraceKind::FaultEpoch => "fault.epoch",
            TraceKind::FrameSeal => "frame.seal",
            TraceKind::FrameOpen => "frame.open",
            TraceKind::RetryRound => "retry.round",
            TraceKind::Resync => "resync",
            TraceKind::BoundaryChosen => "boundary.chosen",
        }
    }
}

/// One fixed-width trace record (32 bytes). See [`TraceKind`] for the
/// per-kind meaning of `a` and `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Simulated cycle the event happened at (agent-local engine time).
    pub cycle: u64,
    /// First payload word (per-kind meaning).
    pub a: u64,
    /// Second payload word (per-kind meaning).
    pub b: u64,
    /// Tenant the event is charged to, or [`NO_PROCESS`].
    pub process: u32,
    /// Event kind.
    pub kind: TraceKind,
}

impl Default for TraceRecord {
    fn default() -> Self {
        TraceRecord {
            cycle: 0,
            a: 0,
            b: 0,
            process: NO_PROCESS,
            kind: TraceKind::PhaseMark,
        }
    }
}

/// Allocation-free ring-buffer event sink.
///
/// Off by default ([`TraceSink::disabled`]): every hook reduces to one
/// branch and the simulation is bit-identical to an untraced run (the
/// hooks consume no RNG and change no timing either way).
/// [`TraceSink::enable`] preallocates the ring once; recording then
/// never allocates — the oldest records are overwritten when the ring
/// wraps ([`TraceSink::dropped`] counts them).
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    enabled: bool,
    /// `capacity - 1` for the power-of-two ring.
    mask: usize,
    /// Preallocated ring storage (empty while disabled).
    buf: Vec<TraceRecord>,
    /// Total records ever pushed; `head & mask` is the next write slot.
    head: u64,
}

impl TraceSink {
    /// A disabled sink (no storage, hooks are one branch).
    pub fn disabled() -> Self {
        TraceSink::default()
    }

    /// Enables recording into a fresh ring of at least `capacity`
    /// records (rounded up to a power of two, minimum 64). This is the
    /// only allocation the sink ever performs.
    pub fn enable(&mut self, capacity: usize) {
        let cap = capacity.max(64).next_power_of_two();
        self.buf.clear();
        self.buf.resize(cap, TraceRecord::default());
        self.mask = cap - 1;
        self.head = 0;
        self.enabled = true;
    }

    /// Stops recording and drops the ring storage. Recorded events are
    /// discarded; call [`TraceSink::records`] first to keep them.
    pub fn disable(&mut self) {
        self.enabled = false;
        self.buf = Vec::new();
        self.mask = 0;
        self.head = 0;
    }

    /// Whether events are being recorded. Hook sites branch on this
    /// once before doing any event-assembly work.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event. A no-op (one branch) while disabled; a masked
    /// index plus a 32-byte store while enabled. Never allocates.
    #[inline(always)]
    pub fn record(&mut self, kind: TraceKind, cycle: u64, process: u32, a: u64, b: u64) {
        if !self.enabled {
            return;
        }
        let i = (self.head as usize) & self.mask;
        self.buf[i] = TraceRecord {
            cycle,
            a,
            b,
            process,
            kind,
        };
        self.head += 1;
    }

    /// Records currently held, oldest first (insertion order — the
    /// engine dispatches in timestamp order, so this is chronological
    /// per agent). Allocates the returned vector; intended for export,
    /// not hot paths.
    pub fn records(&self) -> Vec<TraceRecord> {
        if self.buf.is_empty() {
            return Vec::new();
        }
        let cap = self.buf.len();
        let n = self.len();
        let start = if self.head as usize > cap {
            (self.head as usize) & self.mask
        } else {
            0
        };
        (0..n)
            .map(|i| self.buf[(start + i) & self.mask])
            .collect()
    }

    /// Records currently held in the ring.
    pub fn len(&self) -> usize {
        (self.head as usize).min(self.buf.len())
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.head == 0
    }

    /// Total records ever pushed (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head
    }

    /// Records lost to ring wrap-around (oldest-overwritten).
    pub fn dropped(&self) -> u64 {
        self.head.saturating_sub(self.buf.len() as u64)
    }

    /// Empties the ring without touching enablement or storage.
    pub fn clear(&mut self) {
        self.head = 0;
    }
}

/// Log2-bucketed latency histogram: bucket `i` holds values whose bit
/// length is `i` (bucket 0 = the value 0, bucket 1 = 1, bucket 2 =
/// 2–3, bucket 10 = 512–1023, …). Fixed 64-bucket storage, so
/// recording is branch-light and [`LogHistogram::merge`] is a
/// saturating element-wise add — the streaming-aggregation primitive
/// behind [`MetricSet`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// One counter per bit length (65 including the 0 bucket). A `Vec`
    /// only because the vendored serde shim lacks array impls; the
    /// length is always exactly 65 and it is allocated once at
    /// construction, never on the record path.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: vec![0; 65],
            count: 0,
            sum: 0,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Bucket index of a value: its bit length.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Lower bound of bucket `i` — the representative value percentile
    /// accessors report (log2 buckets quantise upward, so percentiles
    /// are exact to within one power of two).
    #[inline]
    fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] = self.buckets[Self::bucket_of(v)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, or 0 for an empty histogram.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `p`-th percentile (`0..=100`) as the lower bound of the
    /// bucket holding that rank; 0 for an empty histogram.
    pub fn percentile(&self, p: u8) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = u64::from(p.min(100));
        // Ceil rank so p=100 lands on the last sample and p=0 on the first.
        let target = (self.count * p).div_ceil(100);
        let target = target.max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= target {
                return Self::bucket_floor(i);
            }
        }
        Self::bucket_floor(64)
    }

    /// Median (50th percentile) bucket floor.
    pub fn p50(&self) -> u64 {
        self.percentile(50)
    }

    /// 95th percentile bucket floor.
    pub fn p95(&self) -> u64 {
        self.percentile(95)
    }

    /// 99th percentile bucket floor.
    pub fn p99(&self) -> u64 {
        self.percentile(99)
    }

    /// Folds `other` into `self` (saturating element-wise add).
    /// Associative and commutative; a [`LogHistogram::reset`] histogram
    /// is the identity.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Zeroes every bucket in place (no allocation).
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
    }
}

/// A mergeable set of named saturating counters and latency histograms.
///
/// The fleet-scale aggregation primitive: every node keeps its own
/// `MetricSet`, and fleet totals are a fold —
/// `sets.iter().fold(MetricSet::new(), |mut acc, s| { acc.merge(s); acc })`.
/// [`MetricSet::merge`] is associative and commutative with
/// [`MetricSet::reset`] as identity (property-tested in
/// `tests/proptests.rs`). Equality ignores zero-valued counters and
/// empty histograms, so a reset set compares equal to a fresh one.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricSet {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, LogHistogram>,
}

impl MetricSet {
    /// An empty set.
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// Adds `delta` to counter `name` (saturating), creating it at zero
    /// first if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        let c = self
            .counters
            .entry(name.to_string())
            .or_insert(0);
        *c = c.saturating_add(delta);
    }

    /// Current value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records one sample into histogram `name`, creating it if absent.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Histogram `name`, if any sample was ever recorded into it.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// Folds a standalone histogram into histogram `name` (creating it
    /// if absent). Lets hot paths accumulate into a plain
    /// [`LogHistogram`] — fixed storage, no string keys — and export
    /// into a set only at report time. Empty histograms are skipped so
    /// the merge-identity property is preserved.
    pub fn merge_histogram(&mut self, name: &str, h: &LogHistogram) {
        if h.count() != 0 {
            self.histograms
                .entry(name.to_string())
                .or_default()
                .merge(h);
        }
    }

    /// All non-zero counters, name-sorted.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters
            .iter()
            .filter(|(_, &v)| v != 0)
            .map(|(k, &v)| (k.as_str(), v))
    }

    /// Renders the set in the Prometheus text exposition format
    /// (version 0.0.4): every non-zero counter as a `counter` family,
    /// every non-empty histogram as a `histogram` family with
    /// cumulative `_bucket{le="…"}` series (upper bounds are the log2
    /// bucket ceilings), `_sum` and `_count`. Metric names are
    /// sanitised (`.` and `-` become `_`). `run_all` writes the suite
    /// set to `results/metrics.prom`; the online
    /// [`crate::monitor`] / [`crate::fleet::FleetMonitor`] layers
    /// export their alarm counters and time-to-detection histograms
    /// through the same path.
    pub fn to_prometheus_text(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        let mut out = String::new();
        for (name, v) in self.counters() {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, h) in self.histograms.iter().filter(|(_, h)| h.count() != 0) {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cumulative = 0u64;
            let last = h
                .buckets
                .iter()
                .rposition(|&c| c != 0)
                .unwrap_or(0);
            for (i, &c) in h.buckets.iter().enumerate().take(last + 1) {
                cumulative = cumulative.saturating_add(c);
                // Bucket i holds values of bit length i, so its
                // inclusive upper bound is 2^i - 1.
                let le = if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!(
                "{n}_bucket{{le=\"+Inf\"}} {}\n{n}_sum {}\n{n}_count {}\n",
                h.count(),
                h.sum(),
                h.count()
            ));
        }
        out
    }

    /// Folds `other` into `self`: counters add (saturating), histograms
    /// merge. Zero counters and empty histograms in `other` are skipped
    /// so a reset set is a true merge identity.
    pub fn merge(&mut self, other: &MetricSet) {
        for (k, &v) in &other.counters {
            if v != 0 {
                self.add(k, v);
            }
        }
        for (k, h) in &other.histograms {
            if h.count() != 0 {
                self.histograms.entry(k.clone()).or_default().merge(h);
            }
        }
    }

    /// Zeroes every counter and histogram in place (keys are kept, so
    /// this performs no allocation and the set becomes the merge
    /// identity).
    pub fn reset(&mut self) {
        for v in self.counters.values_mut() {
            *v = 0;
        }
        for h in self.histograms.values_mut() {
            h.reset();
        }
    }
}

impl PartialEq for MetricSet {
    /// Structural equality over *non-zero* state: zero counters and
    /// empty histograms don't distinguish sets (a reset set equals a
    /// fresh one).
    fn eq(&self, other: &Self) -> bool {
        if !self.counters().eq(other.counters()) {
            return false;
        }
        let live = |m: &Self| -> Vec<(String, LogHistogram)> {
            m.histograms
                .iter()
                .filter(|(_, h)| h.count() != 0)
                .map(|(k, h)| (k.clone(), h.clone()))
                .collect()
        };
        live(self) == live(other)
    }
}

/// One named span for the exporters (e.g. a fault window, a
/// retransmission round). Spans are not recorded by hooks — they are
/// derived from records (or known plans) by the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Display name.
    pub name: String,
    /// Start cycle (inclusive).
    pub start: u64,
    /// End cycle (exclusive).
    pub end: u64,
    /// Display row: spans with the same track render on one row, so
    /// overlapping phenomena (fault window vs retry rounds) go on
    /// different tracks.
    pub track: u32,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders records and spans as Chrome `trace_event` JSON (the
/// "JSON array of objects in a `traceEvents` wrapper" flavour), loadable
/// in Perfetto / `chrome://tracing`. Records become instant events
/// (`ph:"i"`, one thread row per [`TraceKind`]); spans become complete
/// events (`ph:"X"`, one thread row per [`TraceSpan::track`], offset so
/// they never collide with the kind rows). Timestamps are simulated
/// cycles presented as microseconds.
pub fn chrome_trace_json(records: &[TraceRecord], spans: &[TraceSpan]) -> String {
    let mut out = String::with_capacity(64 + records.len() * 96 + spans.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for s in spans {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{}}}",
            json_escape(&s.name),
            s.start,
            s.end.saturating_sub(s.start),
            s.track,
        ));
    }
    for r in records {
        if !first {
            out.push(',');
        }
        first = false;
        let pid = if r.process == NO_PROCESS {
            -1i64
        } else {
            i64::from(r.process)
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{\"a\":{},\"b\":{},\"process\":{}}}}}",
            r.kind.label(),
            r.cycle,
            1000 + r.kind as u8 as u32,
            r.a,
            r.b,
            pid,
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Renders spans and (up to `max_records`) records as a compact,
/// cycle-sorted human timeline — the terminal-friendly counterpart of
/// [`chrome_trace_json`].
pub fn human_timeline(records: &[TraceRecord], spans: &[TraceSpan], max_records: usize) -> String {
    let mut out = String::new();
    let mut sorted_spans: Vec<&TraceSpan> = spans.iter().collect();
    sorted_spans.sort_by_key(|s| (s.start, s.track));
    for s in &sorted_spans {
        out.push_str(&format!(
            "[{:>10} .. {:>10}] ==== {}\n",
            s.start, s.end, s.name
        ));
    }
    let mut sorted: Vec<&TraceRecord> = records.iter().collect();
    sorted.sort_by_key(|r| r.cycle);
    let shown = sorted.len().min(max_records);
    for r in &sorted[..shown] {
        let who = if r.process == NO_PROCESS {
            "-".to_string()
        } else {
            format!("p{}", r.process)
        };
        out.push_str(&format!(
            "[{:>10}] {:<20} {:>4}  a={} b={}\n",
            r.cycle,
            r.kind.label(),
            who,
            r.a,
            r.b
        ));
    }
    if sorted.len() > shown {
        out.push_str(&format!("... {} more records elided\n", sorted.len() - shown));
    }
    out
}

/// Minimal JSON well-formedness check (objects, arrays, strings,
/// numbers, literals — no semantic validation). Used by
/// `ext_trace_anatomy` to gate the exported trace without a JSON
/// parsing dependency.
///
/// # Errors
///
/// Returns a byte offset and message for the first syntax error.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }
    fn value(b: &[u8], i: &mut usize, depth: usize) -> Result<(), String> {
        if depth > 256 {
            return Err("nesting too deep".into());
        }
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => {
                *i += 1;
                skip_ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    skip_ws(b, i);
                    string(b, i)?;
                    skip_ws(b, i);
                    if b.get(*i) != Some(&b':') {
                        return Err(format!("expected ':' at byte {i}"));
                    }
                    *i += 1;
                    value(b, i, depth + 1)?;
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {i}")),
                    }
                }
            }
            Some(b'[') => {
                *i += 1;
                skip_ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    value(b, i, depth + 1)?;
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {i}")),
                    }
                }
            }
            Some(b'"') => string(b, i),
            Some(b't') => literal(b, i, b"true"),
            Some(b'f') => literal(b, i, b"false"),
            Some(b'n') => literal(b, i, b"null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                *i += 1;
                while *i < b.len()
                    && (b[*i].is_ascii_digit()
                        || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
                {
                    *i += 1;
                }
                Ok(())
            }
            _ => Err(format!("unexpected byte at {i}")),
        }
    }
    fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected '\"' at byte {i}"));
        }
        *i += 1;
        while let Some(&c) = b.get(*i) {
            match c {
                b'"' => {
                    *i += 1;
                    return Ok(());
                }
                b'\\' => *i += 2,
                _ => *i += 1,
            }
        }
        Err("unterminated string".into())
    }
    fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), String> {
        if b.len() >= *i + lit.len() && &b[*i..*i + lit.len()] == lit {
            *i += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {i}"))
        }
    }
    value(b, &mut i, 0)?;
    skip_ws(b, &mut i);
    if i == b.len() {
        Ok(())
    } else {
        Err(format!("trailing garbage at byte {i}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_text_renders_counters_and_histograms() {
        let mut m = MetricSet::new();
        m.add("fleet.nodes", 4);
        m.add("monitor.alarm-windows", 7);
        m.add("zero.counter", 0); // zero counters are elided
        m.observe("ttd.cycles", 0);
        m.observe("ttd.cycles", 3);
        m.observe("ttd.cycles", 3);
        m.observe("ttd.cycles", 900);
        let text = m.to_prometheus_text();
        assert!(text.contains("# TYPE fleet_nodes counter\nfleet_nodes 4\n"));
        assert!(text.contains("# TYPE monitor_alarm_windows counter\nmonitor_alarm_windows 7\n"));
        assert!(!text.contains("zero_counter"));
        assert!(text.contains("# TYPE ttd_cycles histogram\n"));
        // Cumulative buckets: value 0 -> le=0, the two 3s land in the
        // bit-length-2 bucket (le=3), 900 in the le=1023 bucket.
        assert!(text.contains("ttd_cycles_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("ttd_cycles_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("ttd_cycles_bucket{le=\"1023\"} 4\n"));
        assert!(text.contains("ttd_cycles_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("ttd_cycles_sum 906\n"));
        assert!(text.contains("ttd_cycles_count 4\n"));
        // Bucket series are cumulative and non-decreasing.
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("ttd_cycles_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn prometheus_text_of_empty_set_is_empty() {
        assert_eq!(MetricSet::new().to_prometheus_text(), "");
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut t = TraceSink::disabled();
        t.record(TraceKind::L2Hit, 10, 0, 1, 2);
        assert!(!t.is_enabled());
        assert!(t.is_empty());
        assert_eq!(t.records(), Vec::new());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_keeps_insertion_order_and_overwrites_oldest() {
        let mut t = TraceSink::disabled();
        t.enable(64); // minimum capacity
        for i in 0..100u64 {
            t.record(TraceKind::EngineOp, i, 0, i, 0);
        }
        assert_eq!(t.recorded(), 100);
        assert_eq!(t.len(), 64);
        assert_eq!(t.dropped(), 36);
        let r = t.records();
        assert_eq!(r.len(), 64);
        // Oldest surviving record is #36, newest #99, in order.
        assert_eq!(r[0].cycle, 36);
        assert_eq!(r[63].cycle, 99);
        assert!(r.windows(2).all(|w| w[0].cycle + 1 == w[1].cycle));
    }

    #[test]
    fn enable_clear_disable_lifecycle() {
        let mut t = TraceSink::disabled();
        t.enable(100); // rounds up to 128
        t.record(TraceKind::PhaseMark, 0, NO_PROCESS, 7, 0);
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
        t.record(TraceKind::PhaseMark, 1, NO_PROCESS, 8, 0);
        assert_eq!(t.records()[0].a, 8);
        t.disable();
        assert!(!t.is_enabled());
        t.record(TraceKind::PhaseMark, 2, NO_PROCESS, 9, 0);
        assert!(t.is_empty());
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 1, 2, 3, 500, 900, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 2407);
        assert_eq!(h.mean(), 300);
        // Rank 4 of 8 (ceil(8*0.5)=4) is the value 2 → bucket 2 floor 2.
        assert_eq!(h.p50(), 2);
        // p99 → rank 8 → 1000 lives in bucket 10 (512..1023) floor 512.
        assert_eq!(h.p99(), 512);
        assert_eq!(h.percentile(0), 0, "rank clamps to the first sample");
        assert_eq!(LogHistogram::new().p95(), 0, "empty histogram");
    }

    #[test]
    fn histogram_merge_equals_single_pass() {
        let samples_a = [3u64, 77, 912, 4, 0];
        let samples_b = [1u64, 1023, 65_536, 2];
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for &v in &samples_a {
            a.record(v);
            all.record(v);
        }
        for &v in &samples_b {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        // Identity: merging a reset histogram changes nothing.
        b.reset();
        let before = a.clone();
        a.merge(&b);
        assert_eq!(a, before);
    }

    #[test]
    fn metric_set_merge_and_reset() {
        let mut a = MetricSet::new();
        a.add("hits", 3);
        a.observe("lat", 100);
        let mut b = MetricSet::new();
        b.add("hits", 4);
        b.add("misses", 1);
        b.observe("lat", 900);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge commutes");
        assert_eq!(ab.counter("hits"), 7);
        assert_eq!(ab.counter("misses"), 1);
        assert_eq!(ab.histogram("lat").unwrap().count(), 2);
        // reset() is the identity.
        let mut z = ab.clone();
        z.reset();
        assert_eq!(z, MetricSet::new(), "reset equals fresh");
        let before = a.clone();
        a.merge(&z);
        assert_eq!(a, before);
    }

    #[test]
    fn chrome_export_is_valid_json() {
        let mut t = TraceSink::disabled();
        t.enable(64);
        t.record(TraceKind::L2Miss, 100, 2, 17, 4096);
        t.record(TraceKind::FaultDownWait, 950, NO_PROCESS, 250, 0);
        let spans = vec![TraceSpan {
            name: "outage \"link 0\"".to_string(),
            start: 900,
            end: 1200,
            track: 1,
        }];
        let json = chrome_trace_json(&t.records(), &spans);
        validate_json(&json).expect("exporter must emit valid JSON");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("l2.miss"));
        assert!(json.contains("\\\"link 0\\\""), "names are escaped");
        assert!(json.contains("\"dur\":300"));
    }

    #[test]
    fn human_timeline_sorts_and_elides() {
        let recs = vec![
            TraceRecord {
                cycle: 500,
                a: 1,
                b: 0,
                process: 3,
                kind: TraceKind::L2Hit,
            },
            TraceRecord {
                cycle: 100,
                a: 2,
                b: 0,
                process: NO_PROCESS,
                kind: TraceKind::PhaseMark,
            },
        ];
        let text = human_timeline(&recs, &[], 1);
        let first = text.lines().next().unwrap();
        assert!(first.contains("phase.mark"), "sorted by cycle: {first}");
        assert!(text.contains("1 more records elided"));
    }

    #[test]
    fn json_validator_rejects_garbage() {
        assert!(validate_json("{\"a\":1}").is_ok());
        assert!(validate_json("[1,2,{\"x\":[true,null]}]").is_ok());
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("{\"a\":1},").is_err());
        assert!(validate_json("{\"a\"").is_err());
        assert!(validate_json("").is_err());
    }
}
