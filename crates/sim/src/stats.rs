//! System-wide statistics counters.

use crate::address::GpuId;
use serde::{Deserialize, Serialize};

/// Counters for one GPU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GpuStats {
    /// L2 hits observed by this GPU's cache (local + remote requesters).
    pub l2_hits: u64,
    /// L2 misses (each implies an HBM access).
    pub l2_misses: u64,
    /// Accesses issued by kernels running *on* this GPU.
    pub issued_accesses: u64,
    /// Accesses served by this GPU's memory for *remote* requesters.
    pub remote_served: u64,
    /// Bytes moved over NVLink on behalf of this GPU's requests.
    pub nvlink_bytes: u64,
    /// Accesses that crossed PCIe.
    pub pcie_accesses: u64,
    /// Congestion episodes triggered on this GPU.
    pub congestion_episodes: u64,
}

/// Statistics for the whole box.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SystemStats {
    per_gpu: Vec<GpuStats>,
}

impl SystemStats {
    /// Creates zeroed stats for `n` GPUs.
    pub fn new(n: u8) -> Self {
        SystemStats {
            per_gpu: vec![GpuStats::default(); n as usize],
        }
    }

    /// Counters of one GPU.
    pub fn gpu(&self, g: GpuId) -> &GpuStats {
        &self.per_gpu[g.index()]
    }

    /// Mutable counters of one GPU.
    pub fn gpu_mut(&mut self, g: GpuId) -> &mut GpuStats {
        &mut self.per_gpu[g.index()]
    }

    /// Sum of all per-GPU counters.
    pub fn total(&self) -> GpuStats {
        let mut t = GpuStats::default();
        for g in &self.per_gpu {
            t.l2_hits += g.l2_hits;
            t.l2_misses += g.l2_misses;
            t.issued_accesses += g.issued_accesses;
            t.remote_served += g.remote_served;
            t.nvlink_bytes += g.nvlink_bytes;
            t.pcie_accesses += g.pcie_accesses;
            t.congestion_episodes += g.congestion_episodes;
        }
        t
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        for g in &mut self.per_gpu {
            *g = GpuStats::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_per_gpu() {
        let mut s = SystemStats::new(2);
        s.gpu_mut(GpuId::new(0)).l2_hits = 3;
        s.gpu_mut(GpuId::new(1)).l2_hits = 4;
        s.gpu_mut(GpuId::new(1)).nvlink_bytes = 256;
        let t = s.total();
        assert_eq!(t.l2_hits, 7);
        assert_eq!(t.nvlink_bytes, 256);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = SystemStats::new(1);
        s.gpu_mut(GpuId::new(0)).l2_misses = 9;
        s.reset();
        assert_eq!(s.gpu(GpuId::new(0)).l2_misses, 0);
    }
}
