//! System-wide statistics counters: per-GPU and per-link.
//!
//! Every counter struct supports `merge(&other)` (saturating
//! element-wise add) and `reset()` (zero in place), so per-node stats
//! aggregate by streaming fold instead of snapshot diffing —
//! [`SystemStats::merge`] folds a whole node, and
//! [`SystemStats::metric_set`] exports the aggregate into a
//! [`crate::telemetry::MetricSet`] for fleet-level reporting.

use crate::address::GpuId;
use crate::telemetry::MetricSet;
use crate::topology::LinkId;
use serde::{Deserialize, Serialize};

/// Counters for one GPU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GpuStats {
    /// L2 hits observed by this GPU's cache (local + remote requesters).
    pub l2_hits: u64,
    /// L2 misses (each implies an HBM access).
    pub l2_misses: u64,
    /// Accesses issued by kernels running *on* this GPU.
    pub issued_accesses: u64,
    /// Accesses served by this GPU's memory for *remote* requesters.
    pub remote_served: u64,
    /// Bytes moved over NVLink on behalf of this GPU's requests, counted
    /// once per traversed hop (a 2-hop access moves its line across two
    /// physical links and costs the fabric twice the bandwidth).
    pub nvlink_bytes: u64,
    /// Accesses that crossed PCIe.
    pub pcie_accesses: u64,
    /// Congestion episodes triggered on this GPU.
    pub congestion_episodes: u64,
}

impl GpuStats {
    /// Folds `other` into `self` (saturating element-wise add).
    pub fn merge(&mut self, other: &GpuStats) {
        self.l2_hits = self.l2_hits.saturating_add(other.l2_hits);
        self.l2_misses = self.l2_misses.saturating_add(other.l2_misses);
        self.issued_accesses = self.issued_accesses.saturating_add(other.issued_accesses);
        self.remote_served = self.remote_served.saturating_add(other.remote_served);
        self.nvlink_bytes = self.nvlink_bytes.saturating_add(other.nvlink_bytes);
        self.pcie_accesses = self.pcie_accesses.saturating_add(other.pcie_accesses);
        self.congestion_episodes = self
            .congestion_episodes
            .saturating_add(other.congestion_episodes);
    }

    /// Zeroes every counter in place.
    pub fn reset(&mut self) {
        *self = GpuStats::default();
    }
}

/// Counters for one interconnect resource (an NVLink link or the PCIe
/// root complex), maintained by [`crate::fabric::Fabric`] when the timed
/// link model is enabled; all zero otherwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Bytes that crossed this resource.
    pub bytes: u64,
    /// Line transfers that crossed this resource.
    pub requests: u64,
    /// Cycles the resource spent serving transfers (occupancy; divide by
    /// the simulated span for utilisation). Lines a QoS token bucket
    /// re-paced into spare capacity ([`QosStats::shaped_bytes`]) hold
    /// no bookable window and are not counted here — utilisation stays
    /// ≤ 100% and keeps meaning "how held the link was".
    pub busy_cycles: u64,
    /// Cycles transfers waited for the resource to free up (queueing).
    pub queue_cycles: u64,
}

impl LinkStats {
    /// Folds `other` into `self` (saturating element-wise add).
    pub fn merge(&mut self, other: &LinkStats) {
        self.bytes = self.bytes.saturating_add(other.bytes);
        self.requests = self.requests.saturating_add(other.requests);
        self.busy_cycles = self.busy_cycles.saturating_add(other.busy_cycles);
        self.queue_cycles = self.queue_cycles.saturating_add(other.queue_cycles);
    }

    /// Zeroes every counter in place.
    pub fn reset(&mut self) {
        *self = LinkStats::default();
    }
}

/// Counters of the fabric QoS/defence layer ([`crate::qos`]), maintained
/// only while a QoS component is enabled; all zero otherwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QosStats {
    /// Bytes granted immediately by the token buckets (in budget).
    pub passed_bytes: u64,
    /// Bytes delayed to their refill horizon (over budget). Together
    /// with `passed_bytes` this partitions every rate-limited byte:
    /// `passed + shaped == offered`, property-tested in
    /// `tests/proptests.rs`.
    pub shaped_bytes: u64,
    /// Total cycles of token-bucket delay added across all grants.
    pub throttle_delay_cycles: u64,
    /// Total cycles added by epoch pacing ([`crate::qos::TrafficShaping::Pace`]).
    pub pacing_delay_cycles: u64,
    /// Total cycles added by seeded grant jitter
    /// ([`crate::qos::TrafficShaping::Jitter`]).
    pub jitter_delay_cycles: u64,
    /// Remote lines routed through a valiant intermediate instead of
    /// the canonical shortest path.
    pub valiant_detours: u64,
    /// Extra NVLink hops those detours traversed beyond the canonical
    /// hop count.
    pub valiant_extra_hops: u64,
}

impl QosStats {
    /// Folds `other` into `self` (saturating element-wise add).
    pub fn merge(&mut self, other: &QosStats) {
        self.passed_bytes = self.passed_bytes.saturating_add(other.passed_bytes);
        self.shaped_bytes = self.shaped_bytes.saturating_add(other.shaped_bytes);
        self.throttle_delay_cycles = self
            .throttle_delay_cycles
            .saturating_add(other.throttle_delay_cycles);
        self.pacing_delay_cycles = self
            .pacing_delay_cycles
            .saturating_add(other.pacing_delay_cycles);
        self.jitter_delay_cycles = self
            .jitter_delay_cycles
            .saturating_add(other.jitter_delay_cycles);
        self.valiant_detours = self.valiant_detours.saturating_add(other.valiant_detours);
        self.valiant_extra_hops = self
            .valiant_extra_hops
            .saturating_add(other.valiant_extra_hops);
    }

    /// Zeroes every counter in place, so new QoS counters can never
    /// silently leak across a phase boundary.
    pub fn reset(&mut self) {
        *self = QosStats::default();
    }
}

/// Counters of the fault-injection layer ([`crate::fault`]), maintained
/// only while a [`crate::fault::FaultPlan`] is active; all zero
/// otherwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Remote accesses that took a different NVLink path than the
    /// healthy topology's because a scheduled outage removed a link on
    /// (or changed the cost of) the canonical route.
    pub reroutes: u64,
    /// Remote accesses that fell back to the PCIe root complex because
    /// outages partitioned the requester from the target GPU.
    pub pcie_fallbacks: u64,
    /// Remote accesses refused with [`crate::SimError::LinkDown`]
    /// because the pair was partitioned and the plan forbids the PCIe
    /// fallback.
    pub refused_accesses: u64,
    /// Lines that arrived at a down link on an already-resolved (stale)
    /// route and stalled until recovery.
    pub down_waits: u64,
    /// Total cycles those lines spent waiting out outages (saturating:
    /// a permanent failure contributes `u64::MAX` at the first wait).
    pub down_wait_cycles: u64,
    /// Hops served at a degraded link's multiplied service time.
    pub degraded_hops: u64,
    /// Extra service cycles degradation added beyond healthy service.
    pub degraded_extra_cycles: u64,
    /// Hops hit by a seeded transient stall.
    pub transient_stalls: u64,
    /// Total cycles of transient-stall delay.
    pub stall_cycles: u64,
}

impl FaultStats {
    /// Folds `other` into `self` (saturating element-wise add).
    pub fn merge(&mut self, other: &FaultStats) {
        self.reroutes = self.reroutes.saturating_add(other.reroutes);
        self.pcie_fallbacks = self.pcie_fallbacks.saturating_add(other.pcie_fallbacks);
        self.refused_accesses = self.refused_accesses.saturating_add(other.refused_accesses);
        self.down_waits = self.down_waits.saturating_add(other.down_waits);
        self.down_wait_cycles = self.down_wait_cycles.saturating_add(other.down_wait_cycles);
        self.degraded_hops = self.degraded_hops.saturating_add(other.degraded_hops);
        self.degraded_extra_cycles = self
            .degraded_extra_cycles
            .saturating_add(other.degraded_extra_cycles);
        self.transient_stalls = self.transient_stalls.saturating_add(other.transient_stalls);
        self.stall_cycles = self.stall_cycles.saturating_add(other.stall_cycles);
    }

    /// Zeroes every counter in place, so new fault counters can never
    /// silently leak across a phase boundary.
    pub fn reset(&mut self) {
        *self = FaultStats::default();
    }
}

/// Statistics for the whole box.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SystemStats {
    per_gpu: Vec<GpuStats>,
    per_link: Vec<LinkStats>,
    /// Two entries per link (`2·link + direction`): direction `0` is the
    /// link's canonical `a → b` orientation (lower-numbered endpoint
    /// towards higher), direction `1` the reverse. Maintained by the
    /// fabric alongside the aggregate `per_link` counters whenever the
    /// timed link model is enabled, regardless of whether occupancy is
    /// windowed per direction.
    per_link_dir: Vec<LinkStats>,
    pcie_root: LinkStats,
    qos: QosStats,
    fault: FaultStats,
}

impl SystemStats {
    /// Creates zeroed stats for `n` GPUs and `links` NVLink links.
    pub fn new(n: u8, links: usize) -> Self {
        SystemStats {
            per_gpu: vec![GpuStats::default(); n as usize],
            per_link: vec![LinkStats::default(); links],
            per_link_dir: vec![LinkStats::default(); links * 2],
            pcie_root: LinkStats::default(),
            qos: QosStats::default(),
            fault: FaultStats::default(),
        }
    }

    /// Counters of one GPU.
    pub fn gpu(&self, g: GpuId) -> &GpuStats {
        &self.per_gpu[g.index()]
    }

    /// Mutable counters of one GPU.
    pub fn gpu_mut(&mut self, g: GpuId) -> &mut GpuStats {
        &mut self.per_gpu[g.index()]
    }

    /// Counters of one NVLink link, if the id is valid for the topology.
    pub fn link(&self, l: LinkId) -> Option<&LinkStats> {
        self.per_link.get(l.index())
    }

    /// Mutable counters of one NVLink link.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range link id.
    pub fn link_mut(&mut self, l: LinkId) -> &mut LinkStats {
        &mut self.per_link[l.index()]
    }

    /// Per-link counters in [`LinkId`] order.
    pub fn links(&self) -> &[LinkStats] {
        &self.per_link
    }

    /// Counters of one *direction* of an NVLink link (`reverse == false`
    /// is the canonical lower-endpoint → higher-endpoint orientation),
    /// if the id is valid for the topology.
    pub fn link_dir(&self, l: LinkId, reverse: bool) -> Option<&LinkStats> {
        self.per_link_dir.get(l.index() * 2 + usize::from(reverse))
    }

    /// Mutable counters of one direction of an NVLink link.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range link id.
    pub fn link_dir_mut(&mut self, l: LinkId, reverse: bool) -> &mut LinkStats {
        &mut self.per_link_dir[l.index() * 2 + usize::from(reverse)]
    }

    /// Counters of the fabric QoS/defence layer.
    pub fn qos(&self) -> &QosStats {
        &self.qos
    }

    /// Mutable counters of the QoS layer.
    pub fn qos_mut(&mut self) -> &mut QosStats {
        &mut self.qos
    }

    /// Counters of the fault-injection layer.
    pub fn fault(&self) -> &FaultStats {
        &self.fault
    }

    /// Mutable counters of the fault-injection layer.
    pub fn fault_mut(&mut self) -> &mut FaultStats {
        &mut self.fault
    }

    /// Counters of the shared PCIe root complex.
    pub fn pcie_root(&self) -> &LinkStats {
        &self.pcie_root
    }

    /// Mutable counters of the PCIe root complex.
    pub fn pcie_root_mut(&mut self) -> &mut LinkStats {
        &mut self.pcie_root
    }

    /// Sum of all per-GPU counters.
    pub fn total(&self) -> GpuStats {
        let mut t = GpuStats::default();
        for g in &self.per_gpu {
            t.l2_hits += g.l2_hits;
            t.l2_misses += g.l2_misses;
            t.issued_accesses += g.issued_accesses;
            t.remote_served += g.remote_served;
            t.nvlink_bytes += g.nvlink_bytes;
            t.pcie_accesses += g.pcie_accesses;
            t.congestion_episodes += g.congestion_episodes;
        }
        t
    }

    /// Sum of all per-link counters (the PCIe root complex excluded).
    pub fn link_total(&self) -> LinkStats {
        let mut t = LinkStats::default();
        for l in &self.per_link {
            t.bytes += l.bytes;
            t.requests += l.requests;
            t.busy_cycles += l.busy_cycles;
            t.queue_cycles += l.queue_cycles;
        }
        t
    }

    /// Resets every counter to zero by delegating to each sub-struct's
    /// own `reset()` — a counter added to any sub-struct is therefore
    /// zeroed here (and at every phase boundary) automatically.
    pub fn reset(&mut self) {
        for g in &mut self.per_gpu {
            g.reset();
        }
        for l in &mut self.per_link {
            l.reset();
        }
        for l in &mut self.per_link_dir {
            l.reset();
        }
        self.pcie_root.reset();
        self.qos.reset();
        self.fault.reset();
    }

    /// Folds another node's stats into `self` element-wise (saturating).
    /// Shorter per-resource vectors merge positionally; `other`'s extra
    /// entries are appended, so heterogeneous nodes still fold.
    pub fn merge(&mut self, other: &SystemStats) {
        fn merge_vec<T: Copy>(into: &mut Vec<T>, from: &[T], f: impl Fn(&mut T, &T)) {
            for (a, b) in into.iter_mut().zip(from.iter()) {
                f(a, b);
            }
            if from.len() > into.len() {
                into.extend_from_slice(&from[into.len()..]);
            }
        }
        merge_vec(&mut self.per_gpu, &other.per_gpu, |a, b| a.merge(b));
        merge_vec(&mut self.per_link, &other.per_link, |a, b| a.merge(b));
        merge_vec(&mut self.per_link_dir, &other.per_link_dir, |a, b| {
            a.merge(b)
        });
        self.pcie_root.merge(&other.pcie_root);
        self.qos.merge(&other.qos);
        self.fault.merge(&other.fault);
    }

    /// Exports the aggregate counters into a mergeable
    /// [`crate::telemetry::MetricSet`] — the fleet-reporting surface:
    /// collect one set per node, then fold them with
    /// [`crate::telemetry::MetricSet::merge`].
    pub fn metric_set(&self) -> MetricSet {
        let mut m = MetricSet::new();
        let t = self.total();
        m.add("gpu.l2_hits", t.l2_hits);
        m.add("gpu.l2_misses", t.l2_misses);
        m.add("gpu.issued_accesses", t.issued_accesses);
        m.add("gpu.remote_served", t.remote_served);
        m.add("gpu.nvlink_bytes", t.nvlink_bytes);
        m.add("gpu.pcie_accesses", t.pcie_accesses);
        m.add("gpu.congestion_episodes", t.congestion_episodes);
        let l = self.link_total();
        m.add("link.bytes", l.bytes);
        m.add("link.requests", l.requests);
        m.add("link.busy_cycles", l.busy_cycles);
        m.add("link.queue_cycles", l.queue_cycles);
        m.add("pcie.bytes", self.pcie_root.bytes);
        m.add("pcie.requests", self.pcie_root.requests);
        m.add("pcie.busy_cycles", self.pcie_root.busy_cycles);
        m.add("pcie.queue_cycles", self.pcie_root.queue_cycles);
        m.add("qos.passed_bytes", self.qos.passed_bytes);
        m.add("qos.shaped_bytes", self.qos.shaped_bytes);
        m.add("qos.throttle_delay_cycles", self.qos.throttle_delay_cycles);
        m.add("qos.pacing_delay_cycles", self.qos.pacing_delay_cycles);
        m.add("qos.jitter_delay_cycles", self.qos.jitter_delay_cycles);
        m.add("qos.valiant_detours", self.qos.valiant_detours);
        m.add("qos.valiant_extra_hops", self.qos.valiant_extra_hops);
        m.add("fault.reroutes", self.fault.reroutes);
        m.add("fault.pcie_fallbacks", self.fault.pcie_fallbacks);
        m.add("fault.refused_accesses", self.fault.refused_accesses);
        m.add("fault.down_waits", self.fault.down_waits);
        m.add("fault.down_wait_cycles", self.fault.down_wait_cycles);
        m.add("fault.degraded_hops", self.fault.degraded_hops);
        m.add("fault.degraded_extra_cycles", self.fault.degraded_extra_cycles);
        m.add("fault.transient_stalls", self.fault.transient_stalls);
        m.add("fault.stall_cycles", self.fault.stall_cycles);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_per_gpu() {
        let mut s = SystemStats::new(2, 1);
        s.gpu_mut(GpuId::new(0)).l2_hits = 3;
        s.gpu_mut(GpuId::new(1)).l2_hits = 4;
        s.gpu_mut(GpuId::new(1)).nvlink_bytes = 256;
        let t = s.total();
        assert_eq!(t.l2_hits, 7);
        assert_eq!(t.nvlink_bytes, 256);
    }

    #[test]
    fn link_totals_sum_per_link() {
        let mut s = SystemStats::new(1, 2);
        s.link_mut(LinkId(0)).bytes = 128;
        s.link_mut(LinkId(1)).bytes = 256;
        s.link_mut(LinkId(1)).queue_cycles = 40;
        s.pcie_root_mut().bytes = 512; // excluded from link_total
        let t = s.link_total();
        assert_eq!(t.bytes, 384);
        assert_eq!(t.queue_cycles, 40);
        assert_eq!(s.link(LinkId(2)), None);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = SystemStats::new(1, 1);
        s.gpu_mut(GpuId::new(0)).l2_misses = 9;
        s.link_mut(LinkId(0)).busy_cycles = 5;
        s.link_dir_mut(LinkId(0), true).busy_cycles = 3;
        s.pcie_root_mut().requests = 2;
        s.qos_mut().shaped_bytes = 11;
        s.fault_mut().reroutes = 6;
        s.fault_mut().down_wait_cycles = 77;
        s.reset();
        assert_eq!(s.gpu(GpuId::new(0)).l2_misses, 0);
        assert_eq!(s.link(LinkId(0)).unwrap().busy_cycles, 0);
        assert_eq!(s.link_dir(LinkId(0), true).unwrap().busy_cycles, 0);
        assert_eq!(s.pcie_root().requests, 0);
        assert_eq!(*s.qos(), QosStats::default());
        assert_eq!(*s.fault(), FaultStats::default());
    }

    #[test]
    fn merge_folds_per_node_stats() {
        let mut a = SystemStats::new(2, 1);
        a.gpu_mut(GpuId::new(0)).l2_hits = 5;
        a.link_mut(LinkId(0)).bytes = 100;
        a.qos_mut().shaped_bytes = 7;
        let mut b = SystemStats::new(2, 1);
        b.gpu_mut(GpuId::new(0)).l2_hits = 2;
        b.gpu_mut(GpuId::new(1)).l2_misses = 4;
        b.link_dir_mut(LinkId(0), true).requests = 9;
        b.fault_mut().reroutes = 1;
        a.merge(&b);
        assert_eq!(a.gpu(GpuId::new(0)).l2_hits, 7);
        assert_eq!(a.gpu(GpuId::new(1)).l2_misses, 4);
        assert_eq!(a.link(LinkId(0)).unwrap().bytes, 100);
        assert_eq!(a.link_dir(LinkId(0), true).unwrap().requests, 9);
        assert_eq!(a.qos().shaped_bytes, 7);
        assert_eq!(a.fault().reroutes, 1);
        // Merging a reset node is a no-op.
        let snapshot = a.clone();
        let mut z = SystemStats::new(2, 1);
        z.reset();
        a.merge(&z);
        assert_eq!(a.total(), snapshot.total());
        assert_eq!(a.link_total(), snapshot.link_total());
    }

    #[test]
    fn metric_set_export_folds_like_stats() {
        let mut a = SystemStats::new(1, 1);
        a.gpu_mut(GpuId::new(0)).l2_hits = 3;
        a.qos_mut().valiant_detours = 2;
        let mut b = SystemStats::new(1, 1);
        b.gpu_mut(GpuId::new(0)).l2_hits = 4;
        b.fault_mut().stall_cycles = 10;
        let mut per_node = a.metric_set();
        per_node.merge(&b.metric_set());
        let mut folded = a.clone();
        folded.merge(&b);
        assert_eq!(per_node, folded.metric_set());
        assert_eq!(per_node.counter("gpu.l2_hits"), 7);
        assert_eq!(per_node.counter("qos.valiant_detours"), 2);
        assert_eq!(per_node.counter("fault.stall_cycles"), 10);
    }

    #[test]
    fn link_directions_are_distinct_counters() {
        let mut s = SystemStats::new(1, 2);
        s.link_dir_mut(LinkId(1), false).bytes = 128;
        s.link_dir_mut(LinkId(1), true).bytes = 256;
        assert_eq!(s.link_dir(LinkId(1), false).unwrap().bytes, 128);
        assert_eq!(s.link_dir(LinkId(1), true).unwrap().bytes, 256);
        assert_eq!(s.link_dir(LinkId(2), false), None, "out of range is None");
    }
}
