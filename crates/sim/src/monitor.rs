//! Online covert-channel detection: streaming anomaly detectors over
//! windowed [`SystemStats`] snapshots.
//!
//! PR 5 answered the paper's channels with *static* QoS defences that
//! cost 8–15% benign throughput even when no attack is running. This
//! module adds the missing *detect* column of the defence taxonomy: a
//! [`Monitor`] that watches the contention counters the simulator
//! already maintains — per-link `busy_cycles + queue_cycles` and
//! per-GPU `l2_misses` — and raises deterministic alarms when their
//! windowed time series stops looking like benign multi-tenant noise.
//!
//! # How signals are obtained
//!
//! No hooks are added to any hot path. The monitor is driven from
//! *outside* the engine with the same stats-diffing idiom as PR 8's
//! per-cause delay attribution: the caller steps the (resumable)
//! [`Engine`](crate::engine::Engine) in fixed windows of
//! [`MonitorConfig::window_cycles`] and hands the **cumulative**
//! [`SystemStats`] to [`Monitor::observe`], which diffs them against
//! the previous snapshot internally. [`run_windowed`] packages that
//! loop. A system with no monitor attached executes byte-for-byte the
//! same instructions as before this PR — the feature is off by default
//! and all golden channel fingerprints are unchanged.
//!
//! # Detector math
//!
//! Every channel (one per link, one per GPU) runs three detectors over
//! its per-window delta `x_t`, all in **integer fixed-point** (Q16) so
//! results are bit-identical across platforms and thread counts:
//!
//! - **EWMA residual.** Running estimates of the mean
//!   `m_t = m_{t-1} + (x_t - m_{t-1}) / 2^alpha` and mean absolute
//!   deviation `d_t` (same recurrence on `|x_t - m_t|`). The detector
//!   flags a window when the *positive* residual exceeds
//!   `ewma_mult * d + ewma_floor` — one-sided, because a covert
//!   channel only ever *adds* contention; tenants finishing their jobs
//!   (load drops) must not alarm. The floor keeps a perfectly flat
//!   benign signal (deviation ~0) from alarming on its first wiggle.
//!   Flagged samples are winsorized (clamped to `m + threshold`)
//!   before updating `m`/`d`, so an attacker cannot poison the
//!   detector's baseline with its own spike; a moderate benign level
//!   shift still gets absorbed within a few windows.
//! - **CUSUM change-point.** One-sided cumulative sum
//!   `s_t = max(0, s_{t-1} + x_t - (mu + k))` against a baseline `mu`
//!   frozen at the end of the warm-up phase, with allowance
//!   `k = mu >> cusum_drift_shift + cusum_drift_floor`. Alarms when
//!   `s_t > cusum_threshold`. This catches slow-drip attackers (the
//!   duty-cycle evasion knob of
//!   `gpubox_attacks::covert::ChannelParams`) that stay under the EWMA
//!   spike threshold but integrate over time.
//! - **Periodicity.** The trojan's slot clock is its signature: it
//!   drives contention as a square wave at `slot_cycles`. A ring of
//!   the last `ring_windows` deltas is autocorrelated at configured
//!   window lags; the detector flags when the normalised correlation
//!   (in milli-units) exceeds `corr_threshold_milli` *and* the signal
//!   has at least `min_power` variance — the power gate keeps quiet,
//!   trivially self-similar channels from alarming.
//!
//! Each detector must flag `alarm_consecutive` windows in a row before
//! the channel latches an alarm — a single outlier window is never
//! enough. During the first `warmup_windows` windows the detectors
//! only calibrate (EWMA seeds, CUSUM baseline, ring fill) and can not
//! alarm; deploy the monitor before untrusted tenants arrive.
//!
//! # Window sizing and tuning
//!
//! The window is the time resolution of every detector. Too small and
//! benign burstiness dominates (a single warp's `LoadBatch` books
//! thousands of queue cycles at once); too large and the trojan's slot
//! structure (default 6000 cycles) is averaged away before the
//! periodicity lags can see it. The default of 1500 cycles puts a
//! 6000-cycle slot at lag 4 — inside the default lag set `{2, 4, 8}` —
//! and keeps EWMA time-to-detection at a handful of slots. Raise
//! `ewma_mult` / `cusum_threshold` first if a benign workload false
//! alarms; raise `alarm_consecutive` only as a last resort, since it
//! multiplies detection latency directly.
//!
//! The `ext_detection` bench bin sweeps these knobs against both
//! channel families and a no-attack control, and
//! [`fleet::FleetMonitor`](crate::fleet::FleetMonitor) folds per-node
//! monitors into fleet-wide suspicion scores and time-to-detection
//! histograms through the [`MetricSet`] merge machinery.

use crate::engine::Engine;
use crate::error::SimResult;
use crate::stats::SystemStats;
use crate::telemetry::MetricSet;

/// Fixed-point shift for detector state (Q16).
const FP: u32 = 16;

/// Which detector raised a flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorKind {
    /// EWMA positive-residual spike detector.
    Ewma,
    /// One-sided CUSUM change-point detector.
    Cusum,
    /// Slot-clock autocorrelation detector.
    Periodicity,
}

impl DetectorKind {
    /// Stable lower-case name, used as a metric key suffix.
    pub fn name(self) -> &'static str {
        match self {
            DetectorKind::Ewma => "ewma",
            DetectorKind::Cusum => "cusum",
            DetectorKind::Periodicity => "periodicity",
        }
    }
}

/// Identity of a monitored signal: one per fabric link, one per GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelKind {
    /// Per-link contention: delta of `busy_cycles + queue_cycles`.
    Link(usize),
    /// Per-GPU cache pressure: delta of `l2_misses`.
    Gpu(usize),
}

/// A latched alarm: which channel fired, when, and which detector saw
/// it first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alarm {
    /// The signal that alarmed.
    pub channel: ChannelKind,
    /// 0-based window index at which the alarm latched.
    pub window: u64,
    /// End-of-window cycle at which the alarm latched.
    pub cycle: u64,
    /// The detector that fired (EWMA > CUSUM > periodicity priority
    /// when several fire in the same window).
    pub detector: DetectorKind,
}

/// Tuning knobs for [`Monitor`]. See the module doc for the detector
/// math each field parameterises. `Default` is tuned for the repo's
/// DGX-1 benign mixes and 6000-cycle trojan slots.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Cycles per observation window.
    pub window_cycles: u64,
    /// Calibration windows before detectors are armed.
    pub warmup_windows: u32,
    /// EWMA smoothing: `alpha = 2^-ewma_alpha_log2`.
    pub ewma_alpha_log2: u32,
    /// EWMA alarm multiplier on the mean absolute deviation.
    pub ewma_mult: u64,
    /// EWMA alarm floor (cycles per window), added to the deviation
    /// term so flat benign signals never alarm on a first wiggle.
    pub ewma_floor: u64,
    /// CUSUM allowance shift: `k = mu >> shift + cusum_drift_floor`.
    pub cusum_drift_shift: u32,
    /// CUSUM allowance floor (cycles per window).
    pub cusum_drift_floor: u64,
    /// CUSUM alarm threshold (accumulated excess cycles).
    pub cusum_threshold: u64,
    /// Autocorrelation ring length, in windows.
    pub ring_windows: usize,
    /// Window lags probed by the periodicity detector.
    pub lags: Vec<usize>,
    /// Normalised autocorrelation alarm threshold, in milli-units
    /// (700 = 0.7).
    pub corr_threshold_milli: i64,
    /// Minimum per-window variance (cycles^2) before the periodicity
    /// detector is allowed to score.
    pub min_power: u64,
    /// Consecutive flagged windows required to latch an alarm.
    pub alarm_consecutive: u32,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            window_cycles: 1500,
            warmup_windows: 64,
            ewma_alpha_log2: 3,
            ewma_mult: 12,
            ewma_floor: 400,
            cusum_drift_shift: 1,
            cusum_drift_floor: 400,
            cusum_threshold: 8000,
            ring_windows: 64,
            lags: vec![2, 4, 8],
            corr_threshold_milli: 700,
            min_power: 40_000,
            alarm_consecutive: 3,
        }
    }
}

impl MonitorConfig {
    /// Panics on degenerate parameters (zero window, empty lag set,
    /// ring shorter than the largest lag).
    fn validate(&self) {
        assert!(self.window_cycles > 0, "monitor window must be non-zero");
        assert!(self.warmup_windows > 0, "monitor needs >=1 warm-up window");
        assert!(!self.lags.is_empty(), "periodicity lag set is empty");
        let max_lag = self.lags.iter().copied().max().unwrap_or(0);
        assert!(
            self.ring_windows > max_lag,
            "autocorrelation ring ({}) must exceed the largest lag ({max_lag})",
            self.ring_windows
        );
        assert!(self.alarm_consecutive > 0, "alarm_consecutive must be >=1");
    }
}

/// Per-channel detector state. All storage is allocated at
/// construction; `step` is allocation-free.
#[derive(Debug, Clone)]
struct ChannelDetector {
    // EWMA (Q16).
    mean_q: i64,
    dev_q: i64,
    ewma_streak: u32,
    // CUSUM.
    baseline_sum: u64,
    baseline: u64,
    cusum: u64,
    // Periodicity.
    ring: Vec<u64>,
    ring_next: usize,
    ring_filled: usize,
    /// Running `Σv` / `Σv²` over the ring, updated O(1) per window so
    /// the mean and the centred power `Σ(v-m)² = Σv² - 2mΣv + n·m²`
    /// (exact in integers for any integer `m`) come for free — the
    /// min-power early-out then costs O(1) instead of two full ring
    /// walks per window on every quiet channel.
    ring_sum: u64,
    ring_sumsq: u128,
    /// Time-ordered, mean-removed copy of `ring`, rebuilt by
    /// `autocorrelated` each call so the lag loops run without any
    /// index arithmetic modulo the ring length. Preallocated — `step`
    /// stays allocation-free.
    scratch: Vec<i64>,
    period_streak: u32,
    // Bookkeeping.
    alarm_windows_ewma: u64,
    alarm_windows_cusum: u64,
    alarm_windows_period: u64,
    first_alarm: Option<(u64, DetectorKind)>,
}

impl ChannelDetector {
    fn new(cfg: &MonitorConfig) -> Self {
        ChannelDetector {
            mean_q: 0,
            dev_q: 0,
            ewma_streak: 0,
            baseline_sum: 0,
            baseline: 0,
            cusum: 0,
            ring: vec![0; cfg.ring_windows],
            ring_next: 0,
            ring_filled: 0,
            ring_sum: 0,
            ring_sumsq: 0,
            scratch: vec![0; cfg.ring_windows],
            period_streak: 0,
            alarm_windows_ewma: 0,
            alarm_windows_cusum: 0,
            alarm_windows_period: 0,
            first_alarm: None,
        }
    }

    fn reset(&mut self) {
        let len = self.ring.len();
        *self = ChannelDetector {
            ring: std::mem::take(&mut self.ring),
            scratch: std::mem::take(&mut self.scratch),
            ..ChannelDetector {
                ring: Vec::new(),
                mean_q: 0,
                dev_q: 0,
                ewma_streak: 0,
                baseline_sum: 0,
                baseline: 0,
                cusum: 0,
                ring_next: 0,
                ring_filled: 0,
                ring_sum: 0,
                ring_sumsq: 0,
                scratch: Vec::new(),
                period_streak: 0,
                alarm_windows_ewma: 0,
                alarm_windows_cusum: 0,
                alarm_windows_period: 0,
                first_alarm: None,
            }
        };
        self.ring[..len].fill(0);
    }

    /// Feeds one window delta; returns the detector that newly flags
    /// this window (after streak filtering), if any.
    fn step(&mut self, x: u64, window: u64, cfg: &MonitorConfig) -> Option<DetectorKind> {
        let warm = window < u64::from(cfg.warmup_windows);
        let x_q = (x as i64) << FP;

        // --- EWMA: check against the *previous* estimates, then
        // update. Flagged samples are winsorized (clamped to
        // mean + threshold) before feeding the estimates, so an attack
        // cannot inflate the detector's own baseline fast enough to
        // break its alarm streak — while a moderate benign shift still
        // gets absorbed within a few windows.
        let residual = x_q - self.mean_q;
        let pos = residual.max(0);
        let threshold_q =
            (cfg.ewma_mult as i64).saturating_mul(self.dev_q) + ((cfg.ewma_floor as i64) << FP);
        let ewma_flag = !warm && pos > threshold_q;
        let xc_q = if ewma_flag { self.mean_q + threshold_q } else { x_q };
        self.mean_q += (xc_q - self.mean_q) >> cfg.ewma_alpha_log2;
        self.dev_q += ((xc_q - self.mean_q).abs() - self.dev_q) >> cfg.ewma_alpha_log2;
        if ewma_flag {
            self.ewma_streak += 1;
        } else {
            self.ewma_streak = 0;
        }

        // --- CUSUM: calibrate the baseline during warm-up, then
        // integrate one-sided excess over baseline + allowance.
        let mut cusum_fired = false;
        if warm {
            self.baseline_sum += x;
            if window + 1 == u64::from(cfg.warmup_windows) {
                self.baseline = self.baseline_sum / u64::from(cfg.warmup_windows);
            }
        } else {
            let allowance = (self.baseline >> cfg.cusum_drift_shift) + cfg.cusum_drift_floor;
            self.cusum = (self.cusum + x).saturating_sub(self.baseline + allowance);
            cusum_fired = self.cusum > cfg.cusum_threshold;
        }

        // --- Periodicity: push into the ring, autocorrelate when full.
        let old = self.ring[self.ring_next];
        self.ring_sum = self.ring_sum - old + x;
        self.ring_sumsq = self.ring_sumsq - u128::from(old) * u128::from(old)
            + u128::from(x) * u128::from(x);
        self.ring[self.ring_next] = x;
        self.ring_next = (self.ring_next + 1) % self.ring.len();
        self.ring_filled = (self.ring_filled + 1).min(self.ring.len());
        let mut period_flag = false;
        if !warm && self.ring_filled == self.ring.len() {
            period_flag = self.autocorrelated(cfg);
        }
        if period_flag {
            self.period_streak += 1;
        } else {
            self.period_streak = 0;
        }

        // --- Streaks -> fired detectors, fixed priority.
        let ewma_fired = self.ewma_streak >= cfg.alarm_consecutive;
        let period_fired = self.period_streak >= cfg.alarm_consecutive;
        if ewma_fired {
            self.alarm_windows_ewma += 1;
        }
        if cusum_fired {
            self.alarm_windows_cusum += 1;
        }
        if period_fired {
            self.alarm_windows_period += 1;
        }
        let kind = if ewma_fired {
            Some(DetectorKind::Ewma)
        } else if cusum_fired {
            Some(DetectorKind::Cusum)
        } else if period_fired {
            Some(DetectorKind::Periodicity)
        } else {
            None
        };
        if let Some(k) = kind {
            if self.first_alarm.is_none() {
                self.first_alarm = Some((window, k));
                return Some(k);
            }
        }
        None
    }

    /// Normalised autocorrelation over the full ring, best lag wins.
    ///
    /// The ring is first linearised oldest-to-newest into the
    /// preallocated `scratch` buffer with the mean removed, so the
    /// per-lag product loops below are straight array walks — no
    /// modulo in the inner loop. Deltas fit i64 (a window delta is
    /// bounded by a handful of counters each advancing at most a few
    /// window-lengths per window); products need i128 headroom.
    fn autocorrelated(&mut self, cfg: &MonitorConfig) -> bool {
        let len = self.ring.len();
        let mean = (self.ring_sum / len as u64) as i64;
        // Centred power from the running sums — exact for integer
        // mean: Σ(v-m)² = Σv² - 2mΣv + n·m². Lets the quiet-channel
        // early-out below cost O(1) instead of a ring walk.
        let denom: i128 = self.ring_sumsq as i128
            - 2 * i128::from(mean) * i128::from(self.ring_sum)
            + (len as i128) * i128::from(mean) * i128::from(mean);
        if denom == 0 || (denom / len as i128) < i128::from(cfg.min_power) {
            return false;
        }
        // Linearise + centre in one pass, tracking the largest
        // magnitude for the fast path below.
        let split = len - self.ring_next;
        let mut max_abs: u64 = 0;
        for i in 0..len {
            let src = if i < split { self.ring_next + i } else { i - split };
            let d = self.ring[src] as i64 - mean;
            self.scratch[i] = d;
            max_abs = max_abs.max(d.unsigned_abs());
        }
        // Every product is <= max_abs^2 and at most `len` of them sum,
        // so when max_abs^2 * len fits i64 the lag loops can run on
        // plain i64 multiplies (single instruction) instead of i128.
        // Window deltas are cycle counts bounded by a few
        // window-lengths, so in practice this path always wins.
        let fits_i64 =
            u128::from(max_abs) * u128::from(max_abs) * (len as u128) <= i64::MAX as u128;
        for &lag in &cfg.lags {
            let num: i128 = if fits_i64 {
                let mut n: i64 = 0;
                for k in lag..len {
                    n += self.scratch[k] * self.scratch[k - lag];
                }
                i128::from(n)
            } else {
                let mut n: i128 = 0;
                for k in lag..len {
                    n += i128::from(self.scratch[k]) * i128::from(self.scratch[k - lag]);
                }
                n
            };
            if num > 0 && num.saturating_mul(1000) / denom >= i128::from(cfg.corr_threshold_milli) {
                return true;
            }
        }
        false
    }

}

/// Streaming covert-channel detector over windowed [`SystemStats`]
/// snapshots. One instance watches one node (system); see the module
/// doc for the detector math and
/// [`fleet::FleetMonitor`](crate::fleet::FleetMonitor) for the
/// fleet-level fold.
///
/// Allocation-free after construction: `observe` touches only
/// preallocated state (verified by the counting-allocator test in
/// `crates/sim/tests/alloc_free.rs`).
#[derive(Debug, Clone)]
pub struct Monitor {
    cfg: MonitorConfig,
    num_links: usize,
    /// Previous cumulative value per channel (links first, then GPUs).
    prev: Vec<u64>,
    chans: Vec<ChannelDetector>,
    windows: u64,
    alarms: Vec<Alarm>,
    alarmed_links: u64,
    alarmed_gpus: u64,
}

impl Monitor {
    /// Creates a monitor for a system with `num_links` fabric links
    /// and `num_gpus` GPUs. Panics on a degenerate config.
    pub fn new(cfg: MonitorConfig, num_links: usize, num_gpus: usize) -> Self {
        cfg.validate();
        let n = num_links + num_gpus;
        let chans = vec![ChannelDetector::new(&cfg); n];
        Monitor {
            cfg,
            num_links,
            prev: vec![0; n],
            chans,
            windows: 0,
            alarms: Vec::with_capacity(n),
            alarmed_links: 0,
            alarmed_gpus: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Absorbs the current cumulative stats into the diff baseline
    /// *without* consuming a window. Call once after setup traffic
    /// (channel prepare, warm-up kernels) so it is not attributed to
    /// the first observation window.
    pub fn prime(&mut self, stats: &SystemStats) {
        self.snapshot_into_prev(stats);
    }

    /// Feeds one window: diffs the cumulative `stats` against the
    /// previous snapshot and steps every per-channel detector.
    /// Allocation-free.
    pub fn observe(&mut self, stats: &SystemStats) {
        let window = self.windows;
        let cycle = (window + 1) * self.cfg.window_cycles;
        for i in 0..self.prev.len() {
            let cur = self.channel_value(stats, i);
            let delta = cur.saturating_sub(self.prev[i]);
            self.prev[i] = cur;
            if let Some(kind) = self.chans[i].step(delta, window, &self.cfg) {
                let channel = self.channel_kind(i);
                if self.alarms.len() < self.alarms.capacity() {
                    self.alarms.push(Alarm { channel, window, cycle, detector: kind });
                }
                match channel {
                    ChannelKind::Link(l) if l < 64 => self.alarmed_links |= 1 << l,
                    ChannelKind::Gpu(g) if g < 64 => self.alarmed_gpus |= 1 << g,
                    _ => {}
                }
            }
        }
        self.windows = window + 1;
    }

    fn channel_value(&self, stats: &SystemStats, i: usize) -> u64 {
        if i < self.num_links {
            let l = &stats.links()[i];
            l.busy_cycles + l.queue_cycles
        } else {
            stats
                .gpu(crate::address::GpuId::new((i - self.num_links) as u8))
                .l2_misses
        }
    }

    fn channel_kind(&self, i: usize) -> ChannelKind {
        if i < self.num_links {
            ChannelKind::Link(i)
        } else {
            ChannelKind::Gpu(i - self.num_links)
        }
    }

    fn snapshot_into_prev(&mut self, stats: &SystemStats) {
        for i in 0..self.prev.len() {
            self.prev[i] = self.channel_value(stats, i);
        }
    }

    /// True once any channel has latched an alarm.
    pub fn alarmed(&self) -> bool {
        !self.alarms.is_empty()
    }

    /// The earliest latched alarm, if any.
    pub fn first_alarm(&self) -> Option<&Alarm> {
        self.alarms.first()
    }

    /// All latched alarms, in latch order (at most one per channel).
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// Bitmask of links (bit = `LinkId` index, indices >= 64 elided)
    /// with a latched alarm — feeds
    /// [`QosScope::links_mask`](crate::qos::QosScope) for the
    /// detect-then-throttle response.
    pub fn alarmed_links(&self) -> u64 {
        self.alarmed_links
    }

    /// Bitmask of GPUs with a latched alarm.
    pub fn alarmed_gpus(&self) -> u64 {
        self.alarmed_gpus
    }

    /// Number of windows observed so far.
    pub fn windows_observed(&self) -> u64 {
        self.windows
    }

    /// Number of channels with a latched alarm.
    pub fn channels_alarmed(&self) -> usize {
        self.alarms.len()
    }

    /// Per-channel suspicion score: total alarm-flagged windows across
    /// all detectors (0 for a clean channel). Monotone in how long and
    /// how loudly a channel has been anomalous.
    pub fn suspicion(&self, channel: ChannelKind) -> u64 {
        let i = match channel {
            ChannelKind::Link(l) => l,
            ChannelKind::Gpu(g) => self.num_links + g,
        };
        let c = &self.chans[i];
        c.alarm_windows_ewma + c.alarm_windows_cusum + c.alarm_windows_period
    }

    /// Exports detector state as mergeable metrics: window/alarm
    /// counters per detector and a time-to-detection histogram (cycles
    /// from the end of warm-up to each channel's first alarm).
    pub fn export_into(&self, m: &mut MetricSet) {
        m.add("monitor.windows", self.windows);
        m.add("monitor.channels", self.chans.len() as u64);
        m.add("monitor.channels_alarmed", self.alarms.len() as u64);
        let warm_end = u64::from(self.cfg.warmup_windows) * self.cfg.window_cycles;
        for c in &self.chans {
            m.add("monitor.alarm_windows.ewma", c.alarm_windows_ewma);
            m.add("monitor.alarm_windows.cusum", c.alarm_windows_cusum);
            m.add("monitor.alarm_windows.periodicity", c.alarm_windows_period);
        }
        for a in &self.alarms {
            m.observe(
                "monitor.time_to_detection_cycles",
                a.cycle.saturating_sub(warm_end),
            );
        }
    }

    /// Clears all detector state and the diff baseline; keeps the
    /// configuration and channel layout.
    pub fn reset(&mut self) {
        for p in &mut self.prev {
            *p = 0;
        }
        for c in &mut self.chans {
            c.reset();
        }
        self.windows = 0;
        self.alarms.clear();
        self.alarmed_links = 0;
        self.alarmed_gpus = 0;
    }
}

/// Steps `eng` to `until` in monitor-sized windows, feeding each
/// window's cumulative stats to `mon`. Stops early when every agent is
/// done. Returns the cycle reported by the last [`Engine::run`] call.
///
/// The engine is resumable, so this is exactly the PR 8 stats-diffing
/// idiom: no hook runs inside the hot path, the monitor only sees
/// boundary snapshots.
pub fn run_windowed(eng: &mut Engine<'_>, mon: &mut Monitor, until: u64) -> SimResult<u64> {
    let w = mon.config().window_cycles;
    let mut reached = 0;
    loop {
        let next = (mon.windows_observed() + 1) * w;
        let end = next.min(until);
        reached = eng.run(end)?.max(reached);
        mon.observe(eng.system().stats());
        if end >= until || eng.all_done() {
            return Ok(reached);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::SystemStats;
    use crate::topology::LinkId;

    fn feed(mon: &mut Monitor, stats: &mut SystemStats, deltas: &[u64]) {
        for &d in deltas {
            stats.link_mut(LinkId(0)).busy_cycles += d;
            mon.observe(stats);
        }
    }

    fn cfg() -> MonitorConfig {
        MonitorConfig {
            warmup_windows: 8,
            ring_windows: 16,
            ..MonitorConfig::default()
        }
    }

    #[test]
    fn stationary_signal_never_alarms() {
        let mut mon = Monitor::new(cfg(), 1, 0);
        let mut stats = SystemStats::new(1, 1);
        let series: Vec<u64> = (0..200).map(|i| 500 + (i % 7) * 13).collect();
        feed(&mut mon, &mut stats, &series);
        assert!(!mon.alarmed(), "benign stationary series alarmed: {:?}", mon.first_alarm());
        assert_eq!(mon.windows_observed(), 200);
    }

    #[test]
    fn step_change_alarms_via_ewma() {
        // CUSUM and periodicity disabled so the EWMA path is isolated.
        let c = MonitorConfig {
            warmup_windows: 8,
            ring_windows: 16,
            cusum_threshold: u64::MAX,
            corr_threshold_milli: 2000,
            ..MonitorConfig::default()
        };
        let mut mon = Monitor::new(c, 1, 0);
        let mut stats = SystemStats::new(1, 1);
        let mut series: Vec<u64> = vec![300; 40];
        series.extend(std::iter::repeat_n(30_000, 20));
        feed(&mut mon, &mut stats, &series);
        let a = mon.first_alarm().expect("step change must alarm");
        assert_eq!(a.detector, DetectorKind::Ewma);
        assert!(a.window >= 40, "alarm must come after the step, got {}", a.window);
        assert_eq!(mon.alarmed_links(), 1);
    }

    #[test]
    fn slow_drip_alarms_via_cusum() {
        // An offset small enough to stay under the EWMA spike gate but
        // integrating past the CUSUM threshold.
        let c = MonitorConfig {
            warmup_windows: 8,
            ring_windows: 16,
            ewma_mult: 1000,
            corr_threshold_milli: 2000, // periodicity off
            ..MonitorConfig::default()
        };
        let mut mon = Monitor::new(c, 1, 0);
        let mut stats = SystemStats::new(1, 1);
        let mut series: Vec<u64> = vec![200; 8];
        series.extend(std::iter::repeat_n(2000, 60));
        feed(&mut mon, &mut stats, &series);
        let a = mon.first_alarm().expect("slow drip must alarm");
        assert_eq!(a.detector, DetectorKind::Cusum);
    }

    #[test]
    fn square_wave_alarms_via_periodicity() {
        // Amplitude tuned under the EWMA/CUSUM gates so only the slot
        // clock gives it away.
        let c = MonitorConfig {
            warmup_windows: 8,
            ring_windows: 32,
            ewma_mult: 1_000_000,
            cusum_threshold: u64::MAX,
            min_power: 1000,
            ..MonitorConfig::default()
        };
        let mut mon = Monitor::new(c, 1, 0);
        let mut stats = SystemStats::new(1, 1);
        let series: Vec<u64> = (0..120).map(|i| if (i / 2) % 2 == 0 { 2000 } else { 200 }).collect();
        feed(&mut mon, &mut stats, &series);
        let a = mon.first_alarm().expect("square wave must alarm");
        assert_eq!(a.detector, DetectorKind::Periodicity);
    }

    #[test]
    fn load_drop_never_alarms() {
        let mut mon = Monitor::new(cfg(), 1, 0);
        let mut stats = SystemStats::new(1, 1);
        let mut series: Vec<u64> = vec![20_000; 40];
        series.extend(std::iter::repeat_n(100, 60));
        feed(&mut mon, &mut stats, &series);
        assert!(!mon.alarmed(), "one-sided detectors must ignore load drops");
    }

    #[test]
    fn gpu_channel_maps_to_l2_misses() {
        let mut mon = Monitor::new(cfg(), 1, 2);
        let mut stats = SystemStats::new(2, 1);
        for i in 0..60 {
            let d = if i < 40 { 100 } else { 50_000 };
            stats.gpu_mut(crate::address::GpuId::new(1)).l2_misses += d;
            mon.observe(&stats);
        }
        let a = mon.first_alarm().expect("gpu l2 spike must alarm");
        assert_eq!(a.channel, ChannelKind::Gpu(1));
        assert_eq!(mon.alarmed_gpus(), 0b10);
        assert_eq!(mon.alarmed_links(), 0);
    }

    #[test]
    fn prime_absorbs_setup_traffic() {
        let mut mon = Monitor::new(cfg(), 1, 0);
        let mut stats = SystemStats::new(1, 1);
        stats.link_mut(LinkId(0)).busy_cycles = 5_000_000;
        mon.prime(&stats);
        feed(&mut mon, &mut stats, &[400; 100]);
        assert!(!mon.alarmed());
        assert_eq!(mon.windows_observed(), 100);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut mon = Monitor::new(cfg(), 1, 0);
        let mut stats = SystemStats::new(1, 1);
        let mut series: Vec<u64> = vec![300; 40];
        series.extend(std::iter::repeat_n(30_000, 20));
        feed(&mut mon, &mut stats, &series);
        assert!(mon.alarmed());
        mon.reset();
        assert!(!mon.alarmed());
        assert_eq!(mon.windows_observed(), 0);
        assert_eq!(mon.alarmed_links(), 0);
        let mut stats2 = SystemStats::new(1, 1);
        feed(&mut mon, &mut stats2, &[300; 50]);
        assert!(!mon.alarmed());
    }

    #[test]
    fn suspicion_counts_alarm_windows() {
        let mut mon = Monitor::new(cfg(), 1, 0);
        let mut stats = SystemStats::new(1, 1);
        let mut series: Vec<u64> = vec![300; 40];
        series.extend(std::iter::repeat_n(30_000, 30));
        feed(&mut mon, &mut stats, &series);
        assert!(mon.suspicion(ChannelKind::Link(0)) > 0);
        let mut m = MetricSet::new();
        mon.export_into(&mut m);
        assert_eq!(m.counter("monitor.windows"), 70);
        assert_eq!(m.counter("monitor.channels_alarmed"), 1);
        assert_eq!(m.histogram("monitor.time_to_detection_cycles").map(|h| h.count()), Some(1));
    }
}
