//! Ergonomic per-process view with a local clock — the "CUDA kernel" API.
//!
//! [`ProcessCtx`] borrows the system and tracks the process's clock, so
//! single-actor phases (reverse engineering, eviction-set discovery) read
//! like the paper's pseudo-code: `ldcg` + `clock()` deltas.

use crate::address::{GpuId, VirtAddr};
use crate::error::SimResult;
use crate::system::{AgentId, BatchAccess, BatchSummary, MultiGpuSystem, ProcessId};

/// A borrowed execution context for one process.
#[derive(Debug)]
pub struct ProcessCtx<'a> {
    sys: &'a mut MultiGpuSystem,
    pid: ProcessId,
    agent: AgentId,
    clock: u64,
}

impl<'a> ProcessCtx<'a> {
    /// Wraps a process with a fresh clock starting at `start`.
    pub fn new(sys: &'a mut MultiGpuSystem, pid: ProcessId, start: u64) -> Self {
        let agent = sys.default_agent(pid);
        ProcessCtx {
            sys,
            pid,
            agent,
            clock: start,
        }
    }

    /// The process id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// The GPU this process's kernels run on.
    pub fn home(&self) -> GpuId {
        self.sys.process_home(self.pid)
    }

    /// Current local clock in cycles (the CUDA `clock()` analogue).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Immutable access to the underlying system.
    pub fn system(&self) -> &MultiGpuSystem {
        self.sys
    }

    /// Mutable access to the underlying system (for oracle calls in tests).
    pub fn system_mut(&mut self) -> &mut MultiGpuSystem {
        self.sys
    }

    /// Allocates device memory on `gpu` (peer access must be enabled for
    /// remote GPUs).
    ///
    /// # Errors
    ///
    /// See [`MultiGpuSystem::malloc_on`].
    pub fn malloc_on(&mut self, gpu: GpuId, bytes: u64) -> SimResult<VirtAddr> {
        self.sys.malloc_on(self.pid, gpu, bytes)
    }

    /// Enables peer access to `remote`.
    ///
    /// # Errors
    ///
    /// See [`MultiGpuSystem::enable_peer_access`].
    pub fn enable_peer_access(&mut self, remote: GpuId) -> SimResult<()> {
        self.sys.enable_peer_access(self.pid, remote)
    }

    /// Timed load bypassing L1 (the paper's `__ldcg()`); returns
    /// `(value, cycles)` and advances the clock.
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses or missing peer access.
    pub fn ldcg(&mut self, va: VirtAddr) -> SimResult<(u64, u32)> {
        let acc = self
            .sys
            .access(self.pid, self.agent, va, self.clock, None)?;
        self.clock += u64::from(acc.latency);
        Ok((acc.value, acc.latency))
    }

    /// Timed store; returns the latency and advances the clock.
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses or missing peer access.
    pub fn store(&mut self, va: VirtAddr, value: u64) -> SimResult<u32> {
        let acc = self
            .sys
            .access(self.pid, self.agent, va, self.clock, Some(value))?;
        self.clock += u64::from(acc.latency);
        Ok(acc.latency)
    }

    /// Warp-parallel probe of a group of lines; advances the clock by the
    /// batch duration.
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses or missing peer access.
    pub fn probe_batch(&mut self, vas: &[VirtAddr]) -> SimResult<BatchAccess> {
        let b = self
            .sys
            .access_batch(self.pid, self.agent, vas, self.clock)?;
        self.clock += b.duration;
        Ok(b)
    }

    /// As [`ProcessCtx::probe_batch`], but writes the per-line latencies
    /// into a caller-provided buffer (cleared first) — the allocation-free
    /// variant for hot discovery loops that issue thousands of group
    /// tests. Advances the clock by the batch duration.
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses or missing peer access.
    pub fn probe_batch_into(
        &mut self,
        vas: &[VirtAddr],
        latencies: &mut Vec<u32>,
    ) -> SimResult<BatchSummary> {
        latencies.clear();
        let s = self
            .sys
            .access_batch_into(self.pid, self.agent, vas, self.clock, latencies)?;
        self.clock += s.duration;
        Ok(s)
    }

    /// Spends `cycles` on computation (the paper's "dummy operations" /
    /// trigonometric busy-wait while transmitting a 0).
    pub fn compute(&mut self, cycles: u64) {
        self.clock += cycles;
    }

    /// Host-side (untimed) initialisation of device words.
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses.
    pub fn write_words(&mut self, va: VirtAddr, words: &[u64]) -> SimResult<()> {
        self.sys.write_words(self.pid, va, words)
    }

    /// Builds a pointer-chase chain through `offsets` (byte offsets from
    /// `base`): word at `offsets[i]` holds the *word index* of
    /// `offsets[(i+1) % len]`, exactly like the paper's Algorithm 1 buffer.
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses.
    pub fn build_chase_chain(&mut self, base: VirtAddr, offsets: &[u64]) -> SimResult<()> {
        for i in 0..offsets.len() {
            let next = offsets[(i + 1) % offsets.len()] / 8;
            self.sys
                .write_words(self.pid, base.offset(offsets[i]), &[next])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    #[test]
    fn clock_advances_with_latency() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let buf = ctx.malloc_on(GpuId::new(0), 4096).unwrap();
        let (_, lat) = ctx.ldcg(buf).unwrap();
        assert_eq!(ctx.clock(), u64::from(lat));
        ctx.compute(100);
        assert_eq!(ctx.clock(), u64::from(lat) + 100);
    }

    #[test]
    fn chase_chain_links_offsets() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let buf = ctx.malloc_on(GpuId::new(0), 4096).unwrap();
        let offsets = [0u64, 256, 512];
        ctx.build_chase_chain(buf, &offsets).unwrap();
        // Follow the chain by value, like the attack kernel does.
        let (next, _) = ctx.ldcg(buf).unwrap();
        assert_eq!(next, 256 / 8);
        let (next, _) = ctx.ldcg(buf.offset(next * 8)).unwrap();
        assert_eq!(next, 512 / 8);
        let (next, _) = ctx.ldcg(buf.offset(next * 8)).unwrap();
        assert_eq!(next, 0, "chain wraps to start");
    }

    #[test]
    fn probe_batch_advances_clock_by_duration() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let buf = ctx.malloc_on(GpuId::new(0), 64 * 1024).unwrap();
        let vas: Vec<VirtAddr> = (0..8).map(|i| buf.offset(i * 128)).collect();
        let b = ctx.probe_batch(&vas).unwrap();
        assert_eq!(ctx.clock(), b.duration);
    }
}
