//! System, cache, timing and noise configuration.
//!
//! [`SystemConfig::dgx1`] reproduces the machine the paper attacks: an
//! NVIDIA DGX-1 with eight Pascal P100 GPUs connected by NVLink-V1 in a
//! hybrid cube-mesh (paper Fig. 1, Fig. 2, Table I).

use crate::fabric::FabricConfig;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// Geometry of one L2 cache (paper Table I for the P100).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes (P100: 4 MiB).
    pub size_bytes: u64,
    /// Cache line size in bytes (P100: 128 B).
    pub line_size: u64,
    /// Associativity (P100: 16 ways).
    pub ways: u32,
    /// Replacement policy used by every set.
    pub replacement: ReplacementKind,
}

impl CacheConfig {
    /// L2 configuration of the Tesla P100 as reverse engineered in the
    /// paper (Table I): 4 MiB, 2048 sets, 128 B lines, 16-way, LRU.
    pub fn p100_l2() -> Self {
        CacheConfig {
            size_bytes: 4 * 1024 * 1024,
            line_size: 128,
            ways: 16,
            replacement: ReplacementKind::Lru,
        }
    }

    /// Number of sets implied by size, line size and associativity.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.line_size * u64::from(self.ways))
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::p100_l2()
    }
}

/// Which replacement policy the cache sets use.
///
/// The paper infers LRU (or pseudo-LRU) from the deterministic
/// every-16th-access eviction pattern (Fig. 5); the other variants exist
/// for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ReplacementKind {
    /// True least-recently-used.
    #[default]
    Lru,
    /// Tree pseudo-LRU (binary decision tree per set).
    TreePlru,
    /// Uniform random victim selection.
    Random,
}

/// Latency model constants, in GPU core cycles.
///
/// Calibrated to the four timing clusters measured in the paper's Fig. 4
/// and the covert-channel trace of Fig. 10 (probe hit ≈ 630 cycles, probe
/// miss ≈ 950 cycles when accessing a remote GPU's memory).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingConfig {
    /// Local L2 hit latency (paper: "just over 250" — we use 270).
    pub l2_hit: u32,
    /// Extra cycles for an HBM access on a local L2 miss (270+180 = 450).
    pub dram_penalty: u32,
    /// Extra round-trip cycles for one NVLink hop (270+360 = 630 remote hit).
    pub nvlink_hop: u32,
    /// Extra serialisation cycles on a remote miss beyond hit+dram
    /// (270+180+360+140 = 950 remote miss).
    pub remote_miss_extra: u32,
    /// Extra round-trip cycles when the route falls back to PCIe.
    pub pcie_round_trip: u32,
    /// Standard deviation of the Gaussian timing jitter applied per access.
    pub jitter_sigma: f64,
    /// Cycles added per concurrently active *other* agent recently touching
    /// the same GPU (port/bank contention, the error driver of Fig. 9).
    pub contention_per_actor: u32,
    /// Pressure saturates at this many concurrent actors (ports pipeline;
    /// beyond this, extra requesters queue rather than slow every access).
    pub contention_pressure_cap: u32,
    /// Window (cycles) in which another agent's access counts as concurrent.
    pub contention_window: u64,
    /// Per-access probability (times the uncapped pressure) of triggering
    /// a *congestion episode* on the home GPU: a burst during which every
    /// access pays [`TimingConfig::contention_spike_cycles`] extra. Bursty
    /// congestion is what corrupts whole covert-channel bit slots (Fig. 9).
    pub contention_spike_prob: f64,
    /// Extra cycles per access while the GPU is congested.
    pub contention_spike_cycles: u32,
    /// Duration of one congestion episode, cycles.
    pub congestion_cycles: u64,
    /// Cycles of NVLink serialisation per concurrent *other* remote
    /// requester to the same home GPU (link queueing: the second error
    /// driver of Fig. 9 at high set counts).
    pub nvlink_queue_per_req: u32,
    /// Issue gap between back-to-back loads of one warp (memory-level
    /// parallelism: a 16-line probe does not pay 16 full latencies).
    pub issue_gap: u32,
    /// GPU core clock in Hz (P100 boost clock ≈ 1.48 GHz), used to convert
    /// cycles to wall-clock bandwidth.
    pub clock_hz: f64,
}

impl TimingConfig {
    /// Timing constants calibrated to the paper's P100 measurements.
    pub fn p100() -> Self {
        TimingConfig {
            l2_hit: 270,
            dram_penalty: 180,
            nvlink_hop: 360,
            remote_miss_extra: 140,
            pcie_round_trip: 1900,
            jitter_sigma: 9.0,
            contention_per_actor: 14,
            contention_pressure_cap: 10,
            contention_window: 2_000,
            contention_spike_prob: 1.1e-5,
            contention_spike_cycles: 260,
            congestion_cycles: 5_000,
            nvlink_queue_per_req: 9,
            issue_gap: 24,
            clock_hz: 1.48e9,
        }
    }

    /// Expected latency of a cached access from `hops` NVLink hops away.
    pub fn expected_hit(&self, hops: u32) -> u32 {
        self.l2_hit + hops * self.nvlink_hop
    }

    /// Expected latency of a missing access from `hops` NVLink hops away.
    pub fn expected_miss(&self, hops: u32) -> u32 {
        self.l2_hit + self.dram_penalty + hops * (self.nvlink_hop + self.remote_miss_extra)
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig::p100()
    }
}

/// Streaming-multiprocessor resources of one GPU (paper Fig. 2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmConfig {
    /// Number of SMs per GPU (P100: 56).
    pub num_sms: u32,
    /// Shared memory per SM, bytes (P100: 64 KiB).
    pub shared_mem_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
}

impl SmConfig {
    /// P100 SM resources.
    pub fn p100() -> Self {
        SmConfig {
            num_sms: 56,
            shared_mem_per_sm: 64 * 1024,
            max_blocks_per_sm: 32,
            max_threads_per_sm: 2048,
        }
    }
}

impl Default for SmConfig {
    fn default() -> Self {
        SmConfig::p100()
    }
}

/// Whole-box configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of GPUs in the box.
    pub num_gpus: u8,
    /// HBM capacity per GPU, bytes (P100: 16 GiB; the simulator allocates
    /// frames lazily so this is just an upper bound).
    pub hbm_bytes: u64,
    /// Page size used by the driver model (GPU big pages: 64 KiB).
    pub page_size: u64,
    /// L2 geometry.
    pub cache: CacheConfig,
    /// Latency model.
    pub timing: TimingConfig,
    /// SM resources.
    pub sm: SmConfig,
    /// NVLink/PCIe topology.
    pub topology: Topology,
    /// Timed per-link fabric model (bandwidth, occupancy, queueing).
    /// Disabled by default: the scalar interconnect model of PR 2,
    /// bit-identical to the pre-fabric simulator.
    pub fabric: FabricConfig,
    /// The explicit peer-reachability policy knob: when `false` (the
    /// DGX-1 runtime behaviour the paper reports, Sec. III-A),
    /// [`crate::MultiGpuSystem::enable_peer_access`] refuses GPU pairs
    /// without a direct NVLink; when `true`, peer access is granted over
    /// multi-hop NVLink routes and — for pairs with no NVLink path at
    /// all — over the PCIe root complex (NVSwitch-era runtimes).
    pub allow_indirect_peer: bool,
    /// RNG seed for frame placement and jitter; fixed per system for
    /// reproducible experiments.
    pub seed: u64,
}

impl SystemConfig {
    /// The paper's attack platform: an 8-GPU Pascal DGX-1.
    ///
    /// # Examples
    ///
    /// ```
    /// use gpubox_sim::SystemConfig;
    /// let cfg = SystemConfig::dgx1();
    /// assert_eq!(cfg.num_gpus, 8);
    /// assert_eq!(cfg.cache.num_sets(), 2048);
    /// ```
    pub fn dgx1() -> Self {
        SystemConfig {
            num_gpus: 8,
            hbm_bytes: 16 * 1024 * 1024 * 1024,
            page_size: 64 * 1024,
            cache: CacheConfig::p100_l2(),
            timing: TimingConfig::p100(),
            sm: SmConfig::p100(),
            topology: Topology::dgx1(),
            fabric: FabricConfig::disabled(),
            allow_indirect_peer: false,
            seed: 0xD6B0_C0DE,
        }
    }

    /// A two-GPU machine with a small L2 for fast unit tests (64 sets).
    pub fn small_test() -> Self {
        let cache = CacheConfig {
            size_bytes: 64 * 128 * 16,
            line_size: 128,
            ways: 16,
            replacement: ReplacementKind::Lru,
        };
        SystemConfig {
            num_gpus: 2,
            hbm_bytes: 256 * 1024 * 1024,
            page_size: 4 * 1024,
            cache,
            timing: TimingConfig::p100(),
            sm: SmConfig::p100(),
            topology: Topology::fully_connected(2),
            fabric: FabricConfig::disabled(),
            allow_indirect_peer: false,
            seed: 42,
        }
    }

    /// Replaces the seed (builder-style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the replacement policy (builder-style).
    #[must_use]
    pub fn with_replacement(mut self, kind: ReplacementKind) -> Self {
        self.cache.replacement = kind;
        self
    }

    /// Replaces the fabric model (builder-style); e.g.
    /// `with_fabric(FabricConfig::nvlink_v1())` turns on the timed
    /// per-link interconnect.
    #[must_use]
    pub fn with_fabric(mut self, fabric: FabricConfig) -> Self {
        self.fabric = fabric;
        self
    }

    /// Replaces the fabric's QoS / defence configuration
    /// (builder-style): rate limiting, traffic shaping and valiant
    /// routing, see [`crate::qos`].
    ///
    /// # Panics
    ///
    /// Panics when the fabric is disabled: QoS would never be
    /// consulted, and because [`SystemConfig::with_fabric`] replaces
    /// the whole fabric config (including its `qos` field), calling
    /// `with_qos` *before* `with_fabric` would otherwise discard the
    /// defence silently — a defence experiment measuring the baseline
    /// while believing the defence is on. Call `with_fabric` first.
    #[must_use]
    pub fn with_qos(mut self, qos: crate::qos::QosConfig) -> Self {
        assert!(
            self.fabric.enabled,
            "with_qos requires an enabled fabric — call with_fabric(FabricConfig::nvlink_v1()) first"
        );
        self.fabric.qos = qos;
        self
    }

    /// Disables timing jitter and contention noise (for deterministic
    /// ground-truth tests).
    #[must_use]
    pub fn noiseless(mut self) -> Self {
        self.timing.jitter_sigma = 0.0;
        self.timing.contention_per_actor = 0;
        self.timing.contention_spike_prob = 0.0;
        self.timing.nvlink_queue_per_req = 0;
        self
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::dgx1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p100_l2_matches_table1() {
        let c = CacheConfig::p100_l2();
        assert_eq!(c.size_bytes, 4 * 1024 * 1024);
        assert_eq!(c.num_sets(), 2048);
        assert_eq!(c.line_size, 128);
        assert_eq!(c.ways, 16);
        assert_eq!(c.replacement, ReplacementKind::Lru);
    }

    #[test]
    fn timing_clusters_match_fig4() {
        let t = TimingConfig::p100();
        assert_eq!(t.expected_hit(0), 270);
        assert_eq!(t.expected_miss(0), 450);
        assert_eq!(t.expected_hit(1), 630);
        assert_eq!(t.expected_miss(1), 950);
    }

    #[test]
    fn dgx1_has_eight_gpus() {
        let cfg = SystemConfig::dgx1();
        assert_eq!(cfg.num_gpus, 8);
        assert_eq!(cfg.sm.num_sms, 56);
    }

    #[test]
    fn builders_apply() {
        let cfg = SystemConfig::small_test()
            .with_seed(7)
            .with_replacement(ReplacementKind::Random)
            .with_fabric(FabricConfig::nvlink_v1())
            .noiseless();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.cache.replacement, ReplacementKind::Random);
        assert_eq!(cfg.timing.jitter_sigma, 0.0);
        assert!(cfg.fabric.enabled);
    }

    #[test]
    fn fabric_defaults_off() {
        assert!(!SystemConfig::dgx1().fabric.enabled);
        assert!(!SystemConfig::small_test().fabric.enabled);
    }
}
