//! # gpubox-sim — a discrete-event multi-GPU system simulator
//!
//! This crate is the hardware substrate for the reproduction of *"Spy in
//! the GPU-box: Covert and Side Channel Attacks on Multi-GPU Systems"*
//! (ISCA 2023). It models an NVIDIA DGX-1-class machine well enough to
//! host the paper's attacks end to end:
//!
//! - **NUMA L2 caching** (the paper's core reverse-engineering result):
//!   every physical page is cached in the L2 of the GPU whose HBM homes
//!   it, including accesses arriving over NVLink from peer GPUs.
//! - **Physically indexed, 16-way, 2048-set L2** with pluggable
//!   replacement (LRU / tree-PLRU / random) — paper Table I.
//! - **NVLink hybrid cube-mesh topology** with per-hop latency and a PCIe
//!   fallback — paper Fig. 1 — plus an optional **timed link fabric**
//!   ([`fabric`]): every NVLink edge is a queueing resource with per-link
//!   bandwidth and occupancy, remote accesses route hop-by-hop along
//!   deterministic shortest paths (multi-hop and PCIe fallback included),
//!   and per-link utilisation is surfaced in [`SystemStats`] — the
//!   substrate of the paper's NVLink-congestion covert channel. A
//!   composable **QoS / defence layer** ([`qos`]) adds per-tenant
//!   token-bucket link rate limiting, epoch pacing / seeded grant
//!   jitter, and valiant routing — the interconnect-side mitigations
//!   evaluated against both covert-channel families — and a
//!   deterministic **fault-injection layer** ([`fault`]) schedules link
//!   outages (with per-epoch rerouting and PCIe fallback), degraded
//!   links and seeded transient stalls for robustness evaluation.
//! - **Calibrated timing** reproducing the four Fig. 4 clusters
//!   (270 / 450 / 630 / 950 cycles) with Gaussian jitter and
//!   port-contention noise.
//! - **Randomised page-frame placement**, hiding cache-set indices from
//!   user space, so eviction sets must be *discovered*, not computed.
//! - **SM resources with a leftover block scheduler** for the Sec. VI
//!   noise-mitigation technique.
//! - A **discrete-event engine** interleaving concurrent agents (trojan,
//!   spy, victim, noise tenants) against the shared caches in true
//!   timestamp order.
//! - **Cycle-accurate telemetry** ([`telemetry`]): an allocation-free
//!   ring-buffer event tracer (off by default, bit-invisible when off)
//!   hooked into the engine, L2, fabric, QoS and fault layers, plus
//!   mergeable streaming metrics and Chrome `trace_event` / human
//!   timeline exporters.
//!
//! ## Quick example
//!
//! ```
//! use gpubox_sim::{GpuId, MultiGpuSystem, SystemConfig};
//!
//! # fn main() -> Result<(), gpubox_sim::SimError> {
//! let mut sys = MultiGpuSystem::new(SystemConfig::dgx1());
//! // A spy on GPU1 allocates memory homed on GPU0 ...
//! let spy = sys.create_process(GpuId::new(1));
//! sys.enable_peer_access(spy, GpuId::new(0))?;
//! let buf = sys.malloc_on(spy, GpuId::new(0), 64 * 1024)?;
//! // ... and its accesses are cached in GPU0's L2, observable by timing.
//! let cold = sys.access(spy, sys.default_agent(spy), buf, 0, None)?;
//! let warm = sys.access(spy, sys.default_agent(spy), buf, 1_000, None)?;
//! assert!(cold.latency > warm.latency);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod address;
pub mod cache;
#[doc(hidden)]
pub mod cache_reference;
pub mod config;
pub mod engine;
pub mod error;
pub mod fabric;
pub mod fault;
pub mod fleet;
pub mod memory;
pub mod monitor;
pub mod noise;
pub mod process;
pub mod qos;
pub mod replacement;
pub mod sm;
pub mod stats;
pub mod system;
pub mod telemetry;
pub mod timing;
pub mod topology;
pub mod vm;

pub use address::{FrameNumber, GpuId, PageNumber, PhysAddr, PhysLoc, SetIndex, SetMapper, VirtAddr};
pub use cache::{AccessOutcome, L2Cache, EMPTY_TAG};
pub use config::{CacheConfig, ReplacementKind, SmConfig, SystemConfig, TimingConfig};
pub use engine::{Agent, Engine, Op, OpResult, ProbeStage, SchedulerKind};
pub use error::{SimError, SimResult};
pub use fabric::{Fabric, FabricConfig};
pub use fault::{DegradedLink, FaultPlan, LinkDown, TransientStalls};
pub use fleet::{
    ArrivalConfig, ArrivalStream, ChannelAware, Exposure, FleetConfig, FleetMonitor, FleetReport,
    FleetRunner, FleetScheduler, JobSpec, Occupancy, Pack, PlacementPolicy, RandomPlacement,
    SlotAddr, Spread, TenantId,
};
pub use monitor::{run_windowed, Alarm, ChannelKind, DetectorKind, Monitor, MonitorConfig};
pub use noise::{NoiseAgent, NoiseConfig};
pub use process::ProcessCtx;
pub use qos::{QosConfig, QosScope, RateLimitConfig, RoutingPolicy, TrafficShaping};
pub use sm::{KernelId, KernelLaunch, SmArray};
pub use stats::{FaultStats, GpuStats, LinkStats, QosStats, SystemStats};
pub use system::{
    AccessOracle, AgentId, BatchAccess, BatchSummary, MemAccess, MultiGpuSystem, ProcessId,
};
pub use telemetry::{
    chrome_trace_json, human_timeline, validate_json, LogHistogram, MetricSet, TraceKind,
    TraceRecord, TraceSink, TraceSpan, NO_PROCESS,
};
pub use timing::LatencyModel;
pub use topology::{LinkId, LinkKind, Route, Topology};
