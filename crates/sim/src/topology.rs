//! NVLink/PCIe interconnect topology and routing.
//!
//! The DGX-1 connects its eight P100s in a *hybrid cube-mesh* (paper
//! Fig. 1): two fully connected quads `{0,1,2,3}` and `{4,5,6,7}`, plus one
//! NVLink between corresponding members of each quad (`i ↔ i+4`). Every
//! GPU additionally reaches every other GPU through PCIe via the host.

use crate::address::GpuId;
use serde::{Deserialize, Serialize};

/// Kind of link a route uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// Direct NVLink connection (possibly multi-hop through peers).
    NvLink,
    /// PCIe through the host root complex.
    Pcie,
}

/// A resolved route between two GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// Transport used.
    pub kind: LinkKind,
    /// Number of NVLink hops (0 for a local access, meaningless for PCIe).
    pub hops: u32,
}

impl Route {
    /// The trivial local route (same GPU).
    pub fn local() -> Self {
        Route {
            kind: LinkKind::NvLink,
            hops: 0,
        }
    }
}

/// An undirected multi-GPU interconnect graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    n: u8,
    /// Adjacency matrix of direct NVLink edges.
    adj: Vec<Vec<bool>>,
    /// All-pairs NVLink hop distance (`u32::MAX` when unreachable).
    dist: Vec<Vec<u32>>,
}

impl Topology {
    /// Builds a topology from a node count and an undirected edge list.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node `>= n`.
    pub fn from_edges(n: u8, edges: &[(u8, u8)]) -> Self {
        let nn = n as usize;
        let mut adj = vec![vec![false; nn]; nn];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range for {n} GPUs");
            adj[a as usize][b as usize] = true;
            adj[b as usize][a as usize] = true;
        }
        let dist = Self::all_pairs(&adj);
        Topology { n, adj, dist }
    }

    /// The DGX-1 hybrid cube-mesh over 8 GPUs (paper Fig. 1).
    pub fn dgx1() -> Self {
        let mut edges = Vec::new();
        // Two fully connected quads.
        for base in [0u8, 4u8] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        // Cross links between the quads.
        for i in 0..4u8 {
            edges.push((i, i + 4));
        }
        Topology::from_edges(8, &edges)
    }

    /// A fully connected NVLink clique over `n` GPUs (useful for tests and
    /// for modelling NVSwitch-style boxes).
    pub fn fully_connected(n: u8) -> Self {
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push((i, j));
            }
        }
        Topology::from_edges(n, &edges)
    }

    fn all_pairs(adj: &[Vec<bool>]) -> Vec<Vec<u32>> {
        let n = adj.len();
        let mut dist = vec![vec![u32::MAX; n]; n];
        for (s, row) in dist.iter_mut().enumerate() {
            // BFS from s.
            row[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                for v in 0..n {
                    if adj[u][v] && row[v] == u32::MAX {
                        row[v] = row[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        dist
    }

    /// Number of GPUs in the topology.
    pub fn num_gpus(&self) -> u8 {
        self.n
    }

    /// Whether `a` and `b` share a direct NVLink.
    pub fn direct_nvlink(&self, a: GpuId, b: GpuId) -> bool {
        a != b && self.adj[a.index()][b.index()]
    }

    /// NVLink hop distance between two GPUs, if reachable over NVLink.
    pub fn nvlink_hops(&self, a: GpuId, b: GpuId) -> Option<u32> {
        let d = self.dist[a.index()][b.index()];
        (d != u32::MAX).then_some(d)
    }

    /// Resolves the route used for an access from `src` to memory homed on
    /// `dst`: NVLink if reachable, PCIe otherwise.
    pub fn route(&self, src: GpuId, dst: GpuId) -> Route {
        if src == dst {
            return Route::local();
        }
        match self.nvlink_hops(src, dst) {
            Some(h) => Route {
                kind: LinkKind::NvLink,
                hops: h,
            },
            None => Route {
                kind: LinkKind::Pcie,
                hops: 0,
            },
        }
    }

    /// Iterates over the direct NVLink peers of `g`.
    pub fn peers(&self, g: GpuId) -> impl Iterator<Item = GpuId> + '_ {
        let gi = g.index();
        (0..self.n)
            .filter(move |&j| self.adj[gi][j as usize])
            .map(GpuId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgx1_every_gpu_has_four_links() {
        let t = Topology::dgx1();
        for g in 0..8u8 {
            let deg = t.peers(GpuId::new(g)).count();
            assert_eq!(deg, 4, "GPU{g} should have 4 NVLinks");
        }
    }

    #[test]
    fn dgx1_intra_quad_is_one_hop() {
        let t = Topology::dgx1();
        assert_eq!(t.nvlink_hops(GpuId::new(0), GpuId::new(3)), Some(1));
        assert_eq!(t.nvlink_hops(GpuId::new(5), GpuId::new(7)), Some(1));
    }

    #[test]
    fn dgx1_cross_quad_corresponding_is_one_hop() {
        let t = Topology::dgx1();
        for i in 0..4u8 {
            assert_eq!(t.nvlink_hops(GpuId::new(i), GpuId::new(i + 4)), Some(1));
        }
    }

    #[test]
    fn dgx1_cross_quad_non_corresponding_is_two_hops() {
        let t = Topology::dgx1();
        // 0 and 5 are in different quads and not corresponding: 0-1-5 or 0-4-5.
        assert_eq!(t.nvlink_hops(GpuId::new(0), GpuId::new(5)), Some(2));
        assert!(!t.direct_nvlink(GpuId::new(0), GpuId::new(5)));
    }

    #[test]
    fn local_route_is_zero_hops() {
        let t = Topology::dgx1();
        let r = t.route(GpuId::new(2), GpuId::new(2));
        assert_eq!(r, Route::local());
    }

    #[test]
    fn disconnected_gpus_fall_back_to_pcie() {
        // Two GPUs, no NVLink edges at all.
        let t = Topology::from_edges(2, &[]);
        let r = t.route(GpuId::new(0), GpuId::new(1));
        assert_eq!(r.kind, LinkKind::Pcie);
        assert_eq!(t.nvlink_hops(GpuId::new(0), GpuId::new(1)), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        let _ = Topology::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn fully_connected_is_all_one_hop() {
        let t = Topology::fully_connected(4);
        for i in 0..4u8 {
            for j in 0..4u8 {
                if i != j {
                    assert_eq!(t.nvlink_hops(GpuId::new(i), GpuId::new(j)), Some(1));
                }
            }
        }
    }
}
