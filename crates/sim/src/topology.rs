//! NVLink/PCIe interconnect topology: link objects, hop distances and
//! deterministic shortest-path routing.
//!
//! The DGX-1 connects its eight P100s in a *hybrid cube-mesh* (paper
//! Fig. 1): two fully connected quads `{0,1,2,3}` and `{4,5,6,7}`, plus one
//! NVLink between corresponding members of each quad (`i ↔ i+4`). Every
//! GPU additionally reaches every other GPU through PCIe via the host.
//!
//! # Links vs. hop distances
//!
//! A [`Topology`] exposes the interconnect at two altitudes:
//!
//! - **Hop distances** ([`Topology::nvlink_hops`], [`Topology::route`]):
//!   the all-pairs BFS distance over NVLink edges. This is what the
//!   latency model consumes — a remote access from `hops` away pays
//!   `hops × nvlink_hop` extra cycles regardless of *which* links it
//!   crosses. PR 1/PR 2 modelled the interconnect at this altitude only.
//! - **Link objects** ([`LinkId`], [`Topology::path`],
//!   [`Topology::link_between`]): every undirected NVLink edge is a
//!   first-class, identifiable resource. [`Topology::path`] resolves the
//!   concrete shortest link sequence a request traverses, which the
//!   [`crate::fabric::Fabric`] turns into a timed queueing model with
//!   per-link bandwidth and occupancy — the substrate of the paper's
//!   NVLink-congestion covert channel.
//!
//! # Routing policy
//!
//! Paths are precomputed once per topology and are **deterministic** and
//! **symmetric by construction**: for each unordered pair `{a, b}` one
//! canonical shortest path is computed from the lower-numbered endpoint
//! (greedy descent on the BFS distance field, breaking ties towards the
//! lowest-numbered neighbour), and the `b → a` direction reuses the same
//! link sequence reversed. Both directions of a transfer therefore
//! occupy exactly the same physical links, as on the real machine, and
//! routing never consults an RNG — simulations stay reproducible.
//!
//! GPU pairs with no NVLink path fall back to PCIe through the host root
//! complex ([`LinkKind::Pcie`]); whether processes may *map* memory across
//! such routes is a policy question owned by
//! [`crate::config::SystemConfig::allow_indirect_peer`].

use crate::address::GpuId;
use serde::{Deserialize, Serialize};

/// Kind of transport a route uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// Same-GPU access: no interconnect traversal at all.
    Local,
    /// NVLink connection (possibly multi-hop through peer GPUs).
    NvLink,
    /// PCIe through the host root complex.
    Pcie,
}

/// Identifier of one undirected NVLink edge of a [`Topology`] — an index
/// into its canonical edge list (see [`Topology::link_endpoints`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The link id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A resolved route between two GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// Transport used.
    pub kind: LinkKind,
    /// Number of NVLink hops (0 for a local access, meaningless for PCIe).
    pub hops: u32,
}

impl Route {
    /// The trivial local route (same GPU): [`LinkKind::Local`], zero hops.
    pub fn local() -> Self {
        Route {
            kind: LinkKind::Local,
            hops: 0,
        }
    }
}

/// An undirected multi-GPU interconnect graph with precomputed routes.
///
/// Serialization covers only the defining data (node count + canonical
/// edge list); deserialization rebuilds every derived table through
/// [`Topology::from_edges`], so adjacency, distances and paths can never
/// be inconsistent with the edge list in a loaded config.
#[derive(Debug, Clone)]
pub struct Topology {
    n: u8,
    /// Adjacency matrix of direct NVLink edges.
    adj: Vec<Vec<bool>>,
    /// All-pairs NVLink hop distance (`u32::MAX` when unreachable).
    dist: Vec<Vec<u32>>,
    /// Canonical edge list `(a, b)` with `a < b`; defines [`LinkId`].
    edges: Vec<(u8, u8)>,
    /// `link_of[a][b]`: the link id of the direct edge `{a, b}`, if any.
    link_of: Vec<Vec<Option<u32>>>,
    /// Flattened canonical shortest paths, indexed through `path_span`.
    paths: Vec<LinkId>,
    /// Traversal direction per entry of `paths`: `true` when the hop
    /// crosses its link from the higher-numbered endpoint towards the
    /// lower (the *reverse* of the link's canonical `a → b` orientation).
    path_dirs: Vec<bool>,
    /// `(offset, len)` into `paths` for ordered pair `src * n + dst`.
    path_span: Vec<(u32, u32)>,
}

impl Serialize for Topology {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("n".to_string(), self.n.to_value()),
            ("edges".to_string(), self.edges.to_value()),
        ])
    }
}

impl Deserialize for Topology {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let n = u8::from_value(v.field("n")?)?;
        let edges = Vec::<(u8, u8)>::from_value(v.field("edges")?)?;
        for &(a, b) in &edges {
            if a >= n || b >= n || a == b {
                return Err(serde::Error::msg(format!(
                    "invalid edge ({a},{b}) for a {n}-GPU topology"
                )));
            }
        }
        Ok(Topology::from_edges(n, &edges))
    }
}

impl Topology {
    /// Builds a topology from a node count and an undirected edge list.
    /// Duplicate edges (in either orientation) collapse to one link.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node `>= n` or is a self-loop.
    pub fn from_edges(n: u8, edges: &[(u8, u8)]) -> Self {
        let nn = n as usize;
        let mut adj = vec![vec![false; nn]; nn];
        let mut link_of = vec![vec![None; nn]; nn];
        let mut canonical = Vec::new();
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range for {n} GPUs");
            assert!(a != b, "edge ({a},{b}) is a self-loop");
            if adj[a as usize][b as usize] {
                continue; // duplicate
            }
            adj[a as usize][b as usize] = true;
            adj[b as usize][a as usize] = true;
            let id = canonical.len() as u32;
            canonical.push((a.min(b), a.max(b)));
            link_of[a as usize][b as usize] = Some(id);
            link_of[b as usize][a as usize] = Some(id);
        }
        let dist = Self::all_pairs(&adj);
        let (paths, path_dirs, path_span) = Self::all_paths(nn, &dist, &adj, &link_of);
        Topology {
            n,
            adj,
            dist,
            edges: canonical,
            link_of,
            paths,
            path_dirs,
            path_span,
        }
    }

    /// The DGX-1 hybrid cube-mesh over 8 GPUs (paper Fig. 1).
    pub fn dgx1() -> Self {
        let mut edges = Vec::new();
        // Two fully connected quads.
        for base in [0u8, 4u8] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        // Cross links between the quads.
        for i in 0..4u8 {
            edges.push((i, i + 4));
        }
        Topology::from_edges(8, &edges)
    }

    /// A fully connected NVLink clique over `n` GPUs (useful for tests and
    /// for modelling NVSwitch-style boxes).
    pub fn fully_connected(n: u8) -> Self {
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push((i, j));
            }
        }
        Topology::from_edges(n, &edges)
    }

    fn all_pairs(adj: &[Vec<bool>]) -> Vec<Vec<u32>> {
        let n = adj.len();
        let mut dist = vec![vec![u32::MAX; n]; n];
        for (s, row) in dist.iter_mut().enumerate() {
            // BFS from s.
            row[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                for v in 0..n {
                    if adj[u][v] && row[v] == u32::MAX {
                        row[v] = row[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        dist
    }

    /// Precomputes one canonical shortest link path per ordered pair.
    ///
    /// For `a < b` the path descends greedily on the distance-to-`b`
    /// field (lowest-numbered neighbour wins ties); the `b → a` entry is
    /// the same link sequence reversed, so routing is symmetric.
    fn all_paths(
        n: usize,
        dist: &[Vec<u32>],
        adj: &[Vec<bool>],
        link_of: &[Vec<Option<u32>>],
    ) -> (Vec<LinkId>, Vec<bool>, Vec<(u32, u32)>) {
        let mut paths = Vec::new();
        let mut dirs = Vec::new();
        let mut span = vec![(0u32, 0u32); n * n];
        for a in 0..n {
            for b in (a + 1)..n {
                if dist[a][b] == u32::MAX {
                    continue; // unreachable: PCIe, no link path
                }
                let start = paths.len() as u32;
                let mut u = a;
                while u != b {
                    let next = (0..n)
                        .find(|&v| adj[u][v] && dist[v][b] == dist[u][b] - 1)
                        .expect("BFS distance field must admit a descent step");
                    paths.push(LinkId(link_of[u][next].expect("adjacent nodes share a link")));
                    dirs.push(u > next);
                    u = next;
                }
                let len = paths.len() as u32 - start;
                span[a * n + b] = (start, len);
                // Reverse direction: same links, reversed order, each hop
                // crossed the opposite way.
                let rstart = paths.len() as u32;
                for k in (0..len).rev() {
                    paths.push(paths[(start + k) as usize]);
                    dirs.push(!dirs[(start + k) as usize]);
                }
                span[b * n + a] = (rstart, len);
            }
        }
        (paths, dirs, span)
    }

    /// Number of GPUs in the topology.
    pub fn num_gpus(&self) -> u8 {
        self.n
    }

    /// Number of NVLink edges (valid [`LinkId`]s are `0..num_links`).
    pub fn num_links(&self) -> usize {
        self.edges.len()
    }

    /// The two GPUs a link connects (lower id first), if the link exists.
    pub fn link_endpoints(&self, l: LinkId) -> Option<(GpuId, GpuId)> {
        self.edges
            .get(l.index())
            .map(|&(a, b)| (GpuId::new(a), GpuId::new(b)))
    }

    /// The link directly connecting `a` and `b`, if any.
    pub fn link_between(&self, a: GpuId, b: GpuId) -> Option<LinkId> {
        self.link_of[a.index()][b.index()].map(LinkId)
    }

    /// Whether `a` and `b` share a direct NVLink.
    pub fn direct_nvlink(&self, a: GpuId, b: GpuId) -> bool {
        a != b && self.adj[a.index()][b.index()]
    }

    /// NVLink hop distance between two GPUs, if reachable over NVLink.
    pub fn nvlink_hops(&self, a: GpuId, b: GpuId) -> Option<u32> {
        let d = self.dist[a.index()][b.index()];
        (d != u32::MAX).then_some(d)
    }

    /// The canonical shortest link sequence from `src` to `dst`: empty for
    /// local accesses and for pairs with no NVLink path (PCIe fallback).
    /// `path(a, b)` is always `path(b, a)` reversed, and its length equals
    /// [`Topology::nvlink_hops`].
    pub fn path(&self, src: GpuId, dst: GpuId) -> &[LinkId] {
        let (off, len) = self.path_span[src.index() * self.n as usize + dst.index()];
        &self.paths[off as usize..(off + len) as usize]
    }

    /// Per-hop traversal directions aligned with [`Topology::path`]:
    /// `false` when hop `i` crosses its link in the canonical `a → b`
    /// orientation (lower endpoint towards higher), `true` for the
    /// opposite way. `path_dirs(a, b)` is `path_dirs(b, a)` reversed and
    /// negated, since the return route crosses the same links backwards.
    pub fn path_dirs(&self, src: GpuId, dst: GpuId) -> &[bool] {
        let (off, len) = self.path_span[src.index() * self.n as usize + dst.index()];
        &self.path_dirs[off as usize..(off + len) as usize]
    }

    /// Resolves the route used for an access from `src` to memory homed on
    /// `dst`: local on the same GPU, NVLink if reachable, PCIe otherwise.
    pub fn route(&self, src: GpuId, dst: GpuId) -> Route {
        if src == dst {
            return Route::local();
        }
        match self.nvlink_hops(src, dst) {
            Some(h) => Route {
                kind: LinkKind::NvLink,
                hops: h,
            },
            None => Route {
                kind: LinkKind::Pcie,
                hops: 0,
            },
        }
    }

    /// The valiant intermediate for the `counter`-th line of ordered
    /// pair `(src, dst)` under `seed`: a GPU `w ∉ {src, dst}` with
    /// NVLink paths `src → w` and `w → dst`, chosen deterministically
    /// from the splitmix64 stream indexed by `(seed, src, dst,
    /// counter)`. Returns `None` when the pair is local, has no NVLink
    /// route, or the graph admits no intermediate (e.g. 2-GPU boxes) —
    /// the caller then falls back to the canonical path.
    ///
    /// This is the routing half of the valiant/MIN defence
    /// ([`crate::qos::RoutingPolicy::Valiant`]): the full detour is the
    /// concatenation [`Topology::path`]`(src, w)` ‖
    /// [`Topology::path`]`(w, dst)`, so every hop is still a real link
    /// walk — property-tested in `tests/proptests.rs`.
    pub fn valiant_intermediate(
        &self,
        src: GpuId,
        dst: GpuId,
        seed: u64,
        counter: u64,
    ) -> Option<GpuId> {
        if src == dst || self.nvlink_hops(src, dst).is_none() {
            return None;
        }
        let valid = |w: u8| {
            let g = GpuId::new(w);
            g != src
                && g != dst
                && self.nvlink_hops(src, g).is_some()
                && self.nvlink_hops(g, dst).is_some()
        };
        let count = (0..self.n).filter(|&w| valid(w)).count() as u64;
        if count == 0 {
            return None;
        }
        let pair = (src.index() * self.n as usize + dst.index()) as u64;
        let h = crate::qos::splitmix64(
            seed ^ pair.wrapping_mul(0xA24B_AED4_963E_E407)
                ^ counter.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let k = h % count;
        (0..self.n).filter(|&w| valid(w)).nth(k as usize).map(GpuId::new)
    }

    /// Recomputes routing over the surviving graph after removing
    /// `failed` links: the returned topology keeps the original
    /// canonical edge list (so [`LinkId`] numbering — and everything
    /// indexed by it, fabric occupancy windows and per-link stats —
    /// stays stable) but drops the failed links from adjacency,
    /// distances and precomputed paths. GPU pairs the failures
    /// partition end up with [`Topology::nvlink_hops`] `== None`, an
    /// empty [`Topology::path`] and a [`LinkKind::Pcie`] route, exactly
    /// like natively unreachable pairs. Out-of-range ids in `failed`
    /// are ignored. Used by [`crate::fault`] to build one routing table
    /// per fault epoch.
    #[must_use]
    pub fn excluding_links(&self, failed: &[LinkId]) -> Topology {
        let mut adj = self.adj.clone();
        let mut link_of = self.link_of.clone();
        for &l in failed {
            if let Some(&(a, b)) = self.edges.get(l.index()) {
                adj[a as usize][b as usize] = false;
                adj[b as usize][a as usize] = false;
                link_of[a as usize][b as usize] = None;
                link_of[b as usize][a as usize] = None;
            }
        }
        let dist = Self::all_pairs(&adj);
        let (paths, path_dirs, path_span) = Self::all_paths(self.n as usize, &dist, &adj, &link_of);
        Topology {
            n: self.n,
            adj,
            dist,
            edges: self.edges.clone(),
            link_of,
            paths,
            path_dirs,
            path_span,
        }
    }

    /// Iterates over the direct NVLink peers of `g`.
    pub fn peers(&self, g: GpuId) -> impl Iterator<Item = GpuId> + '_ {
        let gi = g.index();
        (0..self.n)
            .filter(move |&j| self.adj[gi][j as usize])
            .map(GpuId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgx1_every_gpu_has_four_links() {
        let t = Topology::dgx1();
        for g in 0..8u8 {
            let deg = t.peers(GpuId::new(g)).count();
            assert_eq!(deg, 4, "GPU{g} should have 4 NVLinks");
        }
    }

    #[test]
    fn dgx1_has_sixteen_links() {
        // 2 quads × 6 intra-quad edges + 4 cross edges.
        let t = Topology::dgx1();
        assert_eq!(t.num_links(), 16);
        for l in 0..16u32 {
            let (a, b) = t.link_endpoints(LinkId(l)).unwrap();
            assert!(a < b, "endpoints are canonical (lower id first)");
            assert_eq!(t.link_between(a, b), Some(LinkId(l)));
            assert_eq!(t.link_between(b, a), Some(LinkId(l)));
        }
        assert!(t.link_endpoints(LinkId(16)).is_none());
    }

    #[test]
    fn dgx1_intra_quad_is_one_hop() {
        let t = Topology::dgx1();
        assert_eq!(t.nvlink_hops(GpuId::new(0), GpuId::new(3)), Some(1));
        assert_eq!(t.nvlink_hops(GpuId::new(5), GpuId::new(7)), Some(1));
    }

    #[test]
    fn dgx1_cross_quad_corresponding_is_one_hop() {
        let t = Topology::dgx1();
        for i in 0..4u8 {
            assert_eq!(t.nvlink_hops(GpuId::new(i), GpuId::new(i + 4)), Some(1));
        }
    }

    #[test]
    fn dgx1_cross_quad_non_corresponding_is_two_hops() {
        let t = Topology::dgx1();
        // 0 and 5 are in different quads and not corresponding: 0-1-5 or 0-4-5.
        assert_eq!(t.nvlink_hops(GpuId::new(0), GpuId::new(5)), Some(2));
        assert!(!t.direct_nvlink(GpuId::new(0), GpuId::new(5)));
    }

    #[test]
    fn local_route_is_zero_hops_and_not_nvlink() {
        let t = Topology::dgx1();
        let r = t.route(GpuId::new(2), GpuId::new(2));
        assert_eq!(r, Route::local());
        assert_eq!(r.kind, LinkKind::Local);
        assert!(t.path(GpuId::new(2), GpuId::new(2)).is_empty());
    }

    #[test]
    fn paths_are_shortest_and_symmetric() {
        let t = Topology::dgx1();
        for a in 0..8u8 {
            for b in 0..8u8 {
                let (ga, gb) = (GpuId::new(a), GpuId::new(b));
                let p = t.path(ga, gb);
                if a == b {
                    assert!(p.is_empty());
                    continue;
                }
                assert_eq!(p.len() as u32, t.nvlink_hops(ga, gb).unwrap());
                let mut rev: Vec<LinkId> = t.path(gb, ga).to_vec();
                rev.reverse();
                assert_eq!(p, &rev[..], "path({a},{b}) must mirror path({b},{a})");
            }
        }
    }

    #[test]
    fn path_dirs_mirror_the_walk() {
        let t = Topology::dgx1();
        for a in 0..8u8 {
            for b in 0..8u8 {
                let (ga, gb) = (GpuId::new(a), GpuId::new(b));
                let p = t.path(ga, gb);
                let d = t.path_dirs(ga, gb);
                assert_eq!(p.len(), d.len());
                // Walking the path with the direction bits lands on b.
                let mut u = ga;
                for (l, &rev) in p.iter().zip(d) {
                    let (lo, hi) = t.link_endpoints(*l).unwrap();
                    let (from, to) = if rev { (hi, lo) } else { (lo, hi) };
                    assert_eq!(u, from, "hop must leave the current GPU");
                    u = to;
                }
                if !p.is_empty() {
                    assert_eq!(u, gb, "path({a},{b}) must arrive at {b}");
                }
                // Reverse route: same links backwards, directions negated.
                let rd: Vec<bool> = t.path_dirs(gb, ga).iter().map(|&x| !x).rev().collect();
                assert_eq!(d, &rd[..]);
            }
        }
    }

    #[test]
    fn dgx1_two_hop_path_goes_through_lowest_peer() {
        // Canonical path for {0, 5}: greedy from 0 picks GPU1 (lowest
        // neighbour one hop from 5), so the links are (0,1) then (1,5).
        let t = Topology::dgx1();
        let p = t.path(GpuId::new(0), GpuId::new(5));
        assert_eq!(p.len(), 2);
        assert_eq!(
            t.link_endpoints(p[0]).unwrap(),
            (GpuId::new(0), GpuId::new(1))
        );
        assert_eq!(
            t.link_endpoints(p[1]).unwrap(),
            (GpuId::new(1), GpuId::new(5))
        );
    }

    #[test]
    fn disconnected_gpus_fall_back_to_pcie() {
        // Two GPUs, no NVLink edges at all.
        let t = Topology::from_edges(2, &[]);
        let r = t.route(GpuId::new(0), GpuId::new(1));
        assert_eq!(r.kind, LinkKind::Pcie);
        assert_eq!(t.nvlink_hops(GpuId::new(0), GpuId::new(1)), None);
        assert!(t.path(GpuId::new(0), GpuId::new(1)).is_empty());
        assert_eq!(t.num_links(), 0);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let t = Topology::from_edges(3, &[(0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(t.num_links(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        let _ = Topology::from_edges(2, &[(0, 5)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let _ = Topology::from_edges(2, &[(1, 1)]);
    }

    #[test]
    fn serde_round_trip_rebuilds_derived_tables() {
        let t = Topology::dgx1();
        let back = Topology::from_value(&t.to_value()).unwrap();
        assert_eq!(back.num_links(), t.num_links());
        for a in 0..8u8 {
            for b in 0..8u8 {
                let (ga, gb) = (GpuId::new(a), GpuId::new(b));
                assert_eq!(back.path(ga, gb), t.path(ga, gb));
                assert_eq!(back.nvlink_hops(ga, gb), t.nvlink_hops(ga, gb));
            }
        }
    }

    #[test]
    fn deserialize_rejects_invalid_edges() {
        let v = serde::Value::Object(vec![
            ("n".to_string(), 2u8.to_value()),
            ("edges".to_string(), vec![(0u8, 5u8)].to_value()),
        ]);
        assert!(Topology::from_value(&v).is_err());
        let v = serde::Value::Object(vec![
            ("n".to_string(), 2u8.to_value()),
            ("edges".to_string(), vec![(1u8, 1u8)].to_value()),
        ]);
        assert!(Topology::from_value(&v).is_err(), "self-loop rejected");
    }

    #[test]
    fn valiant_intermediate_is_valid_and_deterministic() {
        let t = Topology::dgx1();
        for a in 0..8u8 {
            for b in 0..8u8 {
                let (ga, gb) = (GpuId::new(a), GpuId::new(b));
                for counter in 0..8u64 {
                    let w = t.valiant_intermediate(ga, gb, 42, counter);
                    if a == b {
                        assert_eq!(w, None, "local pairs never detour");
                        continue;
                    }
                    let w = w.expect("DGX-1 always admits an intermediate");
                    assert_ne!(w, ga);
                    assert_ne!(w, gb);
                    assert!(t.nvlink_hops(ga, w).is_some());
                    assert!(t.nvlink_hops(w, gb).is_some());
                    assert_eq!(
                        t.valiant_intermediate(ga, gb, 42, counter),
                        Some(w),
                        "same (seed, pair, counter) must pick the same GPU"
                    );
                }
            }
        }
    }

    #[test]
    fn valiant_intermediate_spreads_over_candidates() {
        let t = Topology::dgx1();
        let picks: std::collections::HashSet<_> = (0..64)
            .filter_map(|c| t.valiant_intermediate(GpuId::new(0), GpuId::new(5), 1, c))
            .collect();
        // {0,5} admits 6 candidates; 64 draws should hit most of them.
        assert!(picks.len() >= 4, "stream must spread the load: {picks:?}");
    }

    #[test]
    fn valiant_intermediate_none_without_candidates() {
        // Two GPUs, one link: no third GPU to detour through.
        let t = Topology::from_edges(2, &[(0, 1)]);
        assert_eq!(t.valiant_intermediate(GpuId::new(0), GpuId::new(1), 9, 0), None);
        // Disconnected pair: no NVLink route at all.
        let t = Topology::from_edges(3, &[(0, 1)]);
        assert_eq!(t.valiant_intermediate(GpuId::new(0), GpuId::new(2), 9, 0), None);
        // A 0-1-2 line: GPU1 is the only possible intermediate for {0,2}.
        let t = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        for c in 0..8 {
            assert_eq!(
                t.valiant_intermediate(GpuId::new(0), GpuId::new(2), 9, c),
                Some(GpuId::new(1))
            );
        }
    }

    #[test]
    fn excluding_links_reroutes_and_keeps_link_numbering() {
        let t = Topology::dgx1();
        // Fail both links of the canonical 0-1-5 path: (0,1) and (1,5).
        let l01 = t.link_between(GpuId::new(0), GpuId::new(1)).unwrap();
        let l15 = t.link_between(GpuId::new(1), GpuId::new(5)).unwrap();
        let s = t.excluding_links(&[l01, l15]);
        // Link ids and endpoints are unchanged — only routing moved.
        assert_eq!(s.num_links(), t.num_links());
        for l in 0..16u32 {
            assert_eq!(s.link_endpoints(LinkId(l)), t.link_endpoints(LinkId(l)));
        }
        assert_eq!(s.link_between(GpuId::new(0), GpuId::new(1)), None);
        assert!(!s.direct_nvlink(GpuId::new(0), GpuId::new(1)));
        // {0,5} still routes in 2 hops, now avoiding the failed links.
        assert_eq!(s.nvlink_hops(GpuId::new(0), GpuId::new(5)), Some(2));
        let p = s.path(GpuId::new(0), GpuId::new(5));
        assert_eq!(p.len(), 2);
        assert!(!p.contains(&l01) && !p.contains(&l15));
        // {0,1} reroutes around its dead direct link.
        assert_eq!(s.nvlink_hops(GpuId::new(0), GpuId::new(1)), Some(2));
        // The original topology is untouched.
        assert_eq!(t.nvlink_hops(GpuId::new(0), GpuId::new(1)), Some(1));
    }

    #[test]
    fn excluding_links_partitions_to_pcie() {
        // A 0-1-2 line: failing (0,1) cuts GPU0 off.
        let t = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let s = t.excluding_links(&[LinkId(0)]);
        assert_eq!(s.nvlink_hops(GpuId::new(0), GpuId::new(1)), None);
        assert_eq!(s.nvlink_hops(GpuId::new(0), GpuId::new(2)), None);
        assert!(s.path(GpuId::new(0), GpuId::new(2)).is_empty());
        assert_eq!(s.route(GpuId::new(0), GpuId::new(2)).kind, LinkKind::Pcie);
        // The surviving half still routes over NVLink.
        assert_eq!(s.nvlink_hops(GpuId::new(1), GpuId::new(2)), Some(1));
        assert_eq!(s.path(GpuId::new(1), GpuId::new(2)), &[LinkId(1)]);
        // Out-of-range failures are ignored.
        let u = t.excluding_links(&[LinkId(99)]);
        assert_eq!(u.path(GpuId::new(0), GpuId::new(2)), t.path(GpuId::new(0), GpuId::new(2)));
    }

    #[test]
    fn fully_connected_is_all_one_hop() {
        let t = Topology::fully_connected(4);
        for i in 0..4u8 {
            for j in 0..4u8 {
                if i != j {
                    assert_eq!(t.nvlink_hops(GpuId::new(i), GpuId::new(j)), Some(1));
                }
            }
        }
    }
}
