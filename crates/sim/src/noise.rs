//! Background-noise agents (Sec. VI of the paper).
//!
//! In a real deployment other tenants' kernels touch the shared L2. A
//! [`NoiseAgent`] models such a tenant: it sweeps random lines of its own
//! buffer at a configurable duty cycle, evicting attacker/victim lines and
//! corrupting channel bits. The mitigation (saturating SM resources so the
//! noise kernel cannot launch) is modelled in `gpubox-attacks::mitigation`.

use crate::address::VirtAddr;
use crate::engine::{Agent, Op, OpResult, ProbeStage};
use crate::system::ProcessId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration of a background noise tenant.
#[derive(Debug, Clone)]
pub struct NoiseConfig {
    /// Accesses per burst.
    pub burst_len: u32,
    /// Idle cycles between bursts (0 = continuous hammering).
    pub idle_between_bursts: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            burst_len: 32,
            idle_between_bursts: 20_000,
            seed: 7,
        }
    }
}

/// An agent that touches random lines of a buffer forever (until the
/// engine deadline stops it).
#[derive(Debug)]
pub struct NoiseAgent {
    pid: ProcessId,
    base: VirtAddr,
    lines: u64,
    line_size: u64,
    cfg: NoiseConfig,
    rng: ChaCha8Rng,
    in_burst: u32,
    /// When false, the agent emits only `Compute` ops — the state a
    /// mitigated (un-launchable) noise kernel is in.
    active: bool,
}

impl NoiseAgent {
    /// Creates a noise tenant over `[base, base + lines*line_size)`.
    pub fn new(
        pid: ProcessId,
        base: VirtAddr,
        lines: u64,
        line_size: u64,
        cfg: NoiseConfig,
    ) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        NoiseAgent {
            pid,
            base,
            lines,
            line_size,
            cfg,
            rng,
            in_burst: 0,
            active: true,
        }
    }

    /// Disables memory traffic (the kernel could not launch — Sec. VI
    /// mitigation in effect).
    pub fn deactivate(&mut self) {
        self.active = false;
    }

    /// Whether the tenant is generating memory traffic.
    pub fn is_active(&self) -> bool {
        self.active
    }
}

impl Agent for NoiseAgent {
    fn next_op(&mut self, _now: u64, _stage: &mut ProbeStage) -> Op {
        if !self.active {
            return Op::Compute(self.cfg.idle_between_bursts.max(1));
        }
        if self.in_burst < self.cfg.burst_len {
            self.in_burst += 1;
            let line = self.rng.gen_range(0..self.lines);
            return Op::Load(self.base.offset(line * self.line_size));
        }
        self.in_burst = 0;
        Op::Compute(self.cfg.idle_between_bursts.max(1))
    }

    fn on_result(&mut self, _res: &OpResult<'_>) {}

    fn process(&self) -> ProcessId {
        self.pid
    }

    fn label(&self) -> &str {
        "noise"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::GpuId;
    use crate::config::SystemConfig;
    use crate::engine::Engine;
    use crate::system::MultiGpuSystem;

    #[test]
    fn noise_generates_l2_traffic() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let p = sys.create_process(GpuId::new(0));
        let buf = sys.malloc_on(p, GpuId::new(0), 64 * 1024).unwrap();
        let agent = NoiseAgent::new(p, buf, 512, 128, NoiseConfig::default());
        let mut eng = Engine::new(&mut sys);
        eng.add_agent(Box::new(agent), 0);
        eng.run(2_000_000).unwrap();
        assert!(sys.stats().total().issued_accesses > 50);
    }

    #[test]
    fn deactivated_noise_is_silent() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let p = sys.create_process(GpuId::new(0));
        let buf = sys.malloc_on(p, GpuId::new(0), 64 * 1024).unwrap();
        let mut agent = NoiseAgent::new(p, buf, 512, 128, NoiseConfig::default());
        agent.deactivate();
        assert!(!agent.is_active());
        let mut eng = Engine::new(&mut sys);
        eng.add_agent(Box::new(agent), 0);
        eng.run(2_000_000).unwrap();
        assert_eq!(sys.stats().total().issued_accesses, 0);
    }
}
