//! Fabric QoS & defence layer: per-tenant link rate limiting, traffic
//! shaping and valiant routing.
//!
//! The timed link fabric ([`crate::fabric`]) gave the paper's second
//! channel family its physical medium: a bandwidth trojan saturating one
//! NVLink link is observable to any tenant whose route shares it. This
//! module is the *defence side* of that loop — the interconnect analogue
//! of the Sec. VII MIG-style L2 partitioning (`ext_partition_defense`),
//! evaluated head-to-head against both channel families by
//! `ext_fabric_defense`. Three mechanisms, all composed into
//! [`crate::fabric::Fabric`] and all **off by default** (a
//! [`QosConfig::off`] fabric is bit-identical to the PR 3/PR 4 model):
//!
//! # Defence taxonomy
//!
//! - **Per-tenant token-bucket rate limiting**
//!   ([`RateLimitConfig`]): every `(ProcessId, link[, direction])` pair
//!   owns a refillable byte budget (bucket capacity `burst_bytes`,
//!   sustained refill `rate_bytes_per_kcycle`). A traversal with
//!   insufficient credit is *deterministically delayed to the refill
//!   horizon* — the cycle at which the bucket has accumulated exactly
//!   the missing credit. This caps what any single tenant can push
//!   through a link **sustained** while leaving short benign bursts
//!   (which fit the bucket) untouched: a bandwidth trojan needs
//!   *sustained* saturation, so a sub-saturation sustained rate starves
//!   the channel at near-zero benign cost. Shaped-vs-passed bytes and
//!   the added delay land in [`crate::stats::QosStats`].
//! - **Traffic shaping** ([`TrafficShaping`]): transforms *when* link
//!   grants happen rather than how many. [`TrafficShaping::Pace`]
//!   quantises every grant up to a fixed epoch boundary, so the latency
//!   a spy observes measures its phase relative to the epoch grid
//!   instead of the trojan's slot structure; [`TrafficShaping::Jitter`]
//!   perturbs every grant by a seeded pseudo-random delay (a splitmix64
//!   stream — deterministic and reproducible, no system RNG consumed),
//!   drowning the queue-wait signal in first-party noise. Both destroy
//!   the slot structure the covert protocol needs rather than capping
//!   throughput.
//! - **Valiant routing** ([`RoutingPolicy::Valiant`]): instead of the
//!   canonical shortest path, each remote line is routed through a
//!   deterministic per-`(src, dst, counter)` intermediate GPU
//!   ([`crate::topology::Topology::valiant_intermediate`]), the classic
//!   Valiant load-balancing scheme of MIN fabrics. A trojan's traffic
//!   then spreads across many links instead of saturating one
//!   end-to-end, and the spy's own per-line route (and therefore hop
//!   count) varies pseudo-randomly — both halves of the congestion
//!   channel lose their shared single-link rendezvous.
//!
//! # Determinism and cost
//!
//! Like the fabric itself, the QoS layer consumes **no system RNG**
//! (jitter and valiant picks come from counter-indexed splitmix64
//! streams, bit-reproducible across schedulers) and performs **no
//! steady-state allocation**: token buckets are preallocated per
//! process at [`crate::MultiGpuSystem::create_process`] time and valiant
//! counters are a fixed `n²` table (asserted by the counting-allocator
//! suite in `tests/alloc_free.rs`). Defences can be deployed at runtime
//! through [`crate::MultiGpuSystem::set_qos`] — the
//! "defence switched on after the attacker calibrated" scenario — or
//! baked into [`crate::fabric::FabricConfig::with_qos`] so the offline
//! attack phase re-derives its thresholds under the defence.

use crate::address::GpuId;
use crate::stats::QosStats;
use crate::system::ProcessId;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// Per-tenant token-bucket budget on every link (direction).
///
/// A tenant may burst up to `burst_bytes` at full link speed; sustained
/// throughput beyond `rate_bytes_per_kcycle` is deterministically
/// delayed to the refill horizon. NVLink-V1 moves ~12.8 B/cycle per
/// link, i.e. ~13_100 bytes per 1024 cycles at full tilt — a limit of
/// 1_280 B/kcycle confines one tenant to ~10% of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RateLimitConfig {
    /// Sustained refill rate in bytes per 1024 cycles (must be ≥ 1).
    pub rate_bytes_per_kcycle: u64,
    /// Bucket capacity in bytes: the largest burst served at link speed.
    pub burst_bytes: u64,
}

/// How link grant times are shaped (independent of *how much* traffic a
/// tenant may send — that is [`RateLimitConfig`]'s job).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TrafficShaping {
    /// Grants start as soon as the link is free (the undefended fabric).
    #[default]
    Off,
    /// Grants are quantised up to the next multiple of `epoch_cycles`:
    /// a spy's transfer latency then measures its own phase against the
    /// epoch grid, not the trojan's slot structure.
    Pace {
        /// Epoch length in cycles (must be ≥ 1).
        epoch_cycles: u64,
    },
    /// Every grant is delayed by a seeded pseudo-random amount in
    /// `[0, span_cycles)` (counter-indexed splitmix64 — deterministic,
    /// no system RNG): first-party timing noise injected at the link.
    Jitter {
        /// Exclusive upper bound of the per-grant delay (must be ≥ 1).
        span_cycles: u64,
        /// Seed of the jitter stream.
        seed: u64,
    },
}

/// How remote accesses are routed over the NVLink graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RoutingPolicy {
    /// The canonical precomputed shortest paths of
    /// [`Topology::path`] (the PR 3 behaviour).
    #[default]
    Canonical,
    /// Valiant load balancing: each line detours through an
    /// intermediate GPU chosen deterministically per
    /// `(src, dst, counter)` from the seed
    /// ([`Topology::valiant_intermediate`]), so no single physical link
    /// can be saturated end-to-end by one traffic pattern.
    Valiant {
        /// Seed of the intermediate-selection stream.
        seed: u64,
    },
}

/// Which `(tenant, link)` pairs the rate-limit / shaping pipeline
/// applies to, as a pair of bitmasks (bit *i* covers `ProcessId(i)` /
/// `LinkId(i)` for *i* < 64; ids ≥ 64 are always in scope).
///
/// The default is all-ones — QoS applies everywhere, reproducing the
/// PR 5 always-on behaviour bit-for-bit. The online monitor's
/// detect-then-throttle response narrows the scope to alarmed links
/// ([`crate::monitor::Monitor::alarmed_links`]) so benign traffic on
/// clean links pays nothing. Valiant routing is deliberately *not*
/// scoped: a detour decision is per-line and pid-agnostic, and
/// rescoping it would change path selection for every tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QosScope {
    /// Bitmask of throttled tenants (`ProcessId` index).
    pub tenants: u64,
    /// Bitmask of throttled links (`LinkId` index).
    pub links: u64,
}

impl Default for QosScope {
    fn default() -> Self {
        QosScope::all()
    }
}

impl QosScope {
    /// Every tenant on every link — the always-on PR 5 scope.
    pub fn all() -> Self {
        QosScope {
            tenants: u64::MAX,
            links: u64::MAX,
        }
    }

    /// All tenants, but only the links set in `mask` — the shape the
    /// responsive defence deploys from a monitor's alarm mask.
    pub fn links_mask(mask: u64) -> Self {
        QosScope {
            tenants: u64::MAX,
            links: mask,
        }
    }

    /// Whether this is the unrestricted (default) scope.
    pub fn is_all(&self) -> bool {
        self.tenants == u64::MAX && self.links == u64::MAX
    }

    /// Whether QoS applies to `pid` traversing `link`.
    #[inline]
    pub fn covers(&self, pid: crate::system::ProcessId, link: crate::topology::LinkId) -> bool {
        let t = u64::from(pid.0);
        let l = u64::from(link.0);
        (t >= 64 || self.tenants & (1u64 << t) != 0) && (l >= 64 || self.links & (1u64 << l) != 0)
    }
}

/// The complete QoS/defence configuration of the fabric; every
/// component defaults to *off*, which reproduces the undefended fabric
/// bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct QosConfig {
    /// Per-tenant token-bucket link rate limiting (`None` = unlimited).
    pub rate_limit: Option<RateLimitConfig>,
    /// Link grant-time shaping.
    pub shaping: TrafficShaping,
    /// Remote-access routing policy.
    pub routing: RoutingPolicy,
    /// Which `(tenant, link)` pairs rate limiting and shaping apply
    /// to; defaults to everything.
    pub scope: QosScope,
}

impl QosConfig {
    /// No QoS at all: the undefended PR 3/PR 4 fabric.
    pub fn off() -> Self {
        QosConfig::default()
    }

    /// Whether any QoS component is active.
    pub fn enabled(&self) -> bool {
        self.rate_limit.is_some()
            || self.shaping != TrafficShaping::Off
            || self.routing != RoutingPolicy::Canonical
    }

    /// Adds per-tenant token-bucket rate limiting (builder-style).
    #[must_use]
    pub fn with_rate_limit(mut self, rate_bytes_per_kcycle: u64, burst_bytes: u64) -> Self {
        self.rate_limit = Some(RateLimitConfig {
            rate_bytes_per_kcycle,
            burst_bytes,
        });
        self
    }

    /// Quantises link grants to fixed epochs (builder-style).
    #[must_use]
    pub fn with_pacing(mut self, epoch_cycles: u64) -> Self {
        self.shaping = TrafficShaping::Pace { epoch_cycles };
        self
    }

    /// Adds seeded grant-time jitter (builder-style).
    #[must_use]
    pub fn with_jitter(mut self, span_cycles: u64, seed: u64) -> Self {
        self.shaping = TrafficShaping::Jitter { span_cycles, seed };
        self
    }

    /// Routes remote accesses through valiant intermediates
    /// (builder-style).
    #[must_use]
    pub fn with_valiant(mut self, seed: u64) -> Self {
        self.routing = RoutingPolicy::Valiant { seed };
        self
    }

    /// Restricts rate limiting / shaping to a `(tenant, link)` scope
    /// (builder-style). See [`QosScope`].
    #[must_use]
    pub fn with_scope(mut self, scope: QosScope) -> Self {
        self.scope = scope;
        self
    }

    /// Checks the configuration for degenerate parameters (zero rate,
    /// epoch or span — each would divide by zero on the hot path).
    /// [`crate::MultiGpuSystem::set_qos`] rejects invalid configs with
    /// an error; constructing a [`crate::fabric::Fabric`] from one
    /// panics.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), &'static str> {
        if let Some(r) = &self.rate_limit {
            if r.rate_bytes_per_kcycle == 0 {
                return Err("rate limit needs a positive rate");
            }
        }
        match self.shaping {
            TrafficShaping::Pace { epoch_cycles: 0 } => Err("pacing needs a positive epoch"),
            TrafficShaping::Jitter { span_cycles: 0, .. } => Err("jitter needs a positive span"),
            _ => Ok(()),
        }
    }
}

/// SplitMix64: the one-shot mixer behind the QoS layer's deterministic
/// pseudo-random streams (grant jitter, valiant intermediate picks).
/// Chosen over the system RNG so QoS never shifts the seeded
/// jitter/placement stream and stays bit-identical across schedulers.
#[inline]
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One tenant's credit on one link window, in *byte-kilocycles*
/// (`bytes << 10`), so refill arithmetic is exact integer math.
#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    /// Remaining credit, `bytes << 10`.
    credit: u64,
    /// Cycle the credit was last brought current.
    last: u64,
}

/// Runtime token-bucket state: one bucket per `(process, link window)`.
#[derive(Debug, Clone)]
struct RateState {
    /// Refill rate: credit (byte-kilocycles) per cycle — numerically
    /// equal to bytes per 1024 cycles.
    rate: u64,
    /// Bucket capacity in credit units (`burst_bytes << 10`).
    capacity: u64,
    /// Link windows per process (links × 1 or 2 directions).
    windows: usize,
    /// `process * windows + window`, grown by [`QosState::register_process`].
    buckets: Vec<TokenBucket>,
}

impl RateState {
    /// Earliest cycle a `bytes`-sized grant for `pid` on window `w` may
    /// start, consuming the credit; records pass/shape statistics.
    ///
    /// `b.last` is the bucket's refill frontier and is **monotone**: a
    /// line arriving while a previous line's refill horizon is still
    /// pending (`t < b.last` — exactly what a warp-wide batch's
    /// gap-spaced issue times produce) accrues no credit for the
    /// overlap and serialises *behind* that horizon, so consecutive
    /// over-budget lines are released one refill period apart and the
    /// sustained throughput is genuinely capped at `rate` — not merely
    /// offset by a constant first-line delay.
    #[inline]
    fn admit(&mut self, pid: ProcessId, w: usize, t: u64, bytes: u64, qs: &mut QosStats) -> u64 {
        let idx = pid.0 as usize * self.windows + w;
        let b = &mut self.buckets[idx];
        let now = t.max(b.last);
        if now > b.last {
            b.credit = self
                .capacity
                .min(b.credit.saturating_add((now - b.last).saturating_mul(self.rate)));
            b.last = now;
        }
        let cost = bytes << 10;
        if b.credit >= cost {
            b.credit -= cost;
            if now > t {
                // Credit exists only as of the refill frontier: the
                // line queues in the regulator until then.
                qs.shaped_bytes += bytes;
                qs.throttle_delay_cycles += now - t;
            } else {
                qs.passed_bytes += bytes;
            }
            now
        } else {
            let need = cost - b.credit;
            let wait = need.div_ceil(self.rate);
            // The remainder of the last refill tick carries over, so
            // long-run throughput is exactly `rate`.
            b.credit = wait * self.rate - need;
            b.last = now + wait;
            qs.shaped_bytes += bytes;
            qs.throttle_delay_cycles += now + wait - t;
            now + wait
        }
    }
}

/// Valiant-routing runtime state: the per-ordered-pair access counters
/// that index the intermediate-selection stream.
#[derive(Debug, Clone)]
struct ValiantState {
    seed: u64,
    n: usize,
    /// `src * n + dst` access counters.
    counters: Vec<u64>,
}

/// Runtime QoS state owned by [`crate::fabric::Fabric`]; constructed
/// from a [`QosConfig`], inert when everything is off.
#[derive(Debug, Clone)]
pub(crate) struct QosState {
    rate: Option<RateState>,
    shaping: TrafficShaping,
    /// Grant counter indexing the jitter stream.
    jitter_counter: u64,
    valiant: Option<ValiantState>,
}

impl QosState {
    /// Builds the runtime state for a topology with `windows` link
    /// occupancy windows (links × directions).
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (zero rate, epoch or span) —
    /// they would mean division by zero on the hot path.
    pub(crate) fn new(cfg: &QosConfig, topo: &Topology, windows: usize) -> Self {
        if let Err(reason) = cfg.validate() {
            panic!("{reason}");
        }
        QosState {
            rate: cfg.rate_limit.map(|r| RateState {
                rate: r.rate_bytes_per_kcycle,
                capacity: r.burst_bytes << 10,
                windows,
                buckets: Vec::new(),
            }),
            shaping: cfg.shaping,
            jitter_counter: 0,
            valiant: match cfg.routing {
                RoutingPolicy::Canonical => None,
                RoutingPolicy::Valiant { seed } => Some(ValiantState {
                    seed,
                    n: topo.num_gpus() as usize,
                    counters: vec![0; (topo.num_gpus() as usize).pow(2)],
                }),
            },
        }
    }

    /// Registers one more process: its token buckets start full (a
    /// fresh tenant may burst immediately). Called from
    /// [`crate::MultiGpuSystem::create_process`] — the one allocation
    /// site, outside the engine's steady-state loop.
    pub(crate) fn register_process(&mut self) {
        if let Some(rs) = &mut self.rate {
            rs.buckets.extend(std::iter::repeat_n(
                TokenBucket {
                    credit: rs.capacity,
                    last: 0,
                },
                rs.windows,
            ));
        }
    }

    /// Resets all transient state for a new engine run (buckets back to
    /// full at cycle 0, jitter and valiant streams rewound).
    pub(crate) fn reset(&mut self) {
        if let Some(rs) = &mut self.rate {
            for b in &mut rs.buckets {
                *b = TokenBucket {
                    credit: rs.capacity,
                    last: 0,
                };
            }
        }
        self.jitter_counter = 0;
        if let Some(v) = &mut self.valiant {
            for c in &mut v.counters {
                *c = 0;
            }
        }
    }

    /// The token-bucket **delivery horizon** for a `bytes`-sized line of
    /// `pid` on window `w` arriving at `t` (≥ `t`; equal when in
    /// budget). The bucket is a *flow regulator*: an over-budget line
    /// is re-paced to this horizon and crosses in the link's spare
    /// capacity there — it neither holds the link while waiting for
    /// credit nor books an occupancy window other tenants could queue
    /// behind (see [`crate::fabric::Fabric::traverse`]), so a throttled
    /// tenant self-clocks down to the sustained rate without starving
    /// anyone else. Statistics land in `qs`.
    #[inline]
    pub(crate) fn delivery_horizon(
        &mut self,
        pid: ProcessId,
        w: usize,
        t: u64,
        bytes: u64,
        qs: &mut QosStats,
    ) -> u64 {
        match &mut self.rate {
            Some(rs) => rs.admit(pid, w, t, bytes, qs),
            None => t,
        }
    }

    /// The shaped **grant time** for a line arriving at the link at
    /// `t`: epoch quantisation or seeded jitter of when the link may
    /// start serving it. Bounded by the epoch/span, so unlike the
    /// token-bucket horizon it acts on the grant itself.
    #[inline]
    pub(crate) fn shaped_grant(&mut self, t: u64, qs: &mut QosStats) -> u64 {
        match self.shaping {
            TrafficShaping::Off => t,
            TrafficShaping::Pace { epoch_cycles } => {
                let t2 = t.div_ceil(epoch_cycles) * epoch_cycles;
                qs.pacing_delay_cycles += t2 - t;
                t2
            }
            TrafficShaping::Jitter { span_cycles, seed } => {
                let j = splitmix64(seed ^ self.jitter_counter) % span_cycles;
                self.jitter_counter += 1;
                qs.jitter_delay_cycles += j;
                t + j
            }
        }
    }

    /// Picks (and consumes one counter tick of) the valiant
    /// intermediate for a `src → dst` line; `None` when routing is
    /// canonical or the topology admits no intermediate.
    #[inline]
    pub(crate) fn valiant_pick(&mut self, topo: &Topology, src: GpuId, dst: GpuId) -> Option<GpuId> {
        let v = self.valiant.as_mut()?;
        let idx = src.index() * v.n + dst.index();
        let counter = v.counters[idx];
        v.counters[idx] += 1;
        topo.valiant_intermediate(src, dst, v.seed, counter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo2() -> Topology {
        Topology::from_edges(2, &[(0, 1)])
    }

    fn state(cfg: &QosConfig, procs: usize) -> QosState {
        let topo = topo2();
        let mut s = QosState::new(cfg, &topo, topo.num_links());
        for _ in 0..procs {
            s.register_process();
        }
        s
    }

    #[test]
    fn off_config_releases_immediately_and_counts_nothing() {
        let mut s = state(&QosConfig::off(), 1);
        let mut qs = QosStats::default();
        assert_eq!(s.delivery_horizon(ProcessId(0), 0, 1234, 128, &mut qs), 1234);
        assert_eq!(s.shaped_grant(1234, &mut qs), 1234);
        assert_eq!(qs, QosStats::default(), "no bookkeeping without QoS");
        assert!(!QosConfig::off().enabled());
    }

    #[test]
    fn bucket_passes_bursts_and_shapes_sustained_traffic() {
        // 128 B/kcycle sustained, 256 B burst.
        let cfg = QosConfig::off().with_rate_limit(128, 256);
        assert!(cfg.enabled());
        let mut s = state(&cfg, 1);
        let mut qs = QosStats::default();
        // Two lines fit the initial burst: immediate.
        assert_eq!(s.delivery_horizon(ProcessId(0), 0, 0, 128, &mut qs), 0);
        assert_eq!(s.delivery_horizon(ProcessId(0), 0, 0, 128, &mut qs), 0);
        // The third has no credit: delivered a full line's refill time
        // later (128 B at 128 B/kcycle = 1024 cycles).
        assert_eq!(s.delivery_horizon(ProcessId(0), 0, 0, 128, &mut qs), 1024);
        assert_eq!(qs.passed_bytes, 256);
        assert_eq!(qs.shaped_bytes, 128);
        assert_eq!(qs.throttle_delay_cycles, 1024);
        // After a long idle the bucket is full again (but not fuller).
        assert_eq!(
            s.delivery_horizon(ProcessId(0), 0, 1_000_000, 256, &mut qs),
            1_000_000
        );
        assert_eq!(
            s.delivery_horizon(ProcessId(0), 0, 1_000_000, 128, &mut qs),
            1_001_024
        );
    }

    #[test]
    fn bucket_serialises_overlapping_horizons() {
        // A warp-wide batch issues lines a few cycles apart — each
        // arriving before the previous line's refill horizon. The
        // releases must stack one full refill period (128 B at
        // 128 B/kcycle = 1024 cycles) apart, capping the sustained
        // rate, not merely offsetting every line by a constant.
        let cfg = QosConfig::off().with_rate_limit(128, 0);
        let mut s = state(&cfg, 1);
        let mut qs = QosStats::default();
        for (i, t) in [0u64, 4, 8, 12].into_iter().enumerate() {
            assert_eq!(
                s.delivery_horizon(ProcessId(0), 0, t, 128, &mut qs),
                1024 * (i as u64 + 1),
                "line {i} must queue behind the previous refill horizon"
            );
        }
        assert_eq!(qs.shaped_bytes, 4 * 128);
        // And the frontier never moves backwards: a later arrival
        // still lands after the last horizon.
        assert_eq!(s.delivery_horizon(ProcessId(0), 0, 100, 128, &mut qs), 5 * 1024);
    }

    #[test]
    fn buckets_are_per_process_and_per_window() {
        let cfg = QosConfig::off().with_rate_limit(128, 128);
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let mut s = QosState::new(&cfg, &topo, topo.num_links());
        s.register_process();
        s.register_process();
        let mut qs = QosStats::default();
        // Process 0 drains window 0; process 1 and window 1 are intact.
        assert_eq!(s.delivery_horizon(ProcessId(0), 0, 0, 128, &mut qs), 0);
        assert_eq!(s.delivery_horizon(ProcessId(0), 0, 0, 128, &mut qs), 1024);
        assert_eq!(s.delivery_horizon(ProcessId(1), 0, 0, 128, &mut qs), 0);
        assert_eq!(s.delivery_horizon(ProcessId(0), 1, 10, 128, &mut qs), 10);
    }

    #[test]
    fn pacing_rounds_up_to_epoch_boundaries() {
        let cfg = QosConfig::off().with_pacing(500);
        let mut s = state(&cfg, 1);
        let mut qs = QosStats::default();
        assert_eq!(s.shaped_grant(0, &mut qs), 0);
        assert_eq!(s.shaped_grant(1, &mut qs), 500);
        assert_eq!(s.shaped_grant(500, &mut qs), 500);
        assert_eq!(s.shaped_grant(777, &mut qs), 1000);
        assert_eq!(qs.pacing_delay_cycles, 499 + 223);
    }

    #[test]
    fn jitter_is_bounded_seeded_and_deterministic() {
        let cfg = QosConfig::off().with_jitter(400, 99);
        let run = || {
            let mut s = state(&cfg, 1);
            let mut qs = QosStats::default();
            let d: Vec<u64> = (0..64)
                .map(|i| s.shaped_grant(i * 1000, &mut qs) - i * 1000)
                .collect();
            (d, qs.jitter_delay_cycles)
        };
        let (a, total) = run();
        assert!(a.iter().all(|&d| d < 400), "jitter within span");
        assert!(a.iter().any(|&d| d > 0), "jitter non-trivial");
        assert_eq!(a.iter().sum::<u64>(), total);
        assert_eq!(a, run().0, "same seed, same stream");
        let other = QosConfig::off().with_jitter(400, 100);
        let mut s = state(&other, 1);
        let mut qs = QosStats::default();
        let b: Vec<u64> = (0..64)
            .map(|i| s.shaped_grant(i * 1000, &mut qs) - i * 1000)
            .collect();
        assert_ne!(a, b, "different seeds, different streams");
    }

    #[test]
    fn reset_refills_buckets_and_rewinds_streams() {
        let cfg = QosConfig::off().with_rate_limit(128, 128);
        let mut s = state(&cfg, 1);
        let mut qs = QosStats::default();
        s.delivery_horizon(ProcessId(0), 0, 0, 128, &mut qs);
        assert_eq!(s.delivery_horizon(ProcessId(0), 0, 0, 128, &mut qs), 1024);
        s.reset();
        assert_eq!(
            s.delivery_horizon(ProcessId(0), 0, 0, 128, &mut qs),
            0,
            "full after reset"
        );
    }

    #[test]
    fn valiant_pick_consumes_the_pair_counter() {
        let topo = Topology::dgx1();
        let cfg = QosConfig::off().with_valiant(7);
        let mut s = QosState::new(&cfg, &topo, topo.num_links());
        let (a, b) = (GpuId::new(0), GpuId::new(5));
        let picks: Vec<Option<GpuId>> = (0..16).map(|_| s.valiant_pick(&topo, a, b)).collect();
        // Deterministic replay from counter 0 after reset.
        s.reset();
        let again: Vec<Option<GpuId>> = (0..16).map(|_| s.valiant_pick(&topo, a, b)).collect();
        assert_eq!(picks, again);
        // The stream actually varies the intermediate.
        let distinct: std::collections::HashSet<_> = picks.iter().flatten().collect();
        assert!(distinct.len() >= 2, "picks spread over intermediates: {picks:?}");
    }

    #[test]
    #[should_panic(expected = "positive rate")]
    fn zero_rate_is_rejected() {
        let cfg = QosConfig::off().with_rate_limit(0, 128);
        let topo = topo2();
        let _ = QosState::new(&cfg, &topo, 1);
    }

    #[test]
    fn serde_round_trip() {
        use serde::{Deserialize as _, Serialize as _};
        for cfg in [
            QosConfig::off(),
            QosConfig::off().with_rate_limit(1280, 4096),
            QosConfig::off().with_pacing(3000),
            QosConfig::off().with_jitter(2000, 11),
            QosConfig::off().with_valiant(5).with_rate_limit(640, 2048),
        ] {
            let back = QosConfig::from_value(&cfg.to_value()).unwrap();
            assert_eq!(back, cfg);
        }
    }
}
