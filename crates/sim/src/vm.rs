//! Per-process virtual address spaces and NUMA page placement.
//!
//! The DGX-1 presents a unified address space in which any virtual page may
//! be backed by any GPU's HBM (paper Sec. III-A). A process allocates a
//! buffer *on* a chosen GPU (`cudaMalloc` on that device, or a peer
//! allocation); each page gets a random frame in that GPU's memory.

use crate::address::{GpuId, PageNumber, PhysAddr, PhysLoc, VirtAddr};
use crate::error::{SimError, SimResult};
use std::collections::HashMap;

/// Where one virtual page lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mapping {
    /// Home GPU (whose L2 caches this page).
    pub gpu: GpuId,
    /// Physical frame base address within that GPU's HBM.
    pub frame_base: PhysAddr,
}

/// One process's page table and VA allocator.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    page_size: u64,
    next_va: u64,
    table: HashMap<u64, Mapping>,
}

impl AddressSpace {
    /// Creates an empty address space with the driver's page size.
    pub fn new(page_size: u64) -> Self {
        // Start away from 0 so a null VirtAddr is always unmapped.
        AddressSpace {
            page_size,
            next_va: page_size,
            table: HashMap::new(),
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Reserves `num_pages` contiguous virtual pages and returns the base
    /// address. The caller supplies the physical frames (one per page).
    pub fn map_region(&mut self, frames: &[(GpuId, PhysAddr)]) -> VirtAddr {
        let base = self.next_va;
        for (i, &(gpu, frame_base)) in frames.iter().enumerate() {
            let vpn = base / self.page_size + i as u64;
            self.table.insert(vpn, Mapping { gpu, frame_base });
        }
        self.next_va += frames.len() as u64 * self.page_size;
        VirtAddr(base)
    }

    /// Translates a virtual address to its physical location.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnmappedAddress`] for addresses outside any
    /// allocation.
    #[inline]
    pub fn translate(&self, va: VirtAddr) -> SimResult<PhysLoc> {
        let vpn = va.0 / self.page_size;
        let off = va.0 % self.page_size;
        let m = self.table.get(&vpn).ok_or(SimError::UnmappedAddress(va))?;
        Ok(PhysLoc {
            gpu: m.gpu,
            addr: PhysAddr(m.frame_base.0 + off),
        })
    }

    /// Looks up the mapping of one virtual page number directly.
    ///
    /// Batched access paths translate once per page and derive line
    /// addresses by offset instead of paying a table lookup per access.
    #[inline]
    pub fn lookup_page(&self, vpn: u64) -> Option<Mapping> {
        self.table.get(&vpn).copied()
    }

    /// The page number containing `va`.
    pub fn page_of(&self, va: VirtAddr) -> PageNumber {
        PageNumber(va.0 / self.page_size)
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.table.len()
    }

    /// Iterates over all mappings as `(page, mapping)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PageNumber, Mapping)> + '_ {
        self.table.iter().map(|(&vpn, &m)| (PageNumber(vpn), m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        AddressSpace::new(4096)
    }

    #[test]
    fn translate_round_trips_offsets() {
        let mut s = space();
        let base = s.map_region(&[(GpuId::new(0), PhysAddr(0x8000))]);
        let loc = s.translate(base.offset(136)).unwrap();
        assert_eq!(loc.gpu, GpuId::new(0));
        assert_eq!(loc.addr, PhysAddr(0x8000 + 136));
    }

    #[test]
    fn unmapped_address_errors() {
        let s = space();
        assert!(matches!(
            s.translate(VirtAddr(0x100)),
            Err(SimError::UnmappedAddress(_))
        ));
    }

    #[test]
    fn regions_are_va_contiguous_but_pa_scattered() {
        let mut s = space();
        let frames = vec![
            (GpuId::new(1), PhysAddr(0x10_0000)),
            (GpuId::new(1), PhysAddr(0x42_0000)),
        ];
        let base = s.map_region(&frames);
        let a = s.translate(base).unwrap();
        let b = s.translate(base.offset(4096)).unwrap();
        assert_eq!(a.addr, PhysAddr(0x10_0000));
        assert_eq!(b.addr, PhysAddr(0x42_0000));
        assert_eq!(s.mapped_pages(), 2);
    }

    #[test]
    fn successive_regions_do_not_overlap() {
        let mut s = space();
        let a = s.map_region(&[(GpuId::new(0), PhysAddr(0))]);
        let b = s.map_region(&[(GpuId::new(0), PhysAddr(4096))]);
        assert_ne!(a, b);
        assert_eq!(b.0 - a.0, 4096);
    }

    #[test]
    fn pages_can_home_on_different_gpus() {
        let mut s = space();
        let base = s.map_region(&[
            (GpuId::new(0), PhysAddr(0x1000)),
            (GpuId::new(3), PhysAddr(0x2000)),
        ]);
        assert_eq!(s.translate(base).unwrap().gpu, GpuId::new(0));
        assert_eq!(s.translate(base.offset(4096)).unwrap().gpu, GpuId::new(3));
    }

    #[test]
    fn null_va_is_unmapped() {
        let mut s = space();
        s.map_region(&[(GpuId::new(0), PhysAddr(0))]);
        assert!(s.translate(VirtAddr(0)).is_err());
    }
}
