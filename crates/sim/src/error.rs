//! Simulator error type.

use crate::address::{GpuId, VirtAddr};
use std::fmt;

/// Errors returned by the simulator's public API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A virtual address was accessed that no allocation covers.
    UnmappedAddress(VirtAddr),
    /// The referenced GPU does not exist in this system.
    NoSuchGpu(GpuId),
    /// The referenced process does not exist.
    NoSuchProcess(u32),
    /// Peer access to `remote` was attempted before
    /// [`crate::system::MultiGpuSystem::enable_peer_access`], mirroring the
    /// CUDA runtime error.
    PeerAccessNotEnabled {
        /// The GPU whose memory was touched without peer access.
        remote: GpuId,
    },
    /// Peer access was requested between GPUs with no direct NVLink, which
    /// the DGX-1 runtime refuses (paper Sec. III-A).
    PeerAccessUnavailable {
        /// GPU issuing the request.
        from: GpuId,
        /// Target GPU.
        to: GpuId,
    },
    /// The GPU's HBM is exhausted.
    OutOfMemory(GpuId),
    /// A kernel launch asked for more resources than the GPU has free
    /// (used by the Sec. VI mitigation model).
    InsufficientSmResources,
    /// An allocation size was zero or not representable.
    InvalidAllocation(u64),
    /// An operation requires the timed link fabric
    /// ([`crate::fabric::FabricConfig::enabled`]) but the system was
    /// booted with it off — e.g. the NVLink-congestion covert channel,
    /// which has no physical medium under the scalar interconnect model.
    FabricDisabled,
    /// A [`crate::topology::LinkId`] does not name a link of this
    /// system's topology.
    NoSuchLink(u32),
    /// A [`crate::qos::QosConfig`] carried a degenerate parameter
    /// (zero rate, epoch or span); the message names it.
    InvalidQosConfig(&'static str),
    /// A [`crate::fault::FaultPlan`] carried a degenerate parameter
    /// (empty fault window, inert multiplier, bad stall rate); the
    /// message names it.
    InvalidFaultPlan(&'static str),
    /// A scheduled link failure ([`crate::fault::LinkDown`]) has
    /// partitioned the requester from the target GPU and the fault plan
    /// refuses the PCIe root-complex fallback
    /// ([`crate::fault::FaultPlan::without_pcie_fallback`]); carries the
    /// lowest-numbered link down in the current fault epoch.
    LinkDown(u32),
    /// [`crate::engine::Engine::run`] detected a livelocked step: agents
    /// kept dispatching zero-duration operations without ever advancing
    /// the simulated clock ([`crate::engine::LIVELOCK_THRESHOLD`]
    /// consecutive times); carries the stuck cycle.
    Livelocked {
        /// The simulated cycle the engine was stuck at.
        at: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnmappedAddress(va) => write!(f, "unmapped virtual address {va}"),
            SimError::NoSuchGpu(g) => write!(f, "no such gpu {g}"),
            SimError::NoSuchProcess(p) => write!(f, "no such process {p}"),
            SimError::PeerAccessNotEnabled { remote } => {
                write!(f, "peer access to {remote} not enabled")
            }
            SimError::PeerAccessUnavailable { from, to } => {
                write!(
                    f,
                    "peer access unavailable between {from} and {to} (no direct nvlink)"
                )
            }
            SimError::OutOfMemory(g) => write!(f, "out of memory on {g}"),
            SimError::InsufficientSmResources => {
                write!(f, "insufficient sm resources for kernel launch")
            }
            SimError::InvalidAllocation(sz) => write!(f, "invalid allocation size {sz}"),
            SimError::FabricDisabled => {
                write!(f, "operation requires the timed link fabric (fabric.enabled)")
            }
            SimError::NoSuchLink(l) => write!(f, "no such nvlink link {l}"),
            SimError::InvalidQosConfig(reason) => write!(f, "invalid qos config: {reason}"),
            SimError::InvalidFaultPlan(reason) => write!(f, "invalid fault plan: {reason}"),
            SimError::LinkDown(l) => write!(
                f,
                "nvlink link {l} is down and the pcie fallback is refused"
            ),
            SimError::Livelocked { at } => write!(
                f,
                "engine livelocked at cycle {at}: no agent advances the clock"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience result alias used across the simulator.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<SimError> = vec![
            SimError::UnmappedAddress(VirtAddr(0x10)),
            SimError::NoSuchGpu(GpuId::new(9)),
            SimError::NoSuchProcess(3),
            SimError::PeerAccessNotEnabled {
                remote: GpuId::new(1),
            },
            SimError::PeerAccessUnavailable {
                from: GpuId::new(0),
                to: GpuId::new(5),
            },
            SimError::OutOfMemory(GpuId::new(0)),
            SimError::InsufficientSmResources,
            SimError::InvalidAllocation(0),
            SimError::FabricDisabled,
            SimError::NoSuchLink(99),
            SimError::InvalidQosConfig("rate limit needs a positive rate"),
            SimError::InvalidFaultPlan("link outage must recover after it begins"),
            SimError::LinkDown(4),
            SimError::Livelocked { at: 1234 },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
