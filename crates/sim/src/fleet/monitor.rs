//! Fleet health layer: per-node [`Monitor`]s folded into fleet-wide
//! alarm streams through the [`MetricSet`] merge machinery.
//!
//! A fleet operator does not read one node's detector state — they
//! read a dashboard: *which tenants look suspicious, how long does
//! detection take across the fleet, how many nodes are alarmed*. The
//! [`FleetMonitor`] owns one streaming [`Monitor`] per node, attributes
//! node alarms to the tenants resident on that node (per-tenant
//! suspicion scores — a tenant co-resident with every alarm is the
//! likely trojan or spy), aggregates time-to-detection into a
//! [`LogHistogram`](crate::telemetry::LogHistogram), and folds all of
//! it into one mergeable [`MetricSet`] via [`FleetMonitor::fold`].
//!
//! The fold obeys the same law as the fleet exposure accumulator:
//! folding per-node exports is exactly the merge of the nodes'
//! individual exports, and a single-node fleet fed a window stream in
//! chunks is bit-identical to a standalone [`Monitor`] fed the same
//! stream in one pass (`tests/monitor_proptests.rs`).

use crate::monitor::{Monitor, MonitorConfig};
use crate::stats::SystemStats;
use crate::telemetry::MetricSet;

use super::arrivals::TenantId;

/// Per-node streaming detectors plus fleet-level attribution state.
#[derive(Debug)]
pub struct FleetMonitor {
    nodes: Vec<Monitor>,
    /// True once the node's alarms were attributed (one attribution
    /// per node: the residents at first-alarm time are the suspects).
    attributed: Vec<bool>,
    /// Per-tenant suspicion: number of node alarms the tenant was
    /// resident for, weighted by the node's alarm-window count at
    /// attribution time.
    suspicion: Vec<u64>,
}

impl FleetMonitor {
    /// Builds a fleet monitor for `nodes` identical nodes (each with
    /// `num_links` links and `num_gpus` GPUs) tracking suspicion for
    /// tenant ids below `max_tenants`.
    pub fn new(
        cfg: MonitorConfig,
        nodes: usize,
        num_links: usize,
        num_gpus: usize,
        max_tenants: usize,
    ) -> Self {
        FleetMonitor {
            nodes: (0..nodes)
                .map(|_| Monitor::new(cfg.clone(), num_links, num_gpus))
                .collect(),
            attributed: vec![false; nodes],
            suspicion: vec![0; max_tenants],
        }
    }

    /// Number of nodes under watch.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node's own monitor (e.g. to [`Monitor::prime`] it after
    /// node warm-up, or to read its alarm mask for a scoped-QoS
    /// response on that node).
    pub fn node(&self, node: usize) -> &Monitor {
        &self.nodes[node]
    }

    /// Mutable access to a node's monitor.
    pub fn node_mut(&mut self, node: usize) -> &mut Monitor {
        &mut self.nodes[node]
    }

    /// Feeds one window of `node`'s cumulative stats and attributes
    /// any *new* alarm to the tenants currently resident on that node.
    /// Allocation-free in steady state.
    pub fn observe_node(&mut self, node: usize, stats: &SystemStats, residents: &[TenantId]) {
        self.nodes[node].observe(stats);
        if self.nodes[node].alarmed() && !self.attributed[node] {
            self.attributed[node] = true;
            for t in residents {
                if let Some(s) = self.suspicion.get_mut(t.0 as usize) {
                    *s += 1;
                }
            }
        }
    }

    /// Suspicion score of a tenant: how many alarmed nodes it was
    /// resident on at first-alarm time.
    pub fn suspicion(&self, t: TenantId) -> u64 {
        self.suspicion.get(t.0 as usize).copied().unwrap_or(0)
    }

    /// Number of nodes with at least one latched alarm.
    pub fn nodes_alarmed(&self) -> usize {
        self.nodes.iter().filter(|n| n.alarmed()).count()
    }

    /// Folds every node's detector export plus the fleet-level
    /// attribution counters into one mergeable [`MetricSet`]. Folding
    /// is a pure merge: `fold(a ∪ b) == fold(a).merge(fold(b))` for a
    /// node partition, the law `tests/monitor_proptests.rs` pins.
    pub fn fold(&self) -> MetricSet {
        let mut m = MetricSet::new();
        for n in &self.nodes {
            n.export_into(&mut m);
        }
        m.add("fleet.nodes", self.nodes.len() as u64);
        m.add("fleet.nodes_alarmed", self.nodes_alarmed() as u64);
        for (i, &s) in self.suspicion.iter().enumerate() {
            if s > 0 {
                m.add(&format!("fleet.suspicion.tenant{i}"), s);
            }
        }
        m
    }

    /// Resets every node monitor and all attribution state.
    pub fn reset(&mut self) {
        for n in &mut self.nodes {
            n.reset();
        }
        self.attributed.fill(false);
        self.suspicion.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkId;

    fn cfg() -> MonitorConfig {
        MonitorConfig {
            warmup_windows: 8,
            ring_windows: 16,
            ..MonitorConfig::default()
        }
    }

    #[test]
    fn alarms_attribute_to_resident_tenants() {
        let mut fm = FleetMonitor::new(cfg(), 2, 1, 0, 8);
        let mut s0 = SystemStats::new(1, 1);
        let mut s1 = SystemStats::new(1, 1);
        let quiet = [TenantId(0), TenantId(1)];
        let noisy = [TenantId(2), TenantId(3)];
        for i in 0..60u64 {
            s0.link_mut(LinkId(0)).busy_cycles += 300;
            s1.link_mut(LinkId(0)).busy_cycles += if i < 40 { 300 } else { 40_000 };
            fm.observe_node(0, &s0, &quiet);
            fm.observe_node(1, &s1, &noisy);
        }
        assert_eq!(fm.nodes_alarmed(), 1);
        assert_eq!(fm.suspicion(TenantId(0)), 0);
        assert_eq!(fm.suspicion(TenantId(2)), 1);
        assert_eq!(fm.suspicion(TenantId(3)), 1);
        let folded = fm.fold();
        assert_eq!(folded.counter("fleet.nodes"), 2);
        assert_eq!(folded.counter("fleet.nodes_alarmed"), 1);
        assert_eq!(folded.counter("fleet.suspicion.tenant2"), 1);
        assert_eq!(folded.counter("monitor.windows"), 120);
    }

    #[test]
    fn fold_equals_merge_of_node_exports() {
        let mut fm = FleetMonitor::new(cfg(), 3, 1, 1, 4);
        let mut stats: Vec<SystemStats> = (0..3).map(|_| SystemStats::new(1, 1)).collect();
        for i in 0..50u64 {
            for (n, s) in stats.iter_mut().enumerate() {
                s.link_mut(LinkId(0)).busy_cycles += 200 + 100 * n as u64;
                if n == 2 && i >= 30 {
                    s.link_mut(LinkId(0)).busy_cycles += 30_000;
                }
                fm.observe_node(n, s, &[TenantId(n as u32)]);
            }
        }
        let mut manual = MetricSet::new();
        for n in 0..3 {
            fm.node(n).export_into(&mut manual);
        }
        let folded = fm.fold();
        for (name, v) in manual.counters() {
            assert_eq!(folded.counter(name), v, "counter {name} diverged in fold");
        }
    }

    #[test]
    fn reset_clears_attribution() {
        let mut fm = FleetMonitor::new(cfg(), 1, 1, 0, 4);
        let mut s = SystemStats::new(1, 1);
        for i in 0..60u64 {
            s.link_mut(LinkId(0)).busy_cycles += if i < 40 { 300 } else { 40_000 };
            fm.observe_node(0, &s, &[TenantId(1)]);
        }
        assert_eq!(fm.suspicion(TenantId(1)), 1);
        fm.reset();
        assert_eq!(fm.suspicion(TenantId(1)), 0);
        assert_eq!(fm.nodes_alarmed(), 0);
        assert_eq!(fm.fold().counter("monitor.windows"), 0);
    }
}
