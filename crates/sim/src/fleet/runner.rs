//! The shared-nothing [`FleetRunner`]: a pool of `MultiGpuSystem` nodes
//! stepped independently to each epoch horizon, with work-stealing
//! fan-out over node horizons and allocation-free node pooling. See the
//! fleet module doc for the determinism contract.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::Serialize;

use super::arrivals::{ArrivalConfig, ArrivalStream, JobSpec};
use super::indexed_draw;
use super::placement::{JobTag, Occupancy, PlacementPolicy, SlotAddr};
use crate::address::{GpuId, VirtAddr};
use crate::config::SystemConfig;
use crate::stats::SystemStats;
use crate::system::{AgentId, MultiGpuSystem, ProcessId};
use crate::telemetry::{LogHistogram, MetricSet};
use crate::topology::Topology;

const SALT_NODE: u64 = 0xC1;
const SALT_JOB: u64 = 0xC2;

/// Measured L2 Prime+Probe covert-channel goodput (`ext_two_hop_channel`,
/// Table 4 reproduction) used to convert co-residency windows into
/// frames-leaked exposure.
pub const L2_CHANNEL_BYTES_PER_SEC: f64 = 94_000.0;
/// Measured link-congestion covert-channel goodput (same source).
pub const LINK_CHANNEL_BYTES_PER_SEC: f64 = 28_600.0;
/// One resilient-transport frame on the wire: 32-bit payload plus
/// sequence/CRC framing.
pub const FRAME_BYTES: f64 = 8.0;

/// Per-slot job buffers: pages of node HBM each job's probe batches
/// land in (one local buffer on the home GPU, one remote buffer on a
/// link neighbour).
const FLEET_BUF_PAGES: u64 = 16;

/// How a node picks the next slot to step: a linear scan over slots or
/// a binary heap keyed `(next event time, slot)`. Both implement the
/// same total order and are asserted bit-identical (`Heap` wins once
/// slots-per-node grows; at DGX scale the scan is competitive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetScheduler {
    /// O(slots) scan per event.
    Linear,
    /// O(log slots) reusable binary min-heap per event.
    Heap,
}

/// Everything a fleet run depends on. Two runs with equal configs are
/// bit-identical regardless of `threads` (see the module determinism
/// contract) — `threads` deliberately feeds no seed.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Node count (each node is one independent `MultiGpuSystem`).
    pub nodes: u32,
    /// Per-node system config; every node is identical up to its seed.
    pub node: SystemConfig,
    /// The open-loop request front-end.
    pub arrivals: ArrivalConfig,
    /// Fleet-global cycle horizon the run simulates to.
    pub horizon: u64,
    /// Epoch length: placement happens at epoch boundaries, nodes are
    /// stepped one epoch at a time.
    pub epoch: u64,
    /// Probe lines per job batch (warp).
    pub probe_lines: u32,
    /// Minimum think time between a job's batches, in cycles.
    pub think_min: u64,
    /// Uniform extra think time drawn per batch, in cycles.
    pub think_spread: u64,
    /// Every `n`-th batch targets the job's remote (link-neighbour)
    /// buffer; 0 disables remote traffic.
    pub remote_every: u32,
    /// Intra-node slot scheduling discipline.
    pub scheduler: FleetScheduler,
    /// Worker threads stepping nodes (1 = fully serial).
    pub threads: usize,
    /// Master seed: node seeds, job keys and policy streams derive from
    /// it by counter-indexed splitmix64.
    pub seed: u64,
    /// Maintain a second, per-node `MetricSet` fold for the
    /// fold-equals-total gate (allocates at fold points; leave off in
    /// allocation-sensitive runs).
    pub verify_fold: bool,
}

impl FleetConfig {
    /// A fleet of `nodes` 4-GPU ring nodes under the default workload.
    pub fn new(nodes: u32, seed: u64) -> Self {
        FleetConfig {
            nodes,
            node: FleetConfig::ring_node_config(),
            arrivals: ArrivalConfig::default_workload(seed ^ 0x5EED),
            horizon: 4_000_000,
            epoch: 50_000,
            probe_lines: 16,
            think_min: 1_500,
            think_spread: 2_000,
            remote_every: 4,
            scheduler: FleetScheduler::Linear,
            threads: 1,
            seed,
            verify_fold: false,
        }
    }

    /// The standard fleet node: a 4-GPU NVLink ring (every GPU has two
    /// link neighbours — the co-residency surface), small L2s for fast
    /// stepping, noiseless timing, fabric off.
    pub fn ring_node_config() -> SystemConfig {
        let mut cfg = SystemConfig::small_test().noiseless();
        cfg.num_gpus = 4;
        cfg.topology = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        cfg
    }

    /// Sets the arrival rate so the *offered load* targets `util`
    /// fraction of fleet GPU-slots busy (Little's law: rate = util ×
    /// slots / mean duration). Same-utilization comparisons across
    /// placement policies use this: the arrival stream depends only on
    /// the arrival config, so every policy sees the identical job
    /// sequence.
    #[must_use]
    pub fn with_target_utilization(mut self, util: f64) -> Self {
        assert!(util > 0.0, "target utilization must be positive");
        let slots = f64::from(self.nodes) * f64::from(u32::from(self.node.num_gpus));
        let mean_d = self.arrivals.mean_duration() as f64;
        self.arrivals.mean_interarrival = ((mean_d / (slots * util)).round() as u64).max(1);
        self
    }

    /// Total GPU slots across the fleet.
    pub fn total_slots(&self) -> u64 {
        u64::from(self.nodes) * u64::from(self.node.num_gpus)
    }
}

/// A job currently bound to a slot.
#[derive(Debug, Clone, Copy)]
struct ActiveJob {
    /// Per-job splitmix64 stream key (derived from the placement index,
    /// so a job's access pattern is independent of which node ran it).
    key: u64,
    /// Draws consumed from the job stream.
    counter: u64,
    /// Next batch issue cycle.
    next_at: u64,
    /// Service end cycle (exclusive).
    ends_at: u64,
    /// Batches issued so far.
    batches: u64,
}

/// One GPU slot of a node: a pre-created process with pre-allocated
/// local and remote buffers, reused by every job placed on it.
#[derive(Debug)]
struct Slot {
    pid: ProcessId,
    agent: AgentId,
    local: VirtAddr,
    /// Buffer on a link-neighbour GPU (`None` if the GPU has no peer or
    /// remote traffic is disabled).
    remote: Option<VirtAddr>,
    job: Option<ActiveJob>,
}

/// One pooled fleet node plus its reusable stepping scratch.
struct Node {
    sys: MultiGpuSystem,
    slots: Vec<Slot>,
    /// Batch address scratch, reused every batch.
    addrs: Vec<VirtAddr>,
    /// Latency output scratch, reused every batch.
    lats: Vec<u32>,
    /// Heap-scheduler scratch, reused every epoch.
    heap: Vec<(u64, u32)>,
    /// Lifetime batch counter (survives recycling).
    batches: u64,
    /// Lifetime line-access counter (survives recycling).
    accesses: u64,
}

/// Parameters a worker needs to step one node (copied out of the config
/// so workers never touch the runner).
#[derive(Clone, Copy)]
struct StepParams {
    scheduler: FleetScheduler,
    probe_lines: u32,
    think_min: u64,
    think_spread: u64,
    remote_every: u32,
    line_size: u64,
    buf_lines: u64,
}

/// Fleet-level exposure accumulator. Plain fields + fixed histograms so
/// the hot path records without touching `MetricSet`'s string-keyed
/// maps; exported into one set at report time.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Exposure {
    /// Jobs emitted by the front-end within the horizon.
    pub arrived: u64,
    /// Jobs bound to a slot.
    pub placed: u64,
    /// Jobs whose service window completed within the horizon.
    pub completed: u64,
    /// Jobs still queued when the run ended.
    pub queued_end: u64,
    /// Cross-tenant link-adjacent co-residency windows observed.
    pub windows: u64,
    /// Total cross-tenant co-resident cycles (summed over windows).
    pub coresident_cycles: u64,
    /// Total job-occupied GPU-slot cycles (clipped to the horizon).
    pub occupied_cycles: u64,
    /// Windows long enough for the 94.0 KB/s L2 channel to move ≥1 frame.
    pub l2_exposed_windows: u64,
    /// Windows long enough for the 28.6 KB/s link channel to move ≥1 frame.
    pub link_exposed_windows: u64,
    /// Nodes recycled in place via `canonicalize_phase`.
    pub nodes_recycled: u64,
    /// Node-epochs stepped (the work-stealing unit).
    pub node_epochs: u64,
    /// Job batches issued fleet-wide.
    pub batches: u64,
    /// Probe-line accesses issued fleet-wide.
    pub accesses: u64,
    /// Attack-window duration distribution (cycles).
    pub window_hist: LogHistogram,
    /// Queue-wait distribution (cycles from arrival to placement).
    pub queue_wait_hist: LogHistogram,
}

impl Exposure {
    /// Fraction of occupied slot-cycles spent link-adjacent to a
    /// distinct tenant — the paper's co-residency probability.
    pub fn coresidency(&self) -> f64 {
        if self.occupied_cycles == 0 {
            0.0
        } else {
            self.coresident_cycles as f64 / self.occupied_cycles as f64
        }
    }

    /// Achieved slot utilization over `horizon` cycles and
    /// `total_slots` GPU slots.
    pub fn utilization(&self, horizon: u64, total_slots: u64) -> f64 {
        let denom = (horizon * total_slots) as f64;
        if denom == 0.0 {
            0.0
        } else {
            self.occupied_cycles as f64 / denom
        }
    }
}

/// What a fleet run produced.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Fleet counters/histograms plus the folded node counters, in one
    /// mergeable set.
    pub metrics: MetricSet,
    /// Node `SystemStats` folded across all nodes and generations.
    pub stats: SystemStats,
    /// The per-node `MetricSet` fold (only when
    /// [`FleetConfig::verify_fold`] was set) — compare against
    /// `stats.metric_set()` for the fold-equals-total gate.
    pub node_fold: Option<MetricSet>,
    /// The raw exposure accumulator.
    pub exposure: Exposure,
    /// Horizon the run covered.
    pub horizon: u64,
    /// GPU slots in the fleet.
    pub total_slots: u64,
}

impl FleetReport {
    /// Achieved slot utilization.
    pub fn utilization(&self) -> f64 {
        self.exposure.utilization(self.horizon, self.total_slots)
    }

    /// `Some(true)` iff the per-node `MetricSet` fold equals the folded
    /// `SystemStats` export; `None` when the run didn't maintain the
    /// second fold.
    pub fn fold_matches_total(&self) -> Option<bool> {
        self.node_fold
            .as_ref()
            .map(|f| *f == self.stats.metric_set())
    }

    /// The decoded exposure table row for this run — the byte-exact
    /// artifact CI diffs across thread counts. Deliberately excludes
    /// anything thread- or wall-clock-dependent.
    pub fn exposure_line(&self, label: &str) -> String {
        let e = &self.exposure;
        format!(
            "{label} arrived={} placed={} completed={} queued={} util={:.6} \
             coresidency={:.6} windows={} win_p50={} win_p95={} win_p99={} \
             l2_exposed={} link_exposed={} wait_p50={} wait_p95={} recycled={} \
             batches={} accesses={} l2_hits={} l2_misses={} nvlink_bytes={}",
            e.arrived,
            e.placed,
            e.completed,
            e.queued_end,
            self.utilization(),
            e.coresidency(),
            e.windows,
            e.window_hist.p50(),
            e.window_hist.p95(),
            e.window_hist.p99(),
            e.l2_exposed_windows,
            e.link_exposed_windows,
            e.queue_wait_hist.p50(),
            e.queue_wait_hist.p95(),
            e.nodes_recycled,
            e.batches,
            e.accesses,
            self.metrics.counter("gpu.l2_hits"),
            self.metrics.counter("gpu.l2_misses"),
            self.metrics.counter("gpu.nvlink_bytes"),
        )
    }
}

/// The shared-nothing fleet driver. Construct with a policy, then
/// either [`FleetRunner::run`] to the horizon or step incrementally
/// with [`FleetRunner::run_until`] + [`FleetRunner::finish`].
pub struct FleetRunner {
    cfg: FleetConfig,
    step: StepParams,
    /// `Mutex` purely so scoped workers can claim disjoint nodes; the
    /// claim protocol makes every lock uncontended.
    nodes: Vec<Mutex<Node>>,
    occ: Occupancy,
    policy: Box<dyn PlacementPolicy>,
    arrivals: ArrivalStream,
    /// One-job lookahead past the current epoch boundary.
    pending: Option<JobSpec>,
    /// FIFO of jobs that arrived while the fleet was full.
    queue: VecDeque<JobSpec>,
    /// Min-heap of `(end cycle, node, slot)` service completions.
    departures: BinaryHeap<Reverse<(u64, u32, u32)>>,
    /// Jobs bound per node (drives the active-node list).
    active_per_node: Vec<u32>,
    /// Reused each epoch: indices of nodes with bound jobs.
    active_scratch: Vec<u32>,
    /// Reused each boundary: nodes whose last job just departed.
    emptied_scratch: Vec<u32>,
    /// Placements so far — the per-job stream key index.
    placements: u64,
    exp: Exposure,
    stats_accum: SystemStats,
    node_fold: Option<MetricSet>,
    l2_frame_cycles: u64,
    link_frame_cycles: u64,
    /// Recycle generation (the `canonicalize_phase` tag).
    generation: u64,
    now: u64,
}

impl std::fmt::Debug for FleetRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetRunner")
            .field("nodes", &self.cfg.nodes)
            .field("policy", &self.policy.name())
            .field("now", &self.now)
            .field("placements", &self.placements)
            .finish_non_exhaustive()
    }
}

impl FleetRunner {
    /// Boots the pool: every node gets one process per GPU with a local
    /// and a link-neighbour buffer pre-allocated, so steady-state job
    /// churn allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics on a zero node/epoch/thread count or a node config whose
    /// HBM cannot back the per-slot buffers.
    pub fn new(cfg: FleetConfig, policy: Box<dyn PlacementPolicy>) -> Self {
        assert!(cfg.nodes > 0, "empty fleet");
        assert!(cfg.epoch > 0, "zero epoch");
        assert!(cfg.threads > 0, "zero worker threads");
        let topo = cfg.node.topology.clone();
        let ngpus = cfg.node.num_gpus;
        let buf_bytes = FLEET_BUF_PAGES * cfg.node.page_size;
        let mut nodes = Vec::with_capacity(cfg.nodes as usize);
        for n in 0..cfg.nodes {
            let node_cfg = cfg
                .node
                .clone()
                .with_seed(indexed_draw(cfg.seed, SALT_NODE, u64::from(n)));
            let mut sys = MultiGpuSystem::new(node_cfg);
            let mut slots = Vec::with_capacity(usize::from(ngpus));
            for g in 0..ngpus {
                let gpu = GpuId::new(g);
                let pid = sys.create_process(gpu);
                let agent = sys.default_agent(pid);
                let local = sys
                    .malloc_on(pid, gpu, buf_bytes)
                    .expect("node HBM backs the local job buffer");
                let remote = match topo.peers(gpu).next() {
                    Some(peer) if cfg.remote_every > 0 => {
                        sys.enable_peer_access(pid, peer)
                            .expect("ring neighbours share a direct link");
                        Some(
                            sys.malloc_on(pid, peer, buf_bytes)
                                .expect("peer HBM backs the remote job buffer"),
                        )
                    }
                    _ => None,
                };
                slots.push(Slot {
                    pid,
                    agent,
                    local,
                    remote,
                    job: None,
                });
            }
            nodes.push(Mutex::new(Node {
                sys,
                slots,
                addrs: Vec::with_capacity(cfg.probe_lines as usize),
                lats: Vec::with_capacity(cfg.probe_lines as usize),
                heap: Vec::with_capacity(usize::from(ngpus)),
                batches: 0,
                accesses: 0,
            }));
        }
        let clock = cfg.node.timing.clock_hz;
        let frame_cycles =
            |rate: f64| -> u64 { (FRAME_BYTES / rate * clock).ceil() as u64 };
        let step = StepParams {
            scheduler: cfg.scheduler,
            probe_lines: cfg.probe_lines,
            think_min: cfg.think_min,
            think_spread: cfg.think_spread.max(1),
            remote_every: cfg.remote_every,
            line_size: cfg.node.cache.line_size,
            buf_lines: buf_bytes / cfg.node.cache.line_size,
        };
        let total_slots = cfg.total_slots() as usize;
        let arrivals = ArrivalStream::new(cfg.arrivals.clone());
        let node_fold = cfg.verify_fold.then(MetricSet::new);
        FleetRunner {
            occ: Occupancy::new(cfg.nodes, &topo),
            stats_accum: SystemStats::new(ngpus, topo.num_links()),
            arrivals,
            pending: None,
            queue: VecDeque::with_capacity(1024),
            departures: BinaryHeap::with_capacity(total_slots + 1),
            active_per_node: vec![0; cfg.nodes as usize],
            active_scratch: Vec::with_capacity(cfg.nodes as usize),
            emptied_scratch: Vec::with_capacity(cfg.nodes as usize),
            placements: 0,
            exp: Exposure::default(),
            node_fold,
            l2_frame_cycles: frame_cycles(L2_CHANNEL_BYTES_PER_SEC),
            link_frame_cycles: frame_cycles(LINK_CHANNEL_BYTES_PER_SEC),
            generation: 0,
            now: 0,
            step,
            policy,
            nodes,
            cfg,
        }
    }

    /// The runner's config.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Current fleet clock (last completed epoch boundary).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The exposure accumulator so far. Node-lifetime counters
    /// (`batches`, `accesses`) fold in only at [`FleetRunner::finish`];
    /// everything else is current.
    pub fn exposure(&self) -> &Exposure {
        &self.exp
    }

    /// Steps whole epochs until the boundary reaches `target` (clipped
    /// to the horizon). Allocation-free in the steady state when
    /// `threads == 1` (parallel mode allocates only the per-epoch
    /// scoped worker threads, never per job or per access).
    pub fn run_until(&mut self, target: u64) {
        let target = target.min(self.cfg.horizon);
        while self.now < target {
            let t0 = self.now;
            let t1 = (t0 + self.cfg.epoch).min(self.cfg.horizon);
            self.process_boundary(t0, t1);
            self.step_epoch(t1);
            self.now = t1;
        }
    }

    /// Runs to the horizon and produces the report.
    pub fn run(mut self) -> FleetReport {
        self.run_until(self.cfg.horizon);
        self.finish()
    }

    /// Final fold: drains in-horizon departures, folds every node's
    /// stats into the fleet accumulator and exports the metrics.
    pub fn finish(mut self) -> FleetReport {
        let horizon = self.cfg.horizon;
        self.emptied_scratch.clear();
        while let Some(&Reverse((end, n, s))) = self.departures.peek() {
            if end > horizon {
                break;
            }
            self.departures.pop();
            self.remove_job(n, s);
        }
        self.exp.queued_end = self.queue.len() as u64;
        for node in &mut self.nodes {
            let node = node.get_mut().expect("fleet workers never panic");
            self.stats_accum.merge(node.sys.stats());
            if let Some(fold) = &mut self.node_fold {
                fold.merge(&node.sys.stats().metric_set());
            }
            self.exp.batches += node.batches;
            self.exp.accesses += node.accesses;
        }
        let mut metrics = MetricSet::new();
        let e = &self.exp;
        metrics.add("fleet.jobs_arrived", e.arrived);
        metrics.add("fleet.jobs_placed", e.placed);
        metrics.add("fleet.jobs_completed", e.completed);
        metrics.add("fleet.jobs_queued_end", e.queued_end);
        metrics.add("fleet.attack_windows", e.windows);
        metrics.add("fleet.coresident_cycles", e.coresident_cycles);
        metrics.add("fleet.occupied_cycles", e.occupied_cycles);
        metrics.add("fleet.l2_exposed_windows", e.l2_exposed_windows);
        metrics.add("fleet.link_exposed_windows", e.link_exposed_windows);
        metrics.add("fleet.nodes_recycled", e.nodes_recycled);
        metrics.add("fleet.node_epochs", e.node_epochs);
        metrics.add("fleet.batches", e.batches);
        metrics.add("fleet.accesses", e.accesses);
        metrics.merge_histogram("fleet.attack_window_cycles", &e.window_hist);
        metrics.merge_histogram("fleet.queue_wait_cycles", &e.queue_wait_hist);
        metrics.merge(&self.stats_accum.metric_set());
        FleetReport {
            metrics,
            total_slots: self.cfg.total_slots(),
            horizon,
            stats: self.stats_accum,
            node_fold: self.node_fold,
            exposure: self.exp,
        }
    }

    /// Epoch-boundary front-end work, in a fixed order: departures due
    /// at `t0`, node recycling, queued jobs (FIFO, starting at `t0`),
    /// then fresh arrivals in `[t0, t1)`.
    fn process_boundary(&mut self, t0: u64, t1: u64) {
        self.emptied_scratch.clear();
        while let Some(&Reverse((end, n, s))) = self.departures.peek() {
            if end > t0 {
                break;
            }
            self.departures.pop();
            self.remove_job(n, s);
        }
        for i in 0..self.emptied_scratch.len() {
            let n = self.emptied_scratch[i];
            if self.active_per_node[n as usize] == 0 {
                self.recycle(n);
            }
        }
        while let Some(job) = self.queue.front().copied() {
            match self.policy.place(&self.occ, &job) {
                Some(addr) => {
                    self.queue.pop_front();
                    self.admit(job, addr, t0);
                }
                None => break,
            }
        }
        loop {
            let job = match self.pending.take() {
                Some(j) => j,
                None => self.arrivals.next_job(),
            };
            if job.at >= t1 {
                self.pending = Some(job);
                break;
            }
            self.exp.arrived += 1;
            // FIFO fairness: while older jobs queue, new ones join them.
            if self.queue.is_empty() {
                if let Some(addr) = self.policy.place(&self.occ, &job) {
                    self.admit(job, addr, job.at.max(t0));
                    continue;
                }
            }
            self.queue.push_back(job);
        }
    }

    /// Binds a job to a slot at `start`, recording its exposure windows
    /// against every link-adjacent cross-tenant occupant. Open-loop
    /// durations make the windows exact at placement time: both jobs'
    /// service ends are already known.
    fn admit(&mut self, job: JobSpec, addr: SlotAddr, start: u64) {
        let end = start + job.duration;
        let horizon = self.cfg.horizon;
        self.exp.placed += 1;
        self.exp.queue_wait_hist.record(start - job.at);
        self.exp.occupied_cycles += end.min(horizon).saturating_sub(start);
        for &ns in self.occ.adjacent_slots(addr.slot) {
            let Some(t) = self.occ.occupant(SlotAddr {
                node: addr.node,
                slot: ns,
            }) else {
                continue;
            };
            if t.tenant == job.tenant {
                continue;
            }
            let lo = start.max(t.start);
            let hi = end.min(t.end).min(horizon);
            if hi <= lo {
                continue;
            }
            let w = hi - lo;
            self.exp.windows += 1;
            self.exp.coresident_cycles += w;
            self.exp.window_hist.record(w);
            if w >= self.l2_frame_cycles {
                self.exp.l2_exposed_windows += 1;
            }
            if w >= self.link_frame_cycles {
                self.exp.link_exposed_windows += 1;
            }
        }
        self.occ.occupy(
            addr,
            JobTag {
                tenant: job.tenant,
                start,
                end,
            },
        );
        let key = indexed_draw(self.cfg.seed, SALT_JOB, self.placements);
        self.placements += 1;
        let node = self.nodes[addr.node as usize]
            .get_mut()
            .expect("fleet workers never panic");
        node.slots[addr.slot as usize].job = Some(ActiveJob {
            key,
            counter: 0,
            next_at: start,
            ends_at: end,
            batches: 0,
        });
        self.active_per_node[addr.node as usize] += 1;
        self.departures.push(Reverse((end, addr.node, addr.slot)));
    }

    /// Releases a slot whose job's service window ended.
    fn remove_job(&mut self, n: u32, s: u32) {
        self.occ.vacate(SlotAddr { node: n, slot: s });
        let node = self.nodes[n as usize]
            .get_mut()
            .expect("fleet workers never panic");
        node.slots[s as usize].job = None;
        self.exp.completed += 1;
        self.active_per_node[n as usize] -= 1;
        if self.active_per_node[n as usize] == 0 {
            self.emptied_scratch.push(n);
        }
    }

    /// Pools an emptied node: fold its stats, then restore the
    /// canonical state in place (`canonicalize_phase`) under a fresh
    /// generation tag. The node is never reconstructed.
    fn recycle(&mut self, n: u32) {
        let node = self.nodes[n as usize]
            .get_mut()
            .expect("fleet workers never panic");
        self.stats_accum.merge(node.sys.stats());
        if let Some(fold) = &mut self.node_fold {
            fold.merge(&node.sys.stats().metric_set());
        }
        self.generation += 1;
        node.sys.canonicalize_phase(self.generation);
        self.exp.nodes_recycled += 1;
    }

    /// Steps every node with bound jobs to `t1`. Serial when
    /// `threads == 1`; otherwise scoped workers claim node indices from
    /// one atomic cursor (work stealing over node horizons — a fast
    /// worker immediately takes the next unclaimed node).
    fn step_epoch(&mut self, t1: u64) {
        self.active_scratch.clear();
        for (i, &c) in self.active_per_node.iter().enumerate() {
            if c > 0 {
                self.active_scratch.push(i as u32);
            }
        }
        self.exp.node_epochs += self.active_scratch.len() as u64;
        let p = self.step;
        let workers = self.cfg.threads.min(self.active_scratch.len());
        if workers <= 1 {
            for &i in &self.active_scratch {
                let node = self.nodes[i as usize]
                    .get_mut()
                    .expect("fleet workers never panic");
                step_node(node, t1, p);
            }
            return;
        }
        let nodes = &self.nodes;
        let active = &self.active_scratch;
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&ni) = active.get(k) else { break };
                    let mut node = nodes[ni as usize]
                        .lock()
                        .expect("fleet workers never panic");
                    step_node(&mut node, t1, p);
                });
            }
        });
    }
}

/// Steps one node's jobs to `t1` in `(next event time, slot)` order.
/// Shared-nothing: touches only this node's state, so step order across
/// nodes cannot matter.
fn step_node(node: &mut Node, t1: u64, p: StepParams) {
    match p.scheduler {
        FleetScheduler::Linear => loop {
            let mut best: Option<(u64, u32)> = None;
            for (i, s) in node.slots.iter().enumerate() {
                if let Some(j) = &s.job {
                    if j.next_at < j.ends_at.min(t1) {
                        let key = (j.next_at, i as u32);
                        if best.is_none_or(|b| key < b) {
                            best = Some(key);
                        }
                    }
                }
            }
            let Some((_, i)) = best else { break };
            issue_batch(node, i as usize, p);
        },
        FleetScheduler::Heap => {
            node.heap.clear();
            for (i, s) in node.slots.iter().enumerate() {
                if let Some(j) = &s.job {
                    if j.next_at < j.ends_at.min(t1) {
                        heap_push(&mut node.heap, (j.next_at, i as u32));
                    }
                }
            }
            while let Some((_, i)) = heap_pop_min(&mut node.heap) {
                issue_batch(node, i as usize, p);
                // Each slot re-enters at most once per pop, so keys in
                // the heap are always current.
                let next = {
                    let j = node.slots[i as usize]
                        .job
                        .as_ref()
                        .expect("job survives the batch");
                    (j.next_at < j.ends_at.min(t1)).then_some((j.next_at, i))
                };
                if let Some(v) = next {
                    heap_push(&mut node.heap, v);
                }
            }
        }
    }
}

/// Issues one probe batch for slot `i`'s job at its `next_at` cycle:
/// `probe_lines` counter-indexed addresses into the job's local buffer
/// (every `remote_every`-th batch, the link-neighbour buffer), then
/// advances the job by the batch duration plus a drawn think time.
fn issue_batch(node: &mut Node, i: usize, p: StepParams) {
    let s = &mut node.slots[i];
    let j = s.job.as_mut().expect("runnable slot has a job");
    let now = j.next_at;
    j.batches += 1;
    let use_remote = p.remote_every > 0
        && s.remote.is_some()
        && j.batches.is_multiple_of(u64::from(p.remote_every));
    let base = if use_remote {
        s.remote.expect("checked above")
    } else {
        s.local
    };
    node.addrs.clear();
    for _ in 0..p.probe_lines {
        let d = crate::qos::splitmix64(j.key.wrapping_add(j.counter));
        j.counter += 1;
        node.addrs.push(base.offset((d % p.buf_lines) * p.line_size));
    }
    node.lats.clear();
    let summary = node
        .sys
        .access_batch_into(s.pid, s.agent, &node.addrs, now, &mut node.lats)
        .expect("fleet jobs touch only their own pre-mapped buffers");
    let think = p.think_min + crate::qos::splitmix64(j.key.wrapping_add(j.counter)) % p.think_spread;
    j.counter += 1;
    j.next_at = now + summary.duration.max(1) + think;
    node.batches += 1;
    node.accesses += u64::from(p.probe_lines);
}

/// Min-heap push over `(cycle, slot)` keys into reusable scratch.
#[inline]
fn heap_push(h: &mut Vec<(u64, u32)>, v: (u64, u32)) {
    h.push(v);
    let mut i = h.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if h[parent] <= h[i] {
            break;
        }
        h.swap(parent, i);
        i = parent;
    }
}

/// Min-heap pop; `None` when empty.
#[inline]
fn heap_pop_min(h: &mut Vec<(u64, u32)>) -> Option<(u64, u32)> {
    if h.is_empty() {
        return None;
    }
    let last = h.len() - 1;
    h.swap(0, last);
    let out = h.pop();
    let n = h.len();
    let mut i = 0;
    loop {
        let l = 2 * i + 1;
        if l >= n {
            break;
        }
        let c = if l + 1 < n && h[l + 1] < h[l] { l + 1 } else { l };
        if h[i] <= h[c] {
            break;
        }
        h.swap(i, c);
        i = c;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::placement::{ChannelAware, Pack, RandomPlacement, Spread};

    fn tiny(seed: u64, threads: usize, scheduler: FleetScheduler) -> FleetReport {
        let mut cfg = FleetConfig::new(6, seed).with_target_utilization(0.6);
        cfg.horizon = 600_000;
        cfg.threads = threads;
        cfg.scheduler = scheduler;
        cfg.verify_fold = true;
        FleetRunner::new(cfg, Box::new(Pack)).run()
    }

    #[test]
    fn serial_parallel_and_heap_linear_are_bit_identical() {
        let base = tiny(5, 1, FleetScheduler::Linear);
        let par = tiny(5, 4, FleetScheduler::Linear);
        let heap = tiny(5, 3, FleetScheduler::Heap);
        assert!(base.exposure.placed > 0, "workload actually ran");
        assert_eq!(base.metrics, par.metrics, "thread count leaked into results");
        assert_eq!(base.metrics, heap.metrics, "heap and linear orders differ");
        assert_eq!(base.exposure_line("x"), par.exposure_line("x"));
        assert_eq!(base.exposure_line("x"), heap.exposure_line("x"));
    }

    #[test]
    fn fold_equals_total() {
        let r = tiny(9, 2, FleetScheduler::Heap);
        assert!(r.exposure.nodes_recycled > 0, "pooling must engage");
        assert_eq!(r.fold_matches_total(), Some(true));
    }

    #[test]
    fn conservation_and_validity_across_policies() {
        let policies: Vec<Box<dyn PlacementPolicy>> = vec![
            Box::new(Pack),
            Box::new(Spread),
            Box::new(RandomPlacement::new(3)),
            Box::new(ChannelAware::new(16)),
        ];
        for policy in policies {
            let name = policy.name();
            let mut cfg = FleetConfig::new(4, 2).with_target_utilization(1.4);
            cfg.horizon = 400_000;
            let r = FleetRunner::new(cfg, policy).run();
            let e = &r.exposure;
            assert_eq!(
                e.placed + e.queued_end,
                e.arrived,
                "{name}: conservation (placed + queued == arrived)"
            );
            assert!(e.completed <= e.placed, "{name}");
            assert!(
                e.queued_end > 0,
                "{name}: overload (offered 1.4x) must leave a queue"
            );
        }
    }

    #[test]
    fn channel_aware_beats_pack_on_coresidency() {
        let run = |policy: Box<dyn PlacementPolicy>| {
            let mut cfg = FleetConfig::new(12, 17).with_target_utilization(0.5);
            cfg.horizon = 1_200_000;
            FleetRunner::new(cfg, policy).run()
        };
        let pack = run(Box::new(Pack));
        let ca = run(Box::new(ChannelAware::new(16)));
        let util_gap = (pack.utilization() - ca.utilization()).abs();
        assert!(
            util_gap < 0.02,
            "same offered load must give near-equal utilization (gap {util_gap})"
        );
        assert!(
            ca.exposure.coresident_cycles < pack.exposure.coresident_cycles,
            "channel-aware {} !< pack {}",
            ca.exposure.coresident_cycles,
            pack.exposure.coresident_cycles
        );
    }

    #[test]
    fn heap_helpers_sort() {
        let mut h = Vec::new();
        for v in [5u64, 1, 4, 1, 9, 0, 3] {
            heap_push(&mut h, (v, v as u32));
        }
        let mut out = Vec::new();
        while let Some((v, _)) = heap_pop_min(&mut h) {
            out.push(v);
        }
        assert_eq!(out, vec![0, 1, 1, 3, 4, 5, 9]);
    }
}
