//! Placement policies and the free-slot index that keeps every
//! decision O(log n) in the number of nodes.
//!
//! [`Occupancy`] tracks which (node, GPU slot) pairs are occupied and
//! by which tenant, and maintains one fixed segment tree over per-node
//! free-slot counts. All policy queries — most-packed node, least-packed
//! node, fully-empty node, global k-th free slot — are single
//! descents of that tree, so a fleet of thousands of nodes costs a
//! placement decision ~log2(nodes) probes, not a linear scan. The tree
//! is allocated once at construction and never grows: updates and
//! queries are allocation-free, which the fleet steady-state
//! counting-allocator test relies on.

use super::arrivals::{JobSpec, TenantId};
use super::indexed_draw;
use crate::topology::Topology;

const SALT_PLACEMENT: u64 = 0xB1;

/// A concrete placement target: GPU slot `slot` of fleet node `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotAddr {
    /// Fleet node index.
    pub node: u32,
    /// GPU index within the node.
    pub slot: u32,
}

/// What occupies a slot: the tenant plus the job's service window
/// (open-loop arrivals declare their duration, so the end is known at
/// placement time — exposure windows are computed exactly, not sampled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobTag {
    /// Owning tenant.
    pub tenant: TenantId,
    /// Cycle service began.
    pub start: u64,
    /// Cycle service ends (exclusive).
    pub end: u64,
}

/// Fixed segment tree over per-node free-slot counts. Each internal
/// node stores (max free, min *positive* free, total free) of its
/// range, so the three policy-relevant extrema and weighted random
/// selection are all one root-to-leaf descent.
#[derive(Debug, Clone)]
struct SlotIndex {
    /// Leaf count, padded to a power of two.
    size: usize,
    /// Slots per node.
    cap: u32,
    /// `max free` per segment (`2*size` entries, root at 1).
    max_f: Vec<u32>,
    /// `min positive free` per segment (`u32::MAX` when every node in
    /// the range is full).
    min_pos: Vec<u32>,
    /// `sum of free` per segment.
    sum: Vec<u64>,
}

impl SlotIndex {
    fn new(nodes: u32, cap: u32) -> Self {
        let size = (nodes as usize).next_power_of_two().max(1);
        let mut idx = SlotIndex {
            size,
            cap,
            max_f: vec![0; 2 * size],
            min_pos: vec![u32::MAX; 2 * size],
            sum: vec![0; 2 * size],
        };
        for n in 0..nodes as usize {
            idx.max_f[size + n] = cap;
            idx.min_pos[size + n] = cap;
            idx.sum[size + n] = u64::from(cap);
        }
        // Padding leaves stay (0, MAX, 0): never selectable.
        for i in (1..size).rev() {
            idx.pull(i);
        }
        idx
    }

    #[inline]
    fn pull(&mut self, i: usize) {
        let (l, r) = (2 * i, 2 * i + 1);
        self.max_f[i] = self.max_f[l].max(self.max_f[r]);
        self.min_pos[i] = self.min_pos[l].min(self.min_pos[r]);
        self.sum[i] = self.sum[l] + self.sum[r];
    }

    /// Sets node `n`'s free count and fixes the path to the root.
    fn set(&mut self, n: usize, free: u32) {
        let mut i = self.size + n;
        self.max_f[i] = free;
        self.min_pos[i] = if free == 0 { u32::MAX } else { free };
        self.sum[i] = u64::from(free);
        i /= 2;
        while i >= 1 {
            self.pull(i);
            if i == 1 {
                break;
            }
            i /= 2;
        }
    }

    fn total(&self) -> u64 {
        self.sum[1]
    }

    /// Leftmost node with the globally maximal free count (> 0).
    fn least_packed(&self) -> Option<usize> {
        if self.max_f[1] == 0 {
            return None;
        }
        let mut i = 1;
        while i < self.size {
            i = if self.max_f[2 * i] == self.max_f[i] {
                2 * i
            } else {
                2 * i + 1
            };
        }
        Some(i - self.size)
    }

    /// Leftmost node with the globally minimal *positive* free count —
    /// the fullest node that still has room.
    fn most_packed(&self) -> Option<usize> {
        if self.min_pos[1] == u32::MAX {
            return None;
        }
        let mut i = 1;
        while i < self.size {
            i = if self.min_pos[2 * i] == self.min_pos[i] {
                2 * i
            } else {
                2 * i + 1
            };
        }
        Some(i - self.size)
    }

    /// Leftmost completely empty node.
    fn empty(&self) -> Option<usize> {
        if self.max_f[1] < self.cap {
            return None;
        }
        let mut i = 1;
        while i < self.size {
            i = if self.max_f[2 * i] == self.cap {
                2 * i
            } else {
                2 * i + 1
            };
        }
        Some(i - self.size)
    }

    /// The node holding the global `k`-th free slot (0-based, `k` <
    /// [`SlotIndex::total`]) and the residual rank within that node.
    fn kth(&self, mut k: u64) -> (usize, u32) {
        debug_assert!(k < self.total());
        let mut i = 1;
        while i < self.size {
            let left = self.sum[2 * i];
            i = if k < left {
                2 * i
            } else {
                k -= left;
                2 * i + 1
            };
        }
        (i - self.size, k as u32)
    }
}

/// Fleet-wide slot occupancy: who runs where, with O(log n) queries for
/// every placement policy.
#[derive(Debug, Clone)]
pub struct Occupancy {
    nodes: u32,
    cap: u32,
    /// `node * cap + slot` → occupant.
    occupant: Vec<Option<JobTag>>,
    idx: SlotIndex,
    /// Per-slot direct-NVLink neighbours within a node (identical for
    /// every node — the fleet is homogeneous).
    adj: Vec<Vec<u32>>,
}

impl Occupancy {
    /// An empty fleet of `nodes` nodes whose intra-node slot adjacency
    /// comes from `topo` (slots are link-adjacent iff the GPUs share a
    /// direct NVLink — the co-residency surface the link channel needs).
    pub fn new(nodes: u32, topo: &Topology) -> Self {
        let cap = u32::from(topo.num_gpus());
        let adj = (0..topo.num_gpus())
            .map(|g| {
                topo.peers(crate::address::GpuId::new(g))
                    .map(|p| p.index() as u32)
                    .collect()
            })
            .collect();
        Occupancy {
            nodes,
            cap,
            occupant: vec![None; nodes as usize * cap as usize],
            idx: SlotIndex::new(nodes, cap),
            adj,
        }
    }

    /// Fleet node count.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// GPU slots per node.
    pub fn slots_per_node(&self) -> u32 {
        self.cap
    }

    /// Free slots across the whole fleet.
    pub fn free_total(&self) -> u64 {
        self.idx.total()
    }

    /// Free slots on one node.
    pub fn node_free(&self, node: u32) -> u32 {
        self.idx.max_f[self.idx.size + node as usize]
    }

    /// The occupant of a slot, if any.
    pub fn occupant(&self, a: SlotAddr) -> Option<&JobTag> {
        self.occupant[a.node as usize * self.cap as usize + a.slot as usize].as_ref()
    }

    /// Marks a slot occupied.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already occupied (a policy bug).
    pub fn occupy(&mut self, a: SlotAddr, tag: JobTag) {
        let cell = &mut self.occupant[a.node as usize * self.cap as usize + a.slot as usize];
        assert!(cell.is_none(), "slot {a:?} double-booked");
        *cell = Some(tag);
        let free = self.node_free(a.node) - 1;
        self.idx.set(a.node as usize, free);
    }

    /// Marks a slot free again.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already free.
    pub fn vacate(&mut self, a: SlotAddr) {
        let cell = &mut self.occupant[a.node as usize * self.cap as usize + a.slot as usize];
        assert!(cell.is_some(), "slot {a:?} vacated twice");
        *cell = None;
        let free = self.node_free(a.node) + 1;
        self.idx.set(a.node as usize, free);
    }

    /// Leftmost fullest node that still has a free slot.
    pub fn most_packed_node(&self) -> Option<u32> {
        self.idx.most_packed().map(|n| n as u32)
    }

    /// Leftmost emptiest node with at least one free slot.
    pub fn least_packed_node(&self) -> Option<u32> {
        self.idx.least_packed().map(|n| n as u32)
    }

    /// Leftmost completely empty node.
    pub fn empty_node(&self) -> Option<u32> {
        self.idx.empty().map(|n| n as u32)
    }

    /// The global `k`-th free slot (0-based) — the uniform-over-free-
    /// slots primitive behind [`RandomPlacement`].
    pub fn kth_free(&self, k: u64) -> SlotAddr {
        let (node, mut rem) = self.idx.kth(k);
        for slot in 0..self.cap {
            if self.occupant[node * self.cap as usize + slot as usize].is_none() {
                if rem == 0 {
                    return SlotAddr {
                        node: node as u32,
                        slot,
                    };
                }
                rem -= 1;
            }
        }
        unreachable!("segment tree said node {node} had a {k}-th free slot");
    }

    /// Lowest free slot index on a node, if any.
    pub fn first_free_slot(&self, node: u32) -> Option<u32> {
        (0..self.cap)
            .find(|&s| self.occupant[node as usize * self.cap as usize + s as usize].is_none())
    }

    /// Link-adjacent slots of `slot` within any node.
    pub fn adjacent_slots(&self, slot: u32) -> &[u32] {
        &self.adj[slot as usize]
    }

    /// How many link-adjacent slots of `(node, slot)` are occupied by a
    /// *different* tenant — the cross-tenant coupling a channel-aware
    /// scheduler minimises (L2 sharing is per-GPU, so same-slot
    /// co-residency is impossible by construction; link adjacency is the
    /// remaining surface).
    pub fn cross_tenant_score(&self, node: u32, slot: u32, tenant: TenantId) -> u32 {
        let base = node as usize * self.cap as usize;
        self.adj[slot as usize]
            .iter()
            .filter(|&&n| {
                self.occupant[base + n as usize]
                    .as_ref()
                    .is_some_and(|t| t.tenant != tenant)
            })
            .count() as u32
    }

    /// The free slot on `node` with the fewest cross-tenant adjacent
    /// occupants (ties to the lowest slot), with its score.
    pub fn best_slot(&self, node: u32, tenant: TenantId) -> Option<(u32, u32)> {
        let base = node as usize * self.cap as usize;
        let mut best: Option<(u32, u32)> = None;
        for slot in 0..self.cap {
            if self.occupant[base + slot as usize].is_some() {
                continue;
            }
            let score = self.cross_tenant_score(node, slot, tenant);
            if best.is_none_or(|(_, b)| score < b) {
                best = Some((slot, score));
            }
        }
        best
    }
}

/// A job→(node, GPU) assignment policy. `place` may keep internal state
/// (counters, affinity hints) but must be deterministic given the same
/// occupancy and job sequence, and must return `None` only when it
/// declines to place the job this epoch (the runner re-queues it).
pub trait PlacementPolicy: Send {
    /// Stable policy name for tables and artifacts.
    fn name(&self) -> &'static str;
    /// Chooses a free slot for `job`, or `None` to leave it queued.
    fn place(&mut self, occ: &Occupancy, job: &JobSpec) -> Option<SlotAddr>;
}

/// Bin-packing: fill the fullest node first (consolidation — what a
/// utilization-driven scheduler does, and the policy that maximises
/// cross-tenant co-residency).
#[derive(Debug, Default, Clone)]
pub struct Pack;

impl PlacementPolicy for Pack {
    fn name(&self) -> &'static str {
        "pack"
    }

    fn place(&mut self, occ: &Occupancy, _job: &JobSpec) -> Option<SlotAddr> {
        let node = occ.most_packed_node()?;
        let slot = occ.first_free_slot(node)?;
        Some(SlotAddr { node, slot })
    }
}

/// Load-balancing: place on the emptiest node.
#[derive(Debug, Default, Clone)]
pub struct Spread;

impl PlacementPolicy for Spread {
    fn name(&self) -> &'static str {
        "spread"
    }

    fn place(&mut self, occ: &Occupancy, _job: &JobSpec) -> Option<SlotAddr> {
        let node = occ.least_packed_node()?;
        let slot = occ.first_free_slot(node)?;
        Some(SlotAddr { node, slot })
    }
}

/// Uniform over all free slots, from the policy's own counter-indexed
/// splitmix64 stream (no system RNG; bit-identical across thread
/// counts like everything else in the fleet).
#[derive(Debug, Clone)]
pub struct RandomPlacement {
    seed: u64,
    decisions: u64,
}

impl RandomPlacement {
    /// A random policy drawing from `seed`'s stream.
    pub fn new(seed: u64) -> Self {
        RandomPlacement { seed, decisions: 0 }
    }
}

impl PlacementPolicy for RandomPlacement {
    fn name(&self) -> &'static str {
        "random"
    }

    fn place(&mut self, occ: &Occupancy, _job: &JobSpec) -> Option<SlotAddr> {
        let total = occ.free_total();
        if total == 0 {
            return None;
        }
        let d = indexed_draw(self.seed, SALT_PLACEMENT, self.decisions);
        self.decisions += 1;
        Some(occ.kth_free(d % total))
    }
}

/// Channel-aware placement: avoid co-scheduling distinct tenants on
/// L2-sharing / link-adjacent GPUs.
///
/// Preference order: (1) the tenant's last node, if it still offers a
/// slot with zero cross-tenant adjacency (same-tenant consolidation —
/// a tenant cannot attack itself); (2) a completely empty node;
/// (3) the least-packed node's minimum-coupling slot. Every step is
/// O(log n) via the [`Occupancy`] index plus an O(slots) node-local
/// scan.
#[derive(Debug, Clone)]
pub struct ChannelAware {
    /// Per-tenant affinity hint: the node this tenant last landed on.
    hint: Vec<Option<u32>>,
}

impl ChannelAware {
    /// A channel-aware policy for a fleet serving `tenants` tenants.
    pub fn new(tenants: u32) -> Self {
        ChannelAware {
            hint: vec![None; tenants as usize],
        }
    }
}

impl PlacementPolicy for ChannelAware {
    fn name(&self) -> &'static str {
        "channel_aware"
    }

    fn place(&mut self, occ: &Occupancy, job: &JobSpec) -> Option<SlotAddr> {
        let t = job.tenant;
        // 1. Same-tenant affinity, but only conflict-free.
        if let Some(h) = self.hint[t.0 as usize] {
            if occ.node_free(h) > 0 {
                if let Some((slot, 0)) = occ.best_slot(h, t) {
                    return Some(SlotAddr { node: h, slot });
                }
            }
        }
        // 2. A fresh node isolates the tenant entirely.
        if let Some(node) = occ.empty_node() {
            self.hint[t.0 as usize] = Some(node);
            return Some(SlotAddr { node, slot: 0 });
        }
        // 3. Degrade gracefully: emptiest node, least-coupled slot.
        let node = occ.least_packed_node()?;
        let (slot, score) = occ.best_slot(node, t)?;
        if score == 0 {
            self.hint[t.0 as usize] = Some(node);
        }
        Some(SlotAddr { node, slot })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring4() -> Topology {
        Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)])
    }

    fn job(tenant: u32) -> JobSpec {
        JobSpec {
            at: 0,
            tenant: TenantId(tenant),
            duration: 100,
        }
    }

    fn tag(tenant: u32) -> JobTag {
        JobTag {
            tenant: TenantId(tenant),
            start: 0,
            end: 100,
        }
    }

    #[test]
    fn index_extrema_and_kth() {
        let topo = ring4();
        let mut occ = Occupancy::new(5, &topo);
        assert_eq!(occ.free_total(), 20);
        assert_eq!(occ.most_packed_node(), Some(0), "all equal: leftmost");
        // Fill node 2 partially, node 4 fully.
        occ.occupy(SlotAddr { node: 2, slot: 1 }, tag(0));
        for s in 0..4 {
            occ.occupy(SlotAddr { node: 4, slot: s }, tag(1));
        }
        assert_eq!(occ.free_total(), 15);
        assert_eq!(occ.most_packed_node(), Some(2), "full nodes don't count");
        assert_eq!(occ.least_packed_node(), Some(0));
        assert_eq!(occ.empty_node(), Some(0));
        // k-th free slot skips occupied ones: node 2's free slots are
        // 0,2,3 → global ranks 8,9,10.
        assert_eq!(occ.kth_free(9), SlotAddr { node: 2, slot: 2 });
        occ.vacate(SlotAddr { node: 4, slot: 2 });
        assert_eq!(occ.node_free(4), 1);
        assert_eq!(occ.first_free_slot(4), Some(2));
    }

    #[test]
    fn pack_consolidates_spread_balances() {
        let topo = ring4();
        let mut occ = Occupancy::new(3, &topo);
        let mut pack = Pack;
        let mut spread = Spread;
        let a = pack.place(&occ, &job(0)).unwrap();
        occ.occupy(a, tag(0));
        let b = pack.place(&occ, &job(1)).unwrap();
        assert_eq!(b.node, a.node, "pack stays on the started node");
        occ.occupy(b, tag(1));
        let c = spread.place(&occ, &job(2)).unwrap();
        assert_ne!(c.node, a.node, "spread goes to an empty node");
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let topo = ring4();
        let mut occ = Occupancy::new(4, &topo);
        let mut r1 = RandomPlacement::new(9);
        let mut r2 = RandomPlacement::new(9);
        for i in 0..8 {
            let a = r1.place(&occ, &job(i)).unwrap();
            let b = r2.place(&occ, &job(i)).unwrap();
            assert_eq!(a, b, "same seed, same stream");
            assert!(occ.occupant(a).is_none());
            occ.occupy(a, tag(i));
        }
    }

    #[test]
    fn channel_aware_prefers_isolation() {
        let topo = ring4();
        let mut occ = Occupancy::new(2, &topo);
        let mut ca = ChannelAware::new(4);
        // Tenant 0 lands somewhere; tenant 1 must take the other node.
        let a = ca.place(&occ, &job(0)).unwrap();
        occ.occupy(a, tag(0));
        let b = ca.place(&occ, &job(1)).unwrap();
        occ.occupy(b, tag(1));
        assert_ne!(b.node, a.node, "fresh tenant gets the empty node");
        // Tenant 0 again: affinity to its own node, zero coupling slot.
        let c = ca.place(&occ, &job(0)).unwrap();
        assert_eq!(c.node, a.node);
        assert_eq!(occ.cross_tenant_score(c.node, c.slot, TenantId(0)), 0);
    }

    #[test]
    fn cross_tenant_score_counts_link_neighbours_only() {
        let topo = ring4();
        let mut occ = Occupancy::new(1, &topo);
        // Ring 0-1-2-3-0: slot 0's neighbours are 1 and 3.
        occ.occupy(SlotAddr { node: 0, slot: 1 }, tag(7));
        assert_eq!(occ.cross_tenant_score(0, 0, TenantId(0)), 1);
        assert_eq!(occ.cross_tenant_score(0, 2, TenantId(0)), 1);
        assert_eq!(occ.cross_tenant_score(0, 0, TenantId(7)), 0, "same tenant");
        occ.occupy(SlotAddr { node: 0, slot: 3 }, tag(8));
        assert_eq!(occ.cross_tenant_score(0, 0, TenantId(0)), 2);
        // best_slot picks the least coupled free slot: slot 2 touches
        // only slot-1(t7) and slot-3(t8) → score 2 too; all free slots
        // are 0 and 2 with score 2 → lowest index wins.
        assert_eq!(occ.best_slot(0, TenantId(0)), Some((0, 2)));
    }
}
