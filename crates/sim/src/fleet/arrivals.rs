//! Deterministic open-loop request front-end: Poisson arrivals of
//! tenant jobs with Zipf-distributed tenant popularity and bounded
//! durations, all counter-indexed (see the module doc's determinism
//! contract).

use super::indexed_draw;

const SALT_INTERARRIVAL: u64 = 0xA1;
const SALT_TENANT: u64 = 0xA2;
const SALT_DURATION: u64 = 0xA3;

/// Exponential tails are unbounded; clamp an inter-arrival draw to this
/// many means so one astronomically unlucky draw cannot stall the whole
/// stream past the horizon.
const MAX_INTERARRIVAL_MEANS: u64 = 32;

/// A tenant (customer) identity in the fleet workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

/// Parameters of the arrival process.
#[derive(Debug, Clone)]
pub struct ArrivalConfig {
    /// Mean inter-arrival time in cycles (Poisson rate = 1/mean).
    pub mean_interarrival: u64,
    /// Number of distinct tenants.
    pub tenants: u32,
    /// Zipf popularity exponent `s` (0 = uniform; ~1 = classic skew).
    pub zipf_exponent: f64,
    /// Minimum job duration in cycles (inclusive).
    pub min_duration: u64,
    /// Maximum job duration in cycles (inclusive).
    pub max_duration: u64,
    /// Stream seed; two streams with equal configs are identical.
    pub seed: u64,
}

impl ArrivalConfig {
    /// A small default workload: 16 tenants, skew 1.0, jobs lasting
    /// 50k–400k cycles, one arrival every 20k cycles on average.
    pub fn default_workload(seed: u64) -> Self {
        ArrivalConfig {
            mean_interarrival: 20_000,
            tenants: 16,
            zipf_exponent: 1.0,
            min_duration: 50_000,
            max_duration: 400_000,
            seed,
        }
    }

    /// Mean job duration implied by the uniform bounds.
    pub fn mean_duration(&self) -> u64 {
        (self.min_duration + self.max_duration) / 2
    }
}

/// One job emitted by the front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Fleet-global arrival cycle.
    pub at: u64,
    /// The tenant the job belongs to.
    pub tenant: TenantId,
    /// Requested service time in cycles (open-loop: known at arrival).
    pub duration: u64,
}

/// The deterministic arrival stream. Job `i`'s tenant and duration are
/// pure functions of `(seed, i)`; its arrival time is the running sum
/// of the first `i+1` inter-arrival draws, so regenerating the stream
/// from the same config always yields the same sequence.
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    cfg: ArrivalConfig,
    /// Fixed-point (32-bit) cumulative Zipf weights; `cum[k]` is the
    /// upper edge of tenant `k`'s interval and `cum[last] == 2^32`.
    cum: Vec<u64>,
    /// Jobs emitted so far == the next job's index.
    emitted: u64,
    /// Arrival clock (sum of inter-arrival draws so far).
    clock: u64,
}

impl ArrivalStream {
    /// Builds the stream, precomputing the tenant-popularity CDF (the
    /// only allocation the stream ever performs).
    ///
    /// # Panics
    ///
    /// Panics on a zero tenant count, a zero mean inter-arrival time or
    /// an inverted duration range.
    pub fn new(cfg: ArrivalConfig) -> Self {
        assert!(cfg.tenants > 0, "at least one tenant");
        assert!(cfg.mean_interarrival > 0, "zero arrival rate");
        assert!(
            cfg.min_duration >= 1 && cfg.min_duration <= cfg.max_duration,
            "duration bounds must satisfy 1 <= min <= max"
        );
        let weights: Vec<f64> = (1..=cfg.tenants)
            .map(|k| f64::from(k).powf(-cfg.zipf_exponent))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut cum = Vec::with_capacity(cfg.tenants as usize);
        let mut acc = 0.0f64;
        for w in &weights {
            acc += w;
            cum.push(((acc / total) * (1u64 << 32) as f64).round() as u64);
        }
        // Force the final edge so a maximal draw always lands inside.
        *cum.last_mut().expect("non-empty") = 1u64 << 32;
        ArrivalStream {
            cfg,
            cum,
            emitted: 0,
            clock: 0,
        }
    }

    /// The stream's configuration.
    pub fn config(&self) -> &ArrivalConfig {
        &self.cfg
    }

    /// Jobs emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Emits the next job (the stream is infinite). Allocation-free.
    pub fn next_job(&mut self) -> JobSpec {
        let i = self.emitted;
        self.emitted += 1;
        self.clock += self.interarrival(i);
        JobSpec {
            at: self.clock,
            tenant: self.tenant(i),
            duration: self.duration(i),
        }
    }

    /// Inter-arrival gap before job `i`: an exponential draw of the
    /// configured mean via inverse-CDF over a counter-indexed uniform.
    fn interarrival(&self, i: u64) -> u64 {
        let d = indexed_draw(self.cfg.seed, SALT_INTERARRIVAL, i);
        // Uniform in (0, 1]: top 53 bits, shifted into the mantissa range.
        let u = ((d >> 11) + 1) as f64 / (1u64 << 53) as f64;
        let gap = (-u.ln() * self.cfg.mean_interarrival as f64).round() as u64;
        gap.clamp(1, self.cfg.mean_interarrival * MAX_INTERARRIVAL_MEANS)
    }

    /// Tenant of job `i`: binary search of a 32-bit uniform draw in the
    /// precomputed Zipf CDF.
    fn tenant(&self, i: u64) -> TenantId {
        let r = indexed_draw(self.cfg.seed, SALT_TENANT, i) & 0xFFFF_FFFF;
        let k = self.cum.partition_point(|&edge| edge <= r);
        TenantId(k as u32)
    }

    /// Duration of job `i`: uniform in the configured inclusive bounds.
    fn duration(&self, i: u64) -> u64 {
        let d = indexed_draw(self.cfg.seed, SALT_DURATION, i);
        let span = self.cfg.max_duration - self.cfg.min_duration + 1;
        self.cfg.min_duration + d % span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_reproducible() {
        let cfg = ArrivalConfig::default_workload(7);
        let mut a = ArrivalStream::new(cfg.clone());
        let mut b = ArrivalStream::new(cfg);
        for _ in 0..1000 {
            assert_eq!(a.next_job(), b.next_job());
        }
    }

    #[test]
    fn arrival_times_are_strictly_increasing() {
        let mut s = ArrivalStream::new(ArrivalConfig::default_workload(3));
        let mut last = 0;
        for _ in 0..1000 {
            let j = s.next_job();
            assert!(j.at > last, "gap >= 1 keeps arrivals strictly ordered");
            last = j.at;
        }
    }

    #[test]
    fn zipf_skews_towards_low_tenants() {
        let mut s = ArrivalStream::new(ArrivalConfig {
            tenants: 8,
            zipf_exponent: 1.2,
            ..ArrivalConfig::default_workload(11)
        });
        let mut counts = [0u64; 8];
        for _ in 0..20_000 {
            counts[s.next_job().tenant.0 as usize] += 1;
        }
        assert!(
            counts[0] > counts[7] * 3,
            "tenant 0 must dominate the tail: {counts:?}"
        );
        assert!(counts.iter().all(|&c| c > 0), "tail tenants still arrive");
    }

    #[test]
    fn durations_respect_bounds_and_mean_interarrival_is_sane() {
        let cfg = ArrivalConfig::default_workload(99);
        let mut s = ArrivalStream::new(cfg.clone());
        let n = 20_000u64;
        let mut last_at = 0;
        for _ in 0..n {
            let j = s.next_job();
            assert!(j.duration >= cfg.min_duration && j.duration <= cfg.max_duration);
            last_at = j.at;
        }
        let empirical_mean = last_at / n;
        let m = cfg.mean_interarrival;
        assert!(
            empirical_mean > m / 2 && empirical_mean < m * 2,
            "empirical mean {empirical_mean} vs configured {m}"
        );
    }
}
