//! Fleet-scale serving simulation: a pool of shared-nothing
//! [`crate::system::MultiGpuSystem`] nodes behind an open-loop request
//! front-end, with pluggable placement policies and per-node exposure
//! metrics folded into one [`crate::telemetry::MetricSet`].
//!
//! The single-box model answers *how fast does the channel leak*; the
//! fleet layer answers the question the paper's threat model poses at
//! datacentre scale — **how often do attacker and victim co-reside, for
//! how long, and is that window long enough to move a frame** — as a
//! function of the scheduler's placement policy.
//!
//! # Arrival model
//!
//! [`arrivals::ArrivalStream`] is an open-loop Poisson process: job
//! inter-arrival times are exponential with a configurable mean, tenant
//! identity is Zipf-distributed (a few tenants dominate, the tail is
//! long — the serving-workload shape placement papers assume), and job
//! durations are uniform within configured bounds. Every quantity is a
//! pure function of `(seed, job index)` through counter-indexed
//! splitmix64 — the QoS-jitter idiom. No system RNG is consumed, so the
//! stream is bit-identical across placement policies, node schedulers
//! and thread counts, and job `i` is the same job in every sweep cell.
//!
//! # Determinism contract
//!
//! A fleet run is a deterministic function of its [`FleetConfig`]:
//!
//! 1. **Arrivals** are counter-indexed (above) — no draw order to race.
//! 2. **Placement** happens only on the serial front-end thread, at
//!    epoch boundaries, in arrival order; policies may keep state but
//!    draw randomness only from their own counter-indexed streams.
//! 3. **Node stepping** is shared-nothing: each node is an independent
//!    `MultiGpuSystem` whose jobs touch only that node's memory, so the
//!    order nodes are stepped in — and the number of worker threads
//!    stepping them — cannot change any node's observable state.
//! 4. Within a node, slots are stepped in `(next event time, slot)`
//!    order; the linear scan and the binary heap implement the same
//!    total order and are asserted bit-identical.
//!
//! `ext_fleet_placement` CI-gates the consequence: `--threads 1` and
//! `--threads N` emit byte-identical exposure tables.
//!
//! # Work stealing over node horizons
//!
//! Each epoch, the runner publishes the list of nodes with runnable
//! jobs and spawns `threads` scoped workers. Workers *claim* node
//! indices from one shared atomic counter and step each claimed node to
//! the epoch horizon — cheap dynamic load balancing (a fast node's
//! worker immediately steals the next index) without per-task queues.
//! Nodes live behind `Mutex` only to satisfy the borrow checker across
//! the scope; claims never collide, so the locks are uncontended.
//!
//! # Node pooling
//!
//! Nodes are never reconstructed. When a node's last job departs, its
//! [`crate::stats::SystemStats`] are folded into the fleet accumulator
//! and the node is recycled in place via
//! [`crate::system::MultiGpuSystem::canonicalize_phase`], which
//! restores the canonical post-boot state (L2s flushed, timing and
//! stats reset, trace ring emptied, agent counter rewound, RNG reseeded
//! from the generation tag). `tests/fleet_pooling.rs` asserts a pooled
//! node's second tenant epoch is bit-identical to a freshly built
//! node's, and `tests/alloc_free.rs` asserts the steady state performs
//! zero heap allocations after pool warm-up.

pub mod arrivals;
pub mod monitor;
pub mod placement;
pub mod runner;

pub use arrivals::{ArrivalConfig, ArrivalStream, JobSpec, TenantId};
pub use monitor::FleetMonitor;
pub use placement::{
    ChannelAware, Occupancy, Pack, PlacementPolicy, RandomPlacement, SlotAddr, Spread,
};
pub use runner::{Exposure, FleetConfig, FleetReport, FleetRunner, FleetScheduler};

/// Counter-indexed draw: one splitmix64 evaluation keyed by a stream
/// seed, a role salt and an index. The fleet-wide randomness primitive —
/// stateless, so every draw is reproducible from its coordinates alone.
#[inline]
pub(crate) fn indexed_draw(seed: u64, salt: u64, index: u64) -> u64 {
    crate::qos::splitmix64(
        seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ index.wrapping_mul(0xd134_2543_de82_ef95),
    )
}
