//! Per-set replacement policy implementations.
//!
//! The paper infers an LRU (or pseudo-LRU) policy from the deterministic
//! eviction of the target address after every 16th distinct access
//! (Sec. III-B, Fig. 5). [`TreePlru`] and random replacement are provided
//! so the ablation benches can show how eviction-set discovery degrades
//! under other policies.

use crate::config::ReplacementKind;
use rand::Rng;

/// Replacement state for a single cache set.
///
/// All variants operate over way indices `0..ways`.
#[derive(Debug, Clone)]
pub enum SetPolicy {
    /// True LRU: a recency stack of way indices (front = MRU).
    Lru(Vec<u8>),
    /// Tree pseudo-LRU over a power-of-two number of ways.
    TreePlru(TreePlru),
    /// Random victim selection.
    Random {
        /// Associativity.
        ways: u8,
    },
}

impl SetPolicy {
    /// Creates the policy state for one set.
    pub fn new(kind: ReplacementKind, ways: u32) -> Self {
        let ways = u8::try_from(ways).expect("associativity fits in u8");
        match kind {
            ReplacementKind::Lru => SetPolicy::Lru((0..ways).collect()),
            ReplacementKind::TreePlru => SetPolicy::TreePlru(TreePlru::new(ways)),
            ReplacementKind::Random => SetPolicy::Random { ways },
        }
    }

    /// Records a hit on `way`, promoting it per the policy.
    pub fn touch(&mut self, way: u8) {
        match self {
            SetPolicy::Lru(stack) => {
                let pos = stack.iter().position(|&w| w == way).expect("way in stack");
                stack.remove(pos);
                stack.insert(0, way);
            }
            SetPolicy::TreePlru(t) => t.touch(way),
            SetPolicy::Random { .. } => {}
        }
    }

    /// Chooses the victim way for a fill and promotes it to MRU.
    pub fn evict<R: Rng>(&mut self, rng: &mut R) -> u8 {
        match self {
            SetPolicy::Lru(stack) => {
                let victim = stack.pop().expect("nonempty stack");
                stack.insert(0, victim);
                victim
            }
            SetPolicy::TreePlru(t) => {
                let victim = t.victim();
                t.touch(victim);
                victim
            }
            SetPolicy::Random { ways } => rng.gen_range(0..*ways),
        }
    }
}

/// Classic binary-tree pseudo-LRU.
///
/// One bit per internal node; `0` points left, `1` points right toward the
/// pseudo-least-recently-used leaf.
#[derive(Debug, Clone)]
pub struct TreePlru {
    bits: Vec<bool>,
    ways: u8,
}

impl TreePlru {
    /// Creates tree state for `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is not a power of two.
    pub fn new(ways: u8) -> Self {
        assert!(ways.is_power_of_two(), "tree plru needs power-of-two ways");
        TreePlru {
            bits: vec![false; ways as usize - 1],
            ways,
        }
    }

    /// Promotes `way`: flips the path bits to point away from it.
    pub fn touch(&mut self, way: u8) {
        let mut node = 0usize;
        let mut lo = 0u8;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                // Accessed left — point the bit right.
                self.bits[node] = true;
                node = 2 * node + 1;
                hi = mid;
            } else {
                self.bits[node] = false;
                node = 2 * node + 2;
                lo = mid;
            }
        }
    }

    /// Returns the current pseudo-LRU victim way.
    pub fn victim(&self) -> u8 {
        let mut node = 0usize;
        let mut lo = 0u8;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.bits[node] {
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(1)
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = SetPolicy::new(ReplacementKind::Lru, 4);
        // Fill order 0,1,2,3 — way 0 is LRU... but new() starts with 0 at
        // front. Touch in order to establish recency.
        for w in 0..4 {
            p.touch(w);
        }
        // Recency now: 3,2,1,0 (front = MRU). Victim must be 0.
        assert_eq!(p.evict(&mut rng()), 0);
        // After eviction, 0 becomes MRU; next victim is 1.
        assert_eq!(p.evict(&mut rng()), 1);
    }

    #[test]
    fn lru_touch_promotes() {
        let mut p = SetPolicy::new(ReplacementKind::Lru, 4);
        for w in 0..4 {
            p.touch(w);
        }
        p.touch(0); // promote 0; now 1 is LRU
        assert_eq!(p.evict(&mut rng()), 1);
    }

    #[test]
    fn lru_sequential_fill_evicts_in_order() {
        // The Fig. 5 property: accessing ways 0..16 in order then refilling
        // evicts in exactly the same order (deterministic LRU).
        let mut p = SetPolicy::new(ReplacementKind::Lru, 16);
        for w in 0..16 {
            p.touch(w);
        }
        for expect in 0..16 {
            assert_eq!(p.evict(&mut rng()), expect);
        }
    }

    #[test]
    fn tree_plru_victim_is_not_most_recent() {
        let mut t = TreePlru::new(8);
        for w in 0..8 {
            t.touch(w);
        }
        t.touch(5);
        assert_ne!(t.victim(), 5);
    }

    #[test]
    fn tree_plru_cycles_through_all_ways() {
        // Repeated evict+touch must visit every way eventually.
        let mut p = SetPolicy::new(ReplacementKind::TreePlru, 8);
        let mut seen = std::collections::HashSet::new();
        let mut r = rng();
        for _ in 0..64 {
            seen.insert(p.evict(&mut r));
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn random_policy_spreads_victims() {
        let mut p = SetPolicy::new(ReplacementKind::Random, 16);
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..400 {
            seen.insert(p.evict(&mut r));
        }
        assert!(seen.len() > 12, "random eviction should cover most ways");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn tree_plru_rejects_non_power_of_two() {
        let _ = TreePlru::new(6);
    }
}
