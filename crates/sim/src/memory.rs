//! Per-GPU HBM physical memory: frame allocation and backing store.
//!
//! Frames are handed out at *random* physical locations. This models the
//! driver behaviour the paper's attacker fights against: the cache is
//! physically indexed and the virtual→physical mapping is unknown, so the
//! set a buffer line lands in cannot be computed — it must be discovered
//! with the pointer-chase algorithm.

use crate::address::{FrameNumber, GpuId, PhysAddr};
use crate::error::{SimError, SimResult};
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// One GPU's HBM: a frame allocator plus a sparse word-addressed store.
#[derive(Debug, Clone)]
pub struct Hbm {
    gpu: GpuId,
    page_size: u64,
    num_frames: u64,
    allocated: HashSet<u64>,
    /// Backing data, one `Vec<u64>` of `page_size/8` words per frame,
    /// created lazily on first write.
    data: HashMap<u64, Vec<u64>>,
}

impl Hbm {
    /// Creates the HBM of GPU `gpu` with `capacity_bytes / page_size` frames.
    pub fn new(gpu: GpuId, capacity_bytes: u64, page_size: u64) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        Hbm {
            gpu,
            page_size,
            num_frames: capacity_bytes / page_size,
            allocated: HashSet::new(),
            data: HashMap::new(),
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Number of frames currently allocated.
    pub fn frames_in_use(&self) -> usize {
        self.allocated.len()
    }

    /// Allocates one frame at a random free physical location.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] when no frame is free.
    pub fn alloc_frame<R: Rng>(&mut self, rng: &mut R) -> SimResult<FrameNumber> {
        if self.allocated.len() as u64 >= self.num_frames {
            return Err(SimError::OutOfMemory(self.gpu));
        }
        // Rejection-sample a free frame; occupancy in experiments is tiny
        // relative to 16 GiB so this terminates almost immediately.
        loop {
            let f = rng.gen_range(0..self.num_frames);
            if self.allocated.insert(f) {
                return Ok(FrameNumber(f));
            }
        }
    }

    /// Releases a frame and drops its contents.
    pub fn free_frame(&mut self, frame: FrameNumber) {
        self.allocated.remove(&frame.0);
        self.data.remove(&frame.0);
    }

    /// The physical address of byte `offset` within `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= page_size`.
    pub fn frame_base(&self, frame: FrameNumber) -> PhysAddr {
        PhysAddr(frame.0 * self.page_size)
    }

    /// Reads the 8-byte word at physical address `pa` (0 if never written).
    pub fn read_word(&self, pa: PhysAddr) -> u64 {
        let frame = pa.0 / self.page_size;
        let word = (pa.0 % self.page_size) / 8;
        self.data.get(&frame).map_or(0, |page| page[word as usize])
    }

    /// Writes the 8-byte word at physical address `pa`.
    pub fn write_word(&mut self, pa: PhysAddr, value: u64) {
        let frame = pa.0 / self.page_size;
        let word = (pa.0 % self.page_size) / 8;
        let words_per_page = (self.page_size / 8) as usize;
        let page = self
            .data
            .entry(frame)
            .or_insert_with(|| vec![0; words_per_page]);
        page[word as usize] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn hbm() -> Hbm {
        Hbm::new(GpuId::new(0), 1024 * 1024, 4096)
    }

    #[test]
    fn alloc_returns_distinct_frames() {
        let mut h = hbm();
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let mut seen = HashSet::new();
        for _ in 0..100 {
            let f = h.alloc_frame(&mut r).unwrap();
            assert!(seen.insert(f.0), "frame {f:?} handed out twice");
        }
        assert_eq!(h.frames_in_use(), 100);
    }

    #[test]
    fn exhaustion_reports_oom() {
        let mut h = Hbm::new(GpuId::new(1), 4096 * 4, 4096);
        let mut r = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..4 {
            h.alloc_frame(&mut r).unwrap();
        }
        assert_eq!(
            h.alloc_frame(&mut r),
            Err(SimError::OutOfMemory(GpuId::new(1)))
        );
    }

    #[test]
    fn free_makes_frame_reusable() {
        let mut h = Hbm::new(GpuId::new(0), 4096, 4096);
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let f = h.alloc_frame(&mut r).unwrap();
        h.free_frame(f);
        let f2 = h.alloc_frame(&mut r).unwrap();
        assert_eq!(f, f2, "only one frame exists");
    }

    #[test]
    fn words_default_to_zero_and_persist() {
        let mut h = hbm();
        let pa = PhysAddr(4096 * 3 + 16);
        assert_eq!(h.read_word(pa), 0);
        h.write_word(pa, 0xDEAD_BEEF);
        assert_eq!(h.read_word(pa), 0xDEAD_BEEF);
        // Neighbouring word untouched.
        assert_eq!(h.read_word(PhysAddr(pa.0 + 8)), 0);
    }

    #[test]
    fn frame_base_scales_by_page_size() {
        let h = hbm();
        assert_eq!(h.frame_base(FrameNumber(5)), PhysAddr(5 * 4096));
    }

    #[test]
    fn random_placement_is_scattered() {
        // Frames from a big HBM should not come out consecutive — that is
        // the property hiding set indices from the attacker.
        let mut h = Hbm::new(GpuId::new(0), 256 * 1024 * 1024, 4096);
        let mut r = ChaCha8Rng::seed_from_u64(11);
        let frames: Vec<u64> = (0..50).map(|_| h.alloc_frame(&mut r).unwrap().0).collect();
        let consecutive = frames.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(consecutive < 5, "placement looks sequential: {frames:?}");
    }
}
