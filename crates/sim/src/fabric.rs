//! Timed interconnect fabric: per-link bandwidth, occupancy and queueing.
//!
//! PR 1/PR 2 modelled the interconnect as a scalar — a per-hop latency
//! adder plus one per-home-GPU queue counter. This module promotes every
//! NVLink edge of the [`Topology`] (and the PCIe root complex, shared by
//! all GPUs as the fallback transport) to a **timed queueing resource**:
//!
//! - each link serves one cache line per [`FabricConfig`] service period
//!   (its bandwidth expressed in core cycles per 128 B line);
//! - a link remembers the cycle until which it is busy (`busy_until`);
//!   a request arriving earlier waits for the residual occupancy window —
//!   deterministic FCFS in **engine processing order**, at op
//!   granularity. Scalar ops are processed in global-timestamp order,
//!   but a warp-wide `LoadBatch` books all of its lines' future issue
//!   slots atomically when its op executes, so another agent's op with
//!   a timestamp inside that span queues behind the whole booked burst.
//!   That models a warp's transfers being committed to the link engine
//!   at issue, and is exactly the saturation the congestion channel's
//!   spy observes;
//! - a multi-hop request traverses its route **store-and-forward**: the
//!   arrival time at link *k+1* is the departure time from link *k*, so
//!   congestion anywhere on the route delays the whole transfer;
//! - per-link bytes, request counts, busy cycles and queue-wait cycles
//!   are surfaced through [`crate::stats::SystemStats`].
//!
//! This is the substrate of the paper's second channel family: a
//! bandwidth trojan saturating one link is observable to any tenant whose
//! route shares that link, purely through the tenant's own transfer
//! latency — no shared cache set required
//! (`gpubox_attacks::covert::transmit_link`).
//!
//! # QoS / defence layer
//!
//! Every link grant can optionally pass through the QoS pipeline of
//! [`crate::qos`] before booking its occupancy window — the defence
//! side of the congestion channel (per-tenant token-bucket **rate
//! limiting**, epoch **pacing** / seeded grant **jitter**, and
//! **valiant routing** that detours lines through pseudo-random
//! intermediates). The whole layer sits behind [`FabricConfig::qos`]
//! and is off by default: a [`QosConfig::off`] fabric is bit-identical
//! to the undefended model, and the per-hop service order is always
//! *token release → shaping → occupancy wait*. See the [`crate::qos`]
//! module docs for the defence taxonomy and
//! `ext_fabric_defense` for the security/performance frontier measured
//! against both covert-channel families.
//!
//! # Determinism and cost
//!
//! The fabric consumes **no RNG** and performs **no allocation** after
//! construction: routes are precomputed [`LinkId`] slices inside
//! [`Topology`], and traversal walks them updating fixed-size arrays
//! (QoS token buckets are preallocated per process at
//! `create_process` time; jitter and valiant picks come from
//! counter-indexed splitmix64 streams, not the system RNG). With
//! [`FabricConfig::enabled`]`== false` (the default) the fabric is
//! never consulted and simulations are bit-identical to the pre-fabric
//! model — asserted against a golden fingerprint in `sim_benches`.

use crate::fault::{FaultPlan, FaultState};
use crate::qos::{QosConfig, QosState};
use crate::stats::SystemStats;
use crate::system::ProcessId;
use crate::telemetry::{TraceKind, TraceSink};
use crate::topology::{LinkId, Topology};
use serde::{Deserialize, Serialize};

/// Fabric model configuration.
///
/// Defaults to *disabled*, which reproduces the scalar interconnect model
/// exactly (no latency terms, no bookkeeping). [`FabricConfig::nvlink_v1`]
/// enables the model with constants calibrated to the DGX-1's NVLink-V1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricConfig {
    /// Whether remote accesses traverse the timed link model.
    pub enabled: bool,
    /// Cycles one NVLink link is occupied per 128 B line. NVLink-V1
    /// moves ~20 GB/s per link ≈ 13.5 B/cycle at 1.48 GHz, i.e. ~10
    /// cycles per line.
    pub nvlink_service_cycles_per_line: u32,
    /// Cycles the shared PCIe root complex is occupied per line (PCIe
    /// 3.0 x16 shared by all GPUs; far slower than a dedicated link).
    pub pcie_service_cycles_per_line: u32,
    /// Whether each NVLink edge models its two directions as independent
    /// occupancy windows (NVLink is full-duplex: each direction has its
    /// own lanes, so an `a → b` stream does not serialise against
    /// `b → a` traffic). `false` — the default, and the PR 3 behaviour
    /// every golden fingerprint was captured under — shares one window
    /// per edge, modelling a half-duplex link. Per-direction
    /// bytes/requests/busy/queue *counters* are maintained in
    /// [`SystemStats`] either way; only the timing changes.
    pub per_direction: bool,
    /// QoS / defence layer (rate limiting, shaping, valiant routing);
    /// [`QosConfig::off`] — the default — reproduces the undefended
    /// fabric bit-for-bit.
    pub qos: QosConfig,
    /// Deterministic fault-injection plan ([`crate::fault`]): scheduled
    /// link outages with per-epoch rerouting, degraded links and seeded
    /// transient stalls. [`FaultPlan::none`] — the default — reproduces
    /// the healthy fabric bit-for-bit.
    pub faults: FaultPlan,
}

impl FabricConfig {
    /// Disabled fabric: the scalar PR 2 interconnect model.
    pub fn disabled() -> Self {
        FabricConfig {
            enabled: false,
            nvlink_service_cycles_per_line: 0,
            pcie_service_cycles_per_line: 0,
            per_direction: false,
            qos: QosConfig::off(),
            faults: FaultPlan::none(),
        }
    }

    /// Enabled fabric with NVLink-V1 / PCIe-3.0 constants.
    pub fn nvlink_v1() -> Self {
        FabricConfig {
            enabled: true,
            nvlink_service_cycles_per_line: 10,
            pcie_service_cycles_per_line: 60,
            per_direction: false,
            qos: QosConfig::off(),
            faults: FaultPlan::none(),
        }
    }

    /// Enables full-duplex links (builder-style): independent occupancy
    /// windows per direction.
    #[must_use]
    pub fn with_per_direction(mut self) -> Self {
        self.per_direction = true;
        self
    }

    /// Replaces the QoS / defence configuration (builder-style).
    #[must_use]
    pub fn with_qos(mut self, qos: QosConfig) -> Self {
        self.qos = qos;
        self
    }

    /// Replaces the fault-injection plan (builder-style).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig::disabled()
    }
}

/// Runtime occupancy state of every link plus the PCIe root complex.
#[derive(Debug, Clone)]
pub struct Fabric {
    enabled: bool,
    per_direction: bool,
    nv_service: u64,
    pcie_service: u64,
    /// Cycle until which each NVLink link (or link direction) is busy.
    /// One entry per link in shared-window mode; two consecutive entries
    /// per link (`2·link + direction`) in per-direction mode.
    busy_until: Vec<u64>,
    /// Cycle until which the shared PCIe root complex is busy.
    pcie_busy_until: u64,
    /// Whether any QoS component is active (fast path check).
    qos_enabled: bool,
    /// `(tenant, link)` scope of the rate-limit / shaping pipeline;
    /// `scope_all` short-circuits the per-hop mask test for the
    /// default (always-on) scope.
    qos_scope: crate::qos::QosScope,
    scope_all: bool,
    /// QoS / defence runtime state (token buckets, shaping streams,
    /// valiant counters); inert when `qos_enabled` is false.
    qos: QosState,
    /// Fault-injection runtime state ([`crate::fault`]): per-link
    /// outage/degradation windows and the transient-stall stream.
    /// `None` — the healthy fabric — costs nothing per hop.
    faults: Option<FaultState>,
}

impl Fabric {
    /// Builds the fabric state for a topology (one occupancy window per
    /// link, or two in [`FabricConfig::per_direction`] mode). A disabled
    /// config allocates no per-link state.
    ///
    /// # Panics
    ///
    /// Panics when the config carries an invalid [`FaultPlan`]
    /// ([`FaultPlan::validate`]) or one naming a link the topology does
    /// not have.
    pub fn new(topo: &Topology, cfg: &FabricConfig) -> Self {
        let windows = topo.num_links() * if cfg.per_direction { 2 } else { 1 };
        Fabric {
            enabled: cfg.enabled,
            per_direction: cfg.per_direction,
            nv_service: u64::from(cfg.nvlink_service_cycles_per_line),
            pcie_service: u64::from(cfg.pcie_service_cycles_per_line),
            busy_until: if cfg.enabled { vec![0; windows] } else { Vec::new() },
            pcie_busy_until: 0,
            qos_enabled: cfg.enabled && cfg.qos.enabled(),
            qos_scope: cfg.qos.scope,
            scope_all: cfg.qos.scope.is_all(),
            qos: QosState::new(&cfg.qos, topo, windows),
            faults: (cfg.enabled && cfg.faults.enabled())
                .then(|| FaultState::new(&cfg.faults, topo.num_links())),
        }
    }

    /// Whether the timed link model is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Whether any QoS / defence component is active.
    pub fn qos_enabled(&self) -> bool {
        self.qos_enabled
    }

    /// Registers one more process with the QoS layer (its token buckets
    /// start full). [`crate::MultiGpuSystem::create_process`] calls this
    /// for every process; direct [`Fabric`] users driving
    /// [`Fabric::traverse`] with rate limiting enabled must do the same
    /// for every [`ProcessId`] they pass.
    pub fn register_process(&mut self) {
        self.qos.register_process();
    }

    /// Clears all occupancy windows and QoS state (engine runs restart
    /// agent clocks at zero, so stale absolute timestamps must not leak
    /// across runs; token buckets refill and the shaping/valiant
    /// streams rewind).
    pub fn reset(&mut self) {
        for b in &mut self.busy_until {
            *b = 0;
        }
        self.pcie_busy_until = 0;
        self.qos.reset();
        if let Some(f) = &mut self.faults {
            f.reset();
        }
    }

    /// Picks (and consumes one counter tick of) the valiant
    /// intermediate for a `src → dst` line, when
    /// [`crate::qos::RoutingPolicy::Valiant`] is configured and the
    /// topology admits one; `None` means the canonical path is used.
    #[inline]
    pub fn valiant_pick(
        &mut self,
        topo: &Topology,
        src: crate::address::GpuId,
        dst: crate::address::GpuId,
    ) -> Option<crate::address::GpuId> {
        if !self.qos_enabled {
            return None;
        }
        self.qos.valiant_pick(topo, src, dst)
    }

    /// Sends one line along `path` starting at cycle `now`, store-and-
    /// forward across every link. `dirs` gives each hop's traversal
    /// direction (from [`Topology::path_dirs`], aligned with `path`):
    /// in shared-window mode it only routes the per-direction statistics,
    /// in [`FabricConfig::per_direction`] mode it also selects which of
    /// the link's two occupancy windows the hop books. `pid` is the
    /// tenant charged by the QoS layer's token buckets (unused when QoS
    /// is off). When a [`FaultPlan`] is active each hop first applies
    /// its faults — outage wait, then transient stall, then degraded
    /// service (see [`crate::fault`]) — and the delayed arrival then
    /// enters the QoS pipeline, which per hop is:
    ///
    /// - the **token bucket** decides whether the line is in budget.
    ///   An in-budget line books the occupancy window exactly like the
    ///   undefended fabric. An **over-budget** line is re-paced to its
    ///   refill horizon and crosses in the link's *spare capacity*
    ///   there: it completes at `horizon + service` but books no
    ///   occupancy window others could queue behind — the sustained
    ///   trickle (≤ the configured rate) neither saturates the link
    ///   observably nor (via the scalar `busy_until`) starves tenants
    ///   whose ops are processed later. The throttled tenant still
    ///   pays the full delay and self-clocks down to the sustained
    ///   rate.
    /// - **traffic shaping** perturbs the grant of in-budget lines
    ///   (when the link may start serving — bounded by the epoch /
    ///   jitter span);
    /// - the **occupancy wait** serialises in-budget grants against
    ///   each other.
    ///
    /// A link's `queue_cycles` keeps meaning "waited for the
    /// resource"; the QoS delays are broken out in
    /// [`crate::stats::QosStats`]. Returns the extra cycles beyond
    /// `now` until the line was delivered past the last link, and
    /// records per-link and per-direction bytes/busy/queue statistics.
    ///
    /// When `trace` is enabled each hop additionally emits
    /// [`TraceKind::HopServe`] plus per-cause fault/QoS delay records
    /// (attributed by diffing the stats counters around the fault and
    /// QoS sub-steps, so those layers need no hooks of their own). The
    /// hooks consume no RNG and change no timing — a traced run is
    /// bit-identical to an untraced one.
    ///
    /// Must only be called on an enabled fabric with a non-empty path.
    // The hot-path signature deliberately takes everything by argument
    // (no context struct) so the borrow checker can split the system's
    // fields at the call sites.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn traverse(
        &mut self,
        pid: ProcessId,
        path: &[LinkId],
        dirs: &[bool],
        now: u64,
        line_bytes: u64,
        stats: &mut SystemStats,
        trace: &mut TraceSink,
    ) -> u64 {
        debug_assert!(self.enabled, "traverse on a disabled fabric");
        debug_assert_eq!(path.len(), dirs.len(), "one direction bit per hop");
        let tracing = trace.is_enabled();
        let mut t = now;
        for (&l, &rev) in path.iter().zip(dirs) {
            let w = if self.per_direction {
                l.index() * 2 + usize::from(rev)
            } else {
                l.index()
            };
            // Faults first: a line reaching a down link waits out the
            // outage (stale routes stall mid-transfer), the transient
            // stall stream may delay it, and a degraded window inflates
            // this hop's service time. The (possibly delayed) arrival
            // then enters the QoS pipeline unchanged.
            let mut service = self.nv_service;
            if let Some(fs) = &mut self.faults {
                let before = if tracing {
                    *stats.fault()
                } else {
                    Default::default()
                };
                let arrived = t;
                let (arr, svc) = fs.apply_hop(l, t, self.nv_service, stats.fault_mut());
                t = arr;
                service = svc;
                if tracing {
                    let after = stats.fault();
                    let link = u64::from(l.0);
                    if after.down_waits > before.down_waits {
                        let wait = after.down_wait_cycles - before.down_wait_cycles;
                        trace.record(TraceKind::FaultDownWait, arrived, pid.0, wait, link);
                    }
                    if after.transient_stalls > before.transient_stalls {
                        let stall = after.stall_cycles - before.stall_cycles;
                        trace.record(TraceKind::FaultStall, arrived, pid.0, stall, link);
                    }
                    if after.degraded_hops > before.degraded_hops {
                        let extra = after.degraded_extra_cycles - before.degraded_extra_cycles;
                        trace.record(TraceKind::FaultDegraded, arrived, pid.0, extra, link);
                    }
                }
            }
            // Scoped QoS: the rate-limit / shaping pipeline only acts
            // on `(tenant, link)` pairs inside the configured scope —
            // the detect-then-throttle response narrows it to alarmed
            // links. The default all-ones scope takes the
            // `scope_all` short-circuit, bit-identical to PR 5.
            let qos_here =
                self.qos_enabled && (self.scope_all || self.qos_scope.covers(pid, l));
            let qos_before = if tracing && qos_here {
                *stats.qos()
            } else {
                Default::default()
            };
            let horizon = if qos_here {
                self.qos
                    .delivery_horizon(pid, w, t, line_bytes, stats.qos_mut())
            } else {
                t
            };
            let (start, queued, occupied) = if horizon > t {
                // Over budget: re-paced into spare capacity at the
                // refill horizon — no observable occupancy window, so
                // no busy/queue accounting either (utilisation keeps
                // meaning "cycles the bookable windows were held").
                (horizon, 0, 0)
            } else {
                let granted = if qos_here {
                    self.qos.shaped_grant(t, stats.qos_mut())
                } else {
                    t
                };
                let busy = &mut self.busy_until[w];
                let s = granted.max(*busy);
                *busy = s.saturating_add(service);
                (s, s - granted, service)
            };
            if tracing {
                let link = u64::from(l.0);
                if qos_here {
                    let after = stats.qos();
                    let throttle =
                        after.throttle_delay_cycles - qos_before.throttle_delay_cycles;
                    if throttle > 0 {
                        trace.record(TraceKind::QosThrottle, t, pid.0, throttle, link);
                    }
                    let pace = after.pacing_delay_cycles - qos_before.pacing_delay_cycles;
                    if pace > 0 {
                        trace.record(TraceKind::QosPace, t, pid.0, pace, link);
                    }
                    let jitter = after.jitter_delay_cycles - qos_before.jitter_delay_cycles;
                    if jitter > 0 {
                        trace.record(TraceKind::QosJitter, t, pid.0, jitter, link);
                    }
                }
                trace.record(TraceKind::HopServe, start, pid.0, link, queued);
            }
            let st = stats.link_mut(l);
            st.bytes += line_bytes;
            st.requests += 1;
            st.busy_cycles += occupied;
            st.queue_cycles += queued;
            let sd = stats.link_dir_mut(l, rev);
            sd.bytes += line_bytes;
            sd.requests += 1;
            sd.busy_cycles += occupied;
            sd.queue_cycles += queued;
            t = start.saturating_add(service);
        }
        t - now
    }

    /// Sends one line through the shared PCIe root complex starting at
    /// cycle `now`; returns the extra cycles beyond `now` (queue wait +
    /// serialisation) and records root-complex statistics (plus a
    /// [`TraceKind::PcieServe`] record when `trace` is enabled).
    #[inline]
    pub fn traverse_pcie(
        &mut self,
        pid: ProcessId,
        now: u64,
        line_bytes: u64,
        stats: &mut SystemStats,
        trace: &mut TraceSink,
    ) -> u64 {
        debug_assert!(self.enabled, "traverse on a disabled fabric");
        let start = now.max(self.pcie_busy_until);
        self.pcie_busy_until = start + self.pcie_service;
        trace.record(
            TraceKind::PcieServe,
            start,
            pid.0,
            start - now,
            self.pcie_service,
        );
        let st = stats.pcie_root_mut();
        st.bytes += line_bytes;
        st.requests += 1;
        st.busy_cycles += self.pcie_service;
        st.queue_cycles += start - now;
        start + self.pcie_service - now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Topology, Fabric, SystemStats) {
        // 0-1-2 line: two links.
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let fabric = Fabric::new(&topo, &FabricConfig::nvlink_v1());
        let stats = SystemStats::new(3, topo.num_links());
        (topo, fabric, stats)
    }

    /// `traverse` with the topology's own direction bits for the route.
    fn go(
        topo: &Topology,
        fabric: &mut Fabric,
        stats: &mut SystemStats,
        a: u8,
        b: u8,
        now: u64,
    ) -> u64 {
        use crate::address::GpuId;
        let (src, dst) = (GpuId::new(a), GpuId::new(b));
        fabric.traverse(
            ProcessId(0),
            topo.path(src, dst),
            topo.path_dirs(src, dst),
            now,
            128,
            stats,
            &mut TraceSink::disabled(),
        )
    }

    #[test]
    fn idle_links_cost_only_serialisation() {
        let (topo, mut fabric, mut stats) = fixture();
        let extra = go(&topo, &mut fabric, &mut stats, 0, 2, 1_000);
        assert_eq!(extra, 20, "two idle links: 2 x 10 service cycles");
        assert_eq!(stats.link(LinkId(0)).unwrap().queue_cycles, 0);
        assert_eq!(stats.link(LinkId(0)).unwrap().bytes, 128);
    }

    #[test]
    fn back_to_back_lines_queue_on_the_link() {
        use crate::address::GpuId;
        let (topo, mut fabric, mut stats) = fixture();
        // Three lines all arriving at cycle 0: FCFS serialisation.
        assert_eq!(go(&topo, &mut fabric, &mut stats, 0, 1, 0), 10);
        assert_eq!(go(&topo, &mut fabric, &mut stats, 0, 1, 0), 20);
        assert_eq!(go(&topo, &mut fabric, &mut stats, 0, 1, 0), 30);
        let l = stats.link(topo.link_between(GpuId::new(0), GpuId::new(1)).unwrap());
        assert_eq!(l.unwrap().queue_cycles, 10 + 20);
        assert_eq!(l.unwrap().busy_cycles, 30);
    }

    #[test]
    fn store_and_forward_propagates_congestion() {
        let (topo, mut fabric, mut stats) = fixture();
        // Saturate link (1,2) directly.
        go(&topo, &mut fabric, &mut stats, 1, 2, 0); // busy until 10
        go(&topo, &mut fabric, &mut stats, 1, 2, 0); // busy until 20
        // A 2-hop transfer 0->2 at cycle 0: link (0,1) free (10 cycles),
        // arrives at (1,2) at 10, waits until 20, departs 30.
        let extra = go(&topo, &mut fabric, &mut stats, 0, 2, 0);
        assert_eq!(extra, 30);
    }

    #[test]
    fn shared_window_serialises_opposing_directions() {
        use crate::address::GpuId;
        let (topo, mut fabric, mut stats) = fixture();
        // Default (half-duplex) mode: a 1->0 line queues behind a 0->1
        // line on the same edge.
        assert_eq!(go(&topo, &mut fabric, &mut stats, 0, 1, 0), 10);
        assert_eq!(go(&topo, &mut fabric, &mut stats, 1, 0, 0), 20);
        // Both directions were counted separately even in shared mode.
        let l = topo.link_between(GpuId::new(0), GpuId::new(1)).unwrap();
        let fwd = stats.link_dir(l, false).unwrap();
        let rev = stats.link_dir(l, true).unwrap();
        assert_eq!((fwd.requests, fwd.queue_cycles), (1, 0));
        assert_eq!((rev.requests, rev.queue_cycles), (1, 10));
        assert_eq!(stats.link(l).unwrap().requests, 2, "aggregate still kept");
    }

    #[test]
    fn per_direction_windows_are_independent() {
        use crate::address::GpuId;
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let mut fabric = Fabric::new(&topo, &FabricConfig::nvlink_v1().with_per_direction());
        let mut stats = SystemStats::new(3, topo.num_links());
        // Full-duplex mode: opposing directions never queue on each other…
        assert_eq!(go(&topo, &mut fabric, &mut stats, 0, 1, 0), 10);
        assert_eq!(go(&topo, &mut fabric, &mut stats, 1, 0, 0), 10);
        // …but same-direction traffic still does.
        assert_eq!(go(&topo, &mut fabric, &mut stats, 0, 1, 0), 20);
        let l = topo.link_between(GpuId::new(0), GpuId::new(1)).unwrap();
        assert_eq!(stats.link_dir(l, false).unwrap().queue_cycles, 10);
        assert_eq!(stats.link_dir(l, true).unwrap().queue_cycles, 0);
        assert_eq!(stats.link(l).unwrap().busy_cycles, 30);
    }

    #[test]
    fn pcie_root_complex_is_one_shared_queue() {
        let (_topo, mut fabric, mut stats) = fixture();
        let mut trace = TraceSink::disabled();
        assert_eq!(
            fabric.traverse_pcie(ProcessId(0), 0, 128, &mut stats, &mut trace),
            60
        );
        assert_eq!(
            fabric.traverse_pcie(ProcessId(0), 0, 128, &mut stats, &mut trace),
            120
        );
        assert_eq!(stats.pcie_root().queue_cycles, 60);
        assert_eq!(stats.pcie_root().bytes, 256);
    }

    #[test]
    fn reset_clears_occupancy() {
        let (topo, mut fabric, mut stats) = fixture();
        go(&topo, &mut fabric, &mut stats, 0, 1, 0);
        go(&topo, &mut fabric, &mut stats, 0, 1, 0);
        fabric.reset();
        assert_eq!(
            go(&topo, &mut fabric, &mut stats, 0, 1, 0),
            10,
            "post-reset traversal sees idle links"
        );
    }

    #[test]
    fn rate_limited_traversals_wait_for_the_refill_horizon() {
        use crate::qos::QosConfig;
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        // 128 B burst, 128 B/kcycle sustained: the second back-to-back
        // line on a link waits 1024 cycles for its tokens.
        let cfg = FabricConfig::nvlink_v1()
            .with_qos(QosConfig::off().with_rate_limit(128, 128));
        let mut fabric = Fabric::new(&topo, &cfg);
        fabric.register_process();
        let mut stats = SystemStats::new(3, topo.num_links());
        assert!(fabric.qos_enabled());
        assert_eq!(go(&topo, &mut fabric, &mut stats, 0, 1, 0), 10);
        // The second line is over budget: re-paced to its refill
        // horizon, crossing in spare capacity there.
        assert_eq!(go(&topo, &mut fabric, &mut stats, 0, 1, 0), 1024 + 10);
        let q = stats.qos();
        assert_eq!(q.passed_bytes, 128);
        assert_eq!(q.shaped_bytes, 128);
        assert_eq!(q.throttle_delay_cycles, 1024);
        // Flow regulation: the shaped line occupied no observable
        // window (no queue wait, no busy cycles), so later tenants can
        // never queue behind the token wait and utilisation stays a
        // true occupancy measure.
        assert_eq!(stats.link(LinkId(0)).unwrap().queue_cycles, 0);
        assert_eq!(stats.link(LinkId(0)).unwrap().busy_cycles, 10);
        assert_eq!(stats.link(LinkId(0)).unwrap().bytes, 256, "bytes still counted");
    }

    #[test]
    fn scoped_qos_only_throttles_covered_pairs() {
        use crate::qos::{QosConfig, QosScope};
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        // Rate limit scoped to link 1 only: link 0 traffic is never
        // touched, link 1 traffic pays the refill horizon.
        let cfg = FabricConfig::nvlink_v1().with_qos(
            QosConfig::off()
                .with_rate_limit(128, 128)
                .with_scope(QosScope::links_mask(0b10)),
        );
        let mut fabric = Fabric::new(&topo, &cfg);
        fabric.register_process();
        let mut stats = SystemStats::new(3, topo.num_links());
        // Two back-to-back lines over link 0 (out of scope): second
        // queues on occupancy, no throttle.
        assert_eq!(go(&topo, &mut fabric, &mut stats, 0, 1, 0), 10);
        assert_eq!(go(&topo, &mut fabric, &mut stats, 0, 1, 0), 20);
        assert_eq!(stats.qos().throttle_delay_cycles, 0);
        // Two back-to-back lines over link 1 (in scope): second is
        // re-paced to the token refill horizon.
        assert_eq!(go(&topo, &mut fabric, &mut stats, 1, 2, 0), 10);
        assert_eq!(go(&topo, &mut fabric, &mut stats, 1, 2, 0), 1024 + 10);
        assert_eq!(stats.qos().throttle_delay_cycles, 1024);
    }

    #[test]
    fn scoped_qos_exempts_uncovered_tenants() {
        use crate::qos::{QosConfig, QosScope};
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        // Only tenant 1 is throttled.
        let scope = QosScope {
            tenants: 0b10,
            links: u64::MAX,
        };
        let cfg = FabricConfig::nvlink_v1()
            .with_qos(QosConfig::off().with_rate_limit(128, 128).with_scope(scope));
        let mut fabric = Fabric::new(&topo, &cfg);
        fabric.register_process();
        fabric.register_process();
        let mut stats = SystemStats::new(3, topo.num_links());
        let mut trace = TraceSink::disabled();
        let (src, dst) = (crate::address::GpuId::new(0), crate::address::GpuId::new(1));
        let mut send = |pid: u32, now: u64, fabric: &mut Fabric, stats: &mut SystemStats| {
            fabric.traverse(
                ProcessId(pid),
                topo.path(src, dst),
                topo.path_dirs(src, dst),
                now,
                128,
                stats,
                &mut trace,
            )
        };
        // Tenant 0 is out of scope: back-to-back lines only queue on
        // occupancy (latency 10 then 20), never on tokens.
        assert_eq!(send(0, 0, &mut fabric, &mut stats), 10);
        assert_eq!(send(0, 0, &mut fabric, &mut stats), 20);
        assert_eq!(stats.qos().throttle_delay_cycles, 0);
        // Tenant 1 is in scope: its second line hits the rate limit.
        assert_eq!(send(1, 2000, &mut fabric, &mut stats), 10);
        assert!(send(1, 2000, &mut fabric, &mut stats) >= 1024);
        assert!(stats.qos().throttle_delay_cycles > 0);
    }

    #[test]
    fn default_scope_matches_unscoped_qos_bit_for_bit() {
        use crate::qos::{QosConfig, QosScope};
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let base = QosConfig::off().with_rate_limit(128, 256).with_pacing(500);
        let run = |qos: QosConfig| {
            let cfg = FabricConfig::nvlink_v1().with_qos(qos);
            let mut fabric = Fabric::new(&topo, &cfg);
            fabric.register_process();
            let mut stats = SystemStats::new(3, topo.num_links());
            let mut out = Vec::new();
            for i in 0..6 {
                out.push(go(&topo, &mut fabric, &mut stats, 0, 2, i * 37));
            }
            (out, *stats.qos())
        };
        assert_eq!(run(base), run(base.with_scope(QosScope::all())));
    }

    #[test]
    fn paced_traversals_start_on_epoch_boundaries() {
        use crate::qos::QosConfig;
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let cfg = FabricConfig::nvlink_v1().with_qos(QosConfig::off().with_pacing(1000));
        let mut fabric = Fabric::new(&topo, &cfg);
        let mut stats = SystemStats::new(3, topo.num_links());
        // Arrives at 1: granted at the next epoch boundary (1000).
        assert_eq!(go(&topo, &mut fabric, &mut stats, 0, 1, 1), 1000 - 1 + 10);
        assert_eq!(stats.qos().pacing_delay_cycles, 999);
        // A 2-hop line pays the grid on every hop: first hop granted at
        // 2000 (busy until 2010), second arrives 2010, granted 3000.
        assert_eq!(go(&topo, &mut fabric, &mut stats, 0, 2, 1500), 3010 - 1500);
    }

    #[test]
    fn qos_off_config_keeps_fabric_behaviour_and_counters() {
        let (topo, mut fabric, mut stats) = fixture();
        assert!(!fabric.qos_enabled());
        go(&topo, &mut fabric, &mut stats, 0, 2, 0);
        assert_eq!(*stats.qos(), crate::stats::QosStats::default());
        assert_eq!(*stats.fault(), crate::stats::FaultStats::default());
    }

    #[test]
    fn down_link_stalls_lines_until_recovery() {
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        // Link (0,1) down over [100, 400).
        let cfg = FabricConfig::nvlink_v1()
            .with_faults(FaultPlan::none().with_link_down(0, 100, 400));
        let mut fabric = Fabric::new(&topo, &cfg);
        let mut stats = SystemStats::new(3, topo.num_links());
        // Before the outage: the healthy cost.
        assert_eq!(go(&topo, &mut fabric, &mut stats, 0, 1, 0), 10);
        // During: the line waits at the dead link until 400, then serves.
        assert_eq!(go(&topo, &mut fabric, &mut stats, 0, 1, 150), 400 - 150 + 10);
        let f = stats.fault();
        assert_eq!(f.down_waits, 1);
        assert_eq!(f.down_wait_cycles, 250);
        // Other links are untouched by the outage.
        assert_eq!(go(&topo, &mut fabric, &mut stats, 1, 2, 150), 10);
    }

    #[test]
    fn degraded_link_serves_at_the_multiplier() {
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let cfg = FabricConfig::nvlink_v1()
            .with_faults(FaultPlan::none().with_degraded(0, 0, 1_000, 4));
        let mut fabric = Fabric::new(&topo, &cfg);
        let mut stats = SystemStats::new(3, topo.num_links());
        // 4× service while degraded, and the inflated occupancy windows
        // queue follow-up lines 4× further out.
        assert_eq!(go(&topo, &mut fabric, &mut stats, 0, 1, 0), 40);
        assert_eq!(go(&topo, &mut fabric, &mut stats, 0, 1, 0), 80);
        assert_eq!(stats.link(LinkId(0)).unwrap().busy_cycles, 80);
        assert_eq!(stats.fault().degraded_hops, 2);
        assert_eq!(stats.fault().degraded_extra_cycles, 60);
        // After the window the link is healthy again.
        assert_eq!(go(&topo, &mut fabric, &mut stats, 0, 1, 2_000), 10);
    }

    #[test]
    fn transient_stalls_hit_deterministically_and_reset_rewinds() {
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        // per_1024 = 1024: every hop stalls, so the cost is exact.
        let cfg = FabricConfig::nvlink_v1()
            .with_faults(FaultPlan::none().with_stalls(7, 1024, 5));
        let mut fabric = Fabric::new(&topo, &cfg);
        let mut stats = SystemStats::new(3, topo.num_links());
        assert_eq!(go(&topo, &mut fabric, &mut stats, 0, 1, 1_000), 15);
        assert_eq!(stats.fault().transient_stalls, 1);
        assert_eq!(stats.fault().stall_cycles, 5);
        // A fractional rate replays bit-identically after reset.
        let cfg = FabricConfig::nvlink_v1()
            .with_faults(FaultPlan::none().with_stalls(7, 512, 5));
        let mut fabric = Fabric::new(&topo, &cfg);
        let run = |fabric: &mut Fabric, stats: &mut SystemStats| -> Vec<u64> {
            (0..32)
                .map(|i| go(&topo, fabric, stats, 0, 2, i * 10_000))
                .collect()
        };
        let first = run(&mut fabric, &mut stats);
        fabric.reset();
        let second = run(&mut fabric, &mut stats);
        assert_eq!(first, second);
        assert!(first.iter().any(|&x| x > 20), "some hops stalled");
        assert!(first.contains(&20), "some hops passed clean");
    }

    #[test]
    #[should_panic(expected = "link outage must recover")]
    fn invalid_fault_plan_panics_at_construction() {
        let topo = Topology::from_edges(2, &[(0, 1)]);
        let cfg = FabricConfig::nvlink_v1()
            .with_faults(FaultPlan::none().with_link_down(0, 50, 50));
        let _ = Fabric::new(&topo, &cfg);
    }

    #[test]
    fn fault_plan_on_disabled_fabric_is_inert() {
        let topo = Topology::from_edges(2, &[(0, 1)]);
        let cfg = FabricConfig::disabled()
            .with_faults(FaultPlan::none().with_link_down(0, 0, 100));
        let fabric = Fabric::new(&topo, &cfg);
        assert!(!fabric.enabled());
    }
}
