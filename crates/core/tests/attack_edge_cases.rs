//! Edge-case tests for the attack crate: protocol corner cases, scan
//! bounds, and probe classification on unusual layouts.

use gpubox_attacks::covert::{decode_trace, ChannelParams, ProbeSample};
use gpubox_attacks::{
    classify_pages, discover_conflicts, EvictionSet, Locality, ScanConfig, Thresholds,
};
use gpubox_sim::{GpuId, MultiGpuSystem, ProcessCtx, SystemConfig, VirtAddr};

#[test]
fn scan_respects_max_conflicts_cap() {
    let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
    let pid = sys.create_process(GpuId::new(0));
    let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
    let buf = ctx.malloc_on(GpuId::new(0), 96 * 4096).unwrap();
    let candidates: Vec<VirtAddr> = (1..96u64).map(|p| buf.offset(p * 4096)).collect();
    let cfg = ScanConfig { skip: 16, max_conflicts: 3, votes: 1 };
    let found = discover_conflicts(
        &mut ctx,
        buf,
        &candidates,
        &Thresholds::paper_defaults(),
        Locality::Local,
        &cfg,
    )
    .unwrap();
    assert_eq!(found.len(), 3, "cap must stop the scan early");
}

#[test]
fn scan_with_no_conflicts_returns_empty() {
    // Candidates in different sets than the target: a page's other lines.
    let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
    let pid = sys.create_process(GpuId::new(0));
    let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
    let buf = ctx.malloc_on(GpuId::new(0), 4096).unwrap();
    // All candidates are inside the target's own page at different line
    // offsets — page-consecutive indexing guarantees distinct sets.
    let candidates: Vec<VirtAddr> = (1..32u64).map(|l| buf.offset(l * 128)).collect();
    let found = discover_conflicts(
        &mut ctx,
        buf,
        &candidates,
        &Thresholds::paper_defaults(),
        Locality::Local,
        &ScanConfig::default(),
    )
    .unwrap();
    assert!(found.is_empty(), "no same-set candidates exist: {found:?}");
}

#[test]
fn votes_make_scans_robust_to_jitter() {
    // With jitter on (default small_test) and 3 votes, classification of
    // page classes still matches ground truth.
    let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
    let pid = sys.create_process(GpuId::new(0));
    let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
    let buf = ctx.malloc_on(GpuId::new(0), 64 * 4096).unwrap();
    let candidates: Vec<VirtAddr> = (1..64u64).map(|p| buf.offset(p * 4096)).collect();
    let cfg = ScanConfig { skip: 16, max_conflicts: 0, votes: 3 };
    let found = discover_conflicts(
        &mut ctx,
        buf,
        &candidates,
        &Thresholds::paper_defaults(),
        Locality::Local,
        &cfg,
    )
    .unwrap();
    let (_, tset) = ctx.system().oracle_set_of(pid, buf).unwrap();
    for va in &found {
        assert_eq!(ctx.system().oracle_set_of(pid, *va).unwrap().1, tset);
    }
    assert!(!found.is_empty());
}

#[test]
fn decoder_handles_single_probe_per_slot() {
    let params = ChannelParams { slot_cycles: 2000, ..Default::default() };
    let payload = vec![1u8, 0, 0, 1, 1, 0, 1, 0];
    let frame = params.frame(&payload);
    let samples: Vec<ProbeSample> = frame
        .iter()
        .enumerate()
        .map(|(i, &b)| ProbeSample {
            at: i as u64 * 2000 + 700,
            misses: if b == 1 { 16 } else { 0 },
            lines: 16,
            mean_latency: if b == 1 { 950 } else { 630 },
        })
        .collect();
    let dec = decode_trace(&samples, &params, payload.len());
    assert_eq!(dec.payload, payload);
}

#[test]
fn decoder_fills_missing_tail_slots_with_zero() {
    let params = ChannelParams::default();
    let payload = vec![1u8, 1, 1, 1];
    let frame = params.frame(&payload);
    // Drop all samples for the final two payload slots.
    let cutoff = (frame.len() - 2) as u64 * params.slot_cycles;
    let samples: Vec<ProbeSample> = frame
        .iter()
        .enumerate()
        .flat_map(|(i, &b)| {
            (0..3u64).map(move |p| ProbeSample {
                at: i as u64 * 6000 + p * 2000 + 10,
                misses: if b == 1 { 15 } else { 1 },
                lines: 16,
                mean_latency: if b == 1 { 950 } else { 630 },
            })
        })
        .filter(|s| s.at < cutoff)
        .collect();
    let dec = decode_trace(&samples, &params, payload.len());
    assert_eq!(dec.payload.len(), payload.len());
    assert_eq!(&dec.payload[..2], &[1, 1], "received slots decode");
    assert_eq!(&dec.payload[2..], &[0, 0], "missing slots default to 0");
}

#[test]
fn eviction_set_probe_classifies_remote_hits_and_misses() {
    let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
    let thr = Thresholds::paper_defaults();
    let spy = sys.create_process(GpuId::new(1));
    sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
    let bytes = 96 * 4096u64;
    let classes = {
        let mut ctx = ProcessCtx::new(&mut sys, spy, 0);
        let b = ctx.malloc_on(GpuId::new(0), bytes).unwrap();
        classify_pages(&mut ctx, b, bytes, 4096, 128, 16, &thr, Locality::Remote, &ScanConfig::classify_default()).unwrap()
    };
    let es: EvictionSet = classes.eviction_set(0, 0, 16);
    // Classification left lines resident; flush for a cold start.
    sys.flush_l2(GpuId::new(0));
    let mut ctx = ProcessCtx::new(&mut sys, spy, 0);
    // Cold probe: all 16 lines miss.
    let cold = es.probe(&mut ctx, &thr, Locality::Remote).unwrap();
    assert_eq!(cold.misses, 16);
    // Warm probe: all hit.
    let warm = es.probe(&mut ctx, &thr, Locality::Remote).unwrap();
    assert_eq!(warm.misses, 0);
}

#[test]
fn thresholds_serde_round_trip() {
    let t = Thresholds { local_miss: 333, remote_miss: 777 };
    let json = serde_json::to_string(&t).unwrap();
    let back: Thresholds = serde_json::from_str(&json).unwrap();
    assert_eq!(back, t);
}

#[test]
fn empty_payload_transmits_without_panicking() {
    use gpubox_attacks::covert::bits_from_bytes;
    use gpubox_attacks::{transmit, SetPair};

    let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
    let thr = Thresholds::paper_defaults();
    let trojan = sys.create_process(GpuId::new(0));
    let spy = sys.create_process(GpuId::new(1));
    sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
    let bytes = 96 * 4096u64;
    let tclasses = {
        let mut ctx = ProcessCtx::new(&mut sys, trojan, 0);
        let b = ctx.malloc_on(GpuId::new(0), bytes).unwrap();
        classify_pages(&mut ctx, b, bytes, 4096, 128, 16, &thr, Locality::Local, &ScanConfig::classify_default()).unwrap()
    };
    let sclasses = {
        let mut ctx = ProcessCtx::new(&mut sys, spy, 0);
        let b = ctx.malloc_on(GpuId::new(0), bytes).unwrap();
        classify_pages(&mut ctx, b, bytes, 4096, 128, 16, &thr, Locality::Remote, &ScanConfig::classify_default()).unwrap()
    };
    // Pairing via ground truth is irrelevant here — any pair works for an
    // empty payload; use matching (class 0, offset 0) representatives.
    let pair = SetPair {
        trojan: tclasses.eviction_set(0, 0, 16),
        spy: sclasses.eviction_set(0, 0, 16),
    };
    let rep = transmit(
        &mut sys,
        trojan,
        spy,
        &[pair],
        &bits_from_bytes(b""),
        &ChannelParams::default(),
        thr,
    )
    .unwrap();
    assert_eq!(rep.sent.len(), 0);
    assert_eq!(rep.received.len(), 0);
    assert_eq!(rep.bit_errors, 0);
}
