//! Counting-allocator proof that the unified covert pipeline's
//! steady-state engine loop is allocation-free on **both media**.
//!
//! The media are wired exactly as `transmit_over` wires them (through
//! `ChannelMedium::prepare` / `install_lane`), the engine runs a
//! warm-up window (first batches size the engine scratch buffers, the
//! spy traces get their capacity reserved), the global allocation
//! counter is snapshotted, and a long steady-state window must not move
//! it — for the L2 Prime+Probe medium and the link-congestion medium,
//! on both schedulers.
//!
//! Trace capacity is pre-reserved from a deterministic rehearsal run
//! (same seed ⇒ same sample count): `SpyTrace` growth is the one
//! amortised allocation the production loop keeps, and reserving makes
//! the loop *strictly* allocation-free, which is what this test pins
//! down.
//!
//! The counter is **thread-local** (like `gpubox-sim`'s `alloc_free`):
//! the libtest main thread allocates concurrently for its own
//! bookkeeping, so a process-global counter would flake.

use gpubox_attacks::covert::{ChannelMedium, L2SetMedium, LinkCongestionMedium, SpyTrace};
use gpubox_attacks::{
    align_classes, classify_pages, AlignmentConfig, ChannelParams, LinkChannel, Locality,
    ScanConfig, SetPair,
    Thresholds,
};
use gpubox_sim::{
    Engine, FabricConfig, GpuId, MultiGpuSystem, ProcessCtx, ProcessId, SchedulerKind,
    SystemConfig, VirtAddr,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    /// Allocations observed on *this* thread (const-initialised so the
    /// TLS access itself never allocates).
    static ALLOC_CALLS: Cell<u64> = const { Cell::new(0) };
}

/// This thread's allocation count so far.
fn alloc_calls() -> u64 {
    ALLOC_CALLS.with(Cell::get)
}

fn count_one() {
    // `try_with` so allocations during TLS teardown are ignored rather
    // than panicking.
    let _ = ALLOC_CALLS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const WARMUP: u64 = 80_000;
const STEADY: u64 = 600_000;

fn l2_fixture() -> (MultiGpuSystem, ProcessId, ProcessId, Vec<SetPair>) {
    let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
    let thr = Thresholds::paper_defaults();
    let trojan = sys.create_process(GpuId::new(0));
    let spy = sys.create_process(GpuId::new(1));
    sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
    let bytes = 96 * 4096u64;
    let tclasses = {
        let mut ctx = ProcessCtx::new(&mut sys, trojan, 0);
        let b = ctx.malloc_on(GpuId::new(0), bytes).unwrap();
        classify_pages(&mut ctx, b, bytes, 4096, 128, 16, &thr, Locality::Local, &ScanConfig::classify_default()).unwrap()
    };
    let sclasses = {
        let mut ctx = ProcessCtx::new(&mut sys, spy, 0);
        let b = ctx.malloc_on(GpuId::new(0), bytes).unwrap();
        classify_pages(&mut ctx, b, bytes, 4096, 128, 16, &thr, Locality::Remote, &ScanConfig::classify_default()).unwrap()
    };
    let matches = align_classes(
        &mut sys,
        trojan,
        &tclasses,
        spy,
        &sclasses,
        16,
        &AlignmentConfig::default(),
    )
    .unwrap();
    let pairs = paired(&tclasses, &sclasses, &matches);
    (sys, trojan, spy, pairs)
}

fn paired(
    t: &gpubox_attacks::PageClasses,
    s: &gpubox_attacks::PageClasses,
    m: &[gpubox_attacks::ClassMatch],
) -> Vec<SetPair> {
    gpubox_attacks::paired_sets(t, s, m, 2, 16)
        .into_iter()
        .map(|(t, s)| SetPair { trojan: t, spy: s })
        .collect()
}

/// Runs one medium's agent wiring for `WARMUP + STEADY` cycles and
/// returns the allocation-counter delta across the steady window.
fn steady_state_allocs(
    medium: &dyn ChannelMedium,
    sys: &mut MultiGpuSystem,
    params: &ChannelParams,
    frame: &[u8],
    sched: SchedulerKind,
    reserve: usize,
) -> (u64, Vec<SpyTrace>) {
    medium.prepare(sys).unwrap();
    let mut eng = Engine::with_scheduler(sys, sched);
    let listen = WARMUP + STEADY + 50_000;
    let traces: Vec<SpyTrace> = (0..medium.lanes())
        .map(|lane| medium.install_lane(&mut eng, lane, frame, params, listen))
        .collect();
    eng.run(WARMUP).unwrap();
    for t in &traces {
        t.reserve(reserve);
    }
    let before = alloc_calls();
    eng.run(WARMUP + STEADY).unwrap();
    let after = alloc_calls();
    (after - before, traces)
}

#[test]
fn unified_pipeline_steady_state_allocates_nothing_on_both_media() {
    // A frame long enough that every agent stays live past the steady
    // window (agents go `Done` when their frame is exhausted).
    let params = ChannelParams::default();
    let frame: Vec<u8> = params.frame(&(0..256).map(|i| u8::from(i % 3 != 0)).collect::<Vec<_>>());

    for sched in [SchedulerKind::Linear, SchedulerKind::Heap] {
        // --- L2 Prime+Probe medium ------------------------------------
        // Rehearsal sizes the trace reservation; the measured run then
        // must not allocate at all in steady state.
        let mut rehearsal_samples = 0usize;
        for measured in [false, true] {
            let (mut sys, trojan, spy, pairs) = l2_fixture();
            let medium = L2SetMedium {
                trojan,
                spy,
                pairs: &pairs,
                thresholds: Thresholds::paper_defaults(),
            };
            let reserve = if measured { rehearsal_samples * 2 + 64 } else { 0 };
            let (delta, traces) =
                steady_state_allocs(&medium, &mut sys, &params, &frame, sched, reserve);
            if measured {
                assert_eq!(
                    delta, 0,
                    "L2 medium steady-state loop allocated under {sched:?}"
                );
            } else {
                rehearsal_samples = traces.iter().map(SpyTrace::len).max().unwrap_or(0);
                assert!(rehearsal_samples > 0, "rehearsal must record probes");
            }
        }

        // --- Link-congestion medium -----------------------------------
        let mut rehearsal_samples = 0usize;
        for measured in [false, true] {
            let cfg = SystemConfig::small_test()
                .noiseless()
                .with_fabric(FabricConfig::nvlink_v1());
            let mut sys = MultiGpuSystem::new(cfg);
            let trojan = sys.create_process(GpuId::new(1));
            let spy = sys.create_process(GpuId::new(1));
            sys.enable_peer_access(trojan, GpuId::new(0)).unwrap();
            sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
            let tb = sys.malloc_on(trojan, GpuId::new(0), 32 * 4096).unwrap();
            let sb = sys.malloc_on(spy, GpuId::new(0), 8 * 4096).unwrap();
            let tl: Vec<VirtAddr> = (0..32).map(|i| tb.offset(i * 4096)).collect();
            let sl: Vec<VirtAddr> = (0..8).map(|i| sb.offset(i * 4096)).collect();
            let medium = LinkCongestionMedium {
                trojan,
                spy,
                channel: LinkChannel {
                    trojan_lines: &tl,
                    spy_lines: &sl,
                    trojan_streams: 3,
                },
            };
            let link_params = ChannelParams {
                spy_gap: 600,
                ..Default::default()
            };
            let reserve = if measured { rehearsal_samples * 2 + 64 } else { 0 };
            let (delta, traces) =
                steady_state_allocs(&medium, &mut sys, &link_params, &frame, sched, reserve);
            if measured {
                assert_eq!(
                    delta, 0,
                    "link medium steady-state loop allocated under {sched:?}"
                );
            } else {
                rehearsal_samples = traces.iter().map(SpyTrace::len).max().unwrap_or(0);
                assert!(rehearsal_samples > 0, "rehearsal must record probes");
            }
        }
    }
}
