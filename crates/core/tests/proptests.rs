//! Property-based tests for the attack crate's protocol and data layers.

use gpubox_attacks::covert::{
    bits_from_bytes, bytes_from_bits, decode_trace, stripe_bits, unstripe_bits, ChannelParams,
};
use gpubox_attacks::Thresholds;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Bytes → bits → bytes is the identity.
    #[test]
    fn bits_bytes_roundtrip(data in prop::collection::vec(any::<u8>(), 0..200)) {
        prop_assert_eq!(bytes_from_bits(&bits_from_bytes(&data)), data);
    }

    /// Striping over any k reassembles exactly.
    #[test]
    fn stripe_roundtrip(
        bits in prop::collection::vec(0u8..=1, 0..300),
        k in 1usize..12,
    ) {
        let stripes = stripe_bits(&bits, k);
        prop_assert_eq!(stripes.len(), k);
        let total: usize = stripes.iter().map(Vec::len).sum();
        prop_assert_eq!(total, bits.len());
        prop_assert_eq!(unstripe_bits(&stripes, bits.len()), bits);
    }

    /// A clean synthetic trace decodes exactly, for any payload, phase
    /// offset and probe density.
    #[test]
    fn decoder_exact_on_clean_traces(
        payload in prop::collection::vec(0u8..=1, 1..120),
        phase_frac in 0u64..100,
        probes_per_slot in 2u64..6,
    ) {
        let params = ChannelParams::default();
        let frame = params.frame(&payload);
        let phase = params.slot_cycles * phase_frac / 100;
        let mut samples = Vec::new();
        for (i, &b) in frame.iter().enumerate() {
            for p in 0..probes_per_slot {
                let at = phase
                    + i as u64 * params.slot_cycles
                    + p * (params.slot_cycles / probes_per_slot)
                    + 1;
                samples.push(gpubox_attacks::covert::ProbeSample {
                    at,
                    misses: if b == 1 { 15 } else { 1 },
                    lines: 16,
                    mean_latency: if b == 1 { 950 } else { 630 },
                });
            }
        }
        let dec = decode_trace(&samples, &params, payload.len());
        prop_assert_eq!(dec.payload, payload);
    }

    /// The decoder never panics and always returns the requested number of
    /// bits, even on garbage traces.
    #[test]
    fn decoder_total_on_garbage(
        samples in prop::collection::vec(
            (0u64..1_000_000, 0u32..=16, 200u32..1500),
            0..200,
        ),
        payload_bits in 0usize..64,
    ) {
        let params = ChannelParams::default();
        let mut probe_samples: Vec<_> = samples
            .iter()
            .map(|&(at, misses, lat)| gpubox_attacks::covert::ProbeSample {
                at,
                misses,
                lines: 16,
                mean_latency: lat,
            })
            .collect();
        probe_samples.sort_by_key(|s| s.at);
        let dec = decode_trace(&probe_samples, &params, payload_bits);
        prop_assert_eq!(dec.payload.len(), payload_bits);
        prop_assert!(dec.payload.iter().all(|&b| b <= 1));
    }

    /// Threshold classification is monotone in latency.
    #[test]
    fn thresholds_monotone(cycles in 0u32..2000) {
        let t = Thresholds::paper_defaults();
        if t.is_local_miss(cycles) {
            prop_assert!(t.is_local_miss(cycles + 1));
        }
        if t.is_remote_miss(cycles) {
            prop_assert!(t.is_remote_miss(cycles + 1));
        }
        // Remote boundary sits above the local one.
        prop_assert!(t.remote_miss > t.local_miss);
    }

    /// Miss counting equals the number of latencies over the boundary.
    #[test]
    fn miss_counts_match_filter(lats in prop::collection::vec(100u32..1500, 0..64)) {
        let t = Thresholds::paper_defaults();
        let expect = lats.iter().filter(|&&l| l >= t.remote_miss).count();
        prop_assert_eq!(t.count_remote_misses(&lats), expect);
        let expect_l = lats.iter().filter(|&&l| l >= t.local_miss).count();
        prop_assert_eq!(t.count_local_misses(&lats), expect_l);
    }
}
