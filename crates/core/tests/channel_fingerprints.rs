//! Bit-compatibility gates for the covert-channel wrappers.
//!
//! The PR 4 refactor moved `transmit` and `transmit_link` onto the
//! transport-agnostic `transmit_over` pipeline. These fingerprints were
//! captured at the PR 3 HEAD (commit af72b35), running the *pre-refactor*
//! implementations on small deterministic fixtures: an FNV-1a fold over
//! the decoded payload, the error count, the end-of-run clock and every
//! recorded spy probe sample. The wrappers must keep reproducing them
//! bit-for-bit — framing, agent wiring, engine interleaving and decoding
//! are all inside the hash. (The larger DGX-scale gates live in the
//! `fig09` / `fig10` / `ext_link_congestion_channel` binaries.)

use gpubox_attacks::covert::bits_from_bytes;
use gpubox_attacks::{
    align_classes, classify_pages, paired_sets, transmit, transmit_link, AlignmentConfig,
    ChannelParams, ChannelReport, LinkChannel, Locality, ScanConfig, SetPair, Thresholds,
};
use gpubox_sim::{
    FabricConfig, FaultPlan, GpuId, MultiGpuSystem, ProcessCtx, ProcessId, SchedulerKind,
    SystemConfig, VirtAddr,
};

fn fnv(h: &mut u64, x: u64) {
    *h ^= x;
    *h = h.wrapping_mul(0x0100_0000_01b3);
}

fn report_fingerprint(rep: &ChannelReport) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in &rep.received {
        fnv(&mut h, u64::from(b));
    }
    fnv(&mut h, rep.bit_errors as u64);
    fnv(&mut h, rep.duration_cycles);
    for trace in &rep.traces {
        for s in trace {
            fnv(&mut h, s.at);
            fnv(&mut h, u64::from(s.misses));
            fnv(&mut h, u64::from(s.lines));
            fnv(&mut h, u64::from(s.mean_latency));
        }
    }
    h
}

/// The `channel.rs` test fixture, reproduced through the public API: a
/// two-GPU `small_test` box, trojan on GPU0, spy on GPU1, aligned pairs
/// over classified 96-page buffers.
fn l2_fixture(noiseless: bool) -> (MultiGpuSystem, ProcessId, ProcessId, Vec<SetPair>) {
    let cfg = if noiseless {
        SystemConfig::small_test().noiseless()
    } else {
        SystemConfig::small_test()
    };
    let mut sys = MultiGpuSystem::new(cfg);
    let thr = Thresholds::paper_defaults();
    let trojan = sys.create_process(GpuId::new(0));
    let spy = sys.create_process(GpuId::new(1));
    sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
    let bytes = 96 * 4096u64;
    let tclasses = {
        let mut ctx = ProcessCtx::new(&mut sys, trojan, 0);
        let b = ctx.malloc_on(GpuId::new(0), bytes).unwrap();
        classify_pages(&mut ctx, b, bytes, 4096, 128, 16, &thr, Locality::Local, &ScanConfig::classify_default()).unwrap()
    };
    let sclasses = {
        let mut ctx = ProcessCtx::new(&mut sys, spy, 0);
        let b = ctx.malloc_on(GpuId::new(0), bytes).unwrap();
        classify_pages(&mut ctx, b, bytes, 4096, 128, 16, &thr, Locality::Remote, &ScanConfig::classify_default()).unwrap()
    };
    let matches = align_classes(
        &mut sys,
        trojan,
        &tclasses,
        spy,
        &sclasses,
        16,
        &AlignmentConfig::default(),
    )
    .unwrap();
    let pairs = paired_sets(&tclasses, &sclasses, &matches, 8, 16)
        .into_iter()
        .map(|(t, s)| SetPair { trojan: t, spy: s })
        .collect();
    (sys, trojan, spy, pairs)
}

/// The `link_fixture` of `channel.rs`: trojan and spy on GPU1 with
/// disjoint buffers homed on GPU0, both routes crossing the single
/// NVLink of the two-GPU box.
fn link_fixture() -> (MultiGpuSystem, ProcessId, ProcessId, Vec<VirtAddr>, Vec<VirtAddr>) {
    let cfg = SystemConfig::small_test()
        .noiseless()
        .with_fabric(FabricConfig::nvlink_v1());
    let mut sys = MultiGpuSystem::new(cfg);
    let trojan = sys.create_process(GpuId::new(1));
    let spy = sys.create_process(GpuId::new(1));
    sys.enable_peer_access(trojan, GpuId::new(0)).unwrap();
    sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
    let tb = sys.malloc_on(trojan, GpuId::new(0), 32 * 4096).unwrap();
    let sb = sys.malloc_on(spy, GpuId::new(0), 8 * 4096).unwrap();
    let trojan_lines: Vec<VirtAddr> = (0..32).map(|i| tb.offset(i * 4096)).collect();
    let spy_lines: Vec<VirtAddr> = (0..8).map(|i| sb.offset(i * 4096)).collect();
    (sys, trojan, spy, trojan_lines, spy_lines)
}

#[test]
fn l2_wrapper_reproduces_pr3_noiseless_fingerprint() {
    let (mut sys, trojan, spy, pairs) = l2_fixture(true);
    let payload = bits_from_bytes(b"fingerprint: the quick brown fox");
    let rep = transmit(
        &mut sys,
        trojan,
        spy,
        &pairs[..4],
        &payload,
        &ChannelParams::default(),
        Thresholds::paper_defaults(),
    )
    .unwrap();
    assert_eq!(report_fingerprint(&rep), L2_NOISELESS_FP);
}

#[test]
fn l2_wrapper_reproduces_pr3_noisy_fingerprint() {
    let (mut sys, trojan, spy, pairs) = l2_fixture(false);
    let payload = bits_from_bytes(b"fingerprint: the quick brown fox");
    let rep = transmit(
        &mut sys,
        trojan,
        spy,
        &pairs[..4],
        &payload,
        &ChannelParams::default(),
        Thresholds::paper_defaults(),
    )
    .unwrap();
    assert_eq!(report_fingerprint(&rep), L2_NOISY_FP);
}

#[test]
fn l2_wrapper_reproduces_pr3_single_set_fingerprint() {
    let (mut sys, trojan, spy, pairs) = l2_fixture(true);
    let payload = bits_from_bytes(b"one lane");
    let rep = transmit(
        &mut sys,
        trojan,
        spy,
        &pairs[..1],
        &payload,
        &ChannelParams::default(),
        Thresholds::paper_defaults(),
    )
    .unwrap();
    assert_eq!(report_fingerprint(&rep), L2_SINGLE_SET_FP);
}

#[test]
fn link_wrapper_reproduces_pr3_fingerprint_on_both_schedulers() {
    let payload = bits_from_bytes(b"fingerprint link");
    let params = ChannelParams {
        spy_gap: 600,
        ..Default::default()
    };
    for sched in [SchedulerKind::Heap, SchedulerKind::Linear] {
        let (mut sys, trojan, spy, tl, sl) = link_fixture();
        let rep = transmit_link(
            &mut sys,
            trojan,
            spy,
            &LinkChannel {
                trojan_lines: &tl,
                spy_lines: &sl,
                trojan_streams: 3,
            },
            &payload,
            &params,
            sched,
        )
        .unwrap();
        assert_eq!(report_fingerprint(&rep), LINK_FP, "scheduler {sched:?}");
    }
}

/// The fault-injection layer must be bit-invisible until a fault
/// actually fires: the link golden must hold both with an explicit
/// empty [`FaultPlan`] installed and with a plan whose outage is
/// scheduled far beyond the end of the transmission (armed epochs,
/// binary-searched per access, but the healthy epoch resolves every
/// route).
#[test]
fn link_wrapper_is_bit_identical_with_faults_armed() {
    let payload = bits_from_bytes(b"fingerprint link");
    let params = ChannelParams {
        spy_gap: 600,
        ..Default::default()
    };
    let plans = [
        ("empty plan", FaultPlan::none()),
        (
            "future outage",
            FaultPlan::none().with_link_down(0, 1 << 40, 1 << 41),
        ),
    ];
    for (label, plan) in plans {
        for sched in [SchedulerKind::Heap, SchedulerKind::Linear] {
            let (mut sys, trojan, spy, tl, sl) = link_fixture();
            sys.set_fault_plan(plan.clone()).unwrap();
            let rep = transmit_link(
                &mut sys,
                trojan,
                spy,
                &LinkChannel {
                    trojan_lines: &tl,
                    spy_lines: &sl,
                    trojan_streams: 3,
                },
                &payload,
                &params,
                sched,
            )
            .unwrap();
            assert_eq!(
                report_fingerprint(&rep),
                LINK_FP,
                "({label}, scheduler {sched:?})"
            );
        }
    }
}

const L2_NOISELESS_FP: u64 = 0x9cd3_94df_0ba8_9ad4;
const L2_NOISY_FP: u64 = 0x1115_d453_69b2_2141;
const L2_SINGLE_SET_FP: u64 = 0xb5f2_b81b_ae8d_1625;
const LINK_FP: u64 = 0xe68e_e3c2_cda4_8ab5;

/// Prints the four fingerprints (run with `--ignored --nocapture` to
/// recapture after an *intentional* protocol change; update the
/// constants and document the change in CHANGES.md).
#[test]
#[ignore]
fn print_current_fingerprints() {
    let (mut sys, trojan, spy, pairs) = l2_fixture(true);
    let payload = bits_from_bytes(b"fingerprint: the quick brown fox");
    let rep = transmit(
        &mut sys,
        trojan,
        spy,
        &pairs[..4],
        &payload,
        &ChannelParams::default(),
        Thresholds::paper_defaults(),
    )
    .unwrap();
    println!("L2_NOISELESS_FP: {:#x}", report_fingerprint(&rep));

    let (mut sys, trojan, spy, pairs) = l2_fixture(false);
    let rep = transmit(
        &mut sys,
        trojan,
        spy,
        &pairs[..4],
        &payload,
        &ChannelParams::default(),
        Thresholds::paper_defaults(),
    )
    .unwrap();
    println!("L2_NOISY_FP: {:#x}", report_fingerprint(&rep));

    let (mut sys, trojan, spy, pairs) = l2_fixture(true);
    let payload = bits_from_bytes(b"one lane");
    let rep = transmit(
        &mut sys,
        trojan,
        spy,
        &pairs[..1],
        &payload,
        &ChannelParams::default(),
        Thresholds::paper_defaults(),
    )
    .unwrap();
    println!("L2_SINGLE_SET_FP: {:#x}", report_fingerprint(&rep));

    let payload = bits_from_bytes(b"fingerprint link");
    let params = ChannelParams {
        spy_gap: 600,
        ..Default::default()
    };
    let (mut sys, trojan, spy, tl, sl) = link_fixture();
    let rep = transmit_link(
        &mut sys,
        trojan,
        spy,
        &LinkChannel {
            trojan_lines: &tl,
            spy_lines: &sl,
            trojan_streams: 3,
        },
        &payload,
        &params,
        SchedulerKind::Heap,
    )
    .unwrap();
    println!("LINK_FP: {:#x}", report_fingerprint(&rep));
}
