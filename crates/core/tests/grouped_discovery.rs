//! Equivalence of the two eviction-set discovery paths.
//!
//! The faithful Algorithm-1 scan ([`classify_pages`]) and the
//! group-testing production scan ([`classify_pages_fast`]) must produce
//! identical [`PageClasses`] — the production path buys speed, never a
//! different answer. This file checks that three ways:
//!
//! 1. a property test over randomized cache geometries (set count ×
//!    associativity × page size × locality), with the fast path's output
//!    additionally checked against the simulator's address oracle;
//! 2. an exact classic-vs-fast comparison at full DGX-1 scale, local and
//!    remote;
//! 3. a transmission over fast-path-discovered sets under both engine
//!    schedulers, asserting the recovered payloads are bit-identical —
//!    discovery feeds the channel the same sets regardless of scheduler.

use gpubox_attacks::covert::bits_from_bytes;
use gpubox_attacks::timing_re::measure_timing;
use gpubox_attacks::{
    align_classes, classify_pages, classify_pages_fast, paired_sets, transmit_over,
    verify_classes_against_oracle, AlignmentConfig, ChannelMedium, ChannelParams, Coding,
    L2SetMedium, Locality, PageClasses, Pipeline, ScanConfig, SetPair, Thresholds,
};
use gpubox_sim::{GpuId, MultiGpuSystem, ProcessCtx, SchedulerKind, SystemConfig};
use proptest::prelude::*;

/// A 2-GPU box with an arbitrary L2 geometry (always 128 B lines, LRU).
fn geometry_cfg(sets: u64, ways: u32, page: u64, seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::small_test().with_seed(seed).noiseless();
    cfg.cache.size_bytes = sets * 128 * u64::from(ways);
    cfg.cache.ways = ways;
    cfg.page_size = page;
    cfg
}

/// Classifies a fresh buffer on a fresh system with either classifier.
fn classify_on(cfg: &SystemConfig, remote: bool, pages: u64, fast: bool) -> PageClasses {
    let mut sys = MultiGpuSystem::new(cfg.clone());
    let home = GpuId::new(0);
    let (pid, loc) = if remote {
        let pid = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(pid, home).unwrap();
        (pid, Locality::Remote)
    } else {
        (sys.create_process(home), Locality::Local)
    };
    let page = cfg.page_size;
    let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
    let buf = ctx.malloc_on(home, pages * page).unwrap();
    let thr = Thresholds::paper_defaults();
    let scan = ScanConfig::classify_default();
    let ways = cfg.cache.ways as usize;
    let f = if fast {
        classify_pages_fast
    } else {
        classify_pages
    };
    f(
        &mut ctx,
        buf,
        pages * page,
        page,
        128,
        ways,
        &thr,
        loc,
        &scan,
    )
    .unwrap()
}

/// Oracle check on the fast path's result, on its own fresh system (same
/// seed → same placement).
fn oracle_check(cfg: &SystemConfig, remote: bool, pages: u64, classes: &PageClasses) {
    let mut sys = MultiGpuSystem::new(cfg.clone());
    let home = GpuId::new(0);
    let pid = if remote {
        let pid = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(pid, home).unwrap();
        pid
    } else {
        sys.create_process(home)
    };
    let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
    let buf = ctx.malloc_on(home, pages * cfg.page_size).unwrap();
    assert_eq!(buf, classes.base, "placement must replay identically");
    verify_classes_against_oracle(&sys, pid, classes, pages).expect("oracle verification");
}

proptest! {
    // Each case boots three simulators and runs both classifiers; keep
    // the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Across geometries and localities the production classifier equals
    /// the faithful one and matches the address oracle exactly.
    #[test]
    fn classifiers_agree_across_geometries(
        sets_idx in 0usize..3,
        ways_idx in 0usize..3,
        page_idx in 0usize..2,
        remote in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let sets = [32u64, 64, 128][sets_idx];
        let ways = [4u32, 8, 16][ways_idx];
        let page = [2048u64, 4096][page_idx];
        let lines_per_page = page / 128;
        prop_assume!(lines_per_page <= sets); // ≥1 alignment class
        let classes_n = sets / lines_per_page;
        // Algorithm 1's recovery step needs ≥ 2·ways − 1 pages per class
        // (its serial scan silently absorbs the first `ways − 1` same-set
        // candidates and recovers them only once it has `ways − 1` visible
        // conflicts to group-test with); below that it fragments classes,
        // while the grouped path stays oracle-exact. Equality is only
        // claimed where the faithful path itself is correct.
        let pages = classes_n * (2 * u64::from(ways) + 8);
        let cfg = geometry_cfg(sets, ways, page, seed);

        let classic = classify_on(&cfg, remote, pages, false);
        let fast = classify_on(&cfg, remote, pages, true);
        prop_assert_eq!(&classic.base, &fast.base);
        prop_assert_eq!(&classic.classes, &fast.classes,
            "classifiers diverge at sets={} ways={} page={} remote={}",
            sets, ways, page, remote);
        oracle_check(&cfg, remote, pages, &fast);
    }
}

/// Full DGX-1 scale (jittered timing, 16 MiB buffer, 256 pages): the two
/// classifiers agree bit-for-bit, locally and over NVLink.
#[test]
fn classifiers_agree_on_dgx1() {
    let cfg = SystemConfig::dgx1().with_seed(4242);
    let pages = 16 * 1024 * 1024 / cfg.page_size;
    for remote in [false, true] {
        let classic = classify_on(&cfg, remote, pages, false);
        let fast = classify_on(&cfg, remote, pages, true);
        assert_eq!(classic.base, fast.base);
        assert_eq!(
            classic.classes, fast.classes,
            "classifiers diverge on DGX-1 (remote={remote})"
        );
        oracle_check(&cfg, remote, pages, &fast);
    }
}

/// One fast-path attack preparation on a fresh DGX-1.
fn prepare_fast(seed: u64) -> (MultiGpuSystem, gpubox_sim::ProcessId, gpubox_sim::ProcessId, Vec<SetPair>, Thresholds) {
    let mut sys = MultiGpuSystem::new(SystemConfig::dgx1().with_seed(seed));
    let timing = measure_timing(&mut sys, GpuId::new(0), GpuId::new(1), 48).unwrap();
    let thr = timing.thresholds;
    let trojan = sys.create_process(GpuId::new(0));
    let spy = sys.create_process(GpuId::new(1));
    sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
    let bytes = 16 * 1024 * 1024u64;
    let page = sys.config().page_size;
    let scan = ScanConfig::classify_default();
    let tclasses = {
        let mut ctx = ProcessCtx::new(&mut sys, trojan, 0);
        let b = ctx.malloc_on(GpuId::new(0), bytes).unwrap();
        classify_pages_fast(&mut ctx, b, bytes, page, 128, 16, &thr, Locality::Local, &scan)
            .unwrap()
    };
    let sclasses = {
        let mut ctx = ProcessCtx::new(&mut sys, spy, 0);
        let b = ctx.malloc_on(GpuId::new(0), bytes).unwrap();
        classify_pages_fast(&mut ctx, b, bytes, page, 128, 16, &thr, Locality::Remote, &scan)
            .unwrap()
    };
    let matches = align_classes(
        &mut sys,
        trojan,
        &tclasses,
        spy,
        &sclasses,
        16,
        &AlignmentConfig::default(),
    )
    .unwrap();
    let pairs = paired_sets(&tclasses, &sclasses, &matches, 4, 16)
        .into_iter()
        .map(|(t, s)| SetPair { trojan: t, spy: s })
        .collect();
    (sys, trojan, spy, pairs, thr)
}

/// The covert channel over fast-path-discovered sets recovers the same
/// bits under the heap and linear engine schedulers.
#[test]
fn fast_sets_transmit_identically_under_both_schedulers() {
    let payload = bits_from_bytes(b"grouped discovery feeds both schedulers");
    let params = ChannelParams::default();
    let mut reports = Vec::new();
    for sched in [SchedulerKind::Heap, SchedulerKind::Linear] {
        let (mut sys, trojan, spy, pairs, thr) = prepare_fast(31337);
        let medium = L2SetMedium {
            trojan,
            spy,
            pairs: &pairs,
            thresholds: thr,
        };
        let pipeline = Pipeline {
            decoder: medium.default_decoder(),
            coding: Coding::None,
        };
        let rep = transmit_over(&mut sys, &medium, &payload, &params, &pipeline, sched).unwrap();
        reports.push(rep);
    }
    let (heap, linear) = (&reports[0], &reports[1]);
    assert!(
        heap.error_rate < 0.05,
        "channel over fast-path sets should be near-clean, got {:.3}",
        heap.error_rate
    );
    assert_eq!(heap.received, linear.received);
    assert_eq!(heap.bit_errors, linear.bit_errors);
    assert_eq!(heap.duration_cycles, linear.duration_cycles);
    assert_eq!(heap.listen_cycles, linear.listen_cycles);
}

