//! Property tests for the receive-side stage stack: random payloads ×
//! coding layers × decoders on synthetic traces, with and without
//! injected burst errors.

use gpubox_attacks::covert::{Coding, Decoder, Pipeline, ProbeSample};
use gpubox_attacks::{BoundaryPolicy, ChannelParams};
use proptest::prelude::*;

/// Synthesises a clean two-level probe trace for a frame: `probes` per
/// slot, congested level for `1` bits, baseline for `0` bits.
fn synth(frame: &[u8], params: &ChannelParams, phase: u64, probes: u64) -> Vec<ProbeSample> {
    let slot = params.slot_cycles;
    let mut out = Vec::new();
    for (i, &b) in frame.iter().enumerate() {
        for p in 0..probes {
            out.push(ProbeSample {
                at: phase + i as u64 * slot + p * (slot / probes) + 1,
                misses: if b == 1 { 15 } else { 1 },
                lines: 16,
                mean_latency: if b == 1 { 1020 } else { 640 },
            });
        }
    }
    out
}

/// Every (decoder, coding) combination the pipeline composes.
fn stacks() -> Vec<Pipeline> {
    let mut out = Vec::new();
    for decoder in [
        Decoder::Vote(BoundaryPolicy::TwoMeans),
        Decoder::Vote(BoundaryPolicy::Quantile),
        Decoder::MatchedFilter(BoundaryPolicy::TwoMeans),
        Decoder::MatchedFilter(BoundaryPolicy::Quantile),
    ] {
        for coding in [Coding::None, Coding::Hamming74 { interleave_depth: 14 }] {
            out.push(Pipeline { decoder, coding });
        }
    }
    out
}

/// Runs one pipeline over a synthetic single-lane channel: encode,
/// frame, synthesise the trace (optionally corrupting a burst of slots),
/// decode, strip the coding. Returns the recovered payload bits.
fn run_stack(
    pipeline: &Pipeline,
    payload: &[u8],
    params: &ChannelParams,
    phase: u64,
    probes: u64,
    burst: Option<(usize, usize)>,
) -> Vec<u8> {
    let coded = pipeline.coding.encode(payload);
    let frame = params.frame(&coded);
    let mut samples = synth(&frame, params, phase, probes);
    if let Some((start_slot, len)) = burst {
        // A congestion episode: every probe inside `len` consecutive
        // payload slots reads at a saturated-plus level, regardless of
        // the transmitted bit.
        let slot = params.slot_cycles;
        let lo = phase + (params.preamble_bits + start_slot) as u64 * slot;
        let hi = lo + len as u64 * slot;
        for s in &mut samples {
            if s.at >= lo && s.at < hi {
                s.misses = 16;
                s.mean_latency = 1180;
            }
        }
    }
    let dec = pipeline.decoder.decode(&samples, params, coded.len());
    pipeline.coding.decode(&dec.payload, payload.len()).0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Clean traces decode exactly under every decoder/coding stack,
    /// for any payload, slot phase and probe density.
    #[test]
    fn every_stack_round_trips_clean_traces(
        payload in prop::collection::vec(0u8..=1, 1..90),
        phase_frac in 0u64..100,
        probes in 2u64..6,
    ) {
        let params = ChannelParams::default();
        let phase = params.slot_cycles * phase_frac / 100;
        for pipeline in stacks() {
            let got = run_stack(&pipeline, &payload, &params, phase, probes, None);
            prop_assert_eq!(&got, &payload, "stack {:?}", pipeline);
        }
    }

    /// A burst error spanning a couple of slots is fully repaired by
    /// Hamming(7,4) + interleaving (the interleaver spreads the burst
    /// across codewords), under both decoders.
    #[test]
    fn interleaved_hamming_repairs_slot_bursts(
        payload in prop::collection::vec(0u8..=1, 40..80),
        phase_frac in 0u64..100,
        burst_start in 0usize..30,
        burst_len in 1usize..3,
    ) {
        let params = ChannelParams::default();
        let phase = params.slot_cycles * phase_frac / 100;
        for decoder in [
            Decoder::Vote(BoundaryPolicy::TwoMeans),
            Decoder::MatchedFilter(BoundaryPolicy::TwoMeans),
        ] {
            let coded = Pipeline { decoder, coding: Coding::Hamming74 { interleave_depth: 14 } };
            let got = run_stack(&coded, &payload, &params, phase, 4, Some((burst_start, burst_len)));
            prop_assert_eq!(&got, &payload, "burst survives coding under {:?}", decoder);

            // The same burst on the uncoded channel corrupts the
            // payload whenever it lands on slots whose bit is 0 —
            // i.e. coding is doing real work, not vacuously passing.
            let raw = Pipeline { decoder, coding: Coding::None };
            let got_raw = run_stack(&raw, &payload, &params, phase, 4, Some((burst_start, burst_len)));
            let zeros_in_burst = payload[burst_start.min(payload.len())
                ..(burst_start + burst_len).min(payload.len())]
                .iter()
                .filter(|&&b| b == 0)
                .count();
            let raw_errors = got_raw.iter().zip(&payload).filter(|(a, b)| a != b).count();
            prop_assert_eq!(raw_errors, zeros_in_burst, "uncoded channel takes the burst");
        }
    }

    /// Decoder equivalence gate: on two-tight-cluster traces the
    /// matched filter agrees with the per-sample vote bit for bit (its
    /// gains only show on noisy, heavy-tailed traces).
    #[test]
    fn matched_filter_agrees_with_vote_on_clean_traces(
        payload in prop::collection::vec(0u8..=1, 1..60),
        phase_frac in 0u64..100,
    ) {
        let params = ChannelParams::default();
        let phase = params.slot_cycles * phase_frac / 100;
        let frame = params.frame(&payload);
        let samples = synth(&frame, &params, phase, 3);
        let vote = Decoder::Vote(BoundaryPolicy::TwoMeans).decode(&samples, &params, payload.len());
        let mf = Decoder::MatchedFilter(BoundaryPolicy::TwoMeans)
            .decode(&samples, &params, payload.len());
        prop_assert_eq!(vote.payload, mf.payload);
    }
}
