//! Application fingerprinting from memorygrams (paper Sec. V-A).
//!
//! The attacker collects labelled memorygrams by spying on known
//! applications offline, trains an image classifier, and can then identify
//! what a victim GPU is running — the paper reaches 99.91% over six CUDA
//! workloads (Fig. 12).

use gpubox_classify::{
    stratified_split, ConfusionMatrix, KnnClassifier, LogisticClassifier, Memorygram, TrainConfig,
};
use serde::{Deserialize, Serialize};

/// Downsampled feature image size (rows × cols) fed to the classifier.
pub const FEATURE_ROWS: usize = 24;
/// Feature image columns.
pub const FEATURE_COLS: usize = 24;

/// Converts a memorygram to a normalised feature vector.
pub fn gram_features(gram: &Memorygram) -> Vec<f32> {
    gram.downsample(FEATURE_ROWS, FEATURE_COLS, 16.0)
}

/// A labelled memorygram collection.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FingerprintDataset {
    /// Class names, index = label.
    pub labels: Vec<String>,
    /// Collected samples.
    pub samples: Vec<(Memorygram, usize)>,
}

impl FingerprintDataset {
    /// Creates an empty dataset over the given class names.
    pub fn new(labels: Vec<String>) -> Self {
        FingerprintDataset {
            labels,
            samples: Vec::new(),
        }
    }

    /// Adds a labelled memorygram.
    ///
    /// # Panics
    ///
    /// Panics when the label is out of range.
    pub fn push(&mut self, gram: Memorygram, label: usize) {
        assert!(label < self.labels.len(), "label out of range");
        self.samples.push((gram, label));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Trains the classifier and evaluates on a held-out test split,
    /// mirroring the paper's 150/150/1200-per-class protocol via
    /// fractions.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn train_and_evaluate(
        &self,
        train_frac: f64,
        val_frac: f64,
        seed: u64,
    ) -> FingerprintReport {
        assert!(!self.is_empty(), "no samples collected");
        let data: Vec<(Vec<f32>, usize)> = self
            .samples
            .iter()
            .map(|(g, y)| (gram_features(g), *y))
            .collect();
        let classes = self.labels.len();
        let split = stratified_split(&data, classes, train_frac, val_frac, seed);
        let model = LogisticClassifier::train(&split.train, classes, &TrainConfig::default());
        let val_cm = ConfusionMatrix::evaluate(&split.val, classes, |x| model.predict(x));
        let test_cm = ConfusionMatrix::evaluate(&split.test, classes, |x| model.predict(x));
        // k-NN baseline on the same split (a sanity anchor: if k-NN beats
        // the trained model badly, training failed).
        let knn = KnnClassifier::new(split.train.clone(), 3);
        let knn_cm = ConfusionMatrix::evaluate(&split.test, classes, |x| knn.predict(x));
        FingerprintReport {
            labels: self.labels.clone(),
            val_accuracy: val_cm.accuracy(),
            test_accuracy: test_cm.accuracy(),
            knn_test_accuracy: knn_cm.accuracy(),
            confusion: test_cm,
            model,
        }
    }
}

/// Outcome of the fingerprinting pipeline.
#[derive(Debug, Clone)]
pub struct FingerprintReport {
    /// Class names.
    pub labels: Vec<String>,
    /// Validation-set accuracy.
    pub val_accuracy: f64,
    /// Held-out test accuracy (the paper's headline 99.91%).
    pub test_accuracy: f64,
    /// k-NN (k=3) baseline accuracy on the same test split.
    pub knn_test_accuracy: f64,
    /// Test confusion matrix (Fig. 12).
    pub confusion: ConfusionMatrix,
    /// The trained model, usable for live identification.
    pub model: LogisticClassifier,
}

impl FingerprintReport {
    /// Predicts the application behind a fresh memorygram.
    pub fn identify(&self, gram: &Memorygram) -> &str {
        let label = self.model.predict(&gram_features(gram));
        &self.labels[label]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthesises memorygrams with class-dependent structure.
    fn synthetic_gram(class: usize, seed: u64) -> Memorygram {
        let sets = 64;
        let mut g = Memorygram::new(sets);
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for t in 0..80usize {
            let row: Vec<u8> = (0..sets)
                .map(|s| {
                    let active = match class {
                        0 => s < 20,                      // low bands
                        1 => s % 4 == 0,                  // striped
                        _ => (t / 10) % 2 == 0 && s > 40, // blinking tail
                    };
                    if active {
                        (8 + (rnd() % 8)) as u8
                    } else {
                        (rnd() % 2) as u8
                    }
                })
                .collect();
            g.push_sweep(row);
        }
        g
    }

    #[test]
    fn distinct_patterns_classify_accurately() {
        let mut ds = FingerprintDataset::new(vec!["a".into(), "b".into(), "c".into()]);
        for class in 0..3usize {
            for i in 0..30u64 {
                ds.push(synthetic_gram(class, i * 3 + class as u64), class);
            }
        }
        let rep = ds.train_and_evaluate(0.4, 0.2, 5);
        assert!(rep.test_accuracy > 0.95, "accuracy {}", rep.test_accuracy);
        assert!(
            rep.knn_test_accuracy > 0.9,
            "knn baseline {}",
            rep.knn_test_accuracy
        );
        // Live identification works on a fresh sample.
        let fresh = synthetic_gram(1, 9999);
        assert_eq!(rep.identify(&fresh), "b");
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_rejected() {
        let mut ds = FingerprintDataset::new(vec!["only".into()]);
        ds.push(Memorygram::new(4), 3);
    }
}
