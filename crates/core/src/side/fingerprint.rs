//! Application fingerprinting from memorygrams (paper Sec. V-A).
//!
//! The attacker collects labelled memorygrams by spying on known
//! applications offline, trains an image classifier, and can then identify
//! what a victim GPU is running — the paper reaches 99.91% over six CUDA
//! workloads (Fig. 12).

use gpubox_classify::{
    stratified_split, ConfusionMatrix, KnnClassifier, LogisticClassifier, Memorygram, TrainConfig,
};
use rayon::iter::{IntoParallelRefIterator, ParallelIterator};
use serde::{Deserialize, Serialize};

/// Downsampled feature image size (rows × cols) fed to the classifier.
pub const FEATURE_ROWS: usize = 24;
/// Feature image columns.
pub const FEATURE_COLS: usize = 24;
/// Weight of the raw image block relative to the placement-invariant
/// block in the combined feature vector.
const IMAGE_WEIGHT: f32 = 0.15;

/// Averages `v` into `out` equal-width bins.
fn resample(v: &[f64], out: usize) -> Vec<f32> {
    if v.is_empty() {
        return vec![0.0; out];
    }
    (0..out)
        .map(|i| {
            let lo = i * v.len() / out;
            let hi = ((i + 1) * v.len() / out).max(lo + 1).min(v.len());
            (v[lo..hi].iter().sum::<f64>() / (hi - lo) as f64) as f32
        })
        .collect()
}

/// Placement-invariant signature of a memorygram.
///
/// Victim buffers get fresh random physical frames on every run, so the
/// paper notes that footprints *shift across cache sets* between
/// captures of the same application. Features that depend on which set a
/// column landed in therefore do not transfer between samples. This
/// block is invariant to that shift:
///
/// - the **sorted** per-set mean-miss profile (a spatial activity
///   histogram — how many sets are how hot, not which ones);
/// - the temporal activity profile relative to its own mean (epoch
///   bands, bursts), resampled to a fixed width;
/// - scalar aggregates: overall activity level, active-set fraction,
///   temporal variance, and capture length.
fn invariant_features(g: &Memorygram) -> Vec<f32> {
    let sweeps = g.num_sweeps().max(1) as f64;
    let mut per_set: Vec<f64> = g
        .misses_per_set()
        .iter()
        .map(|&m| m as f64 / sweeps)
        .collect();
    per_set.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let spatial = resample(&per_set, 16);
    let per_sweep: Vec<f64> = g
        .misses_per_sweep()
        .iter()
        .skip(1) // the first sweep is the spy's own cold fill
        .map(|&m| m as f64)
        .collect();
    let mean = (per_sweep.iter().sum::<f64>() / per_sweep.len().max(1) as f64).max(1e-9);
    let temporal_rel: Vec<f64> = per_sweep.iter().map(|&m| m / mean).collect();
    let temporal = resample(&temporal_rel, 24);

    let mut f = Vec::with_capacity(16 + 24 + 4);
    let peak = per_set.first().copied().unwrap_or(0.0).max(1e-9) as f32;
    f.extend(spatial.iter().map(|&s| (s / peak).min(1.0)));
    f.extend(temporal.iter().map(|&t| (t / 4.0).min(1.0)));
    f.push(((mean / 16.0) as f32).min(1.0));
    let active =
        per_set.iter().filter(|&&m| m > 0.5).count() as f32 / per_set.len().max(1) as f32;
    f.push(active);
    let var = temporal_rel
        .iter()
        .map(|&t| (t - 1.0) * (t - 1.0))
        .sum::<f64>()
        / per_sweep.len().max(1) as f64;
    f.push((var as f32).min(4.0) / 4.0);
    f.push(((per_sweep.len() as f32) / 256.0).min(1.0));
    f
}

/// Converts a memorygram to a normalised feature vector: the
/// placement-invariant signature block followed by the down-weighted
/// [`FEATURE_ROWS`]`×`[`FEATURE_COLS`] image (which still carries raw
/// spatio-temporal structure for captures that share a placement).
pub fn gram_features(gram: &Memorygram) -> Vec<f32> {
    let mut f = invariant_features(gram);
    let img = gram.downsample(FEATURE_ROWS, FEATURE_COLS, 16.0);
    f.extend(img.iter().map(|&v| v * IMAGE_WEIGHT));
    f
}

/// A labelled memorygram collection.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FingerprintDataset {
    /// Class names, index = label.
    pub labels: Vec<String>,
    /// Collected samples.
    pub samples: Vec<(Memorygram, usize)>,
}

impl FingerprintDataset {
    /// Creates an empty dataset over the given class names.
    pub fn new(labels: Vec<String>) -> Self {
        FingerprintDataset {
            labels,
            samples: Vec::new(),
        }
    }

    /// Adds a labelled memorygram.
    ///
    /// # Panics
    ///
    /// Panics when the label is out of range.
    pub fn push(&mut self, gram: Memorygram, label: usize) {
        assert!(label < self.labels.len(), "label out of range");
        self.samples.push((gram, label));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Trains the classifier and evaluates on a held-out test split,
    /// mirroring the paper's 150/150/1200-per-class protocol via
    /// fractions.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn train_and_evaluate(
        &self,
        train_frac: f64,
        val_frac: f64,
        seed: u64,
    ) -> FingerprintReport {
        assert!(!self.is_empty(), "no samples collected");
        // Feature extraction is a pure per-sample map — fan it out.
        // Results come back in sample order, so the split stays
        // deterministic regardless of thread count.
        let data: Vec<(Vec<f32>, usize)> = self
            .samples
            .par_iter()
            .map(|(g, y)| (gram_features(g), *y))
            .collect();
        let classes = self.labels.len();
        let split = stratified_split(&data, classes, train_frac, val_frac, seed);
        let model = LogisticClassifier::train(&split.train, classes, &TrainConfig::default());
        let val_cm = ConfusionMatrix::evaluate(&split.val, classes, |x| model.predict(x));
        let test_cm = ConfusionMatrix::evaluate(&split.test, classes, |x| model.predict(x));
        // k-NN baseline on the same split (a sanity anchor: if k-NN beats
        // the trained model badly, training failed). Predictions fan out
        // across threads; the result is order-preserving.
        let knn = KnnClassifier::new(split.train.clone(), 3);
        let test_xs: Vec<Vec<f32>> = split.test.iter().map(|(x, _)| x.clone()).collect();
        let knn_preds = knn.predict_batch(&test_xs);
        let mut knn_cm = ConfusionMatrix::new(classes);
        for ((_, y), p) in split.test.iter().zip(knn_preds) {
            knn_cm.record(*y, p);
        }
        FingerprintReport {
            labels: self.labels.clone(),
            val_accuracy: val_cm.accuracy(),
            test_accuracy: test_cm.accuracy(),
            knn_test_accuracy: knn_cm.accuracy(),
            confusion: test_cm,
            model,
        }
    }
}

/// Outcome of the fingerprinting pipeline.
#[derive(Debug, Clone)]
pub struct FingerprintReport {
    /// Class names.
    pub labels: Vec<String>,
    /// Validation-set accuracy.
    pub val_accuracy: f64,
    /// Held-out test accuracy (the paper's headline 99.91%).
    pub test_accuracy: f64,
    /// k-NN (k=3) baseline accuracy on the same test split.
    pub knn_test_accuracy: f64,
    /// Test confusion matrix (Fig. 12).
    pub confusion: ConfusionMatrix,
    /// The trained model, usable for live identification.
    pub model: LogisticClassifier,
}

impl FingerprintReport {
    /// Predicts the application behind a fresh memorygram.
    pub fn identify(&self, gram: &Memorygram) -> &str {
        let label = self.model.predict(&gram_features(gram));
        &self.labels[label]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthesises memorygrams with class-dependent structure.
    fn synthetic_gram(class: usize, seed: u64) -> Memorygram {
        let sets = 64;
        let mut g = Memorygram::new(sets);
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for t in 0..80usize {
            let row: Vec<u8> = (0..sets)
                .map(|s| {
                    let active = match class {
                        0 => s < 20,                      // low bands
                        1 => s % 4 == 0,                  // striped
                        _ => (t / 10) % 2 == 0 && s > 40, // blinking tail
                    };
                    if active {
                        (8 + (rnd() % 8)) as u8
                    } else {
                        (rnd() % 2) as u8
                    }
                })
                .collect();
            g.push_sweep(row);
        }
        g
    }

    #[test]
    fn distinct_patterns_classify_accurately() {
        let mut ds = FingerprintDataset::new(vec!["a".into(), "b".into(), "c".into()]);
        for class in 0..3usize {
            for i in 0..30u64 {
                ds.push(synthetic_gram(class, i * 3 + class as u64), class);
            }
        }
        let rep = ds.train_and_evaluate(0.4, 0.2, 5);
        assert!(rep.test_accuracy > 0.95, "accuracy {}", rep.test_accuracy);
        assert!(
            rep.knn_test_accuracy > 0.9,
            "knn baseline {}",
            rep.knn_test_accuracy
        );
        // Live identification works on a fresh sample.
        let fresh = synthetic_gram(1, 9999);
        assert_eq!(rep.identify(&fresh), "b");
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_rejected() {
        let mut ds = FingerprintDataset::new(vec!["only".into()]);
        ds.push(Memorygram::new(4), 3);
    }
}
