//! Memorygram capture: the spy's probe sweeps over monitored cache sets.

use crate::eviction::EvictionSet;
use crate::thresholds::Thresholds;
use gpubox_classify::Memorygram;
use gpubox_sim::{
    Agent, Engine, MultiGpuSystem, Op, OpResult, ProbeStage, ProcessId, SimResult, VirtAddr,
};
use std::cell::RefCell;
use std::rc::Rc;

/// Recorder settings.
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Cycles to record for (the spy decides how long to watch).
    pub duration: u64,
    /// Cycles the spy idles between sweeps (0 = continuous).
    pub sweep_gap: u64,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            duration: 50_000_000,
            sweep_gap: 0,
        }
    }
}

/// The spy agent performing round-robin Prime+Probe sweeps.
#[derive(Debug)]
struct RecorderAgent {
    pid: ProcessId,
    sets: Vec<Vec<VirtAddr>>,
    thresholds: Thresholds,
    cfg: RecorderConfig,
    cur_set: usize,
    row: Vec<u8>,
    gram: Rc<RefCell<Memorygram>>,
    gap_next: bool,
}

impl Agent for RecorderAgent {
    fn next_op(&mut self, now: u64, stage: &mut ProbeStage) -> Op {
        if now >= self.cfg.duration {
            return Op::Done;
        }
        if self.gap_next {
            self.gap_next = false;
            return Op::Compute(self.cfg.sweep_gap.max(1));
        }
        stage.extend_from_slice(&self.sets[self.cur_set]);
        Op::LoadBatch
    }

    fn on_result(&mut self, res: &OpResult<'_>) {
        if res.latencies.is_empty() {
            return;
        }
        let misses = self.thresholds.count_remote_misses(res.latencies) as u8;
        self.row.push(misses);
        self.cur_set += 1;
        if self.cur_set >= self.sets.len() {
            self.cur_set = 0;
            self.gram
                .borrow_mut()
                .push_sweep(std::mem::take(&mut self.row));
            if self.cfg.sweep_gap > 0 {
                self.gap_next = true;
            }
        }
    }

    fn process(&self) -> ProcessId {
        self.pid
    }

    fn label(&self) -> &str {
        "memorygram-recorder"
    }
}

/// Records a memorygram of `victim` (and any extra agents, e.g. noise
/// tenants) as seen through the spy's eviction sets.
///
/// The spy probes each set warp-parallel, classifies per-line latencies
/// with the remote thresholds, and appends one row per full sweep.
///
/// # Errors
///
/// Propagates simulator errors from any agent.
pub fn record_memorygram(
    sys: &mut MultiGpuSystem,
    spy_pid: ProcessId,
    sets: &[EvictionSet],
    thresholds: Thresholds,
    cfg: &RecorderConfig,
    victims: Vec<Box<dyn Agent>>,
) -> SimResult<Memorygram> {
    let gram = Rc::new(RefCell::new(Memorygram::new(sets.len())));
    let agent = RecorderAgent {
        pid: spy_pid,
        sets: sets.iter().map(|s| s.lines().to_vec()).collect(),
        thresholds,
        cfg: cfg.clone(),
        cur_set: 0,
        row: Vec::with_capacity(sets.len()),
        gram: Rc::clone(&gram),
        gap_next: false,
    };
    let mut eng = Engine::new(sys);
    eng.add_agent(Box::new(agent), 0);
    for v in victims {
        eng.add_agent(v, 0);
    }
    eng.run(cfg.duration)?;
    let out = gram.borrow().clone();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eviction::{classify_pages, Locality, ScanConfig};
    use gpubox_sim::{GpuId, NoiseAgent, NoiseConfig, ProcessCtx, SystemConfig};

    fn spy_sets(sys: &mut MultiGpuSystem) -> (ProcessId, Vec<EvictionSet>) {
        let thr = Thresholds::paper_defaults();
        let spy = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
        let bytes = 96 * 4096u64;
        let classes = {
            let mut ctx = ProcessCtx::new(sys, spy, 0);
            let b = ctx.malloc_on(GpuId::new(0), bytes).unwrap();
            classify_pages(&mut ctx, b, bytes, 4096, 128, 16, &thr, Locality::Remote, &ScanConfig::classify_default()).unwrap()
        };
        let sets = classes.enumerate_sets(32, 16);
        (spy, sets)
    }

    #[test]
    fn quiet_victim_gives_quiet_memorygram() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let (spy, sets) = spy_sets(&mut sys);
        let cfg = RecorderConfig {
            duration: 3_000_000,
            sweep_gap: 0,
        };
        let gram = record_memorygram(
            &mut sys,
            spy,
            &sets,
            Thresholds::paper_defaults(),
            &cfg,
            vec![],
        )
        .unwrap();
        assert!(gram.num_sweeps() > 3);
        // After the first (cold) sweep everything hits.
        let warm_misses: u64 = gram.misses_per_sweep()[1..].iter().sum();
        assert_eq!(warm_misses, 0, "no victim, no misses after warmup");
    }

    #[test]
    fn active_victim_lights_up_the_memorygram() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let (spy, sets) = spy_sets(&mut sys);
        // Victim on GPU0 hammering its own local buffer.
        let victim_pid = sys.create_process(GpuId::new(0));
        let vbuf = sys
            .malloc_on(victim_pid, GpuId::new(0), 256 * 1024)
            .unwrap();
        let victim = NoiseAgent::new(
            victim_pid,
            vbuf,
            2048,
            128,
            NoiseConfig {
                burst_len: 64,
                idle_between_bursts: 1_000,
                seed: 3,
            },
        );
        let cfg = RecorderConfig {
            duration: 3_000_000,
            sweep_gap: 0,
        };
        let gram = record_memorygram(
            &mut sys,
            spy,
            &sets,
            Thresholds::paper_defaults(),
            &cfg,
            vec![Box::new(victim)],
        )
        .unwrap();
        let total: u64 = gram.misses_per_sweep()[1..].iter().sum();
        assert!(total > 20, "victim activity must show up, got {total}");
    }
}
