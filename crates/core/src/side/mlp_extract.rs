//! MLP model extraction from memorygrams (paper Sec. V-B).
//!
//! Training a wider hidden layer moves more weight/activation traffic
//! through the L2, so the *average misses per monitored set* separates the
//! candidate widths (Table II: 5653 / 6846 / 8744 / 10197 for
//! 64/128/256/512 neurons). The temporal profile additionally reveals the
//! number of epochs (Fig. 15: two bands for two epochs).

use gpubox_classify::Memorygram;
use serde::{Deserialize, Serialize};

/// Summary statistics of one MLP-victim memorygram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpGramStats {
    /// Average misses per monitored set (the Table II metric).
    pub avg_misses_per_set: f64,
    /// Total misses.
    pub total_misses: u64,
    /// Number of monitored sets.
    pub sets: usize,
    /// Number of sweeps.
    pub sweeps: usize,
}

/// Computes the Table II statistics for one capture.
pub fn summarize_mlp_gram(gram: &Memorygram) -> MlpGramStats {
    MlpGramStats {
        avg_misses_per_set: gram.average_misses_per_set(),
        total_misses: gram.total_misses(),
        sets: gram.num_sets(),
        sweeps: gram.num_sweeps(),
    }
}

/// Detects the number of training epochs from the temporal activity
/// profile: epochs show as contiguous high-activity bands separated by
/// quiet gaps (data reloading / evaluation phases), Fig. 15.
///
/// `smooth` is the moving-average window (in sweeps); a band must exceed
/// half the profile's peak to count.
pub fn detect_epochs(gram: &Memorygram, smooth: usize) -> usize {
    let mut profile = gram.misses_per_sweep();
    if profile.is_empty() {
        return 0;
    }
    // The first sweeps are dominated by the spy's own cold fill of its
    // eviction sets; drop them so the warm-up burst does not register as
    // a band (nor dwarf the victim's real activity level).
    let skip = 2.min(profile.len() - 1);
    profile.drain(..skip);
    if profile.is_empty() {
        return 0;
    }
    let w = smooth.max(1);
    let smoothed: Vec<f64> = (0..profile.len())
        .map(|i| {
            let lo = i.saturating_sub(w / 2);
            let hi = (i + w / 2 + 1).min(profile.len());
            profile[lo..hi].iter().map(|&v| v as f64).sum::<f64>() / (hi - lo) as f64
        })
        .collect();
    // Robust activity level: 90th percentile rather than the maximum, so
    // a single outlier burst cannot set an unreachable threshold.
    let mut sorted = smoothed.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let peak = sorted[(sorted.len() - 1) * 9 / 10];
    if peak <= 0.0 {
        return 0;
    }
    let thresh = peak * 0.5;
    let mut bands = 0;
    let mut inside = false;
    for &v in &smoothed {
        if v >= thresh && !inside {
            bands += 1;
            inside = true;
        } else if v < thresh && inside {
            inside = false;
        }
    }
    bands
}

#[cfg(test)]
mod tests {
    use super::*;

    fn banded_gram(bands: usize, band_len: usize, gap: usize) -> Memorygram {
        let sets = 16;
        let mut g = Memorygram::new(sets);
        for b in 0..bands {
            for _ in 0..band_len {
                g.push_sweep(vec![10u8; sets]);
            }
            if b + 1 < bands {
                for _ in 0..gap {
                    g.push_sweep(vec![0u8; sets]);
                }
            }
        }
        g
    }

    #[test]
    fn two_bands_detected_as_two_epochs() {
        let g = banded_gram(2, 30, 12);
        assert_eq!(detect_epochs(&g, 3), 2);
    }

    #[test]
    fn single_band_is_one_epoch() {
        let g = banded_gram(1, 50, 0);
        assert_eq!(detect_epochs(&g, 3), 1);
    }

    #[test]
    fn empty_gram_has_zero_epochs() {
        let g = Memorygram::new(8);
        assert_eq!(detect_epochs(&g, 3), 0);
    }

    #[test]
    fn stats_reflect_gram() {
        let g = banded_gram(1, 10, 0);
        let s = summarize_mlp_gram(&g);
        assert_eq!(s.sets, 16);
        assert_eq!(s.sweeps, 10);
        assert_eq!(s.total_misses, 16 * 10 * 10);
        assert!((s.avg_misses_per_set - 100.0).abs() < 1e-12);
    }
}
