//! Side-channel attacks on a remote GPU (paper Sec. V).
//!
//! The spy allocates its eviction sets on the victim's GPU, probes them in
//! round-robin sweeps, and records a [`gpubox_classify::Memorygram`]: per
//! monitored set, per sweep, how many lines the victim displaced. Two
//! attacks consume the memorygram:
//!
//! - **Application fingerprinting** (Sec. V-A, Fig. 11/12): classify which
//!   of six HPC workloads runs on the victim GPU.
//! - **MLP model extraction** (Sec. V-B, Table II, Fig. 13/14/15): infer
//!   the hidden-layer width and the number of training epochs.

mod fingerprint;
mod mlp_extract;
mod recorder;

pub use fingerprint::{gram_features, FingerprintDataset, FingerprintReport};
pub use mlp_extract::{detect_epochs, summarize_mlp_gram, MlpGramStats};
pub use recorder::{record_memorygram, RecorderConfig};
