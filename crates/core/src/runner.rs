//! Deterministic parallel trial fan-out.
//!
//! Every experiment in the reproduction repeats some measurement over many
//! trials (eviction-set discovery sweeps, covert bandwidth points,
//! memorygram dataset capture). Trials are independent — each boots its
//! own [`gpubox_sim::MultiGpuSystem`] — so they parallelise perfectly,
//! *as long as randomness stays reproducible*. [`TrialRunner`] guarantees
//! that: every trial derives its own seed (and its own
//! [`rand::rngs::SmallRng`]) deterministically from the master seed and
//! the trial index, so a parallel run returns results **bit-identical**
//! to a serial run of the same master seed, regardless of thread count or
//! scheduling.
//!
//! ```
//! use gpubox_attacks::runner::TrialRunner;
//!
//! let par = TrialRunner::new(42).run(16, |t| t.seed ^ t.index as u64);
//! let ser = TrialRunner::serial(42).run(16, |t| t.seed ^ t.index as u64);
//! assert_eq!(par, ser);
//! ```

use rand::rngs::SmallRng;
use rand::{splitmix64, SeedableRng};
use rayon::iter::{IntoParallelIterator, ParallelIterator};

/// Derives the seed of one trial from the master seed.
///
/// One SplitMix64 step over a trial-offset state: nearby trial indices
/// yield statistically unrelated seeds, and the mapping is stable across
/// runs and platforms.
pub fn trial_seed(master_seed: u64, trial: u64) -> u64 {
    let mut state = master_seed.wrapping_add(trial.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    splitmix64(&mut state)
}

/// Everything one trial needs: its index, its derived seed (for seeding a
/// simulator), and a ready-made RNG over that seed.
#[derive(Debug)]
pub struct Trial {
    /// 0-based trial index.
    pub index: usize,
    /// Seed derived from `(master_seed, index)`; feed this to
    /// `SystemConfig::with_seed` so every trial gets a distinct but
    /// reproducible machine.
    pub seed: u64,
    /// RNG seeded from `seed`, for per-trial randomness outside the
    /// simulator.
    pub rng: SmallRng,
}

/// Runs independent trials, serially or across threads, with
/// deterministic per-trial seeding.
#[derive(Debug, Clone, Copy)]
pub struct TrialRunner {
    master_seed: u64,
    parallel: bool,
}

impl TrialRunner {
    /// A parallel runner (uses all available cores via the `rayon` shim;
    /// bound it with `RAYON_NUM_THREADS`).
    pub fn new(master_seed: u64) -> Self {
        TrialRunner {
            master_seed,
            parallel: true,
        }
    }

    /// A serial runner over the same seed derivation — produces results
    /// bit-identical to the parallel runner.
    pub fn serial(master_seed: u64) -> Self {
        TrialRunner {
            master_seed,
            parallel: false,
        }
    }

    /// The master seed.
    pub fn master_seed(self) -> u64 {
        self.master_seed
    }

    /// Runs `trials` instances of `f`, returning results in trial order.
    pub fn run<T, F>(self, trials: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Trial) -> T + Sync,
    {
        let make = |index: usize| {
            let seed = trial_seed(self.master_seed, index as u64);
            f(Trial {
                index,
                seed,
                rng: SmallRng::seed_from_u64(seed),
            })
        };
        if self.parallel {
            (0..trials).into_par_iter().map(make).collect()
        } else {
            (0..trials).map(make).collect()
        }
    }

    /// Runs one instance of `f` per item of `items` (a trial per item),
    /// returning results in input order.
    pub fn run_over<I, T, F>(self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(Trial, I) -> T + Sync,
    {
        let make = |(index, item): (usize, I)| {
            let seed = trial_seed(self.master_seed, index as u64);
            f(
                Trial {
                    index,
                    seed,
                    rng: SmallRng::seed_from_u64(seed),
                },
                item,
            )
        };
        let indexed: Vec<(usize, I)> = items.into_iter().enumerate().collect();
        if self.parallel {
            indexed.into_par_iter().map(make).collect()
        } else {
            indexed.into_iter().map(make).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn parallel_matches_serial_bitwise() {
        let work = |mut t: Trial| -> (usize, u64, u64) {
            // Mix per-trial RNG output so divergent seeding would show.
            let a = t.rng.gen::<u64>();
            let b = t.rng.gen::<u64>();
            (t.index, t.seed, a ^ b.rotate_left(17))
        };
        let par = TrialRunner::new(0xFEED).run(64, work);
        let ser = TrialRunner::serial(0xFEED).run(64, work);
        assert_eq!(par, ser);
        // Results arrive in trial order.
        for (i, r) in par.iter().enumerate() {
            assert_eq!(r.0, i);
        }
    }

    #[test]
    fn distinct_trials_get_distinct_seeds() {
        let seeds: std::collections::HashSet<u64> =
            (0..1000).map(|i| trial_seed(7, i)).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn different_master_seeds_diverge() {
        assert_ne!(trial_seed(1, 0), trial_seed(2, 0));
    }

    #[test]
    fn run_over_preserves_item_order() {
        let items: Vec<u32> = (0..50).rev().collect();
        let out = TrialRunner::new(3).run_over(items.clone(), |_, x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }
}
