//! Cross-process eviction-set alignment (paper Sec. IV-A, Algorithm 2,
//! Fig. 7).
//!
//! Both trojan and spy hold eviction sets covering the L2 of GPU A, but
//! neither knows which *physical* set each maps to. The alignment protocol
//! pairs them up: the trojan hammers one of its sets while the spy
//! measures the average access time of each of its candidate sets
//! (Algorithm 2's `numMainLoop` averaging); the candidate with elevated
//! latency shares the physical set.
//!
//! Because pages map line-for-line within an alignment class
//! (see [`crate::eviction`]), aligning one `(class, offset 0)` set per
//! class aligns *every* set of that class at once — the protocol runs once
//! per class instead of once per set.

use crate::eviction::{EvictionSet, PageClasses};
use gpubox_sim::{
    Agent, Engine, MultiGpuSystem, Op, OpResult, ProbeStage, ProcessId, SimResult, VirtAddr,
};

/// Tuning for the alignment protocol.
#[derive(Debug, Clone)]
pub struct AlignmentConfig {
    /// Spy probe repetitions per candidate set (the paper uses 150 000 on
    /// hardware; far fewer suffice per probe here because the simulator's
    /// jitter is the only noise).
    pub spy_loops: u32,
    /// Cycles the whole experiment may run before the engine stops it.
    pub deadline: u64,
    /// A candidate is matched when its average access latency exceeds the
    /// minimum candidate average by this factor.
    pub margin: f64,
}

impl Default for AlignmentConfig {
    fn default() -> Self {
        AlignmentConfig {
            spy_loops: 40,
            deadline: 200_000_000,
            margin: 1.15,
        }
    }
}

/// Result of aligning one trojan class against the spy's classes.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMatch {
    /// Trojan class index.
    pub trojan_class: usize,
    /// Matched spy class index, if any candidate stood out.
    pub spy_class: Option<usize>,
    /// Average latency per spy candidate class (diagnostics).
    pub candidate_avgs: Vec<f64>,
}

/// Trojan-side hammer: chases its eviction set until the engine deadline.
#[derive(Debug)]
struct HammerAgent {
    pid: ProcessId,
    lines: Vec<VirtAddr>,
    idx: usize,
    /// Accesses left; the paper sizes the trojan loop count ~2.7x the
    /// spy's (400 000 vs 150 000) because local accesses are faster.
    remaining: u64,
}

impl Agent for HammerAgent {
    fn next_op(&mut self, _now: u64, _stage: &mut ProbeStage) -> Op {
        if self.remaining == 0 {
            return Op::Done;
        }
        self.remaining -= 1;
        let va = self.lines[self.idx % self.lines.len()];
        self.idx += 1;
        Op::Load(va)
    }

    fn on_result(&mut self, _res: &OpResult<'_>) {}

    fn process(&self) -> ProcessId {
        self.pid
    }

    fn label(&self) -> &str {
        "trojan-hammer"
    }
}

/// Runs the alignment protocol for one trojan eviction set against the
/// spy's candidate sets, returning the per-candidate average latencies.
///
/// # Errors
///
/// Propagates simulator errors from either agent.
pub fn measure_alignment(
    sys: &mut MultiGpuSystem,
    trojan_pid: ProcessId,
    trojan_set: &EvictionSet,
    spy_pid: ProcessId,
    spy_candidates: &[EvictionSet],
    cfg: &AlignmentConfig,
) -> SimResult<Vec<f64>> {
    let spy_ops: u64 =
        spy_candidates.iter().map(|s| s.len() as u64).sum::<u64>() * u64::from(cfg.spy_loops);
    let hammer = HammerAgent {
        pid: trojan_pid,
        lines: trojan_set.lines().to_vec(),
        idx: 0,
        remaining: spy_ops * 3,
    };
    let prober = OwnedAvgProbe::new(
        spy_pid,
        spy_candidates.iter().map(|s| s.lines().to_vec()).collect(),
        cfg.spy_loops,
    );
    let shared = prober.sums_handle();
    let mut eng = Engine::new(sys);
    eng.add_agent(Box::new(hammer), 0);
    eng.add_agent(Box::new(prober), 0);
    eng.run(cfg.deadline)?;
    let sums = shared.borrow_sums();
    Ok(sums
        .iter()
        .map(|&(c, n)| if n == 0 { 0.0 } else { c as f64 / n as f64 })
        .collect())
}

use std::cell::RefCell;
use std::rc::Rc;

/// Avg-probe agent with shared result storage (the engine owns the agent,
/// so results are exported through an `Rc`).
#[derive(Debug)]
struct OwnedAvgProbe {
    pid: ProcessId,
    candidates: Vec<Vec<VirtAddr>>,
    loops: u32,
    cand: usize,
    rep: u32,
    line: usize,
    pending_owner: usize,
    sums: Rc<RefCell<Vec<(u64, u64)>>>,
    done: bool,
}

/// Read handle over the probe agent's accumulated sums.
#[derive(Debug, Clone)]
pub struct SumsHandle(Rc<RefCell<Vec<(u64, u64)>>>);

impl SumsHandle {
    fn borrow_sums(&self) -> Vec<(u64, u64)> {
        self.0.borrow().clone()
    }
}

impl OwnedAvgProbe {
    fn new(pid: ProcessId, candidates: Vec<Vec<VirtAddr>>, loops: u32) -> Self {
        let sums = Rc::new(RefCell::new(vec![(0, 0); candidates.len()]));
        OwnedAvgProbe {
            pid,
            candidates,
            loops,
            cand: 0,
            rep: 0,
            line: 0,
            pending_owner: 0,
            sums,
            done: false,
        }
    }

    fn sums_handle(&self) -> SumsHandle {
        SumsHandle(Rc::clone(&self.sums))
    }
}

impl Agent for OwnedAvgProbe {
    fn next_op(&mut self, _now: u64, _stage: &mut ProbeStage) -> Op {
        if self.done {
            return Op::Done;
        }
        // Degenerate candidate lists (a defence experiment can starve
        // the offline phase into empty eviction sets) finish cleanly
        // instead of indexing into an empty set; non-degenerate inputs
        // never take these branches.
        while self.cand < self.candidates.len() && self.candidates[self.cand].is_empty() {
            self.cand += 1;
        }
        if self.cand >= self.candidates.len() {
            self.done = true;
            return Op::Done;
        }
        self.pending_owner = self.cand;
        let set = &self.candidates[self.cand];
        let va = set[self.line];
        self.line += 1;
        if self.line >= set.len() {
            self.line = 0;
            self.rep += 1;
            if self.rep >= self.loops {
                self.rep = 0;
                self.cand += 1;
                if self.cand >= self.candidates.len() {
                    self.done = true;
                }
            }
        }
        Op::Load(va)
    }

    fn on_result(&mut self, res: &OpResult<'_>) {
        let mut sums = self.sums.borrow_mut();
        let e = &mut sums[self.pending_owner];
        e.0 += res.duration;
        e.1 += 1;
    }

    fn process(&self) -> ProcessId {
        self.pid
    }

    fn label(&self) -> &str {
        "spy-avg-probe"
    }
}

/// Aligns every trojan class against the spy's classes (offset 0
/// representatives) and returns one [`ClassMatch`] per trojan class.
///
/// # Errors
///
/// Propagates simulator errors.
#[allow(clippy::too_many_arguments)]
pub fn align_classes(
    sys: &mut MultiGpuSystem,
    trojan_pid: ProcessId,
    trojan_classes: &PageClasses,
    spy_pid: ProcessId,
    spy_classes: &PageClasses,
    ways: usize,
    cfg: &AlignmentConfig,
) -> SimResult<Vec<ClassMatch>> {
    let spy_candidates: Vec<EvictionSet> = (0..spy_classes.classes.len())
        .filter(|&c| spy_classes.classes[c].len() >= ways)
        .map(|c| spy_classes.eviction_set(c, 0, ways))
        .collect();
    let spy_idx: Vec<usize> = (0..spy_classes.classes.len())
        .filter(|&c| spy_classes.classes[c].len() >= ways)
        .collect();

    let mut out = Vec::new();
    for tc in 0..trojan_classes.classes.len() {
        if trojan_classes.classes[tc].len() < ways {
            continue;
        }
        let tset = trojan_classes.eviction_set(tc, 0, ways);
        let avgs = measure_alignment(sys, trojan_pid, &tset, spy_pid, &spy_candidates, cfg)?;
        let min = avgs.iter().cloned().fold(f64::INFINITY, f64::min);
        let best = avgs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i);
        let spy_class = best.and_then(|i| (avgs[i] > min * cfg.margin).then_some(spy_idx[i]));
        out.push(ClassMatch {
            trojan_class: tc,
            spy_class,
            candidate_avgs: avgs,
        });
    }
    Ok(out)
}

/// Builds `count` aligned (trojan, spy) eviction-set pairs from matched
/// classes: within a matched class pair, equal line offsets share the
/// physical set.
pub fn paired_sets(
    trojan_classes: &PageClasses,
    spy_classes: &PageClasses,
    matches: &[ClassMatch],
    count: usize,
    ways: usize,
) -> Vec<(EvictionSet, EvictionSet)> {
    let lpp = trojan_classes.lines_per_page();
    let mut out = Vec::with_capacity(count);
    'outer: for m in matches {
        let Some(sc) = m.spy_class else { continue };
        for off in 0..lpp {
            if out.len() >= count {
                break 'outer;
            }
            out.push((
                trojan_classes.eviction_set(m.trojan_class, off, ways),
                spy_classes.eviction_set(sc, off, ways),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eviction::{classify_pages, Locality, ScanConfig};
    use crate::thresholds::Thresholds;
    use gpubox_sim::{GpuId, ProcessCtx, SystemConfig};

    fn setup() -> (
        MultiGpuSystem,
        ProcessId,
        PageClasses,
        ProcessId,
        PageClasses,
    ) {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let thr = Thresholds::paper_defaults();
        let trojan = sys.create_process(GpuId::new(0));
        let spy = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
        let bytes = 96 * 4096u64;
        let (tbuf, tclasses) = {
            let mut ctx = ProcessCtx::new(&mut sys, trojan, 0);
            let b = ctx.malloc_on(GpuId::new(0), bytes).unwrap();
            let c =
                classify_pages(&mut ctx, b, bytes, 4096, 128, 16, &thr, Locality::Local, &ScanConfig::classify_default()).unwrap();
            (b, c)
        };
        let (_sbuf, sclasses) = {
            let mut ctx = ProcessCtx::new(&mut sys, spy, 0);
            let b = ctx.malloc_on(GpuId::new(0), bytes).unwrap();
            let c =
                classify_pages(&mut ctx, b, bytes, 4096, 128, 16, &thr, Locality::Remote, &ScanConfig::classify_default()).unwrap();
            (b, c)
        };
        let _ = tbuf;
        (sys, trojan, tclasses, spy, sclasses)
    }

    #[test]
    fn alignment_finds_the_shared_physical_class() {
        let (mut sys, trojan, tclasses, spy, sclasses) = setup();
        let matches = align_classes(
            &mut sys,
            trojan,
            &tclasses,
            spy,
            &sclasses,
            16,
            &AlignmentConfig::default(),
        )
        .unwrap();
        assert!(!matches.is_empty());
        for m in &matches {
            let sc = m
                .spy_class
                .expect("every trojan class should match a spy class");
            // Ground truth: offset-0 sets of the matched classes share a
            // physical set.
            let tset = tclasses.eviction_set(m.trojan_class, 0, 16);
            let sset = sclasses.eviction_set(sc, 0, 16);
            let tphys = sys.oracle_set_of(trojan, tset.lines()[0]).unwrap();
            let sphys = sys.oracle_set_of(spy, sset.lines()[0]).unwrap();
            assert_eq!(tphys, sphys, "aligned classes disagree on physical set");
        }
    }

    #[test]
    fn paired_sets_share_physical_sets_at_all_offsets() {
        let (mut sys, trojan, tclasses, spy, sclasses) = setup();
        let matches = align_classes(
            &mut sys,
            trojan,
            &tclasses,
            spy,
            &sclasses,
            16,
            &AlignmentConfig::default(),
        )
        .unwrap();
        let pairs = paired_sets(&tclasses, &sclasses, &matches, 8, 16);
        assert_eq!(pairs.len(), 8);
        for (t, s) in &pairs {
            let tp = sys.oracle_set_of(trojan, t.lines()[0]).unwrap();
            let sp = sys.oracle_set_of(spy, s.lines()[0]).unwrap();
            assert_eq!(tp, sp);
        }
        // Pairs must cover distinct physical sets.
        let mut seen = std::collections::HashSet::new();
        for (t, _) in &pairs {
            let p = sys.oracle_set_of(trojan, t.lines()[0]).unwrap();
            assert!(seen.insert(p));
        }
    }

    #[test]
    fn unmatched_when_spy_lacks_the_class() {
        // Give the spy only one candidate class; trojan classes not backed
        // by it must come back unmatched.
        let (mut sys, trojan, tclasses, spy, sclasses) = setup();
        let only: Vec<EvictionSet> = vec![sclasses.eviction_set(0, 0, 16)];
        // Find a trojan class whose physical base differs from spy class 0.
        let sphys = sys.oracle_set_of(spy, only[0].lines()[0]).unwrap();
        let mut mismatched = None;
        for tc in 0..tclasses.classes.len() {
            let t = tclasses.eviction_set(tc, 0, 16);
            if sys.oracle_set_of(trojan, t.lines()[0]).unwrap() != sphys {
                mismatched = Some(t);
                break;
            }
        }
        let t = mismatched.expect("small cache has 2 classes, one must differ");
        let avgs = measure_alignment(
            &mut sys,
            trojan,
            &t,
            spy,
            &only,
            &AlignmentConfig::default(),
        )
        .unwrap();
        // Single candidate, not hammered: latency stays near the remote
        // hit level, well below the hammered level (~950).
        assert!(
            avgs[0] < 750.0,
            "unrelated candidate should stay fast: {}",
            avgs[0]
        );
    }
}
