//! Noise mitigation via SM-resource saturation (paper Sec. VI).
//!
//! GPUs schedule thread blocks with a *leftover policy*: a concurrent
//! kernel can only launch onto SMs with spare shared memory / block slots.
//! On Pascal a block may allocate at most 32 KiB of the 64 KiB per-SM
//! shared memory, so the attack kernel (one 32 KiB block per SM) plus a
//! fleet of idle 32 KiB blocks saturates every SM and locks noise tenants
//! out of the GPU for the duration of the attack.

use gpubox_sim::{GpuId, KernelId, KernelLaunch, MultiGpuSystem, SimResult};

/// Handle over the resident attack + blocker kernels.
#[derive(Debug)]
pub struct ExclusiveOccupancy {
    gpu: GpuId,
    kernels: Vec<KernelId>,
}

impl ExclusiveOccupancy {
    /// Launches the attack kernel (one block per SM, 32 KiB shared memory
    /// each, `threads_per_block` threads) plus idle blocker blocks
    /// consuming the leftover shared memory, so no other kernel that needs
    /// shared memory or a block slot can co-locate.
    ///
    /// # Errors
    ///
    /// Returns [`gpubox_sim::SimError::InsufficientSmResources`] when the
    /// GPU is already partially occupied.
    pub fn establish(
        sys: &mut MultiGpuSystem,
        gpu: GpuId,
        threads_per_block: u32,
    ) -> SimResult<Self> {
        let sm = sys.config().sm.clone();
        let half_shmem = sm.shared_mem_per_sm / 2;
        // The attack kernel: one block per SM (paper: "the attack uses one
        // thread block per SM").
        let attack = KernelLaunch {
            blocks: sm.num_sms,
            threads_per_block,
            shared_mem_per_block: half_shmem,
        };
        let mut kernels = vec![sys.launch_kernel(gpu, attack)?];
        // Idle blockers: consume the remaining 32 KiB per SM without
        // touching global memory.
        let blockers = KernelLaunch {
            blocks: sm.num_sms,
            threads_per_block: 1,
            shared_mem_per_block: half_shmem,
        };
        match sys.launch_kernel(gpu, blockers) {
            Ok(id) => kernels.push(id),
            Err(e) => {
                // Roll back the attack kernel so failure leaves no residue.
                let first = kernels.pop().expect("attack kernel present");
                sys.terminate_kernel(gpu, first);
                return Err(e);
            }
        }
        Ok(ExclusiveOccupancy { gpu, kernels })
    }

    /// Whether a kernel needing any shared memory could still launch.
    pub fn excludes(&self, sys: &MultiGpuSystem, noise: &KernelLaunch) -> bool {
        !sys.can_launch(self.gpu, noise)
    }

    /// Releases every kernel, restoring the GPU.
    pub fn release(self, sys: &mut MultiGpuSystem) {
        for id in self.kernels {
            sys.terminate_kernel(self.gpu, id);
        }
    }
}

/// A representative noise kernel shape: a modest block wanting 1 KiB of
/// shared memory.
pub fn typical_noise_kernel() -> KernelLaunch {
    KernelLaunch {
        blocks: 8,
        threads_per_block: 128,
        shared_mem_per_block: 1024,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpubox_sim::SystemConfig;

    #[test]
    fn saturation_excludes_noise_kernels() {
        let mut sys = MultiGpuSystem::new(SystemConfig::dgx1());
        let gpu = GpuId::new(0);
        let noise = typical_noise_kernel();
        assert!(sys.can_launch(gpu, &noise), "idle GPU accepts noise");
        let occ = ExclusiveOccupancy::establish(&mut sys, gpu, 32).unwrap();
        assert!(
            occ.excludes(&sys, &noise),
            "saturated GPU must refuse noise"
        );
        occ.release(&mut sys);
        assert!(sys.can_launch(gpu, &noise), "release restores the GPU");
    }

    #[test]
    fn zero_shared_memory_kernels_are_not_excluded() {
        // The defence targets shared-memory users; a pathological
        // zero-footprint kernel can still squeeze in via block slots,
        // which is why the paper also counts block-slot saturation.
        let mut sys = MultiGpuSystem::new(SystemConfig::dgx1());
        let gpu = GpuId::new(1);
        let occ = ExclusiveOccupancy::establish(&mut sys, gpu, 32).unwrap();
        let tiny = KernelLaunch {
            blocks: 1,
            threads_per_block: 1,
            shared_mem_per_block: 0,
        };
        // Still fits: only 2 of 32 block slots per SM are used.
        assert!(!occ.excludes(&sys, &tiny));
        occ.release(&mut sys);
    }

    #[test]
    fn establish_on_occupied_gpu_fails_cleanly() {
        let mut sys = MultiGpuSystem::new(SystemConfig::dgx1());
        let gpu = GpuId::new(2);
        // Another tenant already holds most shared memory.
        let hog = KernelLaunch {
            blocks: sys.config().sm.num_sms,
            threads_per_block: 32,
            shared_mem_per_block: 48 * 1024,
        };
        sys.launch_kernel(gpu, hog).unwrap();
        let before = sys.sm_array(gpu).resident_kernels();
        assert!(ExclusiveOccupancy::establish(&mut sys, gpu, 32).is_err());
        assert_eq!(
            sys.sm_array(gpu).resident_kernels(),
            before,
            "failed establish must roll back"
        );
    }
}
