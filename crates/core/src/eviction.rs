//! Eviction-set discovery from user space (paper Sec. III-B).
//!
//! Implements Algorithm 1 — the incremental pointer-chase scan that finds
//! addresses conflicting with a chosen target — together with the paper's
//! optimisations: skipping ahead with backtracking, and exploiting the
//! observation that *"data belonging to a page is indexed consecutively in
//! the cache"*. Because pages are placed at line-aligned frame boundaries,
//! two pages either conflict line-for-line (same alignment class) or not
//! at all; classifying pages therefore yields eviction sets for **every**
//! set the buffer covers, without a quadratic per-set scan.
//!
//! Also provides the Fig. 5 validation sweep and the Fig. 6 aliasing test.

use crate::thresholds::Thresholds;
use gpubox_sim::{ProcessCtx, SimResult, VirtAddr};

/// Whether the scanned buffer is homed on the scanning process's GPU or on
/// a peer GPU (decides which latency threshold applies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locality {
    /// Buffer on the process's own GPU.
    Local,
    /// Buffer on a peer GPU, reached over NVLink.
    Remote,
}

impl Locality {
    /// Classifies a latency as a miss under this locality.
    pub fn is_miss(self, thr: &Thresholds, cycles: u32) -> bool {
        match self {
            Locality::Local => thr.is_local_miss(cycles),
            Locality::Remote => thr.is_remote_miss(cycles),
        }
    }
}

/// A discovered eviction set: at least `ways` virtual addresses hashing to
/// one physical cache set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictionSet {
    lines: Vec<VirtAddr>,
}

impl EvictionSet {
    /// Wraps a list of conflicting line addresses.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is empty.
    pub fn new(lines: Vec<VirtAddr>) -> Self {
        assert!(!lines.is_empty(), "eviction set cannot be empty");
        EvictionSet { lines }
    }

    /// The member line addresses.
    pub fn lines(&self) -> &[VirtAddr] {
        &self.lines
    }

    /// Number of member lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the set has no members (never true for constructed sets).
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Primes the set: serial dependent accesses to every member,
    /// replacing whatever the set held.
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses.
    pub fn prime(&self, ctx: &mut ProcessCtx<'_>) -> SimResult<()> {
        for &va in &self.lines {
            ctx.ldcg(va)?;
        }
        Ok(())
    }

    /// Probes the set warp-parallel, returning per-line latencies and the
    /// number classified as misses.
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses.
    pub fn probe(
        &self,
        ctx: &mut ProcessCtx<'_>,
        thr: &Thresholds,
        loc: Locality,
    ) -> SimResult<ProbeOutcome> {
        let b = ctx.probe_batch(&self.lines)?;
        let misses = b.latencies.iter().filter(|&&l| loc.is_miss(thr, l)).count();
        Ok(ProbeOutcome {
            latencies: b.latencies,
            misses,
            duration: b.duration,
        })
    }
}

/// Result of probing an eviction set once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// Per-line measured latency.
    pub latencies: Vec<u32>,
    /// Lines classified as misses.
    pub misses: usize,
    /// Total probe duration in cycles.
    pub duration: u64,
}

/// Tuning knobs for the Algorithm 1 scan.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Candidates to skip per jump before re-testing (the paper's
    /// "skipping some address accesses" optimisation).
    pub skip: usize,
    /// Stop after this many conflicts were found (0 = exhaustive).
    pub max_conflicts: usize,
    /// Repeat each timed decision this many times and majority-vote
    /// (noise robustness).
    pub votes: u32,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            skip: 64,
            max_conflicts: 0,
            votes: 1,
        }
    }
}

/// One timed Algorithm-1 trial: access the target, pointer-chase the first
/// `n` candidates, re-access the target and classify the second access.
/// Returns `true` when the target was evicted.
fn target_evicted(
    ctx: &mut ProcessCtx<'_>,
    target: VirtAddr,
    chain: &[VirtAddr],
    n: usize,
    thr: &Thresholds,
    loc: Locality,
    votes: u32,
) -> SimResult<bool> {
    let mut miss_votes = 0u32;
    for _ in 0..votes.max(1) {
        // basePtr access (line 1-7 of Algorithm 1).
        ctx.ldcg(target)?;
        ctx.compute(4); // dummy op
                        // Pointer chase over the first n candidates (lines 9-14).
        for &va in &chain[..n] {
            ctx.ldcg(va)?;
        }
        ctx.compute(4);
        // Second target access (lines 16-21).
        let (_, t2) = ctx.ldcg(target)?;
        if loc.is_miss(thr, t2) {
            miss_votes += 1;
        }
    }
    Ok(miss_votes * 2 > votes.max(1))
}

/// Algorithm 1: finds, among `candidates`, the addresses that hash to the
/// same cache set as `target`. Returns them in discovery order.
///
/// Under an LRU cache of associativity `w`, the first `w - 1` same-set
/// candidates are absorbed without evicting the target, so this returns
/// the *remaining* conflicts; [`classify_pages`] recovers the absorbed
/// ones with group tests.
///
/// # Errors
///
/// Propagates simulator access errors.
pub fn discover_conflicts(
    ctx: &mut ProcessCtx<'_>,
    target: VirtAddr,
    candidates: &[VirtAddr],
    thr: &Thresholds,
    loc: Locality,
    cfg: &ScanConfig,
) -> SimResult<Vec<VirtAddr>> {
    let mut chain: Vec<VirtAddr> = candidates.to_vec();
    let mut found = Vec::new();
    // `n` = prefix length known NOT to evict the target.
    let mut n = 0usize;
    while n < chain.len() {
        // Jump ahead by `skip`.
        let hi = (n + cfg.skip).min(chain.len());
        if !target_evicted(ctx, target, &chain, hi, thr, loc, cfg.votes)? {
            n = hi;
            continue;
        }
        // A conflict lies in (n, hi]; binary-search the smallest prefix
        // that evicts (the paper's "revert back and check all those last
        // skipped addresses").
        let (mut lo, mut up) = (n, hi);
        while up - lo > 1 {
            let mid = (lo + up) / 2;
            if target_evicted(ctx, target, &chain, mid, thr, loc, cfg.votes)? {
                up = mid;
            } else {
                lo = mid;
            }
        }
        // chain[up - 1] caused the eviction: it conflicts with the target.
        let conflict = chain.remove(up - 1);
        found.push(conflict);
        if cfg.max_conflicts != 0 && found.len() >= cfg.max_conflicts {
            break;
        }
        n = up - 1;
    }
    Ok(found)
}

/// Group test: does `candidate` hash to the same set as `target`, given
/// `ways - 1` known conflicts? (Access target, chase the known conflicts
/// plus the candidate, re-probe the target.)
///
/// # Errors
///
/// Propagates simulator access errors.
pub fn conflicts_with(
    ctx: &mut ProcessCtx<'_>,
    target: VirtAddr,
    known: &[VirtAddr],
    candidate: VirtAddr,
    thr: &Thresholds,
    loc: Locality,
    votes: u32,
) -> SimResult<bool> {
    let mut chain: Vec<VirtAddr> = known.to_vec();
    chain.push(candidate);
    let n = chain.len();
    target_evicted(ctx, target, &chain, n, thr, loc, votes)
}

/// The Fig. 5 validation sweep: for each prefix length `n`, the latency of
/// the target's re-access after chasing `n` conflict-set members. The step
/// from hit to miss at `n == ways` confirms the set and exposes the
/// associativity and the deterministic (LRU) replacement.
///
/// # Errors
///
/// Propagates simulator access errors.
pub fn validation_sweep(
    ctx: &mut ProcessCtx<'_>,
    target: VirtAddr,
    conflicts: &[VirtAddr],
    max_n: usize,
) -> SimResult<Vec<(usize, u32)>> {
    let mut out = Vec::new();
    for n in 1..=max_n.min(conflicts.len()) {
        ctx.ldcg(target)?;
        ctx.compute(4);
        for &va in &conflicts[..n] {
            ctx.ldcg(va)?;
        }
        ctx.compute(4);
        let (_, t2) = ctx.ldcg(target)?;
        out.push((n, t2));
    }
    Ok(out)
}

/// The Fig. 6 aliasing test: do two discovered eviction sets map to the
/// same physical cache set? Takes `w/2 + 1` lines from each; if they
/// alias, the combined `w + 2` lines thrash and re-probing sees misses;
/// if they map to distinct sets, both halves fit and everything hits.
///
/// # Errors
///
/// Propagates simulator access errors.
pub fn sets_alias(
    ctx: &mut ProcessCtx<'_>,
    a: &EvictionSet,
    b: &EvictionSet,
    ways: usize,
    thr: &Thresholds,
    loc: Locality,
) -> SimResult<bool> {
    let half = ways / 2 + 1;
    let mut combined: Vec<VirtAddr> = Vec::with_capacity(2 * half);
    combined.extend_from_slice(&a.lines()[..half.min(a.len())]);
    combined.extend_from_slice(&b.lines()[..half.min(b.len())]);
    // Two warm-up chases, then a timed pass.
    for _ in 0..2 {
        for &va in &combined {
            ctx.ldcg(va)?;
        }
    }
    let mut misses = 0usize;
    for &va in &combined {
        let (_, t) = ctx.ldcg(va)?;
        if loc.is_miss(thr, t) {
            misses += 1;
        }
    }
    // Distinct sets: everything resident => ~0 misses. Aliased: LRU
    // thrashing => most accesses miss.
    Ok(misses > combined.len() / 3)
}

/// Removes aliased duplicates from a collection of discovered eviction
/// sets (paper Fig. 6): each new set is tested against every kept set
/// with [`sets_alias`]; aliases are dropped so self-eviction cannot fake
/// victim activity during the attack. Returns the surviving sets.
///
/// # Errors
///
/// Propagates simulator access errors.
pub fn dedupe_aliased(
    ctx: &mut ProcessCtx<'_>,
    sets: Vec<EvictionSet>,
    ways: usize,
    thr: &Thresholds,
    loc: Locality,
) -> SimResult<Vec<EvictionSet>> {
    let mut kept: Vec<EvictionSet> = Vec::with_capacity(sets.len());
    for candidate in sets {
        let mut aliased = false;
        for existing in &kept {
            if sets_alias(ctx, existing, &candidate, ways, thr, loc)? {
                aliased = true;
                break;
            }
        }
        if !aliased {
            kept.push(candidate);
        }
    }
    Ok(kept)
}

/// Page alignment classes discovered for one buffer: pages in the same
/// class conflict line-for-line.
#[derive(Debug, Clone)]
pub struct PageClasses {
    /// `classes[c]` lists page indices (0-based within the buffer).
    pub classes: Vec<Vec<u64>>,
    /// Buffer base address the classes refer to.
    pub base: VirtAddr,
    /// Page size in bytes.
    pub page_size: u64,
    /// Cache line size in bytes.
    pub line_size: u64,
}

impl PageClasses {
    /// Lines per page.
    pub fn lines_per_page(&self) -> u64 {
        self.page_size / self.line_size
    }

    /// Number of distinct relative cache sets reachable from this buffer:
    /// `classes × lines_per_page`.
    pub fn distinct_sets(&self) -> u64 {
        self.classes.len() as u64 * self.lines_per_page()
    }

    /// Builds the eviction set for relative set `(class, line_offset)`
    /// using the first `ways` member pages.
    ///
    /// # Panics
    ///
    /// Panics if the class has fewer than `ways` pages or the offset is
    /// out of range.
    pub fn eviction_set(&self, class: usize, line_offset: u64, ways: usize) -> EvictionSet {
        assert!(
            line_offset < self.lines_per_page(),
            "line offset out of page"
        );
        let pages = &self.classes[class];
        assert!(
            pages.len() >= ways,
            "class {class} has only {} pages",
            pages.len()
        );
        let lines = pages[..ways]
            .iter()
            .map(|&p| {
                self.base
                    .offset(p * self.page_size + line_offset * self.line_size)
            })
            .collect();
        EvictionSet::new(lines)
    }

    /// Enumerates `count` distinct relative sets as `(class, offset)`
    /// pairs, spread evenly across every alignment class and across the
    /// in-page offsets within each class. Spreading matters: any victim
    /// page covers the *consecutive* sets of one class (the paper's
    /// page-consecutive structure), so an evenly-spread monitor overlaps
    /// every victim page instead of gambling on one contiguous window.
    pub fn enumerate_sets(&self, count: usize, ways: usize) -> Vec<EvictionSet> {
        let lpp = self.lines_per_page();
        let usable: Vec<usize> = (0..self.classes.len())
            .filter(|&c| self.classes[c].len() >= ways)
            .collect();
        if usable.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(count);
        let per_class = count.div_ceil(usable.len());
        for &c in &usable {
            let n = per_class.min(count - out.len()).min(lpp as usize);
            for i in 0..n {
                let off = (i as u64 * lpp) / n as u64;
                out.push(self.eviction_set(c, off, ways));
            }
            if out.len() >= count {
                break;
            }
        }
        out
    }
}

/// Classifies every page of `[base, base + bytes)` into alignment classes
/// using Algorithm-1 scans over one representative line per page, plus
/// group tests to recover the conflicts absorbed by the cache's
/// associativity.
///
/// # Errors
///
/// Propagates simulator access errors.
#[allow(clippy::too_many_arguments)]
pub fn classify_pages(
    ctx: &mut ProcessCtx<'_>,
    base: VirtAddr,
    bytes: u64,
    page_size: u64,
    line_size: u64,
    ways: usize,
    thr: &Thresholds,
    loc: Locality,
) -> SimResult<PageClasses> {
    let num_pages = bytes / page_size;
    let page_line0 = |p: u64| base.offset(p * page_size);
    let mut unclassified: Vec<u64> = (0..num_pages).collect();
    let mut classes: Vec<Vec<u64>> = Vec::new();

    while !unclassified.is_empty() {
        let target_page = unclassified[0];
        let target = page_line0(target_page);
        let candidates: Vec<VirtAddr> = unclassified[1..].iter().map(|&p| page_line0(p)).collect();
        let cfg = ScanConfig {
            skip: 32,
            max_conflicts: 0,
            votes: 1,
        };
        let found = discover_conflicts(ctx, target, &candidates, thr, loc, &cfg)?;
        let mut members: Vec<u64> = vec![target_page];
        let found_pages: Vec<u64> = found
            .iter()
            .map(|va| (va.raw() - base.raw()) / page_size)
            .collect();
        members.extend_from_slice(&found_pages);

        // Group-test the remaining pages: the scan absorbs the first
        // `ways - 1` same-class pages without a visible eviction.
        if found.len() >= ways - 1 {
            let known: Vec<VirtAddr> = found[..ways - 1].to_vec();
            for &p in &unclassified {
                if p == target_page || members.contains(&p) {
                    continue;
                }
                if conflicts_with(ctx, target, &known, page_line0(p), thr, loc, 1)? {
                    members.push(p);
                }
            }
        }
        unclassified.retain(|p| !members.contains(p));
        members.sort_unstable();
        classes.push(members);
    }

    Ok(PageClasses {
        classes,
        base,
        page_size,
        line_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpubox_sim::{GpuId, MultiGpuSystem, SystemConfig};

    /// Small system: 2 GPUs, 64-set 16-way L2, 4 KiB pages (32 lines/page,
    /// so 2 alignment classes).
    fn boot() -> MultiGpuSystem {
        MultiGpuSystem::new(SystemConfig::small_test().noiseless())
    }

    #[test]
    fn discover_conflicts_finds_same_set_lines() {
        let mut sys = boot();
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        // 64 pages x 4 KiB: expect ~32 pages per class.
        let buf = ctx.malloc_on(GpuId::new(0), 64 * 4096).unwrap();
        let target = buf;
        let candidates: Vec<VirtAddr> = (1..64u64).map(|p| buf.offset(p * 4096)).collect();
        let thr = Thresholds::paper_defaults();
        let found = discover_conflicts(
            &mut ctx,
            target,
            &candidates,
            &thr,
            Locality::Local,
            &ScanConfig::default(),
        )
        .unwrap();
        // Ground truth: every found address shares the target's set.
        let (_, tset) = ctx.system().oracle_set_of(pid, target).unwrap();
        assert!(!found.is_empty());
        for va in &found {
            let (_, s) = ctx.system().oracle_set_of(pid, *va).unwrap();
            assert_eq!(s, tset, "found address {va} not in target set");
        }
    }

    #[test]
    fn classify_pages_recovers_all_classes() {
        let mut sys = boot();
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        // Enough pages that each of the 2 classes gets ≥ 16 w.h.p.
        let num_pages = 96u64;
        let buf = ctx.malloc_on(GpuId::new(0), num_pages * 4096).unwrap();
        let thr = Thresholds::paper_defaults();
        let classes = classify_pages(
            &mut ctx,
            buf,
            num_pages * 4096,
            4096,
            128,
            16,
            &thr,
            Locality::Local,
        )
        .unwrap();
        // 64 sets / 32 lines-per-page = 2 classes.
        assert_eq!(classes.classes.len(), 2, "expected 2 alignment classes");
        let total: usize = classes.classes.iter().map(Vec::len).sum();
        assert_eq!(total as u64, num_pages, "every page classified once");

        // Ground truth: all pages of a class have the same base set.
        for group in &classes.classes {
            let sets: Vec<_> = group
                .iter()
                .map(|&p| {
                    ctx.system()
                        .oracle_set_of(pid, buf.offset(p * 4096))
                        .unwrap()
                        .1
                })
                .collect();
            assert!(
                sets.windows(2).all(|w| w[0] == w[1]),
                "class not homogeneous"
            );
        }
    }

    #[test]
    fn eviction_set_from_classes_really_evicts() {
        let mut sys = boot();
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let num_pages = 96u64;
        let buf = ctx.malloc_on(GpuId::new(0), num_pages * 4096).unwrap();
        let thr = Thresholds::paper_defaults();
        let classes = classify_pages(
            &mut ctx,
            buf,
            num_pages * 4096,
            4096,
            128,
            16,
            &thr,
            Locality::Local,
        )
        .unwrap();
        let es = classes.eviction_set(0, 5, 16);
        // All 16 lines must share one physical set (oracle check).
        let first = ctx.system().oracle_set_of(pid, es.lines()[0]).unwrap().1;
        for &va in es.lines() {
            assert_eq!(ctx.system().oracle_set_of(pid, va).unwrap().1, first);
        }
        // Priming the set evicts a victim line placed there beforehand.
        // Use a line from the *other* class page at the right offset...
        // simplest: a second set on same (class, offset) built from other
        // pages aliases — prime one, probe the other: all misses.
        let es2 = {
            let pages = &classes.classes[0];
            assert!(pages.len() >= 32, "need 32 pages in class for this test");
            let lines = pages[16..32]
                .iter()
                .map(|&p| buf.offset(p * 4096 + 5 * 128))
                .collect();
            EvictionSet::new(lines)
        };
        es2.prime(&mut ctx).unwrap();
        es.prime(&mut ctx).unwrap();
        let probe = es2.probe(&mut ctx, &thr, Locality::Local).unwrap();
        assert!(
            probe.misses >= 15,
            "priming es must evict es2: {} misses",
            probe.misses
        );
    }

    #[test]
    fn validation_sweep_steps_at_associativity() {
        let mut sys = boot();
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let num_pages = 96u64;
        let buf = ctx.malloc_on(GpuId::new(0), num_pages * 4096).unwrap();
        let thr = Thresholds::paper_defaults();
        let classes = classify_pages(
            &mut ctx,
            buf,
            num_pages * 4096,
            4096,
            128,
            16,
            &thr,
            Locality::Local,
        )
        .unwrap();
        // Superset: 24 same-set lines.
        let pages = &classes.classes[0];
        let conflicts: Vec<VirtAddr> = pages[..24].iter().map(|&p| buf.offset(p * 4096)).collect();
        let target = buf.offset(pages[24] * 4096);
        let sweep = validation_sweep(&mut ctx, target, &conflicts, 24).unwrap();
        for (n, t) in &sweep {
            if *n < 16 {
                assert!(!thr.is_local_miss(*t), "n={n} should still hit ({t})");
            } else {
                assert!(thr.is_local_miss(*t), "n={n} should miss ({t})");
            }
        }
    }

    #[test]
    fn aliased_sets_detected_distinct_sets_pass() {
        let mut sys = boot();
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let num_pages = 96u64;
        let buf = ctx.malloc_on(GpuId::new(0), num_pages * 4096).unwrap();
        let thr = Thresholds::paper_defaults();
        let classes = classify_pages(
            &mut ctx,
            buf,
            num_pages * 4096,
            4096,
            128,
            16,
            &thr,
            Locality::Local,
        )
        .unwrap();
        let pages = &classes.classes[0];
        assert!(pages.len() >= 32);
        let set_a = classes.eviction_set(0, 3, 16);
        // Aliased set: same (class, offset), different pages.
        let aliased = EvictionSet::new(
            pages[16..32]
                .iter()
                .map(|&p| buf.offset(p * 4096 + 3 * 128))
                .collect(),
        );
        // Distinct set: same class, different offset.
        let distinct = classes.eviction_set(0, 4, 16);
        assert!(sets_alias(&mut ctx, &set_a, &aliased, 16, &thr, Locality::Local).unwrap());
        assert!(!sets_alias(&mut ctx, &set_a, &distinct, 16, &thr, Locality::Local).unwrap());
    }

    #[test]
    fn remote_discovery_works_over_nvlink() {
        // The spy on GPU1 scans a buffer homed on GPU0 — the cross-GPU
        // setting of the paper.
        let mut sys = boot();
        let pid = sys.create_process(GpuId::new(1));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        ctx.enable_peer_access(GpuId::new(0)).unwrap();
        let buf = ctx.malloc_on(GpuId::new(0), 64 * 4096).unwrap();
        let thr = Thresholds::paper_defaults();
        let target = buf;
        let candidates: Vec<VirtAddr> = (1..64u64).map(|p| buf.offset(p * 4096)).collect();
        let found = discover_conflicts(
            &mut ctx,
            target,
            &candidates,
            &thr,
            Locality::Remote,
            &ScanConfig::default(),
        )
        .unwrap();
        let (g, tset) = ctx.system().oracle_set_of(pid, target).unwrap();
        assert_eq!(g, GpuId::new(0), "buffer homed on remote GPU");
        for va in &found {
            assert_eq!(ctx.system().oracle_set_of(pid, *va).unwrap().1, tset);
        }
        assert!(!found.is_empty());
    }

    #[test]
    fn enumerate_sets_yields_distinct_physical_sets() {
        let mut sys = boot();
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let num_pages = 96u64;
        let buf = ctx.malloc_on(GpuId::new(0), num_pages * 4096).unwrap();
        let thr = Thresholds::paper_defaults();
        let classes = classify_pages(
            &mut ctx,
            buf,
            num_pages * 4096,
            4096,
            128,
            16,
            &thr,
            Locality::Local,
        )
        .unwrap();
        let sets = classes.enumerate_sets(48, 16);
        assert_eq!(sets.len(), 48);
        let mut phys = std::collections::HashSet::new();
        for es in &sets {
            let s = ctx.system().oracle_set_of(pid, es.lines()[0]).unwrap().1;
            assert!(phys.insert(s), "duplicate physical set {s}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_eviction_set_rejected() {
        let _ = EvictionSet::new(vec![]);
    }

    #[test]
    fn dedupe_drops_aliases_keeps_distinct() {
        let mut sys = boot();
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let num_pages = 96u64;
        let buf = ctx.malloc_on(GpuId::new(0), num_pages * 4096).unwrap();
        let thr = Thresholds::paper_defaults();
        let classes = classify_pages(
            &mut ctx,
            buf,
            num_pages * 4096,
            4096,
            128,
            16,
            &thr,
            Locality::Local,
        )
        .unwrap();
        let pages = &classes.classes[0];
        assert!(pages.len() >= 32);
        let a = classes.eviction_set(0, 1, 16);
        let b = classes.eviction_set(0, 2, 16);
        // Alias of `a` built from different pages of the same class.
        let a_alias = EvictionSet::new(
            pages[16..32]
                .iter()
                .map(|&p| buf.offset(p * 4096 + 128))
                .collect(),
        );
        let kept = dedupe_aliased(
            &mut ctx,
            vec![a.clone(), b.clone(), a_alias],
            16,
            &thr,
            Locality::Local,
        )
        .unwrap();
        assert_eq!(kept.len(), 2, "alias must be dropped");
        assert_eq!(kept[0], a);
        assert_eq!(kept[1], b);
    }
}
