//! Eviction-set discovery from user space (paper Sec. III-B).
//!
//! Two discovery algorithms live here, sharing the page-class data model:
//!
//! **Algorithm 1 — the faithful-reproduction path.** The paper's
//! incremental pointer-chase scan ([`discover_conflicts`] /
//! [`classify_pages`]), with the paper's optimisations: skipping ahead
//! with backtracking, and exploiting the observation that *"data
//! belonging to a page is indexed consecutively in the cache"*. Every
//! timed trial re-chases a serial dependent-load prefix, so a full scan
//! costs O(n²) simulated accesses. The access sequence of this path is
//! deliberately frozen — the `channel_fingerprints` golden tests pin the
//! pipeline wrappers against it — so it keeps the serial `ldcg` chains.
//!
//! **Group testing — the production path.** Following Vila et al.,
//! *Theory and Practice of Finding Eviction Sets* (S&P'19), and the
//! GoFetch `evict-rs` inflate/reduce idiom: [`discover_conflicts_grouped`]
//! starts from a conflicting superset, splits it into `ways + 1` groups
//! and recursively discards groups whose removal still evicts the target,
//! converging to a minimal `ways`-member set in O(w·n) accesses.
//! [`classify_pages_fast`] then classifies every remaining page with one
//! warp-parallel batched group test each (`ways − 1` known conflicts plus
//! the candidate in a single [`gpubox_sim::ProcessCtx::probe_batch`]
//! issue), instead of a serial chain per candidate. The decision in every
//! group test is the timed re-access of the target alone, which under LRU
//! is exact regardless of residual cache state: lines left by earlier
//! tests are strictly older than this test's target access, so they are
//! evicted first and the target falls out if and only if at least `ways`
//! distinct same-set lines are accessed after it. Both classifiers
//! produce identical [`PageClasses`] — asserted by the equivalence tests
//! and the `bench_discovery` gate.
//!
//! Because pages are placed at line-aligned frame boundaries, two pages
//! either conflict line-for-line (same alignment class) or not at all;
//! classifying pages therefore yields eviction sets for **every** set the
//! buffer covers, without a quadratic per-set scan.
//!
//! Also provides the Fig. 5 validation sweep and the Fig. 6 aliasing test
//! (with [`dedupe_aliased`] testing one candidate against every kept set
//! in a single batched probe).

use crate::thresholds::Thresholds;
use gpubox_sim::{ProcessCtx, SimResult, VirtAddr};

/// Whether the scanned buffer is homed on the scanning process's GPU or on
/// a peer GPU (decides which latency threshold applies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locality {
    /// Buffer on the process's own GPU.
    Local,
    /// Buffer on a peer GPU, reached over NVLink.
    Remote,
}

impl Locality {
    /// Classifies a latency as a miss under this locality.
    pub fn is_miss(self, thr: &Thresholds, cycles: u32) -> bool {
        match self {
            Locality::Local => thr.is_local_miss(cycles),
            Locality::Remote => thr.is_remote_miss(cycles),
        }
    }
}

/// A discovered eviction set: at least `ways` virtual addresses hashing to
/// one physical cache set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictionSet {
    lines: Vec<VirtAddr>,
}

impl EvictionSet {
    /// Wraps a list of conflicting line addresses.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is empty.
    pub fn new(lines: Vec<VirtAddr>) -> Self {
        assert!(!lines.is_empty(), "eviction set cannot be empty");
        EvictionSet { lines }
    }

    /// The member line addresses.
    pub fn lines(&self) -> &[VirtAddr] {
        &self.lines
    }

    /// Number of member lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the set has no members (never true for constructed sets).
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Primes the set: serial dependent accesses to every member,
    /// replacing whatever the set held.
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses.
    pub fn prime(&self, ctx: &mut ProcessCtx<'_>) -> SimResult<()> {
        for &va in &self.lines {
            ctx.ldcg(va)?;
        }
        Ok(())
    }

    /// Probes the set warp-parallel, returning per-line latencies and the
    /// number classified as misses.
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses.
    pub fn probe(
        &self,
        ctx: &mut ProcessCtx<'_>,
        thr: &Thresholds,
        loc: Locality,
    ) -> SimResult<ProbeOutcome> {
        let b = ctx.probe_batch(&self.lines)?;
        let misses = b.latencies.iter().filter(|&&l| loc.is_miss(thr, l)).count();
        Ok(ProbeOutcome {
            latencies: b.latencies,
            misses,
            duration: b.duration,
        })
    }
}

/// Result of probing an eviction set once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// Per-line measured latency.
    pub latencies: Vec<u32>,
    /// Lines classified as misses.
    pub misses: usize,
    /// Total probe duration in cycles.
    pub duration: u64,
}

/// Tuning knobs for the Algorithm 1 scan.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Candidates to skip per jump before re-testing (the paper's
    /// "skipping some address accesses" optimisation).
    pub skip: usize,
    /// Stop after this many conflicts were found (0 = exhaustive).
    pub max_conflicts: usize,
    /// Repeat each timed decision this many times and majority-vote
    /// (noise robustness).
    pub votes: u32,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            skip: 64,
            max_conflicts: 0,
            votes: 1,
        }
    }
}

impl ScanConfig {
    /// The preset every page classifier historically used internally
    /// (`skip: 32`, exhaustive, single-vote). Callers that need the
    /// pre-parameterisation access sequence bit-for-bit — the golden
    /// fingerprint fixtures — pass this explicitly.
    pub fn classify_default() -> Self {
        ScanConfig {
            skip: 32,
            max_conflicts: 0,
            votes: 1,
        }
    }
}

/// Host-side page membership bitset: O(1) test/insert instead of the
/// O(n) `Vec::contains` scans the classifiers used to do per candidate
/// (purely bookkeeping — touches no simulated state).
#[derive(Debug, Clone)]
struct PageBitset {
    words: Vec<u64>,
}

impl PageBitset {
    fn new(pages: u64) -> Self {
        PageBitset {
            words: vec![0u64; pages.div_ceil(64) as usize],
        }
    }

    fn set(&mut self, p: u64) {
        self.words[(p / 64) as usize] |= 1u64 << (p % 64);
    }

    fn test(&self, p: u64) -> bool {
        self.words[(p / 64) as usize] >> (p % 64) & 1 == 1
    }
}

/// One timed Algorithm-1 trial: access the target, pointer-chase the first
/// `n` candidates, re-access the target and classify the second access.
/// Returns `true` when the target was evicted.
fn target_evicted(
    ctx: &mut ProcessCtx<'_>,
    target: VirtAddr,
    chain: &[VirtAddr],
    n: usize,
    thr: &Thresholds,
    loc: Locality,
    votes: u32,
) -> SimResult<bool> {
    let mut miss_votes = 0u32;
    for _ in 0..votes.max(1) {
        // basePtr access (line 1-7 of Algorithm 1).
        ctx.ldcg(target)?;
        ctx.compute(4); // dummy op
                        // Pointer chase over the first n candidates (lines 9-14).
        for &va in &chain[..n] {
            ctx.ldcg(va)?;
        }
        ctx.compute(4);
        // Second target access (lines 16-21).
        let (_, t2) = ctx.ldcg(target)?;
        if loc.is_miss(thr, t2) {
            miss_votes += 1;
        }
    }
    Ok(miss_votes * 2 > votes.max(1))
}

/// Algorithm 1: finds, among `candidates`, the addresses that hash to the
/// same cache set as `target`. Returns them in discovery order.
///
/// Under an LRU cache of associativity `w`, the first `w - 1` same-set
/// candidates are absorbed without evicting the target, so this returns
/// the *remaining* conflicts; [`classify_pages`] recovers the absorbed
/// ones with group tests.
///
/// # Errors
///
/// Propagates simulator access errors.
pub fn discover_conflicts(
    ctx: &mut ProcessCtx<'_>,
    target: VirtAddr,
    candidates: &[VirtAddr],
    thr: &Thresholds,
    loc: Locality,
    cfg: &ScanConfig,
) -> SimResult<Vec<VirtAddr>> {
    let mut chain: Vec<VirtAddr> = candidates.to_vec();
    let mut found = Vec::new();
    // `n` = prefix length known NOT to evict the target.
    let mut n = 0usize;
    while n < chain.len() {
        // Jump ahead by `skip`.
        let hi = (n + cfg.skip).min(chain.len());
        if !target_evicted(ctx, target, &chain, hi, thr, loc, cfg.votes)? {
            n = hi;
            continue;
        }
        // A conflict lies in (n, hi]; binary-search the smallest prefix
        // that evicts (the paper's "revert back and check all those last
        // skipped addresses").
        let (mut lo, mut up) = (n, hi);
        while up - lo > 1 {
            let mid = (lo + up) / 2;
            if target_evicted(ctx, target, &chain, mid, thr, loc, cfg.votes)? {
                up = mid;
            } else {
                lo = mid;
            }
        }
        // chain[up - 1] caused the eviction: it conflicts with the target.
        let conflict = chain.remove(up - 1);
        found.push(conflict);
        if cfg.max_conflicts != 0 && found.len() >= cfg.max_conflicts {
            break;
        }
        n = up - 1;
    }
    Ok(found)
}

/// Group test: does `candidate` hash to the same set as `target`, given
/// `ways - 1` known conflicts? (Access target, chase the known conflicts
/// plus the candidate, re-probe the target.)
///
/// # Errors
///
/// Propagates simulator access errors.
pub fn conflicts_with(
    ctx: &mut ProcessCtx<'_>,
    target: VirtAddr,
    known: &[VirtAddr],
    candidate: VirtAddr,
    thr: &Thresholds,
    loc: Locality,
    votes: u32,
) -> SimResult<bool> {
    let mut chain: Vec<VirtAddr> = known.to_vec();
    chain.push(candidate);
    let n = chain.len();
    target_evicted(ctx, target, &chain, n, thr, loc, votes)
}

/// One batched group test: access the target, probe `group` in a single
/// warp-parallel batch, re-access the target and classify the second
/// access (majority over `votes`). Under LRU this is exact: the target is
/// evicted iff at least `ways` distinct same-set lines sit in `group`
/// (residual lines from earlier tests are older than this test's target
/// access, so they are victimised first).
fn group_evicts(
    ctx: &mut ProcessCtx<'_>,
    target: VirtAddr,
    group: &[VirtAddr],
    thr: &Thresholds,
    loc: Locality,
    votes: u32,
    scratch: &mut Vec<u32>,
) -> SimResult<bool> {
    let mut miss_votes = 0u32;
    for _ in 0..votes.max(1) {
        ctx.ldcg(target)?;
        ctx.compute(4);
        ctx.probe_batch_into(group, scratch)?;
        ctx.compute(4);
        let (_, t2) = ctx.ldcg(target)?;
        if loc.is_miss(thr, t2) {
            miss_votes += 1;
        }
    }
    Ok(miss_votes * 2 > votes.max(1))
}

/// Group-testing discovery (Vila et al. S&P'19): finds a **minimal**
/// eviction set of exactly `ways` members for `target` among
/// `candidates`, in O(w·n) simulated accesses.
///
/// Inflate: grow a candidate prefix (starting at `4 × ways`) until it
/// evicts the target. Reduce: split the working set into `ways + 1`
/// balanced groups and discard every group whose removal still evicts;
/// by pigeonhole at least one such group always exists while more than
/// `ways` members remain, so the loop converges to `ways` members under
/// noise-free thresholds.
///
/// Returns `None` when no candidate prefix evicts the target (fewer than
/// `ways` same-set candidates — e.g. a tail alignment class) or when
/// noise stalls the reduction; callers fall back to Algorithm 1.
///
/// # Errors
///
/// Propagates simulator access errors.
pub fn discover_conflicts_grouped(
    ctx: &mut ProcessCtx<'_>,
    target: VirtAddr,
    candidates: &[VirtAddr],
    ways: usize,
    thr: &Thresholds,
    loc: Locality,
    cfg: &ScanConfig,
) -> SimResult<Option<Vec<VirtAddr>>> {
    if ways == 0 || candidates.len() < ways {
        return Ok(None);
    }
    let mut scratch = Vec::new();
    // Inflate: grow a prefix until it evicts. Starting at `4 × ways`
    // keeps the first reduce pass cheap when the candidate pool is
    // class-dense (the common case inside `classify_pages_fast`).
    let mut take = (4 * ways).clamp(ways, candidates.len());
    let mut working: Vec<VirtAddr> = loop {
        let prefix = &candidates[..take];
        if group_evicts(ctx, target, prefix, thr, loc, cfg.votes, &mut scratch)? {
            break prefix.to_vec();
        }
        if take == candidates.len() {
            return Ok(None);
        }
        take = (take * 2).min(candidates.len());
    };
    // Reduce. Each pass splits the working set into exactly `ways + 1`
    // balanced groups — not fixed-size chunks: with at most `ways`
    // essential (same-set) members spread over `ways + 1` groups, the
    // pigeonhole principle guarantees one group is entirely disposable,
    // so every pass makes progress under noise-free thresholds. Within a
    // pass every disposable group is discarded (walking the ranges
    // back-to-front keeps earlier ranges valid after a removal), so one
    // pass typically sheds most non-members and the whole reduction
    // converges in a handful of passes instead of one-removal-per-pass.
    let mut rest: Vec<VirtAddr> = Vec::new();
    while working.len() > ways {
        let groups = (ways + 1).min(working.len());
        let len = working.len();
        let mut progressed = false;
        for g in (0..groups).rev() {
            let start = g * len / groups;
            let end = (g + 1) * len / groups;
            if start == end || working.len() - (end - start) < ways {
                continue;
            }
            rest.clear();
            rest.extend_from_slice(&working[..start]);
            rest.extend_from_slice(&working[end..]);
            if group_evicts(ctx, target, &rest, thr, loc, cfg.votes, &mut scratch)? {
                working.drain(start..end);
                progressed = true;
            }
        }
        if !progressed {
            // Every group is load-bearing yet more than `ways` members
            // remain: a mis-voted trial under noise. Give up; the caller
            // falls back to the serial scan.
            return Ok(None);
        }
    }
    Ok(Some(working))
}

/// The Fig. 5 validation sweep: for each prefix length `n`, the latency of
/// the target's re-access after chasing `n` conflict-set members. The step
/// from hit to miss at `n == ways` confirms the set and exposes the
/// associativity and the deterministic (LRU) replacement.
///
/// # Errors
///
/// Propagates simulator access errors.
pub fn validation_sweep(
    ctx: &mut ProcessCtx<'_>,
    target: VirtAddr,
    conflicts: &[VirtAddr],
    max_n: usize,
) -> SimResult<Vec<(usize, u32)>> {
    let mut out = Vec::new();
    for n in 1..=max_n.min(conflicts.len()) {
        ctx.ldcg(target)?;
        ctx.compute(4);
        for &va in &conflicts[..n] {
            ctx.ldcg(va)?;
        }
        ctx.compute(4);
        let (_, t2) = ctx.ldcg(target)?;
        out.push((n, t2));
    }
    Ok(out)
}

/// The Fig. 6 aliasing test: do two discovered eviction sets map to the
/// same physical cache set? Takes `w/2 + 1` lines from each; if they
/// alias, the combined `w + 2` lines thrash and re-probing sees misses;
/// if they map to distinct sets, both halves fit and everything hits.
///
/// # Errors
///
/// Propagates simulator access errors.
pub fn sets_alias(
    ctx: &mut ProcessCtx<'_>,
    a: &EvictionSet,
    b: &EvictionSet,
    ways: usize,
    thr: &Thresholds,
    loc: Locality,
) -> SimResult<bool> {
    let half = ways / 2 + 1;
    let mut combined: Vec<VirtAddr> = Vec::with_capacity(2 * half);
    combined.extend_from_slice(&a.lines()[..half.min(a.len())]);
    combined.extend_from_slice(&b.lines()[..half.min(b.len())]);
    // Two warm-up chases, then a timed pass.
    for _ in 0..2 {
        for &va in &combined {
            ctx.ldcg(va)?;
        }
    }
    let mut misses = 0usize;
    for &va in &combined {
        let (_, t) = ctx.ldcg(va)?;
        if loc.is_miss(thr, t) {
            misses += 1;
        }
    }
    // Distinct sets: everything resident => ~0 misses. Aliased: LRU
    // thrashing => most accesses miss.
    Ok(misses > combined.len() / 3)
}

/// Removes aliased duplicates from a collection of discovered eviction
/// sets (paper Fig. 6), so self-eviction cannot fake victim activity
/// during the attack. Returns the surviving sets.
///
/// Kept sets are mutually non-aliased, so each acts as the unique
/// representative of its alias class. A candidate is therefore tested
/// against **all** representatives at once instead of pairwise: one
/// combined batch holds `w/2 + 1` lines from the candidate and from every
/// kept set. Distinct physical sets never interact, so after two warm-up
/// passes every segment hits — except the one kept segment that shares
/// the candidate's physical set, whose combined `w + 2` lines thrash
/// (the same signal [`sets_alias`] reads, at a third of the pairwise
/// access cost and warp-parallel).
///
/// # Errors
///
/// Propagates simulator access errors.
pub fn dedupe_aliased(
    ctx: &mut ProcessCtx<'_>,
    sets: Vec<EvictionSet>,
    ways: usize,
    thr: &Thresholds,
    loc: Locality,
) -> SimResult<Vec<EvictionSet>> {
    let half = ways / 2 + 1;
    let mut kept: Vec<EvictionSet> = Vec::with_capacity(sets.len());
    let mut scratch = Vec::new();
    for candidate in sets {
        if kept.is_empty() {
            kept.push(candidate);
            continue;
        }
        // Segment 0 is the candidate's half; segment i+1 is kept[i]'s.
        let mut combined: Vec<VirtAddr> = Vec::with_capacity((kept.len() + 1) * half);
        combined.extend_from_slice(&candidate.lines()[..half.min(candidate.len())]);
        let cand_len = combined.len();
        let mut bounds = vec![(0usize, cand_len)];
        for existing in &kept {
            let lo = combined.len();
            combined.extend_from_slice(&existing.lines()[..half.min(existing.len())]);
            bounds.push((lo, combined.len()));
        }
        // Two warm-up passes, then a timed pass (as in `sets_alias`).
        for _ in 0..2 {
            ctx.probe_batch_into(&combined, &mut scratch)?;
        }
        ctx.probe_batch_into(&combined, &mut scratch)?;
        let aliased = bounds[1..].iter().any(|&(lo, hi)| {
            let misses = scratch[lo..hi]
                .iter()
                .filter(|&&t| loc.is_miss(thr, t))
                .count();
            misses > (hi - lo) / 3
        });
        if !aliased {
            kept.push(candidate);
        }
    }
    Ok(kept)
}

/// Page alignment classes discovered for one buffer: pages in the same
/// class conflict line-for-line.
#[derive(Debug, Clone)]
pub struct PageClasses {
    /// `classes[c]` lists page indices (0-based within the buffer).
    pub classes: Vec<Vec<u64>>,
    /// Buffer base address the classes refer to.
    pub base: VirtAddr,
    /// Page size in bytes.
    pub page_size: u64,
    /// Cache line size in bytes.
    pub line_size: u64,
}

impl PageClasses {
    /// Lines per page.
    pub fn lines_per_page(&self) -> u64 {
        self.page_size / self.line_size
    }

    /// Number of distinct relative cache sets reachable from this buffer:
    /// `classes × lines_per_page`.
    pub fn distinct_sets(&self) -> u64 {
        self.classes.len() as u64 * self.lines_per_page()
    }

    /// Builds the eviction set for relative set `(class, line_offset)`
    /// using the first `ways` member pages.
    ///
    /// # Panics
    ///
    /// Panics if the class has fewer than `ways` pages or the offset is
    /// out of range.
    pub fn eviction_set(&self, class: usize, line_offset: u64, ways: usize) -> EvictionSet {
        assert!(
            line_offset < self.lines_per_page(),
            "line offset out of page"
        );
        let pages = &self.classes[class];
        assert!(
            pages.len() >= ways,
            "class {class} has only {} pages",
            pages.len()
        );
        let lines = pages[..ways]
            .iter()
            .map(|&p| {
                self.base
                    .offset(p * self.page_size + line_offset * self.line_size)
            })
            .collect();
        EvictionSet::new(lines)
    }

    /// Enumerates `count` distinct relative sets as `(class, offset)`
    /// pairs, spread evenly across every alignment class and across the
    /// in-page offsets within each class. Spreading matters: any victim
    /// page covers the *consecutive* sets of one class (the paper's
    /// page-consecutive structure), so an evenly-spread monitor overlaps
    /// every victim page instead of gambling on one contiguous window.
    pub fn enumerate_sets(&self, count: usize, ways: usize) -> Vec<EvictionSet> {
        let lpp = self.lines_per_page();
        let usable: Vec<usize> = (0..self.classes.len())
            .filter(|&c| self.classes[c].len() >= ways)
            .collect();
        if usable.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(count);
        let per_class = count.div_ceil(usable.len());
        for &c in &usable {
            let n = per_class.min(count - out.len()).min(lpp as usize);
            for i in 0..n {
                let off = (i as u64 * lpp) / n as u64;
                out.push(self.eviction_set(c, off, ways));
            }
            if out.len() >= count {
                break;
            }
        }
        out
    }
}

/// Classifies every page of `[base, base + bytes)` into alignment classes
/// using Algorithm-1 scans over one representative line per page, plus
/// group tests to recover the conflicts absorbed by the cache's
/// associativity.
///
/// This is the faithful-reproduction path: with
/// [`ScanConfig::classify_default`] its access sequence is bit-identical
/// to every earlier revision (the golden fingerprint fixtures depend on
/// that). Production callers use [`classify_pages_fast`].
///
/// # Errors
///
/// Propagates simulator access errors.
#[allow(clippy::too_many_arguments)]
pub fn classify_pages(
    ctx: &mut ProcessCtx<'_>,
    base: VirtAddr,
    bytes: u64,
    page_size: u64,
    line_size: u64,
    ways: usize,
    thr: &Thresholds,
    loc: Locality,
    cfg: &ScanConfig,
) -> SimResult<PageClasses> {
    let num_pages = bytes / page_size;
    let page_line0 = |p: u64| base.offset(p * page_size);
    let mut unclassified: Vec<u64> = (0..num_pages).collect();
    let mut classes: Vec<Vec<u64>> = Vec::new();

    while !unclassified.is_empty() {
        let target_page = unclassified[0];
        let target = page_line0(target_page);
        let candidates: Vec<VirtAddr> = unclassified[1..].iter().map(|&p| page_line0(p)).collect();
        let found = discover_conflicts(ctx, target, &candidates, thr, loc, cfg)?;
        let mut members: Vec<u64> = vec![target_page];
        let mut in_class = PageBitset::new(num_pages);
        in_class.set(target_page);
        for va in &found {
            let p = (va.raw() - base.raw()) / page_size;
            members.push(p);
            in_class.set(p);
        }

        // Group-test the remaining pages: the scan absorbs the first
        // `ways - 1` same-class pages without a visible eviction.
        if found.len() >= ways - 1 {
            let known: Vec<VirtAddr> = found[..ways - 1].to_vec();
            for &p in &unclassified {
                if in_class.test(p) {
                    continue;
                }
                if conflicts_with(ctx, target, &known, page_line0(p), thr, loc, cfg.votes)? {
                    members.push(p);
                    in_class.set(p);
                }
            }
        }
        unclassified.retain(|p| !in_class.test(*p));
        members.sort_unstable();
        classes.push(members);
    }

    Ok(PageClasses {
        classes,
        base,
        page_size,
        line_size,
    })
}

/// Group-testing page classifier — the production path. Per round: find
/// a minimal `ways`-member eviction set for the round's target with
/// [`discover_conflicts_grouped`], then decide every remaining page with
/// a single warp-parallel batched group test (`ways − 1` of the minimal
/// set plus the candidate in one probe). Falls back to the Algorithm-1
/// round body whenever the grouped reduction cannot produce a minimal
/// set (tail classes with fewer than `ways` members, or noise), so the
/// result is always total. On any buffer where each alignment class has
/// at least `2 × ways − 1` pages — Algorithm 1's own correctness
/// precondition, comfortably met at DGX-1 scale — the result is
/// identical [`PageClasses`] to [`classify_pages`], at a fraction of
/// the simulated accesses. Below that the grouped path stays
/// oracle-exact while the serial scan fragments classes.
///
/// # Errors
///
/// Propagates simulator access errors.
#[allow(clippy::too_many_arguments)]
pub fn classify_pages_fast(
    ctx: &mut ProcessCtx<'_>,
    base: VirtAddr,
    bytes: u64,
    page_size: u64,
    line_size: u64,
    ways: usize,
    thr: &Thresholds,
    loc: Locality,
    cfg: &ScanConfig,
) -> SimResult<PageClasses> {
    let num_pages = bytes / page_size;
    let page_line0 = |p: u64| base.offset(p * page_size);
    let page_of = |va: &VirtAddr| (va.raw() - base.raw()) / page_size;
    let mut unclassified: Vec<u64> = (0..num_pages).collect();
    let mut classes: Vec<Vec<u64>> = Vec::new();
    let mut scratch: Vec<u32> = Vec::new();

    while !unclassified.is_empty() {
        let target_page = unclassified[0];
        let target = page_line0(target_page);
        let candidates: Vec<VirtAddr> = unclassified[1..].iter().map(|&p| page_line0(p)).collect();
        let mut members: Vec<u64> = vec![target_page];
        let mut in_class = PageBitset::new(num_pages);
        in_class.set(target_page);

        let minimal =
            discover_conflicts_grouped(ctx, target, &candidates, ways, thr, loc, cfg)?;
        match minimal {
            Some(min_set) => {
                for va in &min_set {
                    let p = page_of(va);
                    members.push(p);
                    in_class.set(p);
                }
                // Membership scan: one batched test per remaining page.
                let mut probe: Vec<VirtAddr> = min_set[..ways - 1].to_vec();
                probe.push(target); // placeholder slot for the candidate
                for &p in &unclassified[1..] {
                    if in_class.test(p) {
                        continue;
                    }
                    *probe.last_mut().expect("candidate slot") = page_line0(p);
                    if group_evicts(ctx, target, &probe, thr, loc, cfg.votes, &mut scratch)? {
                        members.push(p);
                        in_class.set(p);
                    }
                }
            }
            None => {
                // Algorithm-1 fallback, exactly the classify_pages round.
                let found = discover_conflicts(ctx, target, &candidates, thr, loc, cfg)?;
                for va in &found {
                    let p = page_of(va);
                    members.push(p);
                    in_class.set(p);
                }
                if found.len() >= ways - 1 {
                    let known: Vec<VirtAddr> = found[..ways - 1].to_vec();
                    for &p in &unclassified {
                        if in_class.test(p) {
                            continue;
                        }
                        if conflicts_with(ctx, target, &known, page_line0(p), thr, loc, cfg.votes)?
                        {
                            members.push(p);
                            in_class.set(p);
                        }
                    }
                }
            }
        }
        unclassified.retain(|p| !in_class.test(*p));
        members.sort_unstable();
        classes.push(members);
    }

    Ok(PageClasses {
        classes,
        base,
        page_size,
        line_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpubox_sim::{GpuId, MultiGpuSystem, SystemConfig};

    /// Small system: 2 GPUs, 64-set 16-way L2, 4 KiB pages (32 lines/page,
    /// so 2 alignment classes).
    fn boot() -> MultiGpuSystem {
        MultiGpuSystem::new(SystemConfig::small_test().noiseless())
    }

    #[test]
    fn discover_conflicts_finds_same_set_lines() {
        let mut sys = boot();
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        // 64 pages x 4 KiB: expect ~32 pages per class.
        let buf = ctx.malloc_on(GpuId::new(0), 64 * 4096).unwrap();
        let target = buf;
        let candidates: Vec<VirtAddr> = (1..64u64).map(|p| buf.offset(p * 4096)).collect();
        let thr = Thresholds::paper_defaults();
        let found = discover_conflicts(
            &mut ctx,
            target,
            &candidates,
            &thr,
            Locality::Local,
            &ScanConfig::default(),
        )
        .unwrap();
        // Ground truth: every found address shares the target's set.
        let (_, tset) = ctx.system().oracle_set_of(pid, target).unwrap();
        assert!(!found.is_empty());
        for va in &found {
            let (_, s) = ctx.system().oracle_set_of(pid, *va).unwrap();
            assert_eq!(s, tset, "found address {va} not in target set");
        }
    }

    #[test]
    fn classify_pages_recovers_all_classes() {
        let mut sys = boot();
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        // Enough pages that each of the 2 classes gets ≥ 16 w.h.p.
        let num_pages = 96u64;
        let buf = ctx.malloc_on(GpuId::new(0), num_pages * 4096).unwrap();
        let thr = Thresholds::paper_defaults();
        let classes = classify_pages(
            &mut ctx,
            buf,
            num_pages * 4096,
            4096,
            128,
            16,
            &thr,
            Locality::Local,
            &ScanConfig::classify_default(),
        )
        .unwrap();
        // 64 sets / 32 lines-per-page = 2 classes.
        assert_eq!(classes.classes.len(), 2, "expected 2 alignment classes");
        let total: usize = classes.classes.iter().map(Vec::len).sum();
        assert_eq!(total as u64, num_pages, "every page classified once");

        // Ground truth: all pages of a class have the same base set.
        for group in &classes.classes {
            let sets: Vec<_> = group
                .iter()
                .map(|&p| {
                    ctx.system()
                        .oracle_set_of(pid, buf.offset(p * 4096))
                        .unwrap()
                        .1
                })
                .collect();
            assert!(
                sets.windows(2).all(|w| w[0] == w[1]),
                "class not homogeneous"
            );
        }
    }

    #[test]
    fn eviction_set_from_classes_really_evicts() {
        let mut sys = boot();
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let num_pages = 96u64;
        let buf = ctx.malloc_on(GpuId::new(0), num_pages * 4096).unwrap();
        let thr = Thresholds::paper_defaults();
        let classes = classify_pages(
            &mut ctx,
            buf,
            num_pages * 4096,
            4096,
            128,
            16,
            &thr,
            Locality::Local,
            &ScanConfig::classify_default(),
        )
        .unwrap();
        let es = classes.eviction_set(0, 5, 16);
        // All 16 lines must share one physical set (oracle check).
        let first = ctx.system().oracle_set_of(pid, es.lines()[0]).unwrap().1;
        for &va in es.lines() {
            assert_eq!(ctx.system().oracle_set_of(pid, va).unwrap().1, first);
        }
        // Priming the set evicts a victim line placed there beforehand.
        // Use a line from the *other* class page at the right offset...
        // simplest: a second set on same (class, offset) built from other
        // pages aliases — prime one, probe the other: all misses.
        let es2 = {
            let pages = &classes.classes[0];
            assert!(pages.len() >= 32, "need 32 pages in class for this test");
            let lines = pages[16..32]
                .iter()
                .map(|&p| buf.offset(p * 4096 + 5 * 128))
                .collect();
            EvictionSet::new(lines)
        };
        es2.prime(&mut ctx).unwrap();
        es.prime(&mut ctx).unwrap();
        let probe = es2.probe(&mut ctx, &thr, Locality::Local).unwrap();
        assert!(
            probe.misses >= 15,
            "priming es must evict es2: {} misses",
            probe.misses
        );
    }

    #[test]
    fn validation_sweep_steps_at_associativity() {
        let mut sys = boot();
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let num_pages = 96u64;
        let buf = ctx.malloc_on(GpuId::new(0), num_pages * 4096).unwrap();
        let thr = Thresholds::paper_defaults();
        let classes = classify_pages(
            &mut ctx,
            buf,
            num_pages * 4096,
            4096,
            128,
            16,
            &thr,
            Locality::Local,
            &ScanConfig::classify_default(),
        )
        .unwrap();
        // Superset: 24 same-set lines.
        let pages = &classes.classes[0];
        let conflicts: Vec<VirtAddr> = pages[..24].iter().map(|&p| buf.offset(p * 4096)).collect();
        let target = buf.offset(pages[24] * 4096);
        let sweep = validation_sweep(&mut ctx, target, &conflicts, 24).unwrap();
        for (n, t) in &sweep {
            if *n < 16 {
                assert!(!thr.is_local_miss(*t), "n={n} should still hit ({t})");
            } else {
                assert!(thr.is_local_miss(*t), "n={n} should miss ({t})");
            }
        }
    }

    #[test]
    fn aliased_sets_detected_distinct_sets_pass() {
        let mut sys = boot();
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let num_pages = 96u64;
        let buf = ctx.malloc_on(GpuId::new(0), num_pages * 4096).unwrap();
        let thr = Thresholds::paper_defaults();
        let classes = classify_pages(
            &mut ctx,
            buf,
            num_pages * 4096,
            4096,
            128,
            16,
            &thr,
            Locality::Local,
            &ScanConfig::classify_default(),
        )
        .unwrap();
        let pages = &classes.classes[0];
        assert!(pages.len() >= 32);
        let set_a = classes.eviction_set(0, 3, 16);
        // Aliased set: same (class, offset), different pages.
        let aliased = EvictionSet::new(
            pages[16..32]
                .iter()
                .map(|&p| buf.offset(p * 4096 + 3 * 128))
                .collect(),
        );
        // Distinct set: same class, different offset.
        let distinct = classes.eviction_set(0, 4, 16);
        assert!(sets_alias(&mut ctx, &set_a, &aliased, 16, &thr, Locality::Local).unwrap());
        assert!(!sets_alias(&mut ctx, &set_a, &distinct, 16, &thr, Locality::Local).unwrap());
    }

    #[test]
    fn remote_discovery_works_over_nvlink() {
        // The spy on GPU1 scans a buffer homed on GPU0 — the cross-GPU
        // setting of the paper.
        let mut sys = boot();
        let pid = sys.create_process(GpuId::new(1));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        ctx.enable_peer_access(GpuId::new(0)).unwrap();
        let buf = ctx.malloc_on(GpuId::new(0), 64 * 4096).unwrap();
        let thr = Thresholds::paper_defaults();
        let target = buf;
        let candidates: Vec<VirtAddr> = (1..64u64).map(|p| buf.offset(p * 4096)).collect();
        let found = discover_conflicts(
            &mut ctx,
            target,
            &candidates,
            &thr,
            Locality::Remote,
            &ScanConfig::default(),
        )
        .unwrap();
        let (g, tset) = ctx.system().oracle_set_of(pid, target).unwrap();
        assert_eq!(g, GpuId::new(0), "buffer homed on remote GPU");
        for va in &found {
            assert_eq!(ctx.system().oracle_set_of(pid, *va).unwrap().1, tset);
        }
        assert!(!found.is_empty());
    }

    #[test]
    fn enumerate_sets_yields_distinct_physical_sets() {
        let mut sys = boot();
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let num_pages = 96u64;
        let buf = ctx.malloc_on(GpuId::new(0), num_pages * 4096).unwrap();
        let thr = Thresholds::paper_defaults();
        let classes = classify_pages(
            &mut ctx,
            buf,
            num_pages * 4096,
            4096,
            128,
            16,
            &thr,
            Locality::Local,
            &ScanConfig::classify_default(),
        )
        .unwrap();
        let sets = classes.enumerate_sets(48, 16);
        assert_eq!(sets.len(), 48);
        let mut phys = std::collections::HashSet::new();
        for es in &sets {
            let s = ctx.system().oracle_set_of(pid, es.lines()[0]).unwrap().1;
            assert!(phys.insert(s), "duplicate physical set {s}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_eviction_set_rejected() {
        let _ = EvictionSet::new(vec![]);
    }

    #[test]
    fn grouped_discovery_finds_minimal_set() {
        let mut sys = boot();
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let buf = ctx.malloc_on(GpuId::new(0), 96 * 4096).unwrap();
        let target = buf;
        let candidates: Vec<VirtAddr> = (1..96u64).map(|p| buf.offset(p * 4096)).collect();
        let thr = Thresholds::paper_defaults();
        let found = discover_conflicts_grouped(
            &mut ctx,
            target,
            &candidates,
            16,
            &thr,
            Locality::Local,
            &ScanConfig::classify_default(),
        )
        .unwrap()
        .expect("enough same-set candidates for a minimal set");
        assert_eq!(found.len(), 16, "minimal set has exactly `ways` members");
        let (_, tset) = ctx.system().oracle_set_of(pid, target).unwrap();
        for va in &found {
            let (_, s) = ctx.system().oracle_set_of(pid, *va).unwrap();
            assert_eq!(s, tset, "member {va} not in target set");
        }
    }

    #[test]
    fn grouped_discovery_gives_up_without_enough_conflicts() {
        let mut sys = boot();
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        // 8 pages → ~4 same-class candidates, far fewer than 16 ways.
        let buf = ctx.malloc_on(GpuId::new(0), 8 * 4096).unwrap();
        let candidates: Vec<VirtAddr> = (1..8u64).map(|p| buf.offset(p * 4096)).collect();
        let thr = Thresholds::paper_defaults();
        let found = discover_conflicts_grouped(
            &mut ctx,
            buf,
            &candidates,
            16,
            &thr,
            Locality::Local,
            &ScanConfig::classify_default(),
        )
        .unwrap();
        assert!(found.is_none(), "no minimal set exists below associativity");
    }

    #[test]
    fn fast_classifier_matches_classic_with_fewer_accesses() {
        let thr = Thresholds::paper_defaults();
        let num_pages = 96u64;
        let classify = |fast: bool| {
            let mut sys = boot();
            let pid = sys.create_process(GpuId::new(0));
            let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
            let buf = ctx.malloc_on(GpuId::new(0), num_pages * 4096).unwrap();
            let cfg = ScanConfig::classify_default();
            let classes = if fast {
                classify_pages_fast(
                    &mut ctx,
                    buf,
                    num_pages * 4096,
                    4096,
                    128,
                    16,
                    &thr,
                    Locality::Local,
                    &cfg,
                )
                .unwrap()
            } else {
                classify_pages(
                    &mut ctx,
                    buf,
                    num_pages * 4096,
                    4096,
                    128,
                    16,
                    &thr,
                    Locality::Local,
                    &cfg,
                )
                .unwrap()
            };
            let accesses = ctx.system().stats().gpu(GpuId::new(0)).issued_accesses;
            (classes, accesses)
        };
        let (classic, classic_accesses) = classify(false);
        let (fast, fast_accesses) = classify(true);
        assert_eq!(classic.classes, fast.classes, "classifiers must agree");
        assert_eq!(classic.base, fast.base);
        assert!(
            fast_accesses * 2 < classic_accesses,
            "grouped path should cost well under half the accesses \
             (classic {classic_accesses}, grouped {fast_accesses})"
        );
    }

    #[test]
    fn fast_classifier_works_remotely_over_nvlink() {
        let mut sys = boot();
        let pid = sys.create_process(GpuId::new(1));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        ctx.enable_peer_access(GpuId::new(0)).unwrap();
        let num_pages = 96u64;
        let buf = ctx.malloc_on(GpuId::new(0), num_pages * 4096).unwrap();
        let thr = Thresholds::paper_defaults();
        let classes = classify_pages_fast(
            &mut ctx,
            buf,
            num_pages * 4096,
            4096,
            128,
            16,
            &thr,
            Locality::Remote,
            &ScanConfig::classify_default(),
        )
        .unwrap();
        assert_eq!(classes.classes.len(), 2);
        let total: usize = classes.classes.iter().map(Vec::len).sum();
        assert_eq!(total as u64, num_pages);
        for group in &classes.classes {
            let sets: Vec<_> = group
                .iter()
                .map(|&p| {
                    ctx.system()
                        .oracle_set_of(pid, buf.offset(p * 4096))
                        .unwrap()
                        .1
                })
                .collect();
            assert!(sets.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn dedupe_drops_aliases_keeps_distinct() {
        let mut sys = boot();
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let num_pages = 96u64;
        let buf = ctx.malloc_on(GpuId::new(0), num_pages * 4096).unwrap();
        let thr = Thresholds::paper_defaults();
        let classes = classify_pages(
            &mut ctx,
            buf,
            num_pages * 4096,
            4096,
            128,
            16,
            &thr,
            Locality::Local,
            &ScanConfig::classify_default(),
        )
        .unwrap();
        let pages = &classes.classes[0];
        assert!(pages.len() >= 32);
        let a = classes.eviction_set(0, 1, 16);
        let b = classes.eviction_set(0, 2, 16);
        // Alias of `a` built from different pages of the same class.
        let a_alias = EvictionSet::new(
            pages[16..32]
                .iter()
                .map(|&p| buf.offset(p * 4096 + 128))
                .collect(),
        );
        let kept = dedupe_aliased(
            &mut ctx,
            vec![a.clone(), b.clone(), a_alias],
            16,
            &thr,
            Locality::Local,
        )
        .unwrap();
        assert_eq!(kept.len(), 2, "alias must be dropped");
        assert_eq!(kept[0], a);
        assert_eq!(kept[1], b);
    }
}

