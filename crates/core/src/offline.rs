//! Offline-phase artifact cache: derived [`Thresholds`] and
//! [`PageClasses`] keyed by a configuration fingerprint.
//!
//! The offline reverse-engineering phase (timing clusters, eviction-set
//! discovery, page classification) is a pure function of the system
//! configuration and the attack-buffer geometry: the simulator's frame
//! placement and jitter are driven by the seeded RNG, so two boots of an
//! identical [`SystemConfig`] derive identical artifacts. Sweeps that
//! boot the same config for every payload seed — `ext_fabric_defense`
//! runs the full offline phase per (seed × defence) point — therefore
//! re-derive the same classes over and over. This cache memoises them.
//!
//! Safety rails:
//!
//! * The key is a fingerprint over the **serialised** [`SystemConfig`]
//!   (seed, cache geometry, timing model, topology, fabric/QoS/fault
//!   plan — everything that can influence placement or latencies) plus
//!   the explicit salt the caller provides (GPU pair, buffer bytes, scan
//!   parameters) and an algorithm tag that is bumped whenever the
//!   discovery algorithm changes. Any difference means a different key —
//!   stale entries are unreachable rather than invalidated in place.
//! * On the **first reuse** of an entry the caller is told
//!   ([`CacheOutcome::FirstReuse`]) so it can run
//!   [`verify_classes_against_oracle`] — an explicit oracle-checked
//!   equivalence assertion that the cached classes still describe the
//!   freshly booted system.
//! * Bit-identity of downstream behaviour additionally requires the
//!   system to be collapsed to a canonical phase boundary after the
//!   offline phase (hit or miss) — see
//!   [`gpubox_sim::MultiGpuSystem::canonicalize_phase`].

use crate::eviction::PageClasses;
use crate::thresholds::Thresholds;
use gpubox_sim::{MultiGpuSystem, ProcessId, SystemConfig};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Bumped whenever the discovery algorithm's *results* could change, so
/// old entries can never be replayed against a new algorithm.
const ALGORITHM_TAG: u64 = 2;

/// Artifacts one offline phase derives: thresholds plus one
/// [`PageClasses`] per classified buffer (in derivation order).
#[derive(Debug, Clone)]
pub struct OfflineArtifacts {
    /// Decision thresholds from timing reverse engineering.
    pub thresholds: Thresholds,
    /// Page classes per classified buffer, in derivation order (e.g.
    /// `[trojan, spy]` for an [`crate::eviction`]-based attack setup).
    pub classes: Vec<PageClasses>,
}

/// What a cache lookup found.
#[derive(Debug)]
pub enum CacheOutcome {
    /// No entry: the caller must derive and [`OfflineCache::insert`].
    Miss,
    /// First reuse of this entry: the caller must oracle-verify the
    /// classes against the freshly booted system before trusting them.
    FirstReuse(OfflineArtifacts),
    /// Subsequent reuse of an already-verified entry.
    Hit(OfflineArtifacts),
}

struct Slot {
    artifacts: OfflineArtifacts,
    verified: bool,
}

/// Thread-safe memo of offline artifacts keyed by config fingerprint.
#[derive(Default)]
pub struct OfflineCache {
    slots: Mutex<HashMap<u64, Slot>>,
    hits: Mutex<u64>,
    misses: Mutex<u64>,
}

impl std::fmt::Debug for OfflineCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (h, m) = self.stats();
        f.debug_struct("OfflineCache")
            .field("entries", &self.slots.lock().expect("cache lock").len())
            .field("hits", &h)
            .field("misses", &m)
            .finish()
    }
}

impl OfflineCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide cache every default `prepare*` path consults.
    pub fn global() -> &'static OfflineCache {
        static GLOBAL: OnceLock<OfflineCache> = OnceLock::new();
        GLOBAL.get_or_init(OfflineCache::new)
    }

    /// Looks up `fingerprint`, recording a hit or miss.
    pub fn lookup(&self, fingerprint: u64) -> CacheOutcome {
        let mut slots = self.slots.lock().expect("cache lock");
        match slots.get_mut(&fingerprint) {
            None => {
                *self.misses.lock().expect("miss counter") += 1;
                CacheOutcome::Miss
            }
            Some(slot) => {
                *self.hits.lock().expect("hit counter") += 1;
                if slot.verified {
                    CacheOutcome::Hit(slot.artifacts.clone())
                } else {
                    slot.verified = true;
                    CacheOutcome::FirstReuse(slot.artifacts.clone())
                }
            }
        }
    }

    /// Stores freshly derived artifacts under `fingerprint`.
    pub fn insert(&self, fingerprint: u64, artifacts: OfflineArtifacts) {
        self.slots.lock().expect("cache lock").insert(
            fingerprint,
            Slot {
                artifacts,
                verified: false,
            },
        );
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            *self.hits.lock().expect("hit counter"),
            *self.misses.lock().expect("miss counter"),
        )
    }
}

/// Fingerprints a [`SystemConfig`] plus caller-provided salt words (GPU
/// pair, buffer geometry, scan parameters, locality — everything the
/// derived artifacts depend on beyond the config itself).
///
/// FNV-1a over the JSON serialisation of the config: any field that can
/// shift frame placement, latencies, QoS or the fault plan changes the
/// serialisation and therefore the key.
///
/// # Panics
///
/// Panics if the config fails to serialise (derives `Serialize`; cannot
/// happen for well-formed configs).
pub fn offline_fingerprint(cfg: &SystemConfig, salt: &[u64]) -> u64 {
    let json = serde_json::to_string(cfg).expect("SystemConfig serialises");
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for b in json.as_bytes() {
        eat(*b);
    }
    for w in salt.iter().chain(std::iter::once(&ALGORITHM_TAG)) {
        for b in w.to_le_bytes() {
            eat(b);
        }
    }
    h
}

/// The oracle-checked equivalence assertion run on the first reuse of a
/// cached entry: every class must be homogeneous (all member pages map
/// to one physical `(gpu, set)` for their base line), distinct classes
/// must map to distinct sets, and the classes must partition the buffer.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn verify_classes_against_oracle(
    sys: &MultiGpuSystem,
    pid: ProcessId,
    classes: &PageClasses,
    num_pages: u64,
) -> Result<(), String> {
    let mut seen = vec![false; num_pages as usize];
    let mut class_sets = Vec::with_capacity(classes.classes.len());
    for (ci, group) in classes.classes.iter().enumerate() {
        let mut first = None;
        for &p in group {
            if p >= num_pages {
                return Err(format!("class {ci}: page {p} out of range"));
            }
            if std::mem::replace(&mut seen[p as usize], true) {
                return Err(format!("page {p} classified twice"));
            }
            let va = classes.base.offset(p * classes.page_size);
            let s = sys
                .oracle_set_of(pid, va)
                .map_err(|e| format!("class {ci}: oracle failed for page {p}: {e:?}"))?;
            match first {
                None => first = Some(s),
                Some(f) if f != s => {
                    return Err(format!(
                        "class {ci} not homogeneous: page {p} maps to {s:?}, expected {f:?}"
                    ))
                }
                Some(_) => {}
            }
        }
        if let Some(f) = first {
            if class_sets.contains(&f) {
                return Err(format!("class {ci} aliases an earlier class at {f:?}"));
            }
            class_sets.push(f);
        }
    }
    if let Some(p) = seen.iter().position(|&s| !s) {
        return Err(format!("page {p} unclassified"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_separates_configs_and_salt() {
        let a = SystemConfig::small_test();
        let b = SystemConfig::small_test().with_seed(43);
        assert_ne!(offline_fingerprint(&a, &[]), offline_fingerprint(&b, &[]));
        assert_ne!(
            offline_fingerprint(&a, &[1]),
            offline_fingerprint(&a, &[2])
        );
        assert_eq!(
            offline_fingerprint(&a, &[7, 9]),
            offline_fingerprint(&SystemConfig::small_test(), &[7, 9])
        );
    }

    #[test]
    fn lookup_protocol_miss_first_reuse_hit() {
        let cache = OfflineCache::new();
        let fp = 0xfeed;
        assert!(matches!(cache.lookup(fp), CacheOutcome::Miss));
        let art = OfflineArtifacts {
            thresholds: Thresholds::paper_defaults(),
            classes: Vec::new(),
        };
        cache.insert(fp, art);
        assert!(matches!(cache.lookup(fp), CacheOutcome::FirstReuse(_)));
        assert!(matches!(cache.lookup(fp), CacheOutcome::Hit(_)));
        assert_eq!(cache.stats(), (2, 1));
    }
}
