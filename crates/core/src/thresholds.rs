//! Timing thresholds separating cache hits from misses.
//!
//! The reverse-engineering phase (paper Sec. III-A) yields four latency
//! clusters; the attacker needs only two boundaries from them: hit/miss
//! for *local* accesses and hit/miss for *remote* accesses. Everything in
//! the attack crates consumes a [`Thresholds`] value rather than raw
//! cluster data.

use serde::{Deserialize, Serialize};

/// Hit/miss decision boundaries in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// A local access at or above this latency is a miss.
    pub local_miss: u32,
    /// A remote (one NVLink hop) access at or above this latency is a miss.
    pub remote_miss: u32,
}

impl Thresholds {
    /// Thresholds placed halfway between the paper's measured clusters
    /// (local 270/450, remote 630/950). Useful as a fallback; real attacks
    /// derive them with [`crate::timing_re`].
    pub fn paper_defaults() -> Self {
        Thresholds {
            local_miss: 360,
            remote_miss: 790,
        }
    }

    /// Classifies a local access latency: `true` = miss.
    pub fn is_local_miss(&self, cycles: u32) -> bool {
        cycles >= self.local_miss
    }

    /// Classifies a remote access latency: `true` = miss.
    pub fn is_remote_miss(&self, cycles: u32) -> bool {
        cycles >= self.remote_miss
    }

    /// Counts misses among remote probe latencies.
    pub fn count_remote_misses(&self, latencies: &[u32]) -> usize {
        latencies
            .iter()
            .filter(|&&l| self.is_remote_miss(l))
            .count()
    }

    /// Counts misses among local probe latencies.
    pub fn count_local_misses(&self, latencies: &[u32]) -> usize {
        latencies.iter().filter(|&&l| self.is_local_miss(l)).count()
    }
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_separate_clusters() {
        let t = Thresholds::paper_defaults();
        assert!(!t.is_local_miss(270));
        assert!(t.is_local_miss(450));
        assert!(!t.is_remote_miss(630));
        assert!(t.is_remote_miss(950));
    }

    #[test]
    fn counting_helpers() {
        let t = Thresholds::paper_defaults();
        assert_eq!(t.count_remote_misses(&[630, 950, 940, 600]), 2);
        assert_eq!(t.count_local_misses(&[270, 460]), 1);
    }
}
