//! Cache-architecture reverse engineering (paper Table I).
//!
//! From user space, with only timed loads, the attacker derives: the cache
//! line size (stride experiment), the associativity (smallest conflict
//! prefix evicting a target), the number of sets (capacity ÷ line ÷ ways,
//! with the 4 MiB capacity from the public spec sheet), and the
//! replacement policy (victim-identification trials).

use crate::eviction::{validation_sweep, EvictionSet, Locality};
use crate::thresholds::Thresholds;
use gpubox_sim::{ProcessCtx, SimResult, VirtAddr};
use serde::{Deserialize, Serialize};

/// The Table I output: everything the attacker learned about the L2.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheArchReport {
    /// Cache line size in bytes.
    pub line_size: u64,
    /// Associativity (cache lines per set).
    pub ways: usize,
    /// Number of sets (derived: capacity / line / ways).
    pub num_sets: u64,
    /// Total capacity in bytes (from the public spec).
    pub capacity: u64,
    /// Detected replacement policy.
    pub replacement: DetectedPolicy,
}

/// Replacement policy as classified by the detection experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectedPolicy {
    /// Deterministic, victim is the least-recently-used line.
    Lru,
    /// Deterministic, but the victim is not strictly the LRU line.
    PseudoLru,
    /// Victim varies across identical trials.
    Randomized,
}

impl std::fmt::Display for DetectedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectedPolicy::Lru => write!(f, "LRU"),
            DetectedPolicy::PseudoLru => write!(f, "pseudo-LRU"),
            DetectedPolicy::Randomized => write!(f, "randomized"),
        }
    }
}

/// Discovers the cache line size: for each candidate stride, touch a cold
/// address, then probe `addr + stride`; a hit means both bytes share a
/// line. The smallest stride that misses is the line size.
///
/// `fresh` must point at memory never accessed before, at least
/// `max_stride * 64` bytes.
///
/// # Errors
///
/// Propagates simulator access errors.
pub fn detect_line_size(
    ctx: &mut ProcessCtx<'_>,
    fresh: VirtAddr,
    max_stride: u64,
    thr: &Thresholds,
    loc: Locality,
) -> SimResult<u64> {
    let mut stride = 8u64;
    let mut region = 0u64;
    while stride <= max_stride {
        // Use a fresh region per trial so the first access is cold. Regions
        // are spaced far apart (> max line size) to avoid overlap.
        let base = fresh.offset(region * max_stride * 4);
        region += 1;
        ctx.ldcg(base)?; // cold fill
        let (_, t) = ctx.ldcg(base.offset(stride))?;
        if loc.is_miss(thr, t) {
            return Ok(stride);
        }
        stride *= 2;
    }
    Ok(max_stride)
}

/// Discovers the associativity from a conflict superset: the smallest
/// prefix of same-set addresses whose traversal evicts the target.
///
/// # Errors
///
/// Propagates simulator access errors.
pub fn detect_associativity(
    ctx: &mut ProcessCtx<'_>,
    target: VirtAddr,
    conflicts: &[VirtAddr],
    thr: &Thresholds,
    loc: Locality,
) -> SimResult<usize> {
    let sweep = validation_sweep(ctx, target, conflicts, conflicts.len())?;
    for (n, t) in sweep {
        if loc.is_miss(thr, t) {
            return Ok(n);
        }
    }
    Ok(conflicts.len() + 1)
}

/// Detects the replacement policy with victim-identification trials.
///
/// Each trial: fill the set with `ways` lines in a fixed order, re-touch
/// line 0 (so under true LRU the victim must be line 1), insert one more
/// conflicting line, then probe every filled line and record which one
/// vanished.
///
/// # Errors
///
/// Propagates simulator access errors.
pub fn detect_replacement(
    ctx: &mut ProcessCtx<'_>,
    set: &EvictionSet,
    extra: VirtAddr,
    thr: &Thresholds,
    loc: Locality,
    trials: u32,
) -> SimResult<DetectedPolicy> {
    let ways = set.len();
    let mut victims = Vec::new();
    for _ in 0..trials {
        // Fill in order 0..ways.
        for &va in set.lines() {
            ctx.ldcg(va)?;
        }
        // Promote line 0 to MRU.
        ctx.ldcg(set.lines()[0])?;
        // Insert the 17th line.
        ctx.ldcg(extra)?;
        // Identify the victim. Probing itself perturbs the set, but the
        // victim is identified by the *first* miss among lines probed in
        // fill order, and the extra line's own eviction by later probes
        // cannot create an earlier miss.
        let mut victim = None;
        for (i, &va) in set.lines().iter().enumerate() {
            let (_, t) = ctx.ldcg(va)?;
            if loc.is_miss(thr, t) {
                victim = Some(i);
                break;
            }
        }
        victims.push(victim);
        // Drain: thrash the set so the next trial starts comparably.
        for &va in set.lines() {
            ctx.ldcg(va)?;
        }
    }
    let first = victims[0];
    if victims.iter().all(|&v| v == first) {
        // Deterministic. Line 1 is the true-LRU victim (line 0 was
        // re-touched). `ways` guard for degenerate tiny sets.
        if first == Some(1) || ways < 3 {
            Ok(DetectedPolicy::Lru)
        } else {
            Ok(DetectedPolicy::PseudoLru)
        }
    } else {
        Ok(DetectedPolicy::Randomized)
    }
}

/// Runs the complete Table I derivation given a conflict superset (from
/// [`crate::eviction::classify_pages`]) and the public capacity figure.
///
/// # Errors
///
/// Propagates simulator access errors.
#[allow(clippy::too_many_arguments)]
pub fn derive_cache_architecture(
    ctx: &mut ProcessCtx<'_>,
    fresh: VirtAddr,
    target: VirtAddr,
    conflicts: &[VirtAddr],
    capacity: u64,
    thr: &Thresholds,
    loc: Locality,
) -> SimResult<CacheArchReport> {
    let line_size = detect_line_size(ctx, fresh, 1024, thr, loc)?;
    let ways = detect_associativity(ctx, target, conflicts, thr, loc)?;
    let set = EvictionSet::new(conflicts[..ways].to_vec());
    let extra = conflicts[ways];
    let replacement = detect_replacement(ctx, &set, extra, thr, loc, 12)?;
    Ok(CacheArchReport {
        line_size,
        ways,
        num_sets: capacity / (line_size * ways as u64),
        capacity,
        replacement,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eviction::{classify_pages, ScanConfig};
    use gpubox_sim::{GpuId, MultiGpuSystem, ReplacementKind, SystemConfig};

    fn conflicts_on(
        sys: &mut MultiGpuSystem,
    ) -> (gpubox_sim::ProcessId, VirtAddr, VirtAddr, Vec<VirtAddr>) {
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(sys, pid, 0);
        let num_pages = 96u64;
        let buf = ctx.malloc_on(GpuId::new(0), num_pages * 4096).unwrap();
        let thr = Thresholds::paper_defaults();
        let classes = classify_pages(
            &mut ctx,
            buf,
            num_pages * 4096,
            4096,
            128,
            16,
            &thr,
            Locality::Local,
            &ScanConfig::classify_default(),
        )
        .unwrap();
        let pages = &classes.classes[0];
        let conflicts: Vec<VirtAddr> = pages[..24].iter().map(|&p| buf.offset(p * 4096)).collect();
        let target = buf.offset(pages[24] * 4096);
        (pid, buf, target, conflicts)
    }

    #[test]
    fn line_size_detected_as_128() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let fresh = ctx.malloc_on(GpuId::new(0), 1024 * 1024).unwrap();
        let thr = Thresholds::paper_defaults();
        let ls = detect_line_size(&mut ctx, fresh, 1024, &thr, Locality::Local).unwrap();
        assert_eq!(ls, 128);
    }

    #[test]
    fn associativity_detected_as_16() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let (pid, _buf, target, conflicts) = conflicts_on(&mut sys);
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let thr = Thresholds::paper_defaults();
        let w = detect_associativity(&mut ctx, target, &conflicts, &thr, Locality::Local).unwrap();
        assert_eq!(w, 16);
    }

    #[test]
    fn lru_policy_detected() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let (pid, _buf, _target, conflicts) = conflicts_on(&mut sys);
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let thr = Thresholds::paper_defaults();
        let set = EvictionSet::new(conflicts[..16].to_vec());
        let pol =
            detect_replacement(&mut ctx, &set, conflicts[16], &thr, Locality::Local, 10).unwrap();
        assert_eq!(pol, DetectedPolicy::Lru);
    }

    #[test]
    fn random_policy_detected() {
        // Under random replacement, Algorithm-1 discovery itself is
        // unreliable (that is the ablation result), so build the conflict
        // list from ground truth and test only the policy detector.
        let cfg = SystemConfig::small_test()
            .noiseless()
            .with_replacement(ReplacementKind::Random);
        let mut sys = MultiGpuSystem::new(cfg);
        let pid = sys.create_process(GpuId::new(0));
        let buf = sys.malloc_on(pid, GpuId::new(0), 96 * 4096).unwrap();
        let (_, tset) = sys.oracle_set_of(pid, buf).unwrap();
        let mut conflicts = Vec::new();
        for p in 0..96u64 {
            let va = VirtAddr(buf.raw() + p * 4096);
            if sys.oracle_set_of(pid, va).unwrap().1 == tset {
                conflicts.push(va);
            }
            if conflicts.len() == 17 {
                break;
            }
        }
        assert!(
            conflicts.len() == 17,
            "need 17 same-set lines, got {}",
            conflicts.len()
        );
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let thr = Thresholds::paper_defaults();
        let set = EvictionSet::new(conflicts[..16].to_vec());
        let pol =
            detect_replacement(&mut ctx, &set, conflicts[16], &thr, Locality::Local, 12).unwrap();
        assert_eq!(pol, DetectedPolicy::Randomized);
    }

    #[test]
    fn full_report_matches_ground_truth() {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let capacity = sys.config().cache.size_bytes;
        let true_sets = sys.config().cache.num_sets();
        let (pid, _buf, target, conflicts) = conflicts_on(&mut sys);
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let fresh = ctx.malloc_on(GpuId::new(0), 1024 * 1024).unwrap();
        let thr = Thresholds::paper_defaults();
        let rep = derive_cache_architecture(
            &mut ctx,
            fresh,
            target,
            &conflicts,
            capacity,
            &thr,
            Locality::Local,
        )
        .unwrap();
        assert_eq!(rep.line_size, 128);
        assert_eq!(rep.ways, 16);
        assert_eq!(rep.num_sets, true_sets);
        assert_eq!(rep.replacement, DetectedPolicy::Lru);
    }
}
