//! # gpubox-attacks — cross-GPU covert and side channel attacks
//!
//! Reproduction of the attacks in *"Spy in the GPU-box: Covert and Side
//! Channel Attacks on Multi-GPU Systems"* (ISCA 2023), running on the
//! [`gpubox_sim`] DGX-1 model. The crate follows the paper's structure:
//!
//! 1. [`timing_re`] — reverse engineer the four local/remote × hit/miss
//!    latency clusters and derive decision [`Thresholds`] (Fig. 4).
//! 2. [`cache_re`] — derive line size, associativity, set count and the
//!    replacement policy from user space (Table I).
//! 3. [`eviction`] — eviction-set discovery: the paper's Algorithm 1
//!    pointer-chase scan (faithful-reproduction path) and the
//!    group-testing scan with warp-parallel batched probes (production
//!    path, Vila et al. S&P'19), page-class structure, aliasing
//!    detection and the Fig. 5 validation sweep. [`offline`] caches the
//!    derived artifacts across identically configured boots.
//! 4. [`alignment`] — Algorithm 2: pair trojan and spy eviction sets that
//!    share a physical cache set (Fig. 7).
//! 5. [`covert`] — the covert channels across GPUs, organised as one
//!    transport-agnostic pipeline: a `ChannelMedium` trait with two
//!    implementations (Prime+Probe over shared L2 sets — Fig. 8/9/10 —
//!    and NVLink congestion over the timed link fabric, no shared cache
//!    set), one generic `transmit_over` owning framing/striping/sync,
//!    and a composable receive stack (2-means or quantile boundary ×
//!    per-sample vote or matched filter × optional Hamming(7,4)+
//!    interleave coding).
//! 6. [`side`] — memorygram recording, application fingerprinting
//!    (Fig. 11/12) and MLP model extraction (Table II, Fig. 13/14/15).
//! 7. [`mitigation`] — SM-saturation noise exclusion (Sec. VI).
//!
//! ## End-to-end sketch
//!
//! ```no_run
//! use gpubox_attacks::timing_re;
//! use gpubox_sim::{GpuId, MultiGpuSystem, SystemConfig};
//!
//! # fn main() -> Result<(), gpubox_sim::SimError> {
//! let mut sys = MultiGpuSystem::new(SystemConfig::dgx1());
//! // 1. One-time offline reverse engineering.
//! let timing = timing_re::measure_timing(&mut sys, GpuId::new(0), GpuId::new(1), 48)?;
//! let thr = timing.thresholds;
//! // 2-5. Discover eviction sets, align them, transmit covertly... see
//! // the `examples/` directory for the complete flows.
//! # let _ = thr;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alignment;
pub mod cache_re;
pub mod covert;
pub mod eviction;
pub mod mitigation;
pub mod offline;
pub mod runner;
pub mod side;
pub mod thresholds;
pub mod timing_re;

pub use alignment::{align_classes, paired_sets, AlignmentConfig, ClassMatch};
pub use cache_re::{derive_cache_architecture, CacheArchReport, DetectedPolicy};
pub use covert::{
    extract_anatomy, redecode_traces, slot_latency_histogram, transmit, transmit_link,
    transmit_over, transmit_resilient, BoundaryPolicy, ChannelAnatomy, ChannelMedium,
    ChannelParams, ChannelReport, Coding, Decoder, L2SetMedium, LinkChannel,
    LinkCongestionMedium, Pipeline, ResilientReport, RetryConfig, SetPair,
};
pub use eviction::{
    classify_pages, classify_pages_fast, dedupe_aliased, discover_conflicts,
    discover_conflicts_grouped, sets_alias, validation_sweep, EvictionSet, Locality, PageClasses,
    ScanConfig,
};
pub use mitigation::ExclusiveOccupancy;
pub use offline::{
    offline_fingerprint, verify_classes_against_oracle, CacheOutcome, OfflineArtifacts,
    OfflineCache,
};
pub use runner::{trial_seed, Trial, TrialRunner};
pub use side::{record_memorygram, FingerprintDataset, RecorderConfig};
pub use thresholds::Thresholds;
pub use timing_re::{measure_timing, TimingReport};
