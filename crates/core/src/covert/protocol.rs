//! Channel parameters, bit (de)framing and the slot decoder.

use serde::{Deserialize, Serialize};

/// Parameters both covert endpoints agree on out of band (they are two
/// halves of one malicious application, so shared constants are fine —
/// the paper tunes them the same way, Sec. IV-C).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChannelParams {
    /// Bit-slot duration in trojan-clock cycles.
    pub slot_cycles: u64,
    /// Cycles the spy idles between probes (0 = probe back to back).
    pub spy_gap: u64,
    /// Number of alternating `1010…` preamble bits used for slot-phase
    /// recovery.
    pub preamble_bits: usize,
    /// Fraction of a probe's lines that must miss for the probe to vote
    /// "1".
    pub miss_vote_fraction: f64,
    /// Evasion knob: percentage of each `1` slot the trojan actively
    /// drives contention for (100 = the full slot, the paper's
    /// behaviour). A stealthy trojan trades channel SNR for a smaller
    /// per-window contention footprint to slip under online detectors.
    pub trojan_duty_pct: u32,
    /// Evasion knob: exclusive upper bound of a deterministic
    /// (counter-indexed, per-bit) offset added to each slot's active
    /// phase, in cycles (0 = none). Smears the trojan's slot clock to
    /// blunt autocorrelation detectors.
    pub trojan_slot_jitter: u64,
}

impl Default for ChannelParams {
    fn default() -> Self {
        ChannelParams {
            slot_cycles: 6_000,
            spy_gap: 0,
            preamble_bits: 16,
            miss_vote_fraction: 0.5,
            trojan_duty_pct: 100,
            trojan_slot_jitter: 0,
        }
    }
}

impl ChannelParams {
    /// The preamble pattern: alternating bits starting with 1.
    pub fn preamble(&self) -> Vec<u8> {
        (0..self.preamble_bits).map(|i| (1 - i % 2) as u8).collect()
    }

    /// Frames a payload stripe: preamble followed by payload bits.
    pub fn frame(&self, payload: &[u8]) -> Vec<u8> {
        let mut f = self.preamble();
        f.extend_from_slice(payload);
        f
    }
}

/// Sequence-number width of a resilient frame, bits. 8 bits bound one
/// transmission to 256 frames — far beyond what a covert-channel
/// payload needs per [`crate::covert::transmit_resilient`] call.
pub const SEQ_BITS: usize = 8;

/// CRC width of a resilient frame, bits (CRC-8, polynomial `0x07`).
pub const CRC_BITS: usize = 8;

/// CRC-8 over a bit stream: polynomial `x⁸+x²+x+1` (`0x07`), zero
/// initial value, bits consumed MSB-first — over the bit expansion of
/// `"123456789"` this is the standard check value `0xF4`. Operating on
/// bits (not bytes) lets frames carry chunk sizes that are not byte
/// multiples.
pub fn crc8_bits(bits: &[u8]) -> u8 {
    let mut reg = 0u8;
    for &b in bits {
        let feedback = (reg >> 7) ^ (b & 1);
        reg <<= 1;
        if feedback == 1 {
            reg ^= 0x07;
        }
    }
    reg
}

/// Builds one resilient frame body: `seq` (MSB-first, [`SEQ_BITS`] wide)
/// ‖ `chunk` ‖ the *complement* of the CRC-8 over both ([`CRC_BITS`]).
/// Storing the complement (the usual final-XOR trick) keeps an
/// all-zero bit stream from verifying — a silent channel decodes to
/// zeros, whose plain CRC is also zero, and would otherwise
/// self-certify as frame 0 carrying a zero chunk. The body goes
/// through the pipeline's coding stage and the lane preamble like any
/// other payload; [`open_frame`] inverts it on the receive side.
pub fn seal_frame(seq: u8, chunk: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(SEQ_BITS + chunk.len() + CRC_BITS);
    for i in (0..SEQ_BITS).rev() {
        f.push((seq >> i) & 1);
    }
    f.extend_from_slice(chunk);
    let crc = !crc8_bits(&f);
    for i in (0..CRC_BITS).rev() {
        f.push((crc >> i) & 1);
    }
    f
}

/// Parses and verifies a resilient frame body of `chunk_bits` payload
/// bits: checks the length and the CRC, and returns the sequence number
/// and the chunk. `None` means the frame is corrupt (any bit error
/// the coding stage could not repair) and must be retransmitted.
pub fn open_frame(bits: &[u8], chunk_bits: usize) -> Option<(u8, &[u8])> {
    if bits.len() != SEQ_BITS + chunk_bits + CRC_BITS {
        return None;
    }
    let (body, crc_bits) = bits.split_at(SEQ_BITS + chunk_bits);
    let got = crc_bits.iter().fold(0u8, |acc, &b| (acc << 1) | (b & 1));
    if !crc8_bits(body) != got {
        return None;
    }
    let seq = body[..SEQ_BITS].iter().fold(0u8, |acc, &b| (acc << 1) | (b & 1));
    Some((seq, &body[SEQ_BITS..]))
}

/// Unpacks bytes into bits, MSB first (the order the Fig. 10 message trace
/// uses).
pub fn bits_from_bytes(bytes: &[u8]) -> Vec<u8> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in (0..8).rev() {
            bits.push((b >> i) & 1);
        }
    }
    bits
}

/// Packs bits (MSB first) back into bytes; trailing partial bytes are
/// dropped.
pub fn bytes_from_bits(bits: &[u8]) -> Vec<u8> {
    bits.chunks_exact(8)
        .map(|c| c.iter().fold(0u8, |acc, &b| (acc << 1) | (b & 1)))
        .collect()
}

/// Distributes payload bits round-robin over `k` parallel set stripes.
/// Generic over the element type so per-bit confidences can ride the
/// same round-robin permutation as the bits themselves.
pub fn stripe_bits<T: Copy>(bits: &[T], k: usize) -> Vec<Vec<T>> {
    let mut stripes = vec![Vec::with_capacity(bits.len() / k + 1); k];
    for (i, &b) in bits.iter().enumerate() {
        stripes[i % k].push(b);
    }
    stripes
}

/// Reassembles round-robin stripes into one bit stream of length `total`.
pub fn unstripe_bits<T: Copy + Default>(stripes: &[Vec<T>], total: usize) -> Vec<T> {
    let k = stripes.len();
    (0..total)
        .map(|i| stripes[i % k].get(i / k).copied().unwrap_or_default())
        .collect()
}

/// One probe observation from the spy: when it started and how many of the
/// set's lines were classified as misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeSample {
    /// Spy-local clock at probe start.
    pub at: u64,
    /// Misses among the probed lines.
    pub misses: u32,
    /// Lines probed.
    pub lines: u32,
    /// Mean per-line latency of the probe (for the Fig. 10 trace).
    pub mean_latency: u32,
}

impl ProbeSample {
    /// The probe's binary vote under the protocol's miss fraction.
    pub fn vote(&self, miss_fraction: f64) -> u8 {
        u8::from(f64::from(self.misses) >= miss_fraction * f64::from(self.lines))
    }

    /// The probe's binary vote against an adaptive latency boundary.
    pub fn vote_boundary(&self, boundary: f64) -> u8 {
        u8::from(f64::from(self.mean_latency) >= boundary)
    }
}

/// Self-calibrates the hit/miss decision boundary from the spy's own
/// probe-mean distribution (1-D 2-means). Under port contention both
/// levels shift upward together; clustering the observed bimodal
/// distribution cancels the shift, which a fixed threshold cannot do.
pub fn adaptive_boundary(samples: &[ProbeSample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let vals: Vec<f64> = samples.iter().map(|s| f64::from(s.mean_latency)).collect();
    let lo0 = vals.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi0 = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    two_means_boundary(&vals, lo0, hi0)
}

/// Decision boundary for **baseline-plus-tail** latency distributions —
/// the link-congestion channel's shape. There, a `0` probe pays a fixed
/// uncongested route latency (a tight baseline), while a `1` probe's
/// queue wait depends on how deep the trojan's bookings run when it
/// arrives: the `1` level is a broad heavy tail, not a second tight
/// cluster. 2-means ([`adaptive_boundary`]) mislocates such a boundary —
/// the tail's far end drags the upper centroid out until moderate `1`
/// samples fall in the baseline cluster. Instead, anchor on robust
/// quantiles: the boundary sits 35% of the way from the 20th percentile
/// (the baseline) towards the 90th (the typical congested level), i.e.
/// just above the baseline but clear of its noise. Degenerate
/// single-level traces (no trojan active) collapse to `p90 + 1`, so
/// every probe votes 0.
pub fn robust_boundary(samples: &[ProbeSample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut vals: Vec<f64> = samples.iter().map(|s| f64::from(s.mean_latency)).collect();
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let lo = vals[(vals.len() - 1) * 2 / 10];
    let hi = vals[(vals.len() - 1) * 9 / 10];
    if (hi - lo) < 1.0 {
        return hi + 1.0;
    }
    lo + 0.35 * (hi - lo)
}

/// Lloyd iterations of 1-D 2-means from the given initial centroids;
/// returns the midpoint of the converged pair.
fn two_means_boundary(vals: &[f64], lo0: f64, hi0: f64) -> f64 {
    let (mut lo, mut hi) = (lo0, hi0);
    if (hi - lo) < 1.0 {
        return hi + 1.0;
    }
    for _ in 0..32 {
        let mid = (lo + hi) / 2.0;
        let (mut sl, mut nl, mut sh, mut nh) = (0.0, 0usize, 0.0, 0usize);
        for &v in vals {
            if v < mid {
                sl += v;
                nl += 1;
            } else {
                sh += v;
                nh += 1;
            }
        }
        if nl == 0 || nh == 0 {
            break;
        }
        let (nlo, nhi) = (sl / nl as f64, sh / nh as f64);
        if (nlo - lo).abs() < 1e-9 && (nhi - hi).abs() < 1e-9 {
            break;
        }
        lo = nlo;
        hi = nhi;
    }
    (lo + hi) / 2.0
}

/// Output of decoding one stripe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedStripe {
    /// Recovered payload bits (preamble stripped).
    pub payload: Vec<u8>,
    /// Estimated slot phase offset in cycles.
    pub phase: u64,
    /// How many preamble bits matched after phase lock (sync quality).
    pub preamble_matches: usize,
}

/// Decodes a spy probe trace into payload bits.
///
/// The decoder knows `params` (shared constants) and the payload length,
/// but must recover the slot *phase* from the alternating preamble — the
/// synchronisation challenge the paper describes (Sec. IV-C: "we tune
/// parameters on the trojan side ... to synchronize the communication").
pub fn decode_trace(
    samples: &[ProbeSample],
    params: &ChannelParams,
    payload_bits: usize,
) -> DecodedStripe {
    decode_trace_with_boundary(samples, params, payload_bits, adaptive_boundary(samples))
}

/// As [`decode_trace`] with an explicit decision boundary — the
/// link-congestion channel passes [`robust_boundary`], whose quantile
/// initialisation survives that channel's long queue-wait tail.
pub fn decode_trace_with_boundary(
    samples: &[ProbeSample],
    params: &ChannelParams,
    payload_bits: usize,
    boundary: f64,
) -> DecodedStripe {
    let preamble = params.preamble();
    let total_slots = preamble.len() + payload_bits;
    if samples.is_empty() {
        return DecodedStripe {
            payload: vec![0; payload_bits],
            phase: 0,
            preamble_matches: 0,
        };
    }
    let t0 = samples[0].at;
    let slot = params.slot_cycles;

    // Phase search: try candidate offsets across one slot. Primary score:
    // preamble agreement of majority-voted slots; tiebreak: vote margin
    // (how far slot vote fractions sit from 50%), which centres the slot
    // windows between bit transitions.
    let steps = 64u64;
    let mut best = (0u64, usize::MAX, f64::NEG_INFINITY, 0usize);
    for step in 0..steps {
        let phase = slot * step / steps;
        let (slots, margin) = vote_slots_scored(
            samples,
            t0 + phase,
            slot,
            total_slots,
            boundary,
            preamble.len(),
        );
        let matches = slots
            .iter()
            .zip(&preamble)
            .filter(|(got, want)| got.map(|g| g == **want).unwrap_or(false))
            .count();
        let err = preamble.len() - matches;
        if err < best.1 || (err == best.1 && margin > best.2) {
            best = (phase, err, margin, matches);
        }
    }
    let (phase, _, _, preamble_matches) = best;
    let slots = vote_slots(samples, t0 + phase, slot, total_slots, boundary);
    let payload = slots[preamble.len()..]
        .iter()
        .map(|s| s.unwrap_or(0))
        .collect();
    DecodedStripe {
        payload,
        phase,
        preamble_matches,
    }
}

/// Majority-votes the probe samples falling inside each slot window.
/// `None` for slots with no samples.
fn vote_slots(
    samples: &[ProbeSample],
    start: u64,
    slot: u64,
    total_slots: usize,
    boundary: f64,
) -> Vec<Option<u8>> {
    vote_slots_scored(samples, start, slot, total_slots, boundary, 0).0
}

/// As [`vote_slots`], also returning the mean vote margin (distance of the
/// slot vote fraction from 50%) over the first `margin_slots` slots.
fn vote_slots_scored(
    samples: &[ProbeSample],
    start: u64,
    slot: u64,
    total_slots: usize,
    boundary: f64,
    margin_slots: usize,
) -> (Vec<Option<u8>>, f64) {
    let mut ones = vec![0u32; total_slots];
    let mut counts = vec![0u32; total_slots];
    for s in samples {
        if s.at < start {
            continue;
        }
        let idx = ((s.at - start) / slot) as usize;
        if idx >= total_slots {
            break;
        }
        counts[idx] += 1;
        ones[idx] += u32::from(s.vote_boundary(boundary));
    }
    let votes: Vec<Option<u8>> = (0..total_slots)
        .map(|i| (counts[i] > 0).then(|| u8::from(ones[i] * 2 > counts[i])))
        .collect();
    let mut margin = 0.0;
    let mut n = 0usize;
    for i in 0..margin_slots.min(total_slots) {
        if counts[i] > 0 {
            let frac = f64::from(ones[i]) / f64::from(counts[i]);
            margin += (frac - 0.5).abs();
            n += 1;
        }
    }
    (votes, if n > 0 { margin / n as f64 } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip_bytes() {
        let msg = b"Hello! How are you?".to_vec();
        let bits = bits_from_bytes(&msg);
        assert_eq!(bits.len(), msg.len() * 8);
        assert_eq!(bytes_from_bits(&bits), msg);
    }

    #[test]
    fn crc8_matches_the_standard_check_value() {
        assert_eq!(crc8_bits(&bits_from_bytes(b"123456789")), 0xF4);
        assert_eq!(crc8_bits(&[]), 0);
    }

    #[test]
    fn frames_round_trip_and_reject_corruption() {
        let chunk: Vec<u8> = (0..16).map(|i| u8::from(i % 3 == 0)).collect();
        let frame = seal_frame(0xA5, &chunk);
        assert_eq!(frame.len(), SEQ_BITS + chunk.len() + CRC_BITS);
        let (seq, got) = open_frame(&frame, chunk.len()).expect("clean frame must verify");
        assert_eq!(seq, 0xA5);
        assert_eq!(got, &chunk[..]);
        // Any single-bit flip — in the seq, the chunk or the CRC — is
        // caught (CRC-8 detects all single-bit errors).
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 1;
            assert_eq!(open_frame(&bad, chunk.len()), None, "flip at {i}");
        }
        // A wrong length never verifies.
        assert_eq!(open_frame(&frame[1..], chunk.len()), None);
        assert_eq!(open_frame(&frame, chunk.len() - 1), None);
        // A silent (all-zero) channel must not self-certify as frame 0
        // with a zero chunk — the stored CRC complement prevents it.
        assert_eq!(open_frame(&vec![0; frame.len()], chunk.len()), None);
    }

    #[test]
    fn stripes_round_trip() {
        let bits: Vec<u8> = (0..37).map(|i| (i % 3 == 0) as u8).collect();
        for k in [1, 2, 4, 5] {
            let s = stripe_bits(&bits, k);
            assert_eq!(unstripe_bits(&s, bits.len()), bits);
        }
    }

    #[test]
    fn preamble_alternates_starting_with_one() {
        let p = ChannelParams::default().preamble();
        assert_eq!(&p[..4], &[1, 0, 1, 0]);
    }

    fn synth_samples(
        frame: &[u8],
        slot: u64,
        phase: u64,
        probes_per_slot: u64,
    ) -> Vec<ProbeSample> {
        let mut out = Vec::new();
        for (i, &b) in frame.iter().enumerate() {
            for p in 0..probes_per_slot {
                let at = phase + i as u64 * slot + p * (slot / probes_per_slot) + 3;
                out.push(ProbeSample {
                    at,
                    misses: if b == 1 { 14 } else { 1 },
                    lines: 16,
                    mean_latency: if b == 1 { 950 } else { 630 },
                });
            }
        }
        out
    }

    #[test]
    fn decoder_recovers_clean_frame() {
        let params = ChannelParams::default();
        let payload = bits_from_bytes(b"hi");
        let frame = params.frame(&payload);
        let samples = synth_samples(&frame, params.slot_cycles, 0, 3);
        let dec = decode_trace(&samples, &params, payload.len());
        assert_eq!(dec.payload, payload);
        assert_eq!(dec.preamble_matches, params.preamble_bits);
    }

    #[test]
    fn decoder_locks_phase_despite_offset() {
        let params = ChannelParams::default();
        let payload = bits_from_bytes(&[0b1011_0010]);
        let frame = params.frame(&payload);
        // Probes start mid-slot: phase offset of 40% of a slot.
        let samples = synth_samples(&frame, params.slot_cycles, params.slot_cycles * 2 / 5, 4);
        let dec = decode_trace(&samples, &params, payload.len());
        assert_eq!(dec.payload, payload, "phase-shifted frame must decode");
    }

    #[test]
    fn decoder_tolerates_sparse_noise() {
        let params = ChannelParams::default();
        let payload = bits_from_bytes(b"noise");
        let frame = params.frame(&payload);
        let mut samples = synth_samples(&frame, params.slot_cycles, 100, 4);
        // Flip every 13th probe's misses.
        for (i, s) in samples.iter_mut().enumerate() {
            if i % 13 == 0 {
                s.misses = 16 - s.misses;
            }
        }
        let dec = decode_trace(&samples, &params, payload.len());
        let errs = dec
            .payload
            .iter()
            .zip(&payload)
            .filter(|(a, b)| a != b)
            .count();
        assert!(
            errs <= 1,
            "majority voting should absorb sparse flips, got {errs}"
        );
    }

    #[test]
    fn empty_trace_decodes_to_zeros() {
        let params = ChannelParams::default();
        let dec = decode_trace(&[], &params, 8);
        assert_eq!(dec.payload, vec![0; 8]);
    }

    fn sample_with_mean(mean: u32) -> ProbeSample {
        ProbeSample {
            at: 0,
            misses: 0,
            lines: 2,
            mean_latency: mean,
        }
    }

    #[test]
    fn robust_boundary_survives_outlier_tail() {
        // Two genuine levels (640 / 1067) plus a thin far tail, the
        // link-congestion channel's distribution shape. Min/max-init
        // 2-means puts the boundary above the `1` level; quantile init
        // lands between the levels.
        let mut samples: Vec<ProbeSample> = Vec::new();
        for _ in 0..60 {
            samples.push(sample_with_mean(640));
        }
        for _ in 0..40 {
            samples.push(sample_with_mean(1067));
        }
        for _ in 0..3 {
            samples.push(sample_with_mean(1900));
        }
        let naive = adaptive_boundary(&samples);
        let robust = robust_boundary(&samples);
        assert!(naive > 1067.0, "min/max init collapses the levels: {naive}");
        assert!(
            robust > 640.0 && robust < 1067.0,
            "quantile init separates the levels: {robust}"
        );
    }

    #[test]
    fn robust_boundary_degenerate_cases() {
        assert_eq!(robust_boundary(&[]), 0.0);
        // A single level: boundary lands above it, so everything votes 0.
        let flat: Vec<ProbeSample> = (0..10).map(|_| sample_with_mean(640)).collect();
        assert!(robust_boundary(&flat) > 640.0);
    }
}
