//! A resilient covert transport: sequence-numbered, CRC-protected
//! frames with bounded, deterministically backed-off retransmission —
//! the protocol hardening evaluated against the fabric's fault
//! injection ([`gpubox_sim::fault`]).
//!
//! The plain pipeline ([`super::medium::transmit_over`]) sends one
//! monolithic frame and self-calibrates one decision boundary over the
//! whole trace. A scheduled link failure mid-transmission breaks both
//! assumptions at once: every slot inside the outage window reads at a
//! different level (rerouted paths, or the PCIe fallback's
//! round-trip), the mis-levelled samples drag the boundary off the
//! healthy levels, and errors smear far beyond the window itself. This
//! module layers classic transport mechanisms on the same media to
//! keep decoding through such faults:
//!
//! - **Framing** — the payload is cut into fixed-size chunks, each
//!   sealed as `seq ‖ chunk ‖ CRC-8` ([`super::protocol::seal_frame`])
//!   and coded independently by the pipeline's coding stage, so a
//!   fault corrupts *frames*, not the transmission.
//! - **Integrity + at-most-once delivery** — receive-side frames must
//!   pass the CRC *and* carry the sequence number expected at their
//!   stream position; anything else is dropped and retransmitted.
//!   Duplicates (a frame already delivered in an earlier round) are
//!   discarded by sequence number.
//! - **Sync-loss detection and resynchronisation** — a lane whose
//!   preamble agreement falls below
//!   [`RetryConfig::min_preamble_matches`] has lost slot sync (phase
//!   mis-lock, or a fault-induced mid-trace level shift dragging the
//!   self-calibrated boundary off the healthy levels). The receiver
//!   re-decodes against recalibrated boundaries — first one computed
//!   with far outliers fenced off (the fault's signature: a PCIe
//!   fallback window sits far above both healthy levels), then the
//!   alternate policy's (2-means ↔ quantile) — and keeps the best
//!   preamble lock; every retransmission round then re-locks phase
//!   from its own fresh preamble, so one lost round never
//!   desynchronises the stream.
//! - **Bounded retransmission with deterministic backoff** — frames
//!   still missing after a round are re-sent, up to
//!   [`RetryConfig::max_retries`] rounds, each round's launches
//!   deferred by a growing whole-slot backoff
//!   ([`RetryConfig::backoff_slots`]). Agent clocks restart at zero
//!   every round, so a scheduled fault window recurs at the same
//!   absolute time — the backoff shifts the (shorter) retransmission
//!   stream relative to that window instead of replaying the collision
//!   verbatim. No randomness anywhere: the whole exchange is
//!   bit-reproducible and scheduler-invariant like the rest of the
//!   stack.

use super::agents::SpyTrace;
use super::medium::{listen_horizon, ChannelMedium};
use super::pipeline::{matched_filter_decode, BoundaryPolicy, Decoder, Pipeline};
use super::protocol::{
    decode_trace_with_boundary, open_frame, seal_frame, ChannelParams, DecodedStripe, ProbeSample,
    CRC_BITS, SEQ_BITS,
};
use gpubox_sim::telemetry::{TraceKind, NO_PROCESS};
use gpubox_sim::{Engine, MultiGpuSystem, SchedulerKind, SimResult};

/// Retransmission policy of [`transmit_resilient`] — protocol constants
/// both endpoints share out of band, like [`ChannelParams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Payload bits per frame (excluding the sequence number and CRC).
    /// Smaller frames localise fault damage better but pay more
    /// per-frame overhead ([`SEQ_BITS`] + [`CRC_BITS`] bits each).
    pub chunk_bits: usize,
    /// Retransmission rounds after the initial transmission. Frames
    /// still missing when the budget is exhausted decode as zeros.
    pub max_retries: usize,
    /// Whole-slot launch defer added per retransmission round: round
    /// `r` starts `r * backoff_slots` slots late, shifting it relative
    /// to any recurring fault window.
    pub backoff_slots: u64,
    /// Minimum preamble bits a lane's decode must match before its
    /// frames are trusted without a resynchronisation attempt.
    pub min_preamble_matches: usize,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            chunk_bits: 16,
            max_retries: 3,
            backoff_slots: 12,
            min_preamble_matches: 12,
        }
    }
}

/// Outcome of one resilient transmission.
#[derive(Debug, Clone)]
pub struct ResilientReport {
    /// Payload bits handed to the transmitter.
    pub sent: Vec<u8>,
    /// Payload bits recovered (undelivered chunks read as zeros).
    pub received: Vec<u8>,
    /// Hamming distance between sent and received.
    pub bit_errors: usize,
    /// `bit_errors / sent.len()`.
    pub error_rate: f64,
    /// Frames the payload was cut into.
    pub frames_total: usize,
    /// Frames delivered with a verified CRC and the expected sequence
    /// number.
    pub frames_delivered: usize,
    /// Frame transmissions beyond the first round (the retry traffic).
    pub retransmissions: usize,
    /// Engine rounds run (1 = everything arrived first try).
    pub rounds: usize,
    /// Lane decodes whose preamble agreement fell below the sync
    /// threshold.
    pub sync_losses: usize,
    /// Sync losses the alternate-boundary re-decode improved.
    pub resyncs: usize,
    /// Frame slots that failed CRC/sequence verification.
    pub frame_failures: usize,
    /// Codeword corrections applied by the coding stage across rounds.
    pub ecc_corrections: usize,
    /// Sum of the rounds' engine end-of-run clocks — the total time the
    /// exchange occupied, backoffs included.
    pub duration_cycles: u64,
}

/// Runs the decoder's slot machinery with an explicitly supplied
/// decision boundary instead of the policy's self-calibrated one.
fn decode_with_boundary(
    d: &Decoder,
    samples: &[ProbeSample],
    params: &ChannelParams,
    payload_bits: usize,
    boundary: f64,
) -> DecodedStripe {
    match d {
        Decoder::Vote(_) => decode_trace_with_boundary(samples, params, payload_bits, boundary),
        Decoder::MatchedFilter(_) => {
            matched_filter_decode(samples, params, payload_bits, boundary)
        }
    }
}

/// The policy's boundary recomputed after fencing off far outliers
/// (Tukey fence at `q3 + 3·IQR` over the probe means). A fault window
/// mid-trace — rerouted hops, or the PCIe fallback's round-trip —
/// injects samples far above both healthy levels; fed into the global
/// calibration they drag the boundary over the healthy congested
/// level and corrupt *every* slot of the round, not just the window.
/// Calibrating on the fenced samples and decoding the full trace with
/// that boundary confines the damage to the faulted slots, whose
/// frames then fail CRC and are retransmitted.
fn fenced_boundary(policy: &BoundaryPolicy, samples: &[ProbeSample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut vals: Vec<f64> = samples.iter().map(|s| f64::from(s.mean_latency)).collect();
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q1 = vals[(vals.len() - 1) / 4];
    let q3 = vals[(vals.len() - 1) * 3 / 4];
    let fence = q3 + 3.0 * (q3 - q1).max(1.0);
    let kept: Vec<ProbeSample> = samples
        .iter()
        .filter(|s| f64::from(s.mean_latency) <= fence)
        .copied()
        .collect();
    policy.boundary(&kept)
}

/// The decoder's boundary policy.
fn policy_of(d: &Decoder) -> BoundaryPolicy {
    match d {
        Decoder::Vote(p) | Decoder::MatchedFilter(p) => *p,
    }
}

/// The alternate boundary policy (2-means ↔ quantile).
fn alternate(p: BoundaryPolicy) -> BoundaryPolicy {
    match p {
        BoundaryPolicy::TwoMeans => BoundaryPolicy::Quantile,
        BoundaryPolicy::Quantile => BoundaryPolicy::TwoMeans,
    }
}

/// Transmits `payload` bits over `medium` with the resilient framing:
/// chunk → seal (`seq ‖ chunk ‖ CRC`) → code → stripe frames
/// round-robin over the medium's lanes → run → decode → verify →
/// retransmit what is missing, up to `retry.max_retries` extra rounds
/// with deterministic whole-slot backoff.
///
/// The naive counterpart for comparisons is
/// [`super::medium::transmit_over`] with the same pipeline: one
/// monolithic frame, no integrity check, no retry.
///
/// # Errors
///
/// Propagates medium preparation and simulator errors — including
/// [`gpubox_sim::SimError::LinkDown`] when a fault plan refuses the
/// PCIe fallback mid-round.
///
/// # Panics
///
/// Panics on a zero `chunk_bits`, a zero-lane medium, an empty payload
/// or a payload needing more than 256 frames (the sequence-number
/// space).
pub fn transmit_resilient(
    sys: &mut MultiGpuSystem,
    medium: &dyn ChannelMedium,
    payload: &[u8],
    params: &ChannelParams,
    pipeline: &Pipeline,
    retry: &RetryConfig,
    sched: SchedulerKind,
) -> SimResult<ResilientReport> {
    assert!(retry.chunk_bits >= 1, "frames need at least one payload bit");
    assert!(!payload.is_empty(), "nothing to transmit");
    let k = medium.lanes();
    assert!(k >= 1, "medium must expose at least one lane");

    // Cut the payload into fixed-size chunks (the last zero-padded so
    // every frame is the same length on the channel).
    let chunks: Vec<Vec<u8>> = payload
        .chunks(retry.chunk_bits)
        .map(|c| {
            let mut chunk = c.to_vec();
            chunk.resize(retry.chunk_bits, 0);
            chunk
        })
        .collect();
    let frames_total = chunks.len();
    assert!(
        frames_total <= 1 << SEQ_BITS,
        "payload needs {frames_total} frames but sequence numbers address only {}",
        1usize << SEQ_BITS
    );
    let frame_plain_bits = SEQ_BITS + retry.chunk_bits + CRC_BITS;
    let frame_channel_bits = pipeline.coding.channel_bits(frame_plain_bits);

    let mut delivered: Vec<Option<Vec<u8>>> = vec![None; frames_total];
    let mut pending: Vec<usize> = (0..frames_total).collect();
    let mut report = ResilientReport {
        sent: payload.to_vec(),
        received: Vec::new(),
        bit_errors: 0,
        error_rate: 0.0,
        frames_total,
        frames_delivered: 0,
        retransmissions: 0,
        rounds: 0,
        sync_losses: 0,
        resyncs: 0,
        frame_failures: 0,
        ecc_corrections: 0,
        duration_cycles: 0,
    };

    for attempt in 0..=retry.max_retries {
        if pending.is_empty() {
            break;
        }
        if attempt > 0 {
            report.retransmissions += pending.len();
        }

        // Frames round-robin over lanes; each lane's stream is its
        // frames' channel bits back to back behind one preamble.
        let mut lane_frames: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, &seq) in pending.iter().enumerate() {
            lane_frames[i % k].push(seq);
        }
        let lane_bits: Vec<Vec<u8>> = lane_frames
            .iter()
            .map(|frames| {
                let mut bits = Vec::with_capacity(frames.len() * frame_channel_bits);
                for &seq in frames {
                    bits.extend(pipeline.coding.encode(&seal_frame(seq as u8, &chunks[seq])));
                }
                bits
            })
            .collect();

        let defer = attempt as u64 * retry.backoff_slots * params.slot_cycles;
        let listen = listen_horizon(&lane_bits, params) + defer;
        if sys.tracing_enabled() {
            for &seq in &pending {
                sys.trace_mut()
                    .record(TraceKind::FrameSeal, defer, NO_PROCESS, seq as u64, attempt as u64);
            }
        }

        medium.prepare(sys)?;
        let mut eng = Engine::with_scheduler(sys, sched);
        let mut traces: Vec<Option<SpyTrace>> = Vec::with_capacity(k);
        for (lane, bits) in lane_bits.iter().enumerate() {
            if bits.is_empty() {
                traces.push(None);
                continue;
            }
            let frame = params.frame(bits);
            traces.push(Some(medium.install_lane_deferred(
                &mut eng,
                lane,
                &frame,
                params,
                listen,
                defer,
            )));
        }
        let end = eng.run(listen + 16 * params.slot_cycles)?;
        drop(eng);
        report.rounds += 1;
        report.duration_cycles += end;
        sys.trace_mut()
            .record(TraceKind::RetryRound, defer, NO_PROCESS, end, attempt as u64);

        for (lane, trace) in traces.iter().enumerate() {
            let Some(trace) = trace else { continue };
            let samples = trace.samples();
            let lane_channel_bits = lane_frames[lane].len() * frame_channel_bits;
            let mut dec = pipeline.decoder.decode(&samples, params, lane_channel_bits);
            if dec.preamble_matches < retry.min_preamble_matches.min(params.preamble_bits) {
                // Sync loss: the policy's global calibration mislocated
                // the boundary (a fault-window level shift) or the
                // phase lock failed. Re-decode against recalibrated
                // boundaries — the outlier-fenced one first (the fault
                // shape), then the alternate policy's two — and keep
                // the best preamble lock.
                report.sync_losses += 1;
                let policy = policy_of(&pipeline.decoder);
                let candidates = [
                    fenced_boundary(&policy, &samples),
                    fenced_boundary(&alternate(policy), &samples),
                    alternate(policy).boundary(&samples),
                ];
                let mut improved = false;
                for boundary in candidates {
                    if dec.preamble_matches == params.preamble_bits {
                        break;
                    }
                    let re = decode_with_boundary(
                        &pipeline.decoder,
                        &samples,
                        params,
                        lane_channel_bits,
                        boundary,
                    );
                    if re.preamble_matches > dec.preamble_matches {
                        dec = re;
                        improved = true;
                        sys.trace_mut().record(
                            TraceKind::BoundaryChosen,
                            defer,
                            NO_PROCESS,
                            boundary as u64,
                            lane as u64,
                        );
                    }
                }
                report.resyncs += usize::from(improved);
                sys.trace_mut().record(
                    TraceKind::Resync,
                    defer,
                    NO_PROCESS,
                    lane as u64,
                    u64::from(improved),
                );
            }
            for (j, &seq) in lane_frames[lane].iter().enumerate() {
                let coded = &dec.payload[j * frame_channel_bits..(j + 1) * frame_channel_bits];
                let (plain, corrections) = pipeline.coding.decode(coded, frame_plain_bits);
                report.ecc_corrections += corrections;
                match open_frame(&plain, retry.chunk_bits) {
                    Some((got_seq, chunk))
                        if usize::from(got_seq) == seq && delivered[seq].is_none() =>
                    {
                        delivered[seq] = Some(chunk.to_vec());
                        report.frames_delivered += 1;
                        sys.trace_mut()
                            .record(TraceKind::FrameOpen, end, NO_PROCESS, seq as u64, 1);
                    }
                    _ => {
                        report.frame_failures += 1;
                        sys.trace_mut()
                            .record(TraceKind::FrameOpen, end, NO_PROCESS, seq as u64, 0);
                    }
                }
            }
        }
        pending.retain(|&seq| delivered[seq].is_none());
    }

    let mut received: Vec<u8> = Vec::with_capacity(frames_total * retry.chunk_bits);
    for slot in &delivered {
        match slot {
            Some(chunk) => received.extend_from_slice(chunk),
            None => received.extend(std::iter::repeat_n(0, retry.chunk_bits)),
        }
    }
    received.truncate(payload.len());
    report.bit_errors = received.iter().zip(payload).filter(|(a, b)| a != b).count();
    report.error_rate = report.bit_errors as f64 / payload.len() as f64;
    report.received = received;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::super::channel::LinkChannel;
    use super::super::medium::LinkCongestionMedium;
    use super::super::protocol::bits_from_bytes;
    use super::*;
    use gpubox_sim::{
        FabricConfig, FaultPlan, GpuId, MultiGpuSystem, ProcessId, SystemConfig, VirtAddr,
    };

    fn link_fixture() -> (MultiGpuSystem, ProcessId, ProcessId, Vec<VirtAddr>, Vec<VirtAddr>) {
        let cfg = SystemConfig::small_test()
            .noiseless()
            .with_fabric(FabricConfig::nvlink_v1());
        let mut sys = MultiGpuSystem::new(cfg);
        let trojan = sys.create_process(GpuId::new(1));
        let spy = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(trojan, GpuId::new(0)).unwrap();
        sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
        let tb = sys.malloc_on(trojan, GpuId::new(0), 32 * 4096).unwrap();
        let sb = sys.malloc_on(spy, GpuId::new(0), 8 * 4096).unwrap();
        let trojan_lines: Vec<VirtAddr> = (0..32).map(|i| tb.offset(i * 4096)).collect();
        let spy_lines: Vec<VirtAddr> = (0..8).map(|i| sb.offset(i * 4096)).collect();
        (sys, trojan, spy, trojan_lines, spy_lines)
    }

    fn link_params() -> ChannelParams {
        ChannelParams {
            spy_gap: 600,
            ..Default::default()
        }
    }

    #[test]
    fn clean_channel_delivers_everything_in_one_round() {
        let params = link_params();
        let (mut sys, trojan, spy, tl, sl) = link_fixture();
        let medium = LinkCongestionMedium {
            trojan,
            spy,
            channel: LinkChannel {
                trojan_lines: &tl,
                spy_lines: &sl,
                trojan_streams: 2,
            },
        };
        let payload = bits_from_bytes(b"reliable");
        let report = transmit_resilient(
            &mut sys,
            &medium,
            &payload,
            &params,
            &Pipeline::vote(BoundaryPolicy::Quantile),
            &RetryConfig::default(),
            SchedulerKind::Auto,
        )
        .unwrap();
        assert_eq!(report.bit_errors, 0, "received {:?}", report.received);
        assert_eq!(report.rounds, 1);
        assert_eq!(report.retransmissions, 0);
        assert_eq!(report.frames_delivered, report.frames_total);
        assert_eq!(report.frame_failures, 0);
        assert_eq!(report.received, payload);
    }

    #[test]
    fn mid_transmission_outage_is_survived_by_retransmission() {
        let params = link_params();
        let (mut sys, trojan, spy, tl, sl) = link_fixture();
        // 5 frames of 32 channel bits each → ~176 slots per round. Down
        // the (only) NVLink link over the last quarter of round 1: the
        // tail frames corrupt and must be retransmitted; the shorter,
        // backed-off retry rounds clear the window.
        let outage_from = 150 * params.slot_cycles;
        let outage_until = 176 * params.slot_cycles;
        sys.set_fault_plan(FaultPlan::none().with_link_down(0, outage_from, outage_until))
            .unwrap();
        let medium = LinkCongestionMedium {
            trojan,
            spy,
            channel: LinkChannel {
                trojan_lines: &tl,
                spy_lines: &sl,
                trojan_streams: 2,
            },
        };
        let payload = bits_from_bytes(b"survive it");
        let report = transmit_resilient(
            &mut sys,
            &medium,
            &payload,
            &params,
            &Pipeline::vote(BoundaryPolicy::Quantile),
            &RetryConfig {
                max_retries: 4,
                ..Default::default()
            },
            SchedulerKind::Auto,
        )
        .unwrap();
        assert_eq!(
            report.bit_errors, 0,
            "frames lost to the outage must be retransmitted: {report:?}"
        );
        assert!(report.rounds > 1, "the outage must cost at least one retry");
        assert!(report.retransmissions > 0);
    }

    #[test]
    fn retry_budget_bounds_the_exchange() {
        let params = link_params();
        let (mut sys, trojan, spy, tl, _sl) = link_fixture();
        // A dead channel: the spy streams a *local* buffer, so its
        // route shares nothing with the trojan's and no slot ever
        // carries signal — every frame fails verification. The
        // exchange must stop after max_retries + 1 rounds, not spin.
        let lb = sys.malloc_on(spy, GpuId::new(1), 8 * 4096).unwrap();
        let local_lines: Vec<VirtAddr> = (0..8).map(|i| lb.offset(i * 4096)).collect();
        let medium = LinkCongestionMedium {
            trojan,
            spy,
            channel: LinkChannel {
                trojan_lines: &tl,
                spy_lines: &local_lines,
                trojan_streams: 2,
            },
        };
        let payload = bits_from_bytes(b"doomed");
        let report = transmit_resilient(
            &mut sys,
            &medium,
            &payload,
            &params,
            &Pipeline::vote(BoundaryPolicy::Quantile),
            &RetryConfig {
                max_retries: 1,
                ..Default::default()
            },
            SchedulerKind::Auto,
        )
        .unwrap();
        assert_eq!(report.rounds, 2, "initial round plus exactly one retry");
        assert_eq!(
            report.frames_delivered, 0,
            "a dead channel must deliver nothing, not zeros that verify"
        );
        assert_eq!(report.received, vec![0; payload.len()]);
        assert!(report.frame_failures > 0);
    }
}
