//! Forward error correction for the covert channel (extension).
//!
//! The paper reports raw bit-error rates (1.3% at the 4-set operating
//! point). A real-world covert channel would add coding; this module
//! implements Hamming(7,4) with single-error correction so the channel
//! trades ~75% effective rate for orders-of-magnitude fewer residual
//! errors — the `ext_ecc_channel` bench quantifies the trade.

/// Encodes 4 data bits into a 7-bit Hamming codeword (bits are `0/1`).
///
/// Layout: positions 1..=7 with parity bits at 1, 2, 4 (1-indexed).
pub fn hamming74_encode_nibble(d: [u8; 4]) -> [u8; 7] {
    let p1 = d[0] ^ d[1] ^ d[3];
    let p2 = d[0] ^ d[2] ^ d[3];
    let p4 = d[1] ^ d[2] ^ d[3];
    [p1, p2, d[0], p4, d[1], d[2], d[3]]
}

/// Decodes a 7-bit codeword, correcting up to one flipped bit. Returns
/// the 4 data bits and whether a correction was applied.
pub fn hamming74_decode_nibble(mut c: [u8; 7]) -> ([u8; 4], bool) {
    let s1 = c[0] ^ c[2] ^ c[4] ^ c[6];
    let s2 = c[1] ^ c[2] ^ c[5] ^ c[6];
    let s4 = c[3] ^ c[4] ^ c[5] ^ c[6];
    let syndrome = (usize::from(s4) << 2) | (usize::from(s2) << 1) | usize::from(s1);
    let corrected = syndrome != 0;
    if corrected {
        c[syndrome - 1] ^= 1;
    }
    ([c[2], c[4], c[5], c[6]], corrected)
}

/// Encodes a bit stream with Hamming(7,4); the input is padded with zeros
/// to a multiple of 4 bits.
pub fn ecc_encode(bits: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bits.len().div_ceil(4) * 7);
    for chunk in bits.chunks(4) {
        let mut d = [0u8; 4];
        d[..chunk.len()].copy_from_slice(chunk);
        out.extend_from_slice(&hamming74_encode_nibble(d));
    }
    out
}

/// Decodes a Hamming(7,4) stream back to `data_bits` bits, correcting
/// single-bit errors per codeword. Returns the data and the number of
/// corrections applied.
pub fn ecc_decode(coded: &[u8], data_bits: usize) -> (Vec<u8>, usize) {
    let mut out = Vec::with_capacity(data_bits);
    let mut corrections = 0;
    for chunk in coded.chunks(7) {
        let mut c = [0u8; 7];
        c[..chunk.len()].copy_from_slice(chunk);
        let (d, fixed) = hamming74_decode_nibble(c);
        corrections += usize::from(fixed);
        out.extend_from_slice(&d);
    }
    out.truncate(data_bits);
    (out, corrections)
}

/// Soft-decision (Chase-2 style) decoding of one 7-bit codeword with
/// per-bit confidences: generate candidate codewords by flipping
/// subsets of the **two least-confident** positions, hard-correct each
/// candidate through the syndrome, and keep the valid codeword with
/// the smallest *soft distance* to the received hard bits (the sum of
/// the confidences of every disagreeing position). Ties break towards
/// the plain hard decision, so with uniform confidences this reduces to
/// [`hamming74_decode_nibble`] exactly. The win over hard decoding:
/// when a codeword took **two** errors, syndrome correction is
/// guaranteed to pick a third, wrong position — but if the two wrong
/// bits are also the two *least-confident* bits (a low-margin matched
/// filter response is exactly that), the double-flip candidate is a
/// valid codeword at lower soft distance and the data survives.
///
/// Returns the 4 data bits and whether the chosen codeword differs from
/// the received one.
pub fn hamming74_decode_soft(c: [u8; 7], conf: [u16; 7]) -> ([u8; 4], bool) {
    // Two least-confident positions (ties towards the lower index).
    let mut lo = (u16::MAX, 0usize);
    let mut lo2 = (u16::MAX, 0usize);
    for (i, &w) in conf.iter().enumerate() {
        if (w, i) < lo {
            lo2 = lo;
            lo = (w, i);
        } else if (w, i) < lo2 {
            lo2 = (w, i);
        }
    }
    let mut best: Option<(u64, [u8; 7])> = None;
    for flips in 0u8..4 {
        let mut cand = c;
        if flips & 1 != 0 {
            cand[lo.1] ^= 1;
        }
        if flips & 2 != 0 {
            cand[lo2.1] ^= 1;
        }
        // Hard-correct the candidate into a valid codeword.
        let (data, _) = hamming74_decode_nibble(cand);
        let valid = hamming74_encode_nibble(data);
        let dist: u64 = valid
            .iter()
            .zip(&c)
            .zip(&conf)
            .filter(|((v, r), _)| v != r)
            .map(|(_, &w)| u64::from(w))
            .sum();
        // Strictly-smaller keeps the earliest candidate on ties — and
        // candidate 0 is the hard decision.
        if best.is_none_or(|(d, _)| dist < d) {
            best = Some((dist, valid));
        }
    }
    let (_, chosen) = best.expect("at least the hard-decision candidate");
    ([chosen[2], chosen[4], chosen[5], chosen[6]], chosen != c)
}

/// Soft-decision stream decoding: as [`ecc_decode`], but each codeword
/// is decoded by [`hamming74_decode_soft`] using the per-bit
/// confidences in `conf` (aligned with `coded`; missing entries count
/// as fully confident, so padding is never flipped).
pub fn ecc_decode_soft(coded: &[u8], conf: &[u16], data_bits: usize) -> (Vec<u8>, usize) {
    let mut out = Vec::with_capacity(data_bits);
    let mut corrections = 0;
    for (w, chunk) in coded.chunks(7).enumerate() {
        let mut c = [0u8; 7];
        c[..chunk.len()].copy_from_slice(chunk);
        let mut k = [u16::MAX; 7];
        for (i, slot) in k.iter_mut().enumerate().take(chunk.len()) {
            if let Some(&v) = conf.get(w * 7 + i) {
                *slot = v;
            }
        }
        let (d, fixed) = hamming74_decode_soft(c, k);
        corrections += usize::from(fixed);
        out.extend_from_slice(&d);
    }
    out.truncate(data_bits);
    (out, corrections)
}

/// Code rate of the scheme (data bits per channel bit).
pub const ECC_RATE: f64 = 4.0 / 7.0;

/// Block interleaver: writes the stream row-wise into `depth` rows and
/// reads it column-wise, so an error *burst* of length `L` lands in
/// `ceil(L/depth)` bits per codeword instead of wiping one codeword —
/// exactly the failure mode of congestion episodes on the channel.
/// Generic over the element type so bit streams and their per-bit
/// confidences ride the same permutation.
pub fn interleave<T: Copy + Default>(bits: &[T], depth: usize) -> Vec<T> {
    let depth = depth.max(1);
    let cols = bits.len().div_ceil(depth);
    let mut out = Vec::with_capacity(cols * depth);
    for c in 0..cols {
        for r in 0..depth {
            out.push(bits.get(r * cols + c).copied().unwrap_or_default());
        }
    }
    out
}

/// Inverse of [`interleave`]; `len` is the original stream length.
pub fn deinterleave<T: Copy + Default>(bits: &[T], depth: usize, len: usize) -> Vec<T> {
    let depth = depth.max(1);
    let cols = len.div_ceil(depth);
    let mut out = vec![T::default(); cols * depth];
    let mut idx = 0;
    for c in 0..cols {
        for r in 0..depth {
            if let Some(&b) = bits.get(idx) {
                out[r * cols + c] = b;
            }
            idx += 1;
        }
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_roundtrip_all_nibbles() {
        for n in 0u8..16 {
            let d = [(n >> 3) & 1, (n >> 2) & 1, (n >> 1) & 1, n & 1];
            let (back, fixed) = hamming74_decode_nibble(hamming74_encode_nibble(d));
            assert_eq!(back, d);
            assert!(!fixed);
        }
    }

    #[test]
    fn corrects_every_single_bit_flip() {
        for n in 0u8..16 {
            let d = [(n >> 3) & 1, (n >> 2) & 1, (n >> 1) & 1, n & 1];
            let code = hamming74_encode_nibble(d);
            for flip in 0..7 {
                let mut bad = code;
                bad[flip] ^= 1;
                let (back, fixed) = hamming74_decode_nibble(bad);
                assert_eq!(back, d, "nibble {n} flip {flip}");
                assert!(fixed);
            }
        }
    }

    #[test]
    fn stream_roundtrip_with_scattered_errors() {
        let data: Vec<u8> = (0..97).map(|i| ((i * 7) % 3 == 0) as u8).collect();
        let mut coded = ecc_encode(&data);
        // Flip one bit in every second codeword.
        for (w, chunk) in coded.chunks_mut(7).enumerate() {
            if w % 2 == 0 {
                chunk[w % 7] ^= 1;
            }
        }
        let (back, corrections) = ecc_decode(&coded, data.len());
        assert_eq!(back, data);
        assert!(corrections >= coded.len() / 14);
    }

    #[test]
    fn interleave_roundtrip() {
        let bits: Vec<u8> = (0..103).map(|i| (i % 5 == 0) as u8).collect();
        for depth in [1usize, 3, 7, 16] {
            let inter = interleave(&bits, depth);
            assert_eq!(deinterleave(&inter, depth, bits.len()), bits);
        }
    }

    #[test]
    fn interleaving_spreads_bursts_across_codewords() {
        // A 12-bit burst in the interleaved domain must corrupt at most 2
        // bits of any 7-bit deinterleaved codeword at depth 14.
        let data: Vec<u8> = (0..160).map(|i| (i % 3 == 0) as u8).collect();
        let coded = ecc_encode(&data);
        let depth = 14;
        let mut inter = interleave(&coded, depth);
        for b in inter.iter_mut().take(60).skip(48) {
            *b ^= 1; // the burst
        }
        let deinter = deinterleave(&inter, depth, coded.len());
        for (w, chunk) in deinter.chunks(7).enumerate() {
            let errs = chunk
                .iter()
                .zip(coded.chunks(7).nth(w).unwrap())
                .filter(|(a, b)| a != b)
                .count();
            assert!(errs <= 2, "codeword {w} took {errs} burst bits");
        }
    }

    #[test]
    fn soft_decode_with_uniform_confidence_is_hard_decode() {
        for n in 0u8..16 {
            let d = [(n >> 3) & 1, (n >> 2) & 1, (n >> 1) & 1, n & 1];
            let code = hamming74_encode_nibble(d);
            for flip in 0..7 {
                let mut bad = code;
                bad[flip] ^= 1;
                let (hard, hard_fixed) = hamming74_decode_nibble(bad);
                let (soft, soft_fixed) = hamming74_decode_soft(bad, [100; 7]);
                assert_eq!(soft, hard, "nibble {n} flip {flip}");
                assert_eq!(soft_fixed, hard_fixed);
            }
            // Clean codewords stay clean.
            let (soft, fixed) = hamming74_decode_soft(code, [100; 7]);
            assert_eq!(soft, d);
            assert!(!fixed);
        }
    }

    #[test]
    fn soft_decode_repairs_double_errors_at_low_confidence() {
        // Two errors per codeword defeat hard Hamming decoding (the
        // syndrome picks a third, wrong bit). When the two wrong bits
        // are the two least-confident ones, the soft decoder recovers.
        for n in 0u8..16 {
            let d = [(n >> 3) & 1, (n >> 2) & 1, (n >> 1) & 1, n & 1];
            let code = hamming74_encode_nibble(d);
            for f1 in 0..7 {
                for f2 in (f1 + 1)..7 {
                    let mut bad = code;
                    bad[f1] ^= 1;
                    bad[f2] ^= 1;
                    let (hard, _) = hamming74_decode_nibble(bad);
                    assert_ne!(hard, d, "double error must defeat hard decoding");
                    let mut conf = [900u16; 7];
                    conf[f1] = 10;
                    conf[f2] = 25;
                    let (soft, fixed) = hamming74_decode_soft(bad, conf);
                    assert_eq!(soft, d, "nibble {n} flips ({f1},{f2})");
                    assert!(fixed);
                }
            }
        }
    }

    #[test]
    fn soft_stream_decode_round_trips_and_respects_padding() {
        // 10 data bits → 3 codewords with 2 padded data bits: padding
        // positions must never be "corrected" into garbage even though
        // no confidence entries exist for them.
        let data: Vec<u8> = vec![1, 0, 1, 1, 0, 0, 1, 0, 1, 1];
        let coded = ecc_encode(&data);
        let conf = vec![500u16; coded.len()];
        let (back, corrections) = ecc_decode_soft(&coded, &conf, data.len());
        assert_eq!(back, data);
        assert_eq!(corrections, 0);
    }

    #[test]
    fn generic_interleave_carries_confidences_on_the_same_permutation() {
        let bits: Vec<u8> = (0..53).map(|i| (i % 3 == 0) as u8).collect();
        let conf: Vec<u16> = (0..53).map(|i| i as u16 * 10).collect();
        let ib = interleave(&bits, 7);
        let ic = interleave(&conf, 7);
        let db = deinterleave(&ib, 7, bits.len());
        let dc = deinterleave(&ic, 7, conf.len());
        assert_eq!(db, bits);
        assert_eq!(dc, conf, "confidences ride the identical permutation");
    }

    #[test]
    fn rate_matches_expansion() {
        let data = vec![1u8; 40];
        let coded = ecc_encode(&data);
        assert_eq!(coded.len(), 70);
        assert!((ECC_RATE - 40.0 / 70.0).abs() < 1e-12);
    }
}
