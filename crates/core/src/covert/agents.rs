//! Trojan and spy engine agents for the covert channel.

use super::protocol::{ChannelParams, ProbeSample};
use crate::eviction::EvictionSet;
use crate::thresholds::Thresholds;
use gpubox_sim::{Agent, Op, OpResult, ProbeStage, ProcessId, VirtAddr};
use std::cell::RefCell;
use std::rc::Rc;

/// Active phase of a `1` slot under the evasion knobs: a deterministic
/// per-bit jitter offset (Weyl sequence over the bit index — no RNG
/// consumed, so fingerprints with jitter off are untouched) followed by
/// `duty_pct`% of the slot, clipped to the slot boundary. With the
/// default knobs (`duty_pct == 100`, `slot_jitter == 0`) this is the
/// whole slot and the agents below behave bit-identically to their
/// pre-evasion versions.
pub(super) fn active_window(
    slot_end: u64,
    slot_cycles: u64,
    duty_pct: u32,
    slot_jitter: u64,
    bit_idx: usize,
) -> (u64, u64) {
    let slot_start = slot_end - slot_cycles;
    let jitter = if slot_jitter > 0 {
        ((bit_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % slot_jitter
    } else {
        0
    };
    let a0 = (slot_start + jitter).min(slot_end);
    let span = slot_cycles * u64::from(duty_pct.clamp(1, 100)) / 100;
    (a0, (a0 + span).min(slot_end))
}

/// The trojan transmitter for one set pair: paces bit slots on its own
/// clock; during a `1` slot it re-primes its eviction set (warp-parallel,
/// all threads of the block participating); during a `0` slot it spins on
/// dummy trigonometric work of comparable duration (paper Sec. IV-B).
#[derive(Debug)]
pub struct TrojanAgent {
    pid: ProcessId,
    lines: Vec<VirtAddr>,
    frame: Vec<u8>,
    slot_cycles: u64,
    start: Option<u64>,
    /// Estimated duration of one prime batch, used to size dummy waits.
    prime_estimate: u64,
    bit_idx: usize,
    /// Evasion: percentage of a `1` slot actively driven.
    duty_pct: u32,
    /// Evasion: per-bit active-phase jitter span, cycles.
    slot_jitter: u64,
}

impl TrojanAgent {
    /// Creates a transmitter sending `frame` over `set`.
    pub fn new(pid: ProcessId, set: &EvictionSet, frame: Vec<u8>, params: &ChannelParams) -> Self {
        TrojanAgent {
            pid,
            lines: set.lines().to_vec(),
            frame,
            slot_cycles: params.slot_cycles,
            start: None,
            prime_estimate: 700,
            bit_idx: 0,
            duty_pct: params.trojan_duty_pct,
            slot_jitter: params.trojan_slot_jitter,
        }
    }
}

impl Agent for TrojanAgent {
    fn next_op(&mut self, now: u64, stage: &mut ProbeStage) -> Op {
        let start = *self.start.get_or_insert(now);
        if self.bit_idx >= self.frame.len() {
            return Op::Done;
        }
        let slot_end = start + (self.bit_idx as u64 + 1) * self.slot_cycles;
        if now >= slot_end {
            self.bit_idx += 1;
            return self.next_op(now, stage);
        }
        let remaining = slot_end - now;
        if self.frame[self.bit_idx] == 1 {
            let (a0, a1) = active_window(
                slot_end,
                self.slot_cycles,
                self.duty_pct,
                self.slot_jitter,
                self.bit_idx,
            );
            if now < a0 {
                // Evasion: idle until the jittered active phase opens.
                return Op::Compute(a0 - now);
            }
            if now >= a1 {
                // Evasion: duty budget spent; idle out the slot tail.
                return Op::Compute(slot_end - now);
            }
            if a1 - now < self.prime_estimate {
                // Not enough room for a full prime; idle to the boundary.
                Op::Compute(slot_end - now)
            } else {
                // Re-prime warp-parallel: stage the eviction set into the
                // engine's reusable probe buffer (no per-op allocation).
                stage.extend_from_slice(&self.lines);
                Op::LoadBatch
            }
        } else {
            // Dummy computation sized like a prime so 0/1 slots take the
            // same wall-clock time.
            Op::Compute(remaining.min(self.prime_estimate))
        }
    }

    fn on_result(&mut self, res: &OpResult<'_>) {
        if !res.latencies.is_empty() {
            // Track the real prime duration so pacing stays calibrated.
            self.prime_estimate = (self.prime_estimate + res.duration) / 2;
        }
    }

    fn process(&self) -> ProcessId {
        self.pid
    }

    fn label(&self) -> &str {
        "trojan"
    }
}

/// Shared recording of a spy agent's probe samples.
#[derive(Debug, Clone, Default)]
pub struct SpyTrace(Rc<RefCell<Vec<ProbeSample>>>);

impl SpyTrace {
    /// Snapshot of the samples recorded so far.
    pub fn samples(&self) -> Vec<ProbeSample> {
        self.0.borrow().clone()
    }

    /// Pre-reserves capacity for `n` further samples. Trace growth is
    /// amortised-O(1) either way; reserving up front makes the engine
    /// loop strictly allocation-free, which the covert alloc-free test
    /// asserts with a counting global allocator.
    pub fn reserve(&self, n: usize) {
        self.0.borrow_mut().reserve(n);
    }

    /// Samples recorded so far (for capacity estimation without
    /// cloning).
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// Whether no samples have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }

    /// Appends one sample (shared with the link-congestion spy).
    pub(super) fn push(&self, s: ProbeSample) {
        self.0.borrow_mut().push(s);
    }
}

/// The spy receiver for one set pair: probes its aligned eviction set
/// back-to-back (with an optional gap) and records per-probe miss counts,
/// classified with the remote-access thresholds.
#[derive(Debug)]
pub struct SpyProbeAgent {
    pid: ProcessId,
    lines: Vec<VirtAddr>,
    thresholds: Thresholds,
    gap: u64,
    stop_after: u64,
    trace: SpyTrace,
    pending_probe_at: u64,
    gap_next: bool,
}

impl SpyProbeAgent {
    /// Creates a receiver probing `set` until its clock passes
    /// `stop_after`.
    pub fn new(
        pid: ProcessId,
        set: &EvictionSet,
        thresholds: Thresholds,
        params: &ChannelParams,
        stop_after: u64,
    ) -> Self {
        SpyProbeAgent {
            pid,
            lines: set.lines().to_vec(),
            thresholds,
            gap: params.spy_gap,
            stop_after,
            trace: SpyTrace::default(),
            pending_probe_at: 0,
            gap_next: false,
        }
    }

    /// Handle to the recorded trace.
    pub fn trace(&self) -> SpyTrace {
        self.trace.clone()
    }
}

impl Agent for SpyProbeAgent {
    fn next_op(&mut self, now: u64, stage: &mut ProbeStage) -> Op {
        if now >= self.stop_after {
            return Op::Done;
        }
        if self.gap_next && self.gap > 0 {
            self.gap_next = false;
            return Op::Compute(self.gap);
        }
        self.gap_next = true;
        self.pending_probe_at = now;
        stage.extend_from_slice(&self.lines);
        Op::LoadBatch
    }

    fn on_result(&mut self, res: &OpResult<'_>) {
        if res.latencies.is_empty() {
            return;
        }
        let misses = self.thresholds.count_remote_misses(res.latencies) as u32;
        let mean =
            res.latencies.iter().map(|&l| u64::from(l)).sum::<u64>() / res.latencies.len() as u64;
        self.trace.0.borrow_mut().push(ProbeSample {
            at: res.started_at,
            misses,
            lines: res.latencies.len() as u32,
            mean_latency: mean as u32,
        });
    }

    fn process(&self) -> ProcessId {
        self.pid
    }

    fn label(&self) -> &str {
        "spy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trojan_paces_slots_on_its_clock() {
        let params = ChannelParams {
            slot_cycles: 1000,
            ..Default::default()
        };
        let set = EvictionSet::new(vec![VirtAddr(4096)]);
        let mut t = TrojanAgent::new(ProcessId(0), &set, vec![0, 0], &params);
        let mut stage = ProbeStage::new();
        // First op at now=0 inside slot 0 (a '0' bit): compute.
        match t.next_op(0, &mut stage) {
            Op::Compute(c) => assert!(c <= 1000),
            other => panic!("expected compute, got {other:?}"),
        }
        // At now=2000 both slots are over.
        assert_eq!(t.next_op(2000, &mut stage), Op::Done);
    }

    #[test]
    fn trojan_primes_during_one_bits() {
        let params = ChannelParams {
            slot_cycles: 5000,
            ..Default::default()
        };
        let set = EvictionSet::new(vec![VirtAddr(4096), VirtAddr(8192)]);
        let mut t = TrojanAgent::new(ProcessId(0), &set, vec![1], &params);
        let mut stage = ProbeStage::new();
        match t.next_op(0, &mut stage) {
            Op::LoadBatch => assert_eq!(stage.len(), 2, "both lines staged"),
            other => panic!("expected prime batch, got {other:?}"),
        }
    }

    #[test]
    fn reduced_duty_idles_the_slot_tail() {
        let params = ChannelParams {
            slot_cycles: 5000,
            trojan_duty_pct: 40,
            ..Default::default()
        };
        let set = EvictionSet::new(vec![VirtAddr(4096), VirtAddr(8192)]);
        let mut t = TrojanAgent::new(ProcessId(0), &set, vec![1], &params);
        let mut stage = ProbeStage::new();
        // Active phase covers [0, 2000): still primes at its open.
        match t.next_op(0, &mut stage) {
            Op::LoadBatch => assert_eq!(stage.len(), 2),
            other => panic!("expected prime batch, got {other:?}"),
        }
        stage.clear();
        // After the duty budget: idles exactly to the slot boundary.
        assert_eq!(t.next_op(2500, &mut stage), Op::Compute(2500));
        assert_eq!(t.next_op(5000, &mut stage), Op::Done);
    }

    #[test]
    fn slot_jitter_delays_the_active_phase_deterministically() {
        let params = ChannelParams {
            slot_cycles: 5000,
            trojan_slot_jitter: 1000,
            ..Default::default()
        };
        let (a0, a1) = active_window(5000, 5000, 100, 1000, 0);
        assert_eq!((a0, a1), (active_window(5000, 5000, 100, 1000, 0)), "deterministic");
        assert!(a0 < 5000 && a1 == 5000);
        let set = EvictionSet::new(vec![VirtAddr(4096)]);
        let mut t = TrojanAgent::new(ProcessId(0), &set, vec![1], &params);
        let mut stage = ProbeStage::new();
        if a0 > 0 {
            // Before the jittered phase opens: waits exactly until it.
            assert_eq!(t.next_op(0, &mut stage), Op::Compute(a0));
        }
        match t.next_op(a0, &mut stage) {
            Op::LoadBatch => {}
            other => panic!("expected prime batch at phase open, got {other:?}"),
        }
    }

    #[test]
    fn default_knobs_reproduce_full_slot_window() {
        for bit in 0..32 {
            let end = 6000 * (bit as u64 + 1);
            assert_eq!(active_window(end, 6000, 100, 0, bit), (end - 6000, end));
        }
    }

    #[test]
    fn spy_records_probe_samples() {
        let params = ChannelParams::default();
        let set = EvictionSet::new(vec![VirtAddr(4096)]);
        let mut s = SpyProbeAgent::new(
            ProcessId(1),
            &set,
            Thresholds::paper_defaults(),
            &params,
            10_000,
        );
        let trace = s.trace();
        let mut stage = ProbeStage::new();
        let op = s.next_op(0, &mut stage);
        assert!(matches!(op, Op::LoadBatch));
        assert_eq!(stage.len(), 1);
        s.on_result(&OpResult {
            started_at: 0,
            duration: 900,
            value: 0,
            latencies: &[950],
        });
        let samples = trace.samples();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].misses, 1);
        stage.clear();
        assert_eq!(s.next_op(20_000, &mut stage), Op::Done);
    }
}
