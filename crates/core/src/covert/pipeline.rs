//! The receive-side stage stack: decision boundary → slot decoder →
//! optional ECC/interleave, composable with any [`ChannelMedium`].
//!
//! [`ChannelMedium`]: super::medium::ChannelMedium
//!
//! Historically each channel family hard-wired its own receive path:
//! the Prime+Probe channel called `decode_trace` (2-means boundary,
//! per-sample vote), the link-congestion channel called
//! `robust_boundary` + `decode_trace_with_boundary`, and Hamming(7,4)
//! coding was applied by hand in one experiment binary. This module
//! factors those choices into three orthogonal stages so any
//! combination runs on any medium:
//!
//! - [`BoundaryPolicy`] — how the hit/miss (idle/congested) decision
//!   level is self-calibrated from the spy's own trace;
//! - [`Decoder`] — how probe samples inside a slot window combine into
//!   a bit: per-sample majority vote, or the matched filter
//!   ([`matched_filter_decode`]) that soft-combines the whole window;
//! - [`Coding`] — an optional forward-error-correction layer
//!   (Hamming(7,4) + block interleaving from [`super::ecc`]) applied to
//!   the payload before striping and inverted after reassembly.
//!
//! A [`Pipeline`] bundles a decoder and a coding layer; the historical
//! receive paths are [`Pipeline::vote`]`(TwoMeans)` and
//! [`Pipeline::vote`]`(Quantile)`, and both are asserted bit-identical
//! to the PR 3 decoders by the wrapper fingerprint tests.

use super::ecc::{deinterleave, ecc_decode, ecc_decode_soft, ecc_encode, interleave};
use super::protocol::{
    adaptive_boundary, decode_trace_with_boundary, robust_boundary, ChannelParams, DecodedStripe,
    ProbeSample,
};

/// How the decision boundary between the two latency levels is
/// self-calibrated from the spy's observed probe-mean distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryPolicy {
    /// 1-D 2-means clustering ([`adaptive_boundary`]) — the right shape
    /// for two tight clusters (the Prime+Probe channel's hit/miss
    /// levels), and robust to both levels shifting together under port
    /// contention.
    TwoMeans,
    /// Quantile-anchored ([`robust_boundary`]) — the right shape for a
    /// tight baseline plus a heavy congested tail (the link-congestion
    /// channel), where 2-means mislocates the boundary.
    Quantile,
}

impl BoundaryPolicy {
    /// Computes the decision boundary for a trace.
    pub fn boundary(&self, samples: &[ProbeSample]) -> f64 {
        match self {
            BoundaryPolicy::TwoMeans => adaptive_boundary(samples),
            BoundaryPolicy::Quantile => robust_boundary(samples),
        }
    }
}

/// How the samples inside each slot window are combined into a bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoder {
    /// Each sample votes 0/1 against the boundary; the slot takes the
    /// majority. This is the PR 3 decoder for both channel families.
    Vote(BoundaryPolicy),
    /// Matched filter over the slot window ([`matched_filter_decode`]):
    /// samples contribute *soft* scores (normalised latency, clamped to
    /// the level span) weighted towards the slot centre, and the summed
    /// filter output is thresholded once per slot. Cuts the
    /// tenant-noise error floor the per-sample vote hits: a hard vote
    /// throws away how far each sample sits from the boundary and
    /// weights boundary-overrun samples at the slot edges the same as
    /// mid-slot evidence.
    MatchedFilter(BoundaryPolicy),
}

impl Decoder {
    /// Decodes one stripe's probe trace into `payload_bits` bits.
    pub fn decode(
        &self,
        samples: &[ProbeSample],
        params: &ChannelParams,
        payload_bits: usize,
    ) -> DecodedStripe {
        match self {
            Decoder::Vote(policy) => {
                decode_trace_with_boundary(samples, params, payload_bits, policy.boundary(samples))
            }
            Decoder::MatchedFilter(policy) => {
                matched_filter_decode(samples, params, payload_bits, policy.boundary(samples))
            }
        }
    }

    /// As [`Decoder::decode`], also returning per-bit confidences for a
    /// soft-decision coding stage ([`Coding::Hamming74Soft`]). The
    /// matched filter reports the quantised distance of each slot's
    /// filter response from its threshold — exactly the margin it
    /// otherwise discards at the slot decision; the vote decoder has no
    /// soft output, so its bits come back uniformly confident and a
    /// soft coding stage degenerates to hard decoding (asserted in the
    /// unit tests).
    pub fn decode_soft(
        &self,
        samples: &[ProbeSample],
        params: &ChannelParams,
        payload_bits: usize,
    ) -> SoftStripe {
        match self {
            Decoder::Vote(_) => SoftStripe {
                stripe: self.decode(samples, params, payload_bits),
                confidence: vec![CONFIDENCE_SCALE; payload_bits],
            },
            Decoder::MatchedFilter(policy) => {
                matched_filter_decode_soft(samples, params, payload_bits, policy.boundary(samples))
            }
        }
    }
}

/// Confidences are quantised to `0..=CONFIDENCE_SCALE` (a filter
/// response exactly at the threshold scores 0; a full level away scores
/// the scale). Quantisation keeps stripe outputs `Eq`-comparable for
/// the bit-identity assertions the sweep binaries rely on.
pub const CONFIDENCE_SCALE: u16 = 10_000;

/// A decoded stripe plus the per-payload-bit confidence the decoder
/// would otherwise throw away at the slot threshold — the input of the
/// soft-decision coding stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoftStripe {
    /// The hard bits (identical to what [`Decoder::decode`] returns).
    pub stripe: DecodedStripe,
    /// Per-payload-bit confidence, `0..=`[`CONFIDENCE_SCALE`]; slots
    /// with no samples score 0 (an erasure).
    pub confidence: Vec<u16>,
}

/// Optional forward-error-correction layer around the channel: encode
/// expands the payload before striping, decode inverts it after the
/// stripes are reassembled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coding {
    /// Raw bits on the channel.
    None,
    /// Hamming(7,4) single-error correction behind a block interleaver
    /// of the given depth: an error *burst* of length `L` lands in at
    /// most `ceil(L/depth)` bits per codeword, which single-error
    /// correction can then repair — exactly the failure mode of
    /// congestion episodes on either medium.
    Hamming74 {
        /// Interleaver depth (rows); `0`/`1` means no interleaving.
        interleave_depth: usize,
    },
    /// As [`Coding::Hamming74`] on the encode side, but decoding feeds
    /// the decoder's per-bit confidences (the matched filter's slot
    /// margins, deinterleaved on the same permutation as the bits) into
    /// Chase-style least-confidence correction
    /// ([`super::ecc::hamming74_decode_soft`]): a codeword whose two
    /// errors sit on its two least-confident bits — which hard
    /// single-error correction is guaranteed to miscorrect — is
    /// repaired by flipping those bits instead. Never worse than
    /// [`Coding::Hamming74`] on the existing sweeps (asserted in
    /// `ext_ecc_channel`), identical to it under the vote decoder.
    Hamming74Soft {
        /// Interleaver depth (rows); `0`/`1` means no interleaving.
        interleave_depth: usize,
    },
}

impl Coding {
    /// Channel bits carrying `data_bits` payload bits under this coding
    /// (the interleaver pads its output to a whole number of columns).
    pub fn channel_bits(&self, data_bits: usize) -> usize {
        match self {
            Coding::None => data_bits,
            Coding::Hamming74 { interleave_depth }
            | Coding::Hamming74Soft { interleave_depth } => {
                let coded = data_bits.div_ceil(4) * 7;
                let d = (*interleave_depth).max(1);
                coded.div_ceil(d) * d
            }
        }
    }

    /// Encodes payload bits into channel bits.
    pub fn encode(&self, bits: &[u8]) -> Vec<u8> {
        match self {
            Coding::None => bits.to_vec(),
            Coding::Hamming74 { interleave_depth }
            | Coding::Hamming74Soft { interleave_depth } => {
                interleave(&ecc_encode(bits), (*interleave_depth).max(1))
            }
        }
    }

    /// Decodes channel bits back to `data_bits` payload bits; returns
    /// the bits and the number of codeword corrections applied (always
    /// 0 for [`Coding::None`]). [`Coding::Hamming74Soft`] without
    /// confidences decodes like [`Coding::Hamming74`] — use
    /// [`Coding::decode_with_confidence`] for the soft path.
    pub fn decode(&self, channel_bits: &[u8], data_bits: usize) -> (Vec<u8>, usize) {
        match self {
            Coding::None => {
                let mut out = channel_bits.to_vec();
                out.resize(data_bits, 0);
                (out, 0)
            }
            Coding::Hamming74 { interleave_depth }
            | Coding::Hamming74Soft { interleave_depth } => {
                let coded_len = data_bits.div_ceil(4) * 7;
                let coded = deinterleave(channel_bits, (*interleave_depth).max(1), coded_len);
                ecc_decode(&coded, data_bits)
            }
        }
    }

    /// As [`Coding::decode`] with per-channel-bit confidences (aligned
    /// with `channel_bits`). Only [`Coding::Hamming74Soft`] consumes
    /// them — the confidences are deinterleaved on the same permutation
    /// as the bits and drive least-confidence correction; the other
    /// variants ignore the confidences and defer to [`Coding::decode`].
    pub fn decode_with_confidence(
        &self,
        channel_bits: &[u8],
        confidence: &[u16],
        data_bits: usize,
    ) -> (Vec<u8>, usize) {
        match self {
            Coding::Hamming74Soft { interleave_depth } => {
                let d = (*interleave_depth).max(1);
                let coded_len = data_bits.div_ceil(4) * 7;
                let coded = deinterleave(channel_bits, d, coded_len);
                let conf = deinterleave(confidence, d, coded_len);
                ecc_decode_soft(&coded, &conf, data_bits)
            }
            _ => self.decode(channel_bits, data_bits),
        }
    }
}

/// A complete receive-side configuration: slot decoder plus coding
/// layer. Any pipeline runs over any [`ChannelMedium`] through
/// [`transmit_over`].
///
/// [`ChannelMedium`]: super::medium::ChannelMedium
/// [`transmit_over`]: super::medium::transmit_over
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pipeline {
    /// Slot decoder stage.
    pub decoder: Decoder,
    /// Coding stage.
    pub coding: Coding,
}

impl Pipeline {
    /// The PR 3 receive path: per-sample vote, no coding.
    pub fn vote(policy: BoundaryPolicy) -> Self {
        Pipeline {
            decoder: Decoder::Vote(policy),
            coding: Coding::None,
        }
    }

    /// Matched-filter slot decoding, no coding.
    pub fn matched_filter(policy: BoundaryPolicy) -> Self {
        Pipeline {
            decoder: Decoder::MatchedFilter(policy),
            coding: Coding::None,
        }
    }

    /// Adds a coding stage (builder-style).
    #[must_use]
    pub fn with_coding(mut self, coding: Coding) -> Self {
        self.coding = coding;
        self
    }
}

/// Matched-filter slot decoder.
///
/// The transmitted waveform inside one slot is (nominally) a
/// rectangular pulse: the trojan holds the medium busy for a `1` and
/// idle for a `0`, so the matched filter for the slot is an integrator
/// over the window. Three refinements adapt it to this channel's noise:
///
/// - **Soft scores.** Each sample contributes its latency normalised to
///   the trace's robust level span (20th → 90th percentile), clamped to
///   `[0, 1]`. Clamping bounds the influence of the heavy congested
///   tail (a far-tail queue wait counts like any other congested
///   sample), while sub-boundary but elevated samples contribute
///   fractional evidence a hard vote discards entirely.
/// - **Centre weighting.** Samples are weighted by a triangular window
///   over their position in the slot (floored at 0.1 so edge samples
///   still count). The trojan's bursts deliberately overrun the slot
///   boundary (to keep the link saturated to the slot edge), and the
///   spy's phase lock is only slot-quantised — both put misleading
///   samples at the window edges, exactly where the filter weighs
///   least.
/// - **Threshold transfer.** The slot decision threshold is the
///   boundary policy's raw-latency boundary mapped through the same
///   normalisation, so the decoder inherits the policy's placement
///   (2-means midpoint or quantile anchor) instead of assuming 0.5.
///
/// Degenerate traces (empty, or a single latency level) decode to all
/// zeros, matching the vote decoder's behaviour.
pub fn matched_filter_decode(
    samples: &[ProbeSample],
    params: &ChannelParams,
    payload_bits: usize,
    boundary: f64,
) -> DecodedStripe {
    matched_filter_decode_soft(samples, params, payload_bits, boundary).stripe
}

/// As [`matched_filter_decode`], additionally returning the quantised
/// per-bit margins `|response − θ|` — the confidence the hard slot
/// decision throws away, consumed by [`Coding::Hamming74Soft`]. Slots
/// with no samples (and degenerate traces) score 0: an erasure the
/// soft coding stage flips first.
pub fn matched_filter_decode_soft(
    samples: &[ProbeSample],
    params: &ChannelParams,
    payload_bits: usize,
    boundary: f64,
) -> SoftStripe {
    let preamble = params.preamble();
    let total_slots = preamble.len() + payload_bits;
    if samples.is_empty() {
        return SoftStripe {
            stripe: DecodedStripe {
                payload: vec![0; payload_bits],
                phase: 0,
                preamble_matches: 0,
            },
            confidence: vec![0; payload_bits],
        };
    }
    // Robust level span, shared with `robust_boundary`'s quantiles.
    let mut vals: Vec<f64> = samples.iter().map(|s| f64::from(s.mean_latency)).collect();
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let lo = vals[(vals.len() - 1) * 2 / 10];
    let hi = vals[(vals.len() - 1) * 9 / 10];
    if (hi - lo) < 1.0 {
        // One level only: no signal, everything reads 0.
        return SoftStripe {
            stripe: DecodedStripe {
                payload: vec![0; payload_bits],
                phase: 0,
                preamble_matches: 0,
            },
            confidence: vec![0; payload_bits],
        };
    }
    let theta = ((boundary - lo) / (hi - lo)).clamp(0.05, 0.95);
    let score = |s: &ProbeSample| ((f64::from(s.mean_latency) - lo) / (hi - lo)).clamp(0.0, 1.0);

    let t0 = samples[0].at;
    let slot = params.slot_cycles;

    // Filter responses per slot for one candidate phase: triangular
    // centre weighting, floored so edge samples still contribute.
    let responses = |start: u64, out: &mut Vec<Option<f64>>| {
        let mut num = vec![0.0f64; total_slots];
        let mut den = vec![0.0f64; total_slots];
        for s in samples {
            if s.at < start {
                continue;
            }
            let idx = ((s.at - start) / slot) as usize;
            if idx >= total_slots {
                break;
            }
            let u = ((s.at - start) % slot) as f64 / slot as f64;
            let w = 0.1 + 0.9 * (1.0 - (2.0 * u - 1.0).abs());
            num[idx] += w * score(s);
            den[idx] += w;
        }
        out.clear();
        out.extend(
            (0..total_slots).map(|i| (den[i] > 0.0).then(|| num[i] / den[i])),
        );
    };

    // Phase search, mirroring the vote decoder: preamble agreement
    // first, mean filter margin |response − θ| as the tiebreak.
    let steps = 64u64;
    let mut resp = Vec::with_capacity(total_slots);
    let mut best = (0u64, usize::MAX, f64::NEG_INFINITY, 0usize);
    for step in 0..steps {
        let phase = slot * step / steps;
        responses(t0 + phase, &mut resp);
        let mut matches = 0usize;
        let mut margin = 0.0;
        let mut n = 0usize;
        for (i, want) in preamble.iter().enumerate() {
            if let Some(r) = resp[i] {
                let got = u8::from(r >= theta);
                matches += usize::from(got == *want);
                margin += (r - theta).abs();
                n += 1;
            }
        }
        let err = preamble.len() - matches;
        let margin = if n > 0 { margin / n as f64 } else { 0.0 };
        if err < best.1 || (err == best.1 && margin > best.2) {
            best = (phase, err, margin, matches);
        }
    }
    let (phase, _, _, preamble_matches) = best;
    responses(t0 + phase, &mut resp);
    let payload = resp[preamble.len()..]
        .iter()
        .map(|r| r.map_or(0, |r| u8::from(r >= theta)))
        .collect();
    // Quantised margin per payload slot; responses live in [0, 1] and
    // θ in [0.05, 0.95], so the margin is at most 0.95.
    let confidence = resp[preamble.len()..]
        .iter()
        .map(|r| r.map_or(0, |r| ((r - theta).abs() * f64::from(CONFIDENCE_SCALE)) as u16))
        .collect();
    SoftStripe {
        stripe: DecodedStripe {
            payload,
            phase,
            preamble_matches,
        },
        confidence,
    }
}

#[cfg(test)]
mod tests {
    use super::super::protocol::{bits_from_bytes, decode_trace};
    use super::*;

    fn synth_samples(
        frame: &[u8],
        slot: u64,
        phase: u64,
        probes_per_slot: u64,
        one: u32,
        zero: u32,
    ) -> Vec<ProbeSample> {
        let mut out = Vec::new();
        for (i, &b) in frame.iter().enumerate() {
            for p in 0..probes_per_slot {
                out.push(ProbeSample {
                    at: phase + i as u64 * slot + p * (slot / probes_per_slot) + 3,
                    misses: 0,
                    lines: 4,
                    mean_latency: if b == 1 { one } else { zero },
                });
            }
        }
        out
    }

    #[test]
    fn vote_two_means_is_decode_trace() {
        let params = ChannelParams::default();
        let payload = bits_from_bytes(b"same");
        let frame = params.frame(&payload);
        let mut samples = synth_samples(&frame, params.slot_cycles, 700, 4, 950, 630);
        for (i, s) in samples.iter_mut().enumerate() {
            if i % 11 == 0 {
                s.mean_latency = 1600; // outliers in both decoders' input
            }
        }
        let via_stack = Decoder::Vote(BoundaryPolicy::TwoMeans).decode(&samples, &params, payload.len());
        let via_legacy = decode_trace(&samples, &params, payload.len());
        assert_eq!(via_stack, via_legacy);
    }

    #[test]
    fn matched_filter_recovers_clean_frame() {
        let params = ChannelParams::default();
        let payload = bits_from_bytes(b"mf");
        let frame = params.frame(&payload);
        for policy in [BoundaryPolicy::TwoMeans, BoundaryPolicy::Quantile] {
            let samples = synth_samples(&frame, params.slot_cycles, 0, 4, 950, 630);
            let dec = Decoder::MatchedFilter(policy).decode(&samples, &params, payload.len());
            assert_eq!(dec.payload, payload, "{policy:?}");
            assert_eq!(dec.preamble_matches, params.preamble_bits);
        }
    }

    #[test]
    fn matched_filter_locks_phase_despite_offset() {
        let params = ChannelParams::default();
        let payload = bits_from_bytes(&[0b1011_0010]);
        let frame = params.frame(&payload);
        let samples =
            synth_samples(&frame, params.slot_cycles, params.slot_cycles * 2 / 5, 4, 950, 630);
        let dec =
            Decoder::MatchedFilter(BoundaryPolicy::Quantile).decode(&samples, &params, payload.len());
        assert_eq!(dec.payload, payload, "phase-shifted frame must decode");
    }

    #[test]
    fn matched_filter_outvotes_edge_noise() {
        // Samples near the slot edges lie (boundary-overrun pollution):
        // the first quarter of every 0-slot reads at the congested
        // level. Per-sample voting flips slots whose sample mix tips;
        // the centre-weighted soft filter keeps every bit.
        let params = ChannelParams::default();
        let payload = bits_from_bytes(b"edges");
        let frame = params.frame(&payload);
        let slot = params.slot_cycles;
        let mut samples = synth_samples(&frame, slot, 0, 8, 1100, 640);
        for s in &mut samples {
            let u = (s.at % slot) as f64 / slot as f64;
            if u < 0.28 && s.mean_latency == 640 {
                s.mean_latency = 1100;
            }
        }
        let mf = Decoder::MatchedFilter(BoundaryPolicy::Quantile)
            .decode(&samples, &params, payload.len());
        let errs = |dec: &DecodedStripe| {
            dec.payload
                .iter()
                .zip(&payload)
                .filter(|(a, b)| a != b)
                .count()
        };
        assert_eq!(errs(&mf), 0, "matched filter discounts edge pollution");
    }

    #[test]
    fn matched_filter_degenerate_traces_read_zero() {
        let params = ChannelParams::default();
        let dec = Decoder::MatchedFilter(BoundaryPolicy::Quantile).decode(&[], &params, 6);
        assert_eq!(dec.payload, vec![0; 6]);
        // Single-level trace: no signal.
        let flat: Vec<ProbeSample> = (0..200)
            .map(|i| ProbeSample {
                at: i * 500,
                misses: 0,
                lines: 4,
                mean_latency: 640,
            })
            .collect();
        let dec = Decoder::MatchedFilter(BoundaryPolicy::Quantile).decode(&flat, &params, 6);
        assert_eq!(dec.payload, vec![0; 6]);
    }

    #[test]
    fn matched_filter_soft_bits_match_hard_bits() {
        // The soft decoder's hard bits are exactly matched_filter_decode's
        // output — the confidences are additional, never behaviour-changing.
        let params = ChannelParams::default();
        let payload = bits_from_bytes(b"soft=hard");
        let frame = params.frame(&payload);
        let mut samples = synth_samples(&frame, params.slot_cycles, 100, 6, 950, 630);
        for (i, s) in samples.iter_mut().enumerate() {
            if i % 7 == 0 {
                s.mean_latency = 790; // mid-level noise
            }
        }
        let soft = matched_filter_decode_soft(&samples, &params, payload.len(), 800.0);
        let hard = matched_filter_decode(&samples, &params, payload.len(), 800.0);
        assert_eq!(soft.stripe, hard);
        assert_eq!(soft.confidence.len(), payload.len());
        assert!(soft.confidence.iter().any(|&c| c > 0));
        assert!(soft.confidence.iter().all(|&c| c <= CONFIDENCE_SCALE));
    }

    #[test]
    fn soft_coding_repairs_low_confidence_double_errors() {
        // Craft a coded stream whose corruption pattern defeats hard
        // Hamming decoding (two flips inside one codeword) but marks
        // exactly the flipped bits as least-confident — the erasure
        // shape a congested slot with a marginal filter response
        // produces.
        let bits: Vec<u8> = (0..40).map(|i| u8::from(i % 3 == 0)).collect();
        let hard = Coding::Hamming74 { interleave_depth: 1 };
        let soft = Coding::Hamming74Soft { interleave_depth: 1 };
        let mut coded = soft.encode(&bits);
        assert_eq!(coded, hard.encode(&bits), "identical on the encode side");
        let mut confidence = vec![9000u16; coded.len()];
        for w in [0usize, 3, 6] {
            for p in [1usize, 4] {
                coded[w * 7 + p] ^= 1;
                confidence[w * 7 + p] = 30;
            }
        }
        let (hard_bits, _) = hard.decode(&coded, bits.len());
        let hard_errors = hard_bits.iter().zip(&bits).filter(|(a, b)| a != b).count();
        assert!(hard_errors > 0, "double errors must defeat hard decoding");
        let (soft_bits, corrections) =
            soft.decode_with_confidence(&coded, &confidence, bits.len());
        assert_eq!(soft_bits, bits, "least-confidence correction repairs them");
        assert!(corrections >= 3);
    }

    #[test]
    fn soft_coding_with_uniform_confidence_matches_hard() {
        let bits: Vec<u8> = (0..64).map(|i| u8::from(i % 5 < 2)).collect();
        let hard = Coding::Hamming74 { interleave_depth: 8 };
        let soft = Coding::Hamming74Soft { interleave_depth: 8 };
        let mut coded = hard.encode(&bits);
        for b in coded.iter_mut().skip(17).take(9) {
            *b ^= 1;
        }
        let confidence = vec![5000u16; coded.len()];
        assert_eq!(
            soft.decode_with_confidence(&coded, &confidence, bits.len()),
            hard.decode(&coded, bits.len()),
            "uniform confidences degenerate to hard decoding"
        );
    }

    #[test]
    fn coding_round_trips() {
        let bits: Vec<u8> = (0..101).map(|i| u8::from(i % 3 == 0)).collect();
        for coding in [
            Coding::None,
            Coding::Hamming74 { interleave_depth: 1 },
            Coding::Hamming74 { interleave_depth: 16 },
            Coding::Hamming74Soft { interleave_depth: 16 },
        ] {
            let coded = coding.encode(&bits);
            assert_eq!(coded.len(), coding.channel_bits(bits.len()), "{coding:?}");
            let (back, corrections) = coding.decode(&coded, bits.len());
            assert_eq!(back, bits, "{coding:?}");
            assert_eq!(corrections, 0, "clean channel needs no corrections");
        }
    }

    #[test]
    fn hamming_coding_corrects_a_burst() {
        let bits: Vec<u8> = (0..64).map(|i| u8::from(i % 5 < 2)).collect();
        let coding = Coding::Hamming74 { interleave_depth: 16 };
        let mut coded = coding.encode(&bits);
        for b in coded.iter_mut().skip(40).take(12) {
            *b ^= 1; // a 12-bit burst on the channel
        }
        let (back, corrections) = coding.decode(&coded, bits.len());
        assert_eq!(back, bits, "interleaving spreads the burst across codewords");
        assert!(corrections >= 12, "each flipped bit lands in its own codeword");
    }
}
