//! Transport abstraction for the covert stack: a [`ChannelMedium`] owns
//! *what contends* (shared L2 sets, or a shared NVLink link), while the
//! generic [`transmit_over`] owns everything transport-independent —
//! framing, striping across lanes, agent scheduling, the listen horizon
//! and the report.
//!
//! Two media implement the paper's two channel families:
//!
//! - [`L2SetMedium`] — Prime+Probe over aligned L2 set pairs. One lane
//!   per pair; payload bits stripe round-robin across lanes (paper
//!   Sec. IV-B, the Fig. 9 bandwidth axis).
//! - [`LinkCongestionMedium`] — a bandwidth trojan saturating the links
//!   of its route and a throughput spy decoding its own transfer
//!   latency over the timed fabric. A single lane; *trojan streams*
//!   scale saturation instead of bandwidth.
//!
//! The legacy entry points `transmit` and `transmit_link` are thin
//! wrappers over these media, kept bit-identical to their PR 3
//! implementations (fingerprint-asserted in
//! `tests/channel_fingerprints.rs`).

use super::agents::{SpyProbeAgent, SpyTrace, TrojanAgent};
use super::channel::{ChannelReport, LinkChannel, SetPair};
use super::link_agents::{LinkSpyAgent, LinkTrojanAgent};
use super::pipeline::{BoundaryPolicy, Decoder, Pipeline};
use super::protocol::{stripe_bits, unstripe_bits, ChannelParams};
use crate::thresholds::Thresholds;
use gpubox_sim::{Engine, MultiGpuSystem, ProcessId, SchedulerKind, SimError, SimResult};

/// One contended transport the covert protocol can run over.
///
/// A medium contributes three things to a transmission: its lane count
/// (parallel stripes), system-level preparation (resource validation,
/// warm-up traffic), and the per-lane trojan/spy agent pair. Everything
/// else — framing, striping, the listen horizon, engine execution,
/// decoding, reporting — is the same for every medium and lives in
/// [`transmit_over`].
pub trait ChannelMedium {
    /// Number of parallel stripe lanes (≥ 1). Payload bits are striped
    /// round-robin across lanes; each lane carries its own preamble.
    fn lanes(&self) -> usize;

    /// Validates the system configuration and issues warm-up traffic
    /// (runs before the engine is built, so it may use the system
    /// directly).
    ///
    /// # Errors
    ///
    /// Medium-specific configuration errors (e.g.
    /// [`SimError::FabricDisabled`]) and propagated simulator errors.
    fn prepare(&self, sys: &mut MultiGpuSystem) -> SimResult<()>;

    /// Wires lane `lane`'s transmitter and receiver into the engine:
    /// the spy listening until `listen`, and the trojan(s) sending
    /// `frame` (preamble already attached). Returns the spy's trace
    /// handle.
    fn install_lane(
        &self,
        eng: &mut Engine<'_>,
        lane: usize,
        frame: &[u8],
        params: &ChannelParams,
        listen: u64,
    ) -> SpyTrace;

    /// As [`ChannelMedium::install_lane`] with both endpoints' launches
    /// shifted `defer` cycles later — the resilient protocol's
    /// deterministic retransmission backoff
    /// ([`super::resilient::transmit_resilient`]) re-runs a medium with
    /// growing defers so retransmission rounds shift relative to a
    /// recurring fault window. `listen` must already include `defer`
    /// (it is an absolute spy-clock horizon). The default delegates to
    /// [`ChannelMedium::install_lane`] and therefore only supports
    /// `defer == 0`; both built-in media override it.
    fn install_lane_deferred(
        &self,
        eng: &mut Engine<'_>,
        lane: usize,
        frame: &[u8],
        params: &ChannelParams,
        listen: u64,
        defer: u64,
    ) -> SpyTrace {
        assert_eq!(defer, 0, "this medium does not support deferred launches");
        self.install_lane(eng, lane, frame, params, listen)
    }

    /// The decoder this medium's legacy wrapper used — the right
    /// default for its latency distribution shape.
    fn default_decoder(&self) -> Decoder;
}

/// Prime+Probe over aligned L2 set pairs (the paper's first channel
/// family): one lane per pair, trojan priming / spy probing the same
/// physical set from different GPUs.
#[derive(Debug, Clone)]
pub struct L2SetMedium<'a> {
    /// Trojan process (on the target GPU).
    pub trojan: ProcessId,
    /// Spy process.
    pub spy: ProcessId,
    /// Aligned set pairs, one lane each.
    pub pairs: &'a [SetPair],
    /// Timing thresholds for the spy's miss classification.
    pub thresholds: Thresholds,
}

impl ChannelMedium for L2SetMedium<'_> {
    fn lanes(&self) -> usize {
        self.pairs.len()
    }

    fn prepare(&self, _sys: &mut MultiGpuSystem) -> SimResult<()> {
        assert!(!self.pairs.is_empty(), "need at least one aligned set pair");
        Ok(())
    }

    fn install_lane(
        &self,
        eng: &mut Engine<'_>,
        lane: usize,
        frame: &[u8],
        params: &ChannelParams,
        listen: u64,
    ) -> SpyTrace {
        self.install_lane_deferred(eng, lane, frame, params, listen, 0)
    }

    fn install_lane_deferred(
        &self,
        eng: &mut Engine<'_>,
        lane: usize,
        frame: &[u8],
        params: &ChannelParams,
        listen: u64,
        defer: u64,
    ) -> SpyTrace {
        let pair = &self.pairs[lane];
        let trojan = TrojanAgent::new(self.trojan, &pair.trojan, frame.to_vec(), params);
        let spy = SpyProbeAgent::new(self.spy, &pair.spy, self.thresholds, params, listen);
        let trace = spy.trace();
        // The spy starts slightly before the trojan (it must be
        // listening when the preamble begins); the stagger also models
        // independent process launches. Both shift together under a
        // retransmission defer — the endpoints share the backoff
        // schedule the way they share every other protocol constant.
        eng.add_agent(Box::new(spy), defer);
        eng.add_agent(Box::new(trojan), defer + params.slot_cycles / 2 + 37 * lane as u64);
        trace
    }

    fn default_decoder(&self) -> Decoder {
        // Hit/miss form two tight clusters: 2-means finds the midpoint.
        Decoder::Vote(BoundaryPolicy::TwoMeans)
    }
}

/// NVLink congestion over the timed fabric (the paper's second channel
/// family): no shared cache state, only a shared link on the two
/// routes. A single lane; [`LinkChannel::trojan_streams`] concurrent
/// transmitters drive the link into saturation.
#[derive(Debug, Clone)]
pub struct LinkCongestionMedium<'a> {
    /// Trojan process.
    pub trojan: ProcessId,
    /// Spy process.
    pub spy: ProcessId,
    /// Physical layer: both sides' transfer lines and the trojan's
    /// stream count.
    pub channel: LinkChannel<'a>,
}

impl ChannelMedium for LinkCongestionMedium<'_> {
    fn lanes(&self) -> usize {
        1
    }

    fn prepare(&self, sys: &mut MultiGpuSystem) -> SimResult<()> {
        if !sys.fabric_enabled() {
            return Err(SimError::FabricDisabled);
        }
        assert!(
            self.channel.trojan_streams >= 1,
            "need at least one trojan stream"
        );
        assert!(
            !self.channel.trojan_lines.is_empty() && !self.channel.spy_lines.is_empty(),
            "need transfer lines on both sides"
        );
        // Warm both working sets so in-band samples measure link
        // queueing, not cold misses — the Prime+Probe channel gets the
        // same effect from its discovery phase.
        let mut scratch = Vec::new();
        let ta = sys.default_agent(self.trojan);
        sys.access_batch_into(self.trojan, ta, self.channel.trojan_lines, 0, &mut scratch)?;
        let sa = sys.default_agent(self.spy);
        scratch.clear();
        sys.access_batch_into(self.spy, sa, self.channel.spy_lines, 0, &mut scratch)?;
        Ok(())
    }

    fn install_lane(
        &self,
        eng: &mut Engine<'_>,
        lane: usize,
        frame: &[u8],
        params: &ChannelParams,
        listen: u64,
    ) -> SpyTrace {
        self.install_lane_deferred(eng, lane, frame, params, listen, 0)
    }

    fn install_lane_deferred(
        &self,
        eng: &mut Engine<'_>,
        _lane: usize,
        frame: &[u8],
        params: &ChannelParams,
        listen: u64,
        defer: u64,
    ) -> SpyTrace {
        let spy = LinkSpyAgent::new(self.spy, self.channel.spy_lines, params, listen);
        let trace = spy.trace();
        // The spy starts slightly before the trojan (it must be
        // listening when the preamble begins); trojan streams stagger
        // like independent thread-block launches. A retransmission
        // defer shifts spy and trojans together.
        eng.add_agent(Box::new(spy), defer);
        for s in 0..self.channel.trojan_streams {
            let trojan = LinkTrojanAgent::new(
                self.trojan,
                self.channel.trojan_lines,
                frame.to_vec(),
                params,
            );
            eng.add_agent(Box::new(trojan), defer + params.slot_cycles / 2 + 37 * s as u64);
        }
        trace
    }

    fn default_decoder(&self) -> Decoder {
        // Baseline plus heavy congested tail: quantile anchoring.
        Decoder::Vote(BoundaryPolicy::Quantile)
    }
}

/// The spy's listen horizon for a set of stripes: every lane's frame
/// plus four slots of slack.
pub(super) fn listen_horizon(stripes: &[Vec<u8>], params: &ChannelParams) -> u64 {
    let max_frame = stripes.iter().map(Vec::len).max().unwrap_or(0) + params.preamble_bits;
    (max_frame as u64 + 4) * params.slot_cycles
}

/// Transmits `payload` bits over `medium` and decodes them with
/// `pipeline` — the one generic path both channel families run on.
///
/// The sequence is medium-independent: encode the payload through the
/// pipeline's coding stage, stripe the channel bits round-robin over
/// the medium's lanes, prepare the medium, wire every lane's agents
/// into one engine under `sched`, run to the listen horizon plus a
/// 16-slot grace period, then decode each lane with the pipeline's
/// decoder stack, reassemble, and strip the coding.
///
/// The report's `bandwidth_bytes_per_sec` is measured over the spy's
/// **listen span** (the true transmission window) for every medium; see
/// [`ChannelReport::listen_cycles`].
///
/// # Errors
///
/// Propagates medium preparation and simulator errors.
///
/// # Panics
///
/// Panics if the medium reports zero lanes.
pub fn transmit_over(
    sys: &mut MultiGpuSystem,
    medium: &dyn ChannelMedium,
    payload: &[u8],
    params: &ChannelParams,
    pipeline: &Pipeline,
    sched: SchedulerKind,
) -> SimResult<ChannelReport> {
    let coded = pipeline.coding.encode(payload);
    let k = medium.lanes();
    assert!(k >= 1, "medium must expose at least one lane");
    let stripes = stripe_bits(&coded, k);
    let listen = listen_horizon(&stripes, params);

    medium.prepare(sys)?;
    let mut eng = Engine::with_scheduler(sys, sched);
    let mut traces: Vec<SpyTrace> = Vec::with_capacity(k);
    for (lane, stripe) in stripes.iter().enumerate() {
        let frame = params.frame(stripe);
        traces.push(medium.install_lane(&mut eng, lane, &frame, params, listen));
    }
    let end = eng.run(listen + 16 * params.slot_cycles)?;
    drop(eng);

    let sample_traces: Vec<Vec<super::protocol::ProbeSample>> =
        traces.iter().map(|t| t.samples()).collect();
    let (received, ecc_corrections) =
        redecode_traces(&sample_traces, params, pipeline, payload.len());
    let bit_errors = received.iter().zip(payload).filter(|(a, b)| a != b).count();
    let secs = sys.latency_model().cycles_to_seconds(listen);
    let lat = super::obs::slot_latency_histogram(&sample_traces);
    Ok(ChannelReport {
        sent: payload.to_vec(),
        received,
        bit_errors,
        error_rate: bit_errors as f64 / payload.len().max(1) as f64,
        duration_cycles: end,
        listen_cycles: listen,
        bandwidth_bytes_per_sec: payload.len() as f64 / 8.0 / secs,
        ecc_corrections,
        slot_latency_p50: lat.p50(),
        slot_latency_p95: lat.p95(),
        slot_latency_p99: lat.p99(),
        traces: sample_traces,
    })
}

/// Runs the complete receive path — per-lane slot decoding, round-robin
/// reassembly, coding inversion — over already-recorded per-lane traces
/// (e.g. [`ChannelReport::traces`]): the way to compare decoder/coding
/// stacks on the *same* transmission without re-running it. This is the
/// one implementation of the receive path; [`transmit_over`] itself
/// decodes through it, so an offline re-decode can never drift from the
/// live pipeline. Returns the received payload bits and the number of
/// codeword corrections the coding stage applied.
///
/// `payload_bits` must be the transmitted payload length; the number of
/// lanes is `traces.len()`.
pub fn redecode_traces(
    traces: &[Vec<super::protocol::ProbeSample>],
    params: &ChannelParams,
    pipeline: &Pipeline,
    payload_bits: usize,
) -> (Vec<u8>, usize) {
    if traces.is_empty() {
        return (vec![0; payload_bits], 0);
    }
    let k = traces.len();
    let channel_bits = pipeline.coding.channel_bits(payload_bits);
    // Lane lengths under round-robin striping of `channel_bits` bits.
    let lane_len = |i: usize| channel_bits / k + usize::from(i < channel_bits % k);

    // A soft coding stage consumes the decoder's per-bit confidences
    // (the matched filter's slot margins); everything else runs the
    // hard path.
    let soft = matches!(pipeline.coding, super::pipeline::Coding::Hamming74Soft { .. });
    let mut decoded_stripes = Vec::with_capacity(k);
    let mut confidence_stripes = Vec::with_capacity(if soft { k } else { 0 });
    for (lane, samples) in traces.iter().enumerate() {
        if soft {
            let dec = pipeline.decoder.decode_soft(samples, params, lane_len(lane));
            decoded_stripes.push(dec.stripe.payload);
            confidence_stripes.push(dec.confidence);
        } else {
            let dec = pipeline.decoder.decode(samples, params, lane_len(lane));
            decoded_stripes.push(dec.payload);
        }
    }
    let received_coded = unstripe_bits(&decoded_stripes, channel_bits);
    if soft {
        let confidence = unstripe_bits(&confidence_stripes, channel_bits);
        pipeline
            .coding
            .decode_with_confidence(&received_coded, &confidence, payload_bits)
    } else {
        pipeline.coding.decode(&received_coded, payload_bits)
    }
}
