//! The cross-GPU covert channel (paper Sec. IV, Fig. 8/9/10).
//!
//! A trojan process on GPU A and a spy process on GPU B communicate
//! through Prime+Probe contention on individual L2 cache sets of GPU A.
//! To send a `1` the trojan fills the set (evicting the spy's lines); to
//! send a `0` it busy-waits on dummy arithmetic. The spy probes its
//! aligned eviction set continuously: high latency ⇒ miss ⇒ `1`, low
//! latency ⇒ hit ⇒ `0`.
//!
//! Multiple aligned set pairs carry disjoint bit stripes in parallel
//! (one thread block per set, paper Sec. IV-B); bandwidth scales with the
//! number of sets while port contention raises the error rate (Fig. 9).
//!
//! The paper's **second channel family** needs no shared cache set at
//! all: a bandwidth trojan saturates one NVLink link of the timed fabric
//! and a throughput spy decodes bits from its own transfer latency
//! ([`transmit_link`], [`LinkTrojanAgent`], [`LinkSpyAgent`]). Both
//! families share the same slotted framing, preamble phase lock and
//! adaptive decode boundary ([`ChannelParams`], [`decode_trace`]).

mod agents;
mod channel;
pub mod ecc;
mod link_agents;
mod protocol;

pub use agents::{SpyProbeAgent, SpyTrace, TrojanAgent};
pub use channel::{
    prepare_link_channel, transmit, transmit_link, ChannelReport, LinkChannel, SetPair,
};
pub use link_agents::{LinkSpyAgent, LinkTrojanAgent, SPY_DITHER_SPAN};
pub use protocol::{
    adaptive_boundary, bits_from_bytes, bytes_from_bits, decode_trace, decode_trace_with_boundary,
    robust_boundary, stripe_bits, unstripe_bits, ChannelParams, DecodedStripe, ProbeSample,
};
