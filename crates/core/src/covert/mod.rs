//! The cross-GPU covert channels (paper Sec. IV/V, Fig. 8/9/10), built
//! as one transport-agnostic pipeline.
//!
//! The paper's core claim is that multi-GPU boxes leak over *several*
//! media with the same trojan/spy protocol on top. This module is
//! organised exactly that way — one protocol stack, pluggable media:
//!
//! ```text
//!   payload bits
//!        │ Coding          (optional Hamming(7,4) + interleave, ecc.rs)
//!        ▼
//!   channel bits ──stripe──► lane frames (preamble ‖ stripe)
//!        │                        │
//!        │                        ▼
//!        │              ChannelMedium::install_lane
//!        │            ┌───────────┴───────────┐
//!        │        L2SetMedium          LinkCongestionMedium
//!        │      (Prime+Probe on        (bandwidth trojan +
//!        │       aligned L2 sets)       throughput spy on the
//!        │                              timed NVLink fabric)
//!        │            └───────────┬───────────┘
//!        │                        ▼ engine run (shared slot pacing)
//!        │                   SpyTrace (ProbeSample stream per lane)
//!        │                        │
//!        │                        ▼
//!        │       Decoder: BoundaryPolicy (2-means | quantile) ×
//!        │                (per-sample Vote | MatchedFilter)
//!        ▼                        │
//!   Coding⁻¹ ◄────unstripe────────┘
//!        │
//!        ▼
//!   ChannelReport (bits, errors, listen-span bandwidth, traces)
//! ```
//!
//! - **Media** ([`medium`]): a [`ChannelMedium`] owns what contends —
//!   [`L2SetMedium`] primes/probes aligned L2 set pairs (one stripe
//!   lane per pair, Sec. IV-B), [`LinkCongestionMedium`] saturates a
//!   shared NVLink link and reads its own transfer latency (Sec. V, no
//!   shared cache state). [`transmit_over`] owns everything
//!   transport-independent: framing, striping, the listen horizon,
//!   engine execution and reporting.
//! - **Receive stack** ([`pipeline`]): a [`Decoder`] (per-sample
//!   majority [`Decoder::Vote`] or soft [`Decoder::MatchedFilter`] over
//!   slot windows) anchored by a [`BoundaryPolicy`] (2-means for tight
//!   hit/miss clusters, quantile for the congestion channel's heavy
//!   tail), plus an optional [`Coding`] stage folded in from [`ecc`].
//!   Any combination runs on any medium.
//! - **Wrappers** ([`transmit`], [`transmit_link`]): the historical
//!   one-call entry points, now thin shims over [`transmit_over`] with
//!   each medium's default pipeline — bit-identical to their PR 3
//!   implementations (golden fingerprints in
//!   `tests/channel_fingerprints.rs`).
//! - **Resilient transport** ([`transmit_resilient`]): sequence-
//!   numbered, CRC-protected frames with sync-loss detection and
//!   bounded, deterministically backed-off retransmission on top of
//!   any medium — the protocol hardening that keeps decoding through
//!   the fabric's scheduled fault injection ([`gpubox_sim::fault`]).
//!
//! Both media share the slotted framing, alternating preamble phase
//! lock and self-calibrated decision boundaries of [`protocol`]; the
//! agents implementing the transmit side live in [`agents`] (L2) and
//! [`link_agents`] (fabric).

mod agents;
mod channel;
pub mod ecc;
mod link_agents;
mod medium;
pub mod obs;
mod pipeline;
mod protocol;
mod resilient;

pub use agents::{SpyProbeAgent, SpyTrace, TrojanAgent};
pub use channel::{
    prepare_link_channel, transmit, transmit_link, ChannelReport, LinkChannel, SetPair,
};
pub use link_agents::{LinkSpyAgent, LinkTrojanAgent, SPY_DITHER_SPAN};
pub use medium::{
    redecode_traces, transmit_over, ChannelMedium, L2SetMedium, LinkCongestionMedium,
};
pub use obs::{extract_anatomy, slot_latency_histogram, ChannelAnatomy};
pub use pipeline::{
    matched_filter_decode, matched_filter_decode_soft, BoundaryPolicy, Coding, Decoder, Pipeline,
    SoftStripe, CONFIDENCE_SCALE,
};
pub use protocol::{
    adaptive_boundary, bits_from_bytes, bytes_from_bits, crc8_bits, decode_trace,
    decode_trace_with_boundary, open_frame, robust_boundary, seal_frame, stripe_bits,
    unstripe_bits, ChannelParams, DecodedStripe, ProbeSample, CRC_BITS, SEQ_BITS,
};
pub use resilient::{transmit_resilient, ResilientReport, RetryConfig};
