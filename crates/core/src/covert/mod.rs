//! The cross-GPU covert channel (paper Sec. IV, Fig. 8/9/10).
//!
//! A trojan process on GPU A and a spy process on GPU B communicate
//! through Prime+Probe contention on individual L2 cache sets of GPU A.
//! To send a `1` the trojan fills the set (evicting the spy's lines); to
//! send a `0` it busy-waits on dummy arithmetic. The spy probes its
//! aligned eviction set continuously: high latency ⇒ miss ⇒ `1`, low
//! latency ⇒ hit ⇒ `0`.
//!
//! Multiple aligned set pairs carry disjoint bit stripes in parallel
//! (one thread block per set, paper Sec. IV-B); bandwidth scales with the
//! number of sets while port contention raises the error rate (Fig. 9).

mod agents;
mod channel;
pub mod ecc;
mod protocol;

pub use agents::{SpyProbeAgent, SpyTrace, TrojanAgent};
pub use channel::{transmit, ChannelReport, SetPair};
pub use protocol::{
    adaptive_boundary, bits_from_bytes, bytes_from_bits, decode_trace, stripe_bits, unstripe_bits,
    ChannelParams, DecodedStripe, ProbeSample,
};
